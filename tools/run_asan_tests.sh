#!/usr/bin/env bash
# Builds the test suite with -DAIDA_SANITIZE=address (which the top-level
# CMakeLists expands to ASan + UBSan) and runs the concurrency-sensitive
# tests: the aida::task scheduler, the batch runner, and the aida::serve
# service, whose task-node ownership handoffs, promise/future handoffs,
# and drain/shutdown paths are where lifetime bugs would live.
# Also replays the tests/fuzz/corpus/ seed corpora (including every fixed
# crasher) through the sanitized harness binaries, so corpus coverage gets
# ASan/UBSan eyes even on machines without Clang/libFuzzer.
# Any heap error or UB report fails the run.
#
# Usage: tools/run_asan_tests.sh [extra gtest filter]
#   BUILD_DIR=build-asan  override the build directory
#   When a filter is given it is applied to both test binaries.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-asan}"
BATCH_FILTER="${1:-BatchTest.*}"
SERVE_FILTER="${1:-*}"
SNAPSHOT_FILTER="${1:-*}"
TASK_FILTER="${1:-*}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAIDA_SANITIZE=address
cmake --build "$BUILD_DIR" -j --target task_test batch_test serve_test \
  snapshot_test kb_serialization_test flat_kb_test \
  fuzz_kb_serialization fuzz_flat_kb fuzz_wiki_importer fuzz_corpus_io fuzz_tokenizer

# halt_on_error fails fast; detect_leaks guards the promise/future and
# flushed-request paths in the serving layer.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
"$BUILD_DIR/tests/task_test" --gtest_filter="$TASK_FILTER"
"$BUILD_DIR/tests/batch_test" --gtest_filter="$BATCH_FILTER"
"$BUILD_DIR/tests/serve_test" --gtest_filter="$SERVE_FILTER"
"$BUILD_DIR/tests/snapshot_test" --gtest_filter="$SNAPSHOT_FILTER"
"$BUILD_DIR/tests/kb_serialization_test" --gtest_filter="$SNAPSHOT_FILTER"
"$BUILD_DIR/tests/flat_kb_test" --gtest_filter="$SNAPSHOT_FILTER"

# Sanitized corpus replay (standalone driver; no Clang needed).
for surface in kb_serialization flat_kb wiki_importer corpus_io tokenizer; do
  "$BUILD_DIR/tests/fuzz/fuzz_$surface" "$REPO_ROOT/tests/fuzz/corpus/$surface"
done

echo "ASan/UBSan batch/serve/snapshot/serialization tests and fuzz corpus replay passed: no memory errors reported."
