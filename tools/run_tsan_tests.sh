#!/usr/bin/env bash
# Builds the test suite with -DAIDA_SANITIZE=thread and runs the
# concurrency-sensitive tests (the annotated mutex/condvar primitives,
# batch runner, relatedness cache, per-call stats, the aida::task
# work-stealing scheduler, and the aida::serve worker pool / queue /
# metrics) under ThreadSanitizer. Any data race fails the run.
#
# Usage: tools/run_tsan_tests.sh [extra gtest filter]
#   BUILD_DIR=build-tsan  override the build directory
#   When a filter is given it is applied to both test binaries.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-tsan}"
BATCH_FILTER="${1:-BatchTest.*}"
SERVE_FILTER="${1:-*}"
SNAPSHOT_FILTER="${1:-*}"
MUTEX_FILTER="${1:-*}"
TASK_FILTER="${1:-*}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAIDA_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target mutex_test task_test batch_test serve_test snapshot_test kb_serialization_test

# halt_on_error makes the first race fail fast with a non-zero exit.
# tools/tsan.supp silences the known libstdc++ _Sp_atomic false positive
# (std::atomic<std::shared_ptr> lock-bit protocol lacks TSan annotations).
DEFAULT_TSAN_OPTIONS="halt_on_error=1:suppressions=$REPO_ROOT/tools/tsan.supp"
TSAN_OPTIONS="${TSAN_OPTIONS:-$DEFAULT_TSAN_OPTIONS}" \
  "$BUILD_DIR/tests/mutex_test" --gtest_filter="$MUTEX_FILTER"
TSAN_OPTIONS="${TSAN_OPTIONS:-$DEFAULT_TSAN_OPTIONS}" \
  "$BUILD_DIR/tests/task_test" --gtest_filter="$TASK_FILTER"
TSAN_OPTIONS="${TSAN_OPTIONS:-$DEFAULT_TSAN_OPTIONS}" \
  "$BUILD_DIR/tests/batch_test" --gtest_filter="$BATCH_FILTER"
TSAN_OPTIONS="${TSAN_OPTIONS:-$DEFAULT_TSAN_OPTIONS}" \
  "$BUILD_DIR/tests/serve_test" --gtest_filter="$SERVE_FILTER"
TSAN_OPTIONS="${TSAN_OPTIONS:-$DEFAULT_TSAN_OPTIONS}" \
  "$BUILD_DIR/tests/snapshot_test" --gtest_filter="$SNAPSHOT_FILTER"

echo "TSan mutex/task/batch/cache/serve/snapshot tests passed: no data races reported."
