#!/usr/bin/env bash
# Builds the test suite with -DAIDA_SANITIZE=thread and runs the
# concurrency-sensitive tests (batch runner, relatedness cache, per-call
# stats) under ThreadSanitizer. Any data race fails the run.
#
# Usage: tools/run_tsan_tests.sh [extra gtest filter]
#   BUILD_DIR=build-tsan  override the build directory
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-tsan}"
FILTER="${1:-BatchTest.*}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAIDA_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target batch_test

# halt_on_error makes the first race fail fast with a non-zero exit.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "$BUILD_DIR/tests/batch_test" --gtest_filter="$FILTER"

echo "TSan batch/cache tests passed: no data races reported."
