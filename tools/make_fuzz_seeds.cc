// Regenerates the checked-in seed corpora under tests/fuzz/corpus/.
//
// Valid seeds are produced through the library's own serializers so they
// track the current format; the crash-* regression inputs are crafted
// byte-for-byte (via util::BinaryWriter or literal text) to reproduce
// crashers that were found while fuzzing and have since been fixed — the
// fuzz_replay_* ctest tests replay them forever.
//
// Usage: make_fuzz_seeds [corpus_root]   (default: tests/fuzz/corpus)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "corpus/corpus_io.h"
#include "ingest/wiki_importer.h"
#include "kb/flat/flat_snapshot.h"
#include "kb/kb_serialization.h"
#include "util/check.h"
#include "util/serialize.h"

namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  AIDA_CHECK(out.good(), "cannot open seed file for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  AIDA_CHECK(out.good(), "short write on seed file");
  std::printf("wrote %s (%zu bytes)\n", (dir / name).c_str(), bytes.size());
}

std::string PageOne() {
  return aida::ingest::RenderWikiPage(
      "Jimmy_Page", {"person", "musician"}, {"Page", "Jimmy Page"},
      {{"Led_Zeppelin", "the band"}, {"Gibson_Les_Paul", ""}},
      "Jimmy Page is an english rock guitarist of [[Led_Zeppelin]] fame.\n"
      "He played a [[Gibson_Les_Paul|gibson guitar]] on stage.\n");
}

std::string PageTwo() {
  return aida::ingest::RenderWikiPage(
      "Led_Zeppelin", {"band"}, {"Zeppelin"}, {{"Jimmy_Page", "Page"}},
      "Led Zeppelin was founded by [[Jimmy_Page]] in 1968.\n");
}

// A snapshot that was accepted, then re-fed through the deserializer while
// fuzzing: two entities with the same canonical name used to abort inside
// EntityRepository::Add instead of returning an error Status.
std::string DuplicateEntitySnapshot() {
  aida::util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);  // magic
  w.WriteU32(1);           // version
  w.WriteU64(0);           // taxonomy: no types
  w.WriteU64(2);           // two entities...
  w.WriteString("X");      // ...with the same name
  w.WriteU64(0);           //    no types
  w.WriteString("X");
  w.WriteU64(0);
  w.WriteU64(0);  // anchors
  w.WriteU64(0);  // phrase vocabulary
  w.WriteU64(2);  // per-entity phrase lists (must equal entity count)
  w.WriteU64(0);
  w.WriteU64(0);
  w.WriteU64(0);  // links
  return std::move(w).TakeBuffer();
}

// Same family: a duplicate type name used to abort in TypeTaxonomy::AddType.
std::string DuplicateTypeSnapshot() {
  aida::util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);
  w.WriteU32(1);
  w.WriteU64(2);  // two types, same name
  w.WriteString("t");
  w.WriteU32(0xFFFFFFFFu);  // kNoType
  w.WriteString("t");
  w.WriteU32(0xFFFFFFFFu);
  w.WriteU64(0);  // entities
  w.WriteU64(0);  // anchors
  w.WriteU64(0);  // phrases
  w.WriteU64(0);  // per-entity phrase lists
  w.WriteU64(0);  // links
  return std::move(w).TakeBuffer();
}

// An all-space phrase text used to reach KeyphraseStore::InternPhrase's
// non-empty-words invariant through AddKeyphrase.
std::string EmptyPhraseSnapshot() {
  aida::util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);
  w.WriteU32(1);
  w.WriteU64(0);  // taxonomy
  w.WriteU64(1);  // one entity
  w.WriteString("X");
  w.WriteU64(0);
  w.WriteU64(0);      // anchors
  w.WriteU64(1);      // one phrase...
  w.WriteString(" "); // ...that splits into zero words
  w.WriteU64(1);      // per-entity phrase lists
  w.WriteU64(1);      // entity 0 references phrase 0
  w.WriteU32(0);
  w.WriteU32(3);
  w.WriteU64(0);  // links
  return std::move(w).TakeBuffer();
}

aida::corpus::Corpus SmallCorpus() {
  aida::corpus::Corpus corpus;
  aida::corpus::Document doc;
  doc.id = "doc_0";
  doc.day = 4;
  doc.topic = 2;
  doc.tokens = {"The", "Page", "concert", "sold", "out", "."};
  aida::corpus::GoldMention m;
  m.begin_token = 1;
  m.end_token = 2;
  m.gold_entity = 314;
  m.surface = "Page";
  doc.mentions.push_back(m);
  corpus.push_back(doc);
  return corpus;
}

aida::corpus::Corpus EmptyDocCorpus() {
  aida::corpus::Corpus corpus;
  aida::corpus::Document doc;
  doc.id = "empty_doc";
  doc.day = 0;
  doc.topic = 0;
  corpus.push_back(doc);
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root =
      argc > 1 ? argv[1] : "tests/fuzz/corpus";

  // ---- kb_serialization --------------------------------------------------
  {
    aida::ingest::WikiImporter importer;
    AIDA_CHECK_OK(importer.AddPage(PageOne()));
    AIDA_CHECK_OK(importer.AddPage(PageTwo()));
    std::string kb_bytes =
        aida::kb::SerializeKnowledgeBase(*std::move(importer).Build());
    const auto dir = root / "kb_serialization";
    WriteSeed(dir, "seed_small.kb", kb_bytes);
    WriteSeed(dir, "seed_truncated.kb", kb_bytes.substr(0, kb_bytes.size() / 2));
    WriteSeed(dir, "crash-dup-entity.kb", DuplicateEntitySnapshot());
    WriteSeed(dir, "crash-dup-type.kb", DuplicateTypeSnapshot());
    WriteSeed(dir, "crash-empty-phrase.kb", EmptyPhraseSnapshot());
  }

  // ---- flat_kb -----------------------------------------------------------
  {
    aida::ingest::WikiImporter importer;
    AIDA_CHECK_OK(importer.AddPage(PageOne()));
    AIDA_CHECK_OK(importer.AddPage(PageTwo()));
    std::string flat_bytes =
        aida::kb::flat::SerializeFlatSnapshot(*std::move(importer).Build());
    const auto dir = root / "flat_kb";
    WriteSeed(dir, "seed_small.fkb", flat_bytes);
    WriteSeed(dir, "seed_truncated.fkb",
              flat_bytes.substr(0, flat_bytes.size() / 2));
    // Header-only prefix: magic + version survive, the section table is
    // cut off mid-entry.
    WriteSeed(dir, "seed_header_only.fkb", flat_bytes.substr(0, 40));
    // Valid layout with the meta entity count inflated: exercises the
    // count/section-size cross-checks rather than the header checks.
    std::string inflated = flat_bytes;
    AIDA_CHECK(inflated.size() > 1000);
    const size_t meta_offset =
        32 /* FileHeader */ + 37 * 24 /* section table */;
    for (size_t b = 0; b < 8; ++b) inflated[meta_offset + b] = '\x7F';
    WriteSeed(dir, "seed_bad_meta.fkb", inflated);
  }

  // ---- wiki_importer -----------------------------------------------------
  {
    const auto dir = root / "wiki_importer";
    WriteSeed(dir, "seed_page.txt", PageOne());
    std::string multi = PageOne();
    multi.push_back('\0');  // page separator understood by the harness
    multi += PageTwo();
    WriteSeed(dir, "seed_multi.bin", multi);
    WriteSeed(dir, "seed_malformed.txt",
              "= Broken =\nsome text with an [[unterminated link\n");
    // Crasher: the literal category "entity" collided with the root
    // taxonomy type inside Build() and aborted the process.
    WriteSeed(dir, "crash-category-entity.txt",
              "= Anything =\nCATEGORY: entity\nBody text.\n");
  }

  // ---- corpus_io ---------------------------------------------------------
  {
    const auto dir = root / "corpus_io";
    WriteSeed(dir, "seed_doc.txt", aida::corpus::SerializeCorpus(SmallCorpus()));
    // Regression: a zero-token document serializes with a blank token line
    // that the line-splitter drops; the parser used to misread #MENTIONS
    // as the token line and fail the round-trip.
    WriteSeed(dir, "crash-empty-tokens.txt",
              aida::corpus::SerializeCorpus(EmptyDocCorpus()));
    WriteSeed(dir, "seed_malformed.txt",
              "#DOC d 1 1\n#TOKENS\na b c\n#MENTIONS\n0 9 - - a\n#END\n");
  }

  // ---- tokenizer ---------------------------------------------------------
  {
    const auto dir = root / "tokenizer";
    WriteSeed(dir, "seed_ascii.txt",
              "Dylan's long-tail guitar broke! Was it Page's? No.\n");
    std::string utf8;
    utf8 += "\xEF\xBB\xBF";          // BOM
    utf8 += "caf\xC3\xA9 ";          // 2-byte sequence
    utf8 += "\xE2\x82\xAC" "100 ";   // 3-byte euro sign
    utf8 += "\xF0\x9F\x98\x80 ";     // 4-byte emoji
    utf8 += "\x80\xBF ";             // lone continuation bytes
    utf8 += "\xC0\xAF ";             // overlong encoding
    utf8 += "\xE2\x82";              // truncated sequence at end
    utf8.push_back('\0');            // embedded NUL
    utf8 += " tail.";
    WriteSeed(dir, "seed_utf8.bin", utf8);
  }

  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
