#!/usr/bin/env bash
# Compile-time correctness gate: Clang Thread Safety Analysis and the
# view-lifetime diagnostics as errors, the Clang Static Analyzer, a
# curated clang-tidy pass, clang-query AST lints, a formatting check and
# toolchain-free source sweeps.
#
# Ten phases (each logged to $LOG_DIR and summarized at the end):
#   1. raw-primitive sweep (no toolchain needed): no std::mutex /
#      std::lock_guard / std::condition_variable may appear in src/
#      outside util/mutex.* — every lock must be an annotated util::Mutex
#      or the analysis has a blind spot;
#   2. contract-macro sweep (no toolchain needed): no raw assert() in
#      src/ — release builds compile assert away, turning violated
#      invariants into silent UB; util/check.h's AIDA_CHECK / AIDA_DCHECK
#      are the only sanctioned contract macros (static_assert stays fine);
#   3. format check: clang-format --dry-run over the files listed in
#      tools/static_analysis/format_scope.txt (repo-root .clang-format).
#      Warn-only locally; AIDA_REQUIRE_STATIC_ANALYSIS=1 (CI) makes a
#      formatting diff a failure;
#   4. thread-safety smoke controls: the positive control TU must
#      compile under -Werror=thread-safety and the negative control must
#      NOT — proves the analysis is enabled AND discriminating before we
#      trust a "no warnings" result;
#   5. lifetime smoke controls: lifetime_ok.cc must compile under
#      -Werror=dangling -Werror=dangling-gsl -Werror=return-stack-address
#      and the three lifetime_fail_*.cc controls must each be rejected
#      with the expected diagnostic family (util/lifetime.h annotations:
#      AIDA_LIFETIME_BOUND, AIDA_VIEW_TYPE/AIDA_OWNER_TYPE);
#   6. function-effect smoke controls (Clang >= 20 only): the annotated
#      positive control must compile under -Werror=function-effects and
#      the two negative controls — a blocking std::mutex acquisition and
#      a std::vector growth inside an AIDA_NONBLOCKING function — must
#      each be rejected by the function-effects diagnostic
#      (util/function_effects.h annotations). WARNs, with the discovered
#      Clang version, when the toolchain predates the analysis;
#   7. full Clang build of the src/ libraries plus the tools/, bench/
#      and examples/ executables with -Werror=thread-safety[-beta], the
#      lifetime errors AND (on Clang >= 20) -Werror=function-effects
#      (AIDA_THREAD_SAFETY_ANALYSIS=ON + AIDA_LIFETIME_ANALYSIS=ON +
#      AIDA_FUNCTION_EFFECT_ANALYSIS=ON). Tests stay out of the
#      acceptance bar;
#   8. Clang Static Analyzer (--analyze, -analyzer-werror) over every
#      translation unit in src/, tools/, bench/ and examples/ (the
#      deliberately-broken control TUs under tools/static_analysis/ are
#      excluded): core, cplusplus, unix and security.insecureAPI checker
#      groups as errors (deadcode.DeadStores excluded — it flags
#      defensive clear-after-move and has no soundness payoff);
#   9. clang-tidy (.clang-tidy at the repo root) over the same TU set;
#  10. clang-query AST lints (tools/static_analysis/*.query, driven by
#      run_clang_query_lints.sh): views stored beyond their snapshot
#      pin, hash-order iteration in determinism-critical code, raw
#      std::thread ownership outside util/ + task/. Each lint is
#      control-validated before it is trusted.
#
# Phases 3-10 need LLVM tooling. When a tool is missing the script SKIPS
# that phase with a loud warning and stays green so developer machines
# without Clang remain usable; CI exports AIDA_REQUIRE_STATIC_ANALYSIS=1,
# which turns a missing toolchain into a hard failure — the gate can be
# unavailable locally, never silently unavailable in CI. SKIP/WARN lines
# in the final summary carry the discovered Clang version, so a
# silently-old toolchain (phase 6 needs Clang >= 20) stays visible in
# the CI step summary.
#
# Usage: tools/run_static_analysis.sh
#   BUILD_DIR=build-tsa             override the analysis build directory
#   LOG_DIR=$BUILD_DIR/static-analysis-logs   override the phase-log dir
#   JOBS=N                          override build parallelism
#   CLANGXX=/path/to/clang++        override compiler discovery
#   CLANG_TIDY=/path/to/clang-tidy  override clang-tidy discovery
#   CLANG_QUERY=...                 override clang-query discovery
#   CLANG_FORMAT=...                override clang-format discovery
#   AIDA_REQUIRE_STATIC_ANALYSIS=1  fail instead of skipping
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-tsa}"
LOG_DIR="${LOG_DIR:-$BUILD_DIR/static-analysis-logs}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
REQUIRE="${AIDA_REQUIRE_STATIC_ANALYSIS:-0}"
mkdir -p "$LOG_DIR"

find_tool() {
  local base="$1"
  local candidate
  for candidate in "$base" "$base"-20 "$base"-19 "$base"-18 "$base"-17 \
                   "$base"-16 "$base"-15 "$base"-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      command -v "$candidate"
      return 0
    fi
  done
  return 1
}

# Every *.cc / *.cpp the analyzer and clang-tidy cover: the library, the
# tools, the benches and the examples. tests/ stays curated (the gate's
# acceptance bar is shipping code) and tools/static_analysis/ holds
# deliberately-broken control TUs.
gate_tus() {
  find "$REPO_ROOT/src" "$REPO_ROOT/bench" -name '*.cc'
  find "$REPO_ROOT/tools" -name '*.cc' -not -path '*/static_analysis/*'
  find "$REPO_ROOT/examples" -name '*.cpp'
}

# Compiler discovery happens up front (not between phases) so every
# SKIP/WARN annotation in the summary can name the toolchain it is a
# statement about. CLANG_MAJOR gates the Clang>=20-only function-effect
# phase; CLANG_DESC is the human-readable form the summary prints.
CLANGXX="${CLANGXX:-$(find_tool clang++ || true)}"
CLANG_MAJOR=0
CLANG_DESC="not found"
if [[ -n "$CLANGXX" ]]; then
  CLANG_VERSION="$("$CLANGXX" -dumpversion 2>/dev/null || echo unknown)"
  CLANG_MAJOR="${CLANG_VERSION%%.*}"
  [[ "$CLANG_MAJOR" =~ ^[0-9]+$ ]] || CLANG_MAJOR=0
  CLANG_DESC="$CLANG_VERSION at $CLANGXX"
fi

# ---------------------------------------------------------------------------
# Phase driver: each phase is a function returning 0 (pass), 77 (skip),
# 78 (warn) or anything else (fail). Output is teed to $LOG_DIR/<slug>.log
# and the final summary prints one PASS/SKIP/WARN/FAIL line per phase.
OVERALL=0
SUMMARY=()

run_phase() {
  local num="$1" slug="$2" title="$3" fn="$4"
  local log="$LOG_DIR/$slug.log"
  echo "==> [$num/10] $title"
  "$fn" 2>&1 | tee "$log"
  local rc="${PIPESTATUS[0]}"
  local status
  case "$rc" in
    0)  status=PASS ;;
    77) status=SKIP ;;
    78) status=WARN ;;
    *)  status=FAIL; OVERALL=1 ;;
  esac
  local entry="$status $slug"
  # A skipped phase is a statement about the toolchain — record which
  # clang (if any) was discovered, so "SKIP" can never hide an
  # unexpectedly old compiler from the CI step summary.
  if [[ "$status" == SKIP || "$status" == WARN ]]; then
    entry+=" (clang: ${CLANG_DESC:-not discovered})"
  fi
  SUMMARY+=("$entry")
}

# ---------------------------------------------------------------------------
phase_raw_primitives() {
  # util/mutex.* wraps the one std::mutex / std::condition_variable the
  # codebase is allowed; everything else must use the annotated types so
  # the thread-safety analysis sees every lock.
  local hits
  hits="$(grep -rnE 'std::(mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|condition_variable)' \
    "$REPO_ROOT/src" \
    --include='*.h' --include='*.cc' \
    | grep -v 'src/util/mutex\.\(h\|cc\)' || true)"
  if [[ -n "$hits" ]]; then
    echo "error: raw standard-library locking primitives in src/ (use the"
    echo "annotated util::Mutex / util::MutexLock / util::CondVar instead):"
    echo "$hits"
    return 1
  fi
  echo "    OK: no raw locking primitives outside util/mutex.*"
}

phase_raw_assert() {
  # assert() disappears under NDEBUG — the default RelWithDebInfo build —
  # so a raw assert is a contract that silently stops being checked in
  # production. util/check.h is the replacement: AIDA_CHECK stays active
  # in every build type, AIDA_DCHECK is the explicit opt-in for
  # debug-only cost. static_assert is compile-time and remains allowed.
  local hits
  hits="$(grep -rnE '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
    "$REPO_ROOT/src" \
    --include='*.h' --include='*.cc' \
    | grep -v 'static_assert' || true)"
  if [[ -n "$hits" ]]; then
    echo "error: raw assert() in src/ (use AIDA_CHECK / AIDA_DCHECK from"
    echo "util/check.h — assert compiles away under NDEBUG):"
    echo "$hits"
    return 1
  fi
  echo "    OK: no raw assert() outside static_assert"
}

phase_format() {
  local tool
  tool="${CLANG_FORMAT:-$(find_tool clang-format || true)}"
  if [[ -z "$tool" ]]; then
    if [[ "$REQUIRE" == "1" ]]; then
      echo "error: clang-format not found and AIDA_REQUIRE_STATIC_ANALYSIS=1"
      return 1
    fi
    echo "WARNING: clang-format not found; skipping the format check."
    return 77
  fi
  # The enforced scope is the explicit list in format_scope.txt (grown
  # file-by-file as code is brought to .clang-format cleanliness), not a
  # blanket find: enforcing a style on files nobody reformatted yet
  # would turn the gate red without making anything safer.
  local scope_file="$REPO_ROOT/tools/static_analysis/format_scope.txt"
  local files=()
  local line
  while IFS= read -r line; do
    [[ -z "$line" || "$line" == \#* ]] && continue
    if [[ ! -f "$REPO_ROOT/$line" ]]; then
      echo "error: format_scope.txt lists missing file: $line"
      return 1
    fi
    files+=("$REPO_ROOT/$line")
  done <"$scope_file"
  if "$tool" --dry-run -Werror --style=file "${files[@]}"; then
    echo "    OK: ${#files[@]} scoped files are clang-format clean"
    return 0
  fi
  if [[ "$REQUIRE" == "1" ]]; then
    echo "error: formatting differences in the enforced scope (run"
    echo "clang-format -i on the files above, or see .clang-format)."
    return 1
  fi
  echo "WARNING: formatting differences (warn-only locally; CI enforces)."
  return 78
}

phase_ts_controls() {
  [[ -z "$CLANGXX" ]] && return 77
  local flags=(-std=c++20 -Wthread-safety -Wthread-safety-beta
               -Werror=thread-safety -Werror=thread-safety-beta
               -I"$REPO_ROOT/src")
  "$CLANGXX" "${flags[@]}" -fsyntax-only \
    "$REPO_ROOT/tools/static_analysis/thread_safety_ok.cc" || return 1
  echo "    OK: positive control compiles clean"
  if "$CLANGXX" "${flags[@]}" -fsyntax-only \
    "$REPO_ROOT/tools/static_analysis/thread_safety_compile_fail.cc" \
    2>/dev/null; then
    echo "error: the deliberately-unguarded negative control COMPILED —"
    echo "-Werror=thread-safety is not rejecting unguarded accesses; the"
    echo "gate is broken, refusing to report success."
    return 1
  fi
  echo "    OK: negative control rejected (unguarded access fails the build)"
}

phase_lifetime_controls() {
  [[ -z "$CLANGXX" ]] && return 77
  local flags=(-std=c++20 -Werror=dangling -Werror=dangling-gsl
               -Werror=return-stack-address -I"$REPO_ROOT/src")
  "$CLANGXX" "${flags[@]}" -fsyntax-only \
    "$REPO_ROOT/tools/static_analysis/lifetime_ok.cc" || return 1
  echo "    OK: positive control compiles clean"
  # Each negative control must fail AND fail for the right reason — a
  # rejection caused by an unrelated error would vacuously "pass".
  local tu pattern out
  for tu in lifetime_fail_lifetimebound:dangling \
            lifetime_fail_dangling_gsl:dangling \
            lifetime_fail_return_stack:stack; do
    pattern="${tu##*:}"
    tu="${tu%%:*}"
    if out="$("$CLANGXX" "${flags[@]}" -fsyntax-only \
        "$REPO_ROOT/tools/static_analysis/$tu.cc" 2>&1)"; then
      echo "error: the deliberately-dangling negative control $tu.cc"
      echo "COMPILED — the lifetime diagnostics are not enforcing; the"
      echo "gate is broken, refusing to report success."
      return 1
    fi
    if ! grep -qiE "$pattern" <<<"$out"; then
      echo "error: $tu.cc was rejected, but not by the expected"
      echo "'$pattern' diagnostic family; compiler output was:"
      echo "$out"
      return 1
    fi
    echo "    OK: negative control $tu.cc rejected ($pattern diagnostic)"
  done
}

phase_fe_controls() {
  [[ -z "$CLANGXX" ]] && return 77
  if [[ "$CLANG_MAJOR" -lt 20 ]]; then
    if [[ "$REQUIRE" == "1" ]]; then
      echo "error: the function-effect controls need Clang >= 20"
      echo "([[clang::nonblocking]] verification); found clang $CLANG_DESC"
      echo "and AIDA_REQUIRE_STATIC_ANALYSIS=1."
      return 1
    fi
    echo "WARNING: -Wfunction-effects needs Clang >= 20; found clang"
    echo "$CLANG_DESC — skipping the function-effect controls (the"
    echo "annotations in src/ compile as no-ops on this toolchain)."
    return 78
  fi
  local flags=(-std=c++20 -Wfunction-effects -Werror=function-effects
               -I"$REPO_ROOT/src")
  "$CLANGXX" "${flags[@]}" -fsyntax-only \
    "$REPO_ROOT/tools/static_analysis/function_effects_ok.cc" || return 1
  echo "    OK: positive control (annotations + audited escape) compiles clean"
  # Each negative control must fail AND fail via -Wfunction-effects — a
  # rejection caused by an unrelated error would vacuously "pass".
  local tu out
  for tu in function_effects_fail_blocking function_effects_fail_allocating; do
    if out="$("$CLANGXX" "${flags[@]}" -fsyntax-only \
        "$REPO_ROOT/tools/static_analysis/$tu.cc" 2>&1)"; then
      echo "error: the deliberately-effectful negative control $tu.cc"
      echo "COMPILED — -Werror=function-effects is not enforcing; the"
      echo "gate is broken, refusing to report success."
      return 1
    fi
    if ! grep -q 'function-effects' <<<"$out"; then
      echo "error: $tu.cc was rejected, but not by the function-effects"
      echo "diagnostic; compiler output was:"
      echo "$out"
      return 1
    fi
    echo "    OK: negative control $tu.cc rejected (function-effects)"
  done
}

phase_clang_build() {
  [[ -z "$CLANGXX" ]] && return 77
  # The function-effect verification needs Clang >= 20; on older
  # toolchains the build still proves the thread-safety + lifetime
  # contracts and phase 6 already WARNed about the missing analysis.
  local fe=OFF
  [[ "$CLANG_MAJOR" -ge 20 ]] && fe=ON
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DAIDA_THREAD_SAFETY_ANALYSIS=ON \
    -DAIDA_LIFETIME_ANALYSIS=ON \
    -DAIDA_FUNCTION_EFFECT_ANALYSIS="$fe" || return 1
  # The gate covers shipping code: the src/ libraries plus every tool,
  # bench and example executable. Tests get the annotations' benefit
  # when the full suites build, but the acceptance bar stops here.
  cmake --build "$BUILD_DIR" -j "$JOBS" --target \
    aida_util aida_text aida_nlp aida_kb aida_ingest aida_task aida_graph \
    aida_hashing aida_synth aida_core aida_kore aida_ee aida_eval \
    aida_snapshot aida_serve aida_apps \
    aida_cli make_fuzz_seeds \
    quickstart emerging_entities semantic_search entity_relatedness \
    bench_corpus_stats bench_aida_accuracy bench_relatedness_quality \
    bench_kore_ned bench_kore_longtail bench_kore_efficiency \
    bench_confidence bench_ee_discovery bench_ee_pipeline bench_ee_days \
    bench_apps bench_serve bench_micro bench_kb_load bench_ablation \
    || return 1
  if [[ "$fe" == ON ]]; then
    echo "    OK: thread-safety + lifetime + function-effect clean Clang build"
  else
    echo "    OK: thread-safety + lifetime clean Clang build"
    echo "    (function-effect verification off: clang $CLANG_DESC < 20)"
  fi
}

phase_analyzer() {
  [[ -z "$CLANGXX" ]] && return 77
  # Path-sensitive symbolic execution per TU: null derefs, use-after-move
  # along error paths, uninitialized reads, insecure libc calls. Findings
  # are errors (-analyzer-werror), so a regression fails the gate.
  # deadcode.DeadStores is left out deliberately: it fires on defensive
  # clear-after-move writes and finds no memory-safety bugs.
  gate_tus | tr '\n' '\0' \
    | xargs -0 -n 1 -P "$JOBS" "$CLANGXX" --analyze -std=c++20 \
        -I"$REPO_ROOT/src" -o /dev/null \
        -Xclang -analyzer-werror \
        -Xclang -analyzer-checker="core,cplusplus,unix,security.insecureAPI" \
        -Xclang -analyzer-disable-checker -Xclang deadcode.DeadStores \
        -Xclang -analyzer-output=text || return 1
  echo "    OK: static analyzer reported zero findings"
}

phase_clang_tidy() {
  [[ -z "$CLANGXX" ]] && return 77
  local tool
  tool="${CLANG_TIDY:-$(find_tool clang-tidy || true)}"
  if [[ -z "$tool" ]]; then
    if [[ "$REQUIRE" == "1" ]]; then
      echo "error: clang-tidy not found and AIDA_REQUIRE_STATIC_ANALYSIS=1"
      return 1
    fi
    echo "WARNING: clang-tidy not found; skipping the tidy phase."
    return 77
  fi
  # Every gate TU through the curated .clang-tidy; WarningsAsErrors
  # there decides the exit code, so "zero errors" is machine-enforced.
  gate_tus | tr '\n' '\0' \
    | xargs -0 -n 4 -P "$JOBS" "$tool" -p "$BUILD_DIR" --quiet || return 1
  echo "    OK: clang-tidy reported zero errors"
}

phase_clang_query() {
  [[ -z "$CLANGXX" ]] && return 77
  if ! find_tool clang-query >/dev/null && [[ -z "${CLANG_QUERY:-}" ]]; then
    if [[ "$REQUIRE" == "1" ]]; then
      echo "error: clang-query not found and AIDA_REQUIRE_STATIC_ANALYSIS=1"
      return 1
    fi
    echo "WARNING: clang-query not found; skipping the AST lints."
    return 77
  fi
  BUILD_DIR="$BUILD_DIR" JOBS="$JOBS" \
    "$REPO_ROOT/tools/static_analysis/run_clang_query_lints.sh" || return 1
  echo "    OK: clang-query lints reported zero findings"
}

# ---------------------------------------------------------------------------
run_phase 1 raw-primitives "raw-primitive sweep over src/" \
  phase_raw_primitives
run_phase 2 raw-assert "contract-macro sweep over src/ (no raw assert)" \
  phase_raw_assert
run_phase 3 format "clang-format check (enforced scope)" \
  phase_format

if [[ -z "$CLANGXX" ]]; then
  if [[ "$REQUIRE" == "1" ]]; then
    echo "error: clang++ not found and AIDA_REQUIRE_STATIC_ANALYSIS=1" >&2
    OVERALL=2
  else
    echo "WARNING: clang++ not found; SKIPPING the compile-based phases"
    echo "(the source sweeps above still ran). Install clang + clang-tidy"
    echo "+ clang-tools to run the full gate locally; CI runs it"
    echo "unconditionally."
  fi
else
  echo "==> using clang $CLANG_DESC"
fi

run_phase 4 ts-controls "thread-safety smoke controls" \
  phase_ts_controls
run_phase 5 lifetime-controls "lifetime smoke controls" \
  phase_lifetime_controls
run_phase 6 fe-controls "function-effect smoke controls (Clang >= 20)" \
  phase_fe_controls
run_phase 7 clang-build \
  "Clang build: -Werror=thread-safety[-beta] + lifetime + function-effects" \
  phase_clang_build
run_phase 8 analyzer "Clang Static Analyzer (src/ tools/ bench/ examples/)" \
  phase_analyzer
run_phase 9 clang-tidy "clang-tidy (src/ tools/ bench/ examples/)" \
  phase_clang_tidy
run_phase 10 clang-query "clang-query AST lints" \
  phase_clang_query

# ---------------------------------------------------------------------------
echo
echo "Static analysis summary:"
{
  for line in "${SUMMARY[@]}"; do
    echo "  $line"
  done
} | tee "$LOG_DIR/summary.txt"

if [[ "$OVERALL" != 0 ]]; then
  echo "Static analysis gate FAILED."
  exit "$OVERALL"
fi
echo "Static analysis gate passed."
