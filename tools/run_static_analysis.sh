#!/usr/bin/env bash
# Compile-time correctness gate: Clang Thread Safety Analysis as errors
# over src/, the Clang Static Analyzer, a curated clang-tidy pass, and
# toolchain-free source sweeps.
#
# Six phases:
#   1. raw-primitive sweep (no toolchain needed): no std::mutex /
#      std::lock_guard / std::condition_variable may appear in src/
#      outside util/mutex.* — every lock must be an annotated util::Mutex
#      or the analysis has a blind spot;
#   2. contract-macro sweep (no toolchain needed): no raw assert() in
#      src/ — release builds compile assert away, turning violated
#      invariants into silent UB; util/check.h's AIDA_CHECK / AIDA_DCHECK
#      are the only sanctioned contract macros (static_assert stays fine);
#   3. smoke controls: the positive control TU must compile under
#      -Werror=thread-safety and the negative control TU must NOT — this
#      proves the analysis is enabled AND discriminating before we trust
#      a "no warnings" result;
#   4. full Clang build of the src/ libraries with
#      -Werror=thread-safety -Werror=thread-safety-beta
#      (AIDA_THREAD_SAFETY_ANALYSIS=ON);
#   5. Clang Static Analyzer (--analyze, -analyzer-werror) over every
#      src/ translation unit: core, cplusplus, unix and
#      security.insecureAPI checker groups as errors
#      (deadcode.DeadStores is excluded — it flags defensive
#      clear-after-move patterns and has no soundness payoff);
#   6. clang-tidy (.clang-tidy at the repo root: bugprone-*,
#      concurrency-*, performance-*, cert-*, ... with the concurrency
#      core as WarningsAsErrors) over every src/ translation unit.
#
# Phases 3-6 need Clang. When no clang++ is on PATH the script SKIPS
# them with a loud warning and exits 0 so developer machines without
# Clang stay usable; CI exports AIDA_REQUIRE_STATIC_ANALYSIS=1, which
# turns a missing toolchain into a hard failure — the gate can be
# unavailable locally, never silently unavailable in CI.
#
# Usage: tools/run_static_analysis.sh
#   BUILD_DIR=build-tsa            override the analysis build directory
#   JOBS=N                         override build parallelism
#   CLANGXX=/path/to/clang++       override compiler discovery
#   CLANG_TIDY=/path/to/clang-tidy override clang-tidy discovery
#   AIDA_REQUIRE_STATIC_ANALYSIS=1 fail (exit 2) instead of skipping
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-tsa}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
REQUIRE="${AIDA_REQUIRE_STATIC_ANALYSIS:-0}"

find_tool() {
  local base="$1"
  local candidate
  for candidate in "$base" "$base"-20 "$base"-19 "$base"-18 "$base"-17 \
                   "$base"-16 "$base"-15 "$base"-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      command -v "$candidate"
      return 0
    fi
  done
  return 1
}

# ---------------------------------------------------------------------------
echo "==> [1/6] raw-primitive sweep over src/"
# util/mutex.* wraps the one std::mutex / std::condition_variable the
# codebase is allowed; everything else must use the annotated types so
# the thread-safety analysis sees every lock.
RAW_HITS="$(grep -rnE 'std::(mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|condition_variable)' \
  "$REPO_ROOT/src" \
  --include='*.h' --include='*.cc' \
  | grep -v 'src/util/mutex\.\(h\|cc\)' || true)"
if [[ -n "$RAW_HITS" ]]; then
  echo "error: raw standard-library locking primitives in src/ (use the"
  echo "annotated util::Mutex / util::MutexLock / util::CondVar instead):"
  echo "$RAW_HITS"
  exit 1
fi
echo "    OK: no raw locking primitives outside util/mutex.*"

# ---------------------------------------------------------------------------
echo "==> [2/6] contract-macro sweep over src/ (no raw assert)"
# assert() disappears under NDEBUG — the default RelWithDebInfo build —
# so a raw assert is a contract that silently stops being checked in
# production. util/check.h is the replacement: AIDA_CHECK stays active in
# every build type, AIDA_DCHECK is the explicit opt-in for debug-only
# cost. static_assert is compile-time and remains allowed; the pattern
# requires a non-identifier character before the word so it never
# matches.
ASSERT_HITS="$(grep -rnE '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
  "$REPO_ROOT/src" \
  --include='*.h' --include='*.cc' \
  | grep -v 'static_assert' || true)"
if [[ -n "$ASSERT_HITS" ]]; then
  echo "error: raw assert() in src/ (use AIDA_CHECK / AIDA_DCHECK from"
  echo "util/check.h — assert compiles away under NDEBUG):"
  echo "$ASSERT_HITS"
  exit 1
fi
echo "    OK: no raw assert() outside static_assert"

# ---------------------------------------------------------------------------
CLANGXX="${CLANGXX:-$(find_tool clang++ || true)}"
if [[ -z "$CLANGXX" ]]; then
  if [[ "$REQUIRE" == "1" ]]; then
    echo "error: clang++ not found and AIDA_REQUIRE_STATIC_ANALYSIS=1" >&2
    exit 2
  fi
  echo "WARNING: clang++ not found; SKIPPING the thread-safety build,"
  echo "static-analyzer and clang-tidy phases (the source sweeps above"
  echo "still ran)."
  echo "Install clang + clang-tidy to run the full gate locally; CI runs"
  echo "it unconditionally."
  exit 0
fi
echo "==> using $CLANGXX"

TSA_FLAGS=(-std=c++20 -Wthread-safety -Wthread-safety-beta
           -Werror=thread-safety -Werror=thread-safety-beta
           -I"$REPO_ROOT/src")

echo "==> [3/6] smoke controls (analysis enabled AND discriminating)"
"$CLANGXX" "${TSA_FLAGS[@]}" -fsyntax-only \
  "$REPO_ROOT/tools/static_analysis/thread_safety_ok.cc"
echo "    OK: positive control compiles clean"
if "$CLANGXX" "${TSA_FLAGS[@]}" -fsyntax-only \
  "$REPO_ROOT/tools/static_analysis/thread_safety_compile_fail.cc" \
  2>/dev/null; then
  echo "error: the deliberately-unguarded negative control COMPILED —"
  echo "-Werror=thread-safety is not rejecting unguarded accesses; the"
  echo "gate is broken, refusing to report success."
  exit 1
fi
echo "    OK: negative control rejected (unguarded access fails the build)"

echo "==> [4/6] Clang build of src/ with -Werror=thread-safety[-beta]"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DAIDA_THREAD_SAFETY_ANALYSIS=ON
# The gate covers the library code; tests/benches get the annotations'
# benefit when the full suites build, but the acceptance bar is src/.
cmake --build "$BUILD_DIR" -j "$JOBS" --target \
  aida_util aida_text aida_nlp aida_kb aida_ingest aida_task aida_graph \
  aida_hashing aida_synth aida_core aida_kore aida_ee aida_eval \
  aida_snapshot aida_serve aida_apps
echo "    OK: thread-safety-clean Clang build"

echo "==> [5/6] Clang Static Analyzer over src/ (-analyzer-werror)"
# Path-sensitive symbolic execution per TU: null derefs, use-after-move
# along error paths, uninitialized reads, insecure libc calls. Findings
# are errors (-analyzer-werror), so a regression fails the gate.
# deadcode.DeadStores is left out deliberately: it fires on defensive
# clear-after-move writes and finds no memory-safety bugs.
find "$REPO_ROOT/src" -name '*.cc' -print0 \
  | xargs -0 -n 1 -P "$JOBS" "$CLANGXX" --analyze -std=c++20 \
      -I"$REPO_ROOT/src" -o /dev/null \
      -Xclang -analyzer-werror \
      -Xclang -analyzer-checker="core,cplusplus,unix,security.insecureAPI" \
      -Xclang -analyzer-disable-checker -Xclang deadcode.DeadStores \
      -Xclang -analyzer-output=text
echo "    OK: static analyzer reported zero findings"

echo "==> [6/6] clang-tidy over src/"
CLANG_TIDY="${CLANG_TIDY:-$(find_tool clang-tidy || true)}"
if [[ -z "$CLANG_TIDY" ]]; then
  if [[ "$REQUIRE" == "1" ]]; then
    echo "error: clang-tidy not found and AIDA_REQUIRE_STATIC_ANALYSIS=1" >&2
    exit 2
  fi
  echo "WARNING: clang-tidy not found; skipping the tidy phase."
  exit 0
fi
# Every src/ TU through the curated .clang-tidy; WarningsAsErrors there
# decides the exit code, so "zero errors" is machine-enforced.
find "$REPO_ROOT/src" -name '*.cc' -print0 \
  | xargs -0 -n 4 -P "$JOBS" "$CLANG_TIDY" -p "$BUILD_DIR" --quiet
echo "    OK: clang-tidy reported zero errors"

echo "Static analysis gate passed."
