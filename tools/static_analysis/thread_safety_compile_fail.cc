// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must FAIL to compile under `-Werror=thread-safety`. It reads and
// writes a guarded field without holding its mutex; if a toolchain or
// flag regression ever lets it compile, the gate itself is broken (the
// annotations would be decoration, not enforcement), so the script
// treats "this file compiled" as a hard failure.
//
// Not part of any CMake target: only the analysis script touches it.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    // BUG (deliberate): `value_` is AIDA_GUARDED_BY(mutex_) but no lock
    // is held -> clang must reject with -Werror=thread-safety.
    ++value_;
  }

  long Get() const {
    return value_;  // BUG (deliberate): unguarded read.
  }

 private:
  mutable aida::util::Mutex mutex_;
  long value_ AIDA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.Get());
}
