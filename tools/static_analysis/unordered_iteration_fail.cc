// NEGATIVE CONTROL for lint_unordered_iteration.query — clang-query
// must report at least one match in this translation unit. It folds a
// floating-point sum in unordered_map iteration order — the exact shape
// that made TypeClassifier centroids hash-seed-dependent before PR 9
// restructured them onto sorted vectors. If the lint stops matching
// this file, the gate is broken.
//
// Not part of any CMake target: only the analysis script touches it.

#include <unordered_map>
#include <unordered_set>

namespace {

double SumWeights(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // BUG (deliberate): hash-order iteration feeding a float fold — the
  // result depends on the hash seed and standard library.
  for (const auto& [word, weight] : weights) {
    total += weight;
  }
  return total;
}

int FirstSeen(const std::unordered_set<int>& ids) {
  // BUG (deliberate): "first" element of a hash set is arbitrary.
  for (int id : ids) {
    return id;
  }
  return -1;
}

}  // namespace

int main() {
  std::unordered_map<int, double> weights{{1, 0.5}, {2, 0.25}};
  std::unordered_set<int> ids{3, 4};
  return static_cast<int>(SumWeights(weights)) + FirstSeen(ids);
}
