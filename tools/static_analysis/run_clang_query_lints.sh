#!/usr/bin/env bash
# clang-query lint pass over the library sources (phase 9 of
# tools/run_static_analysis.sh; can also be run standalone).
#
# Three AST lints, each a *.query matcher file next to this script:
#   - lint_view_storage.query       view stored where it can outlive its
#                                   snapshot pin (scope: all of src/)
#   - lint_unordered_iteration.query  hash-order iteration in
#                                   determinism-critical code
#                                   (scope: src/core/ + src/graph/)
#   - lint_raw_thread.query         raw std::thread ownership outside the
#                                   sanctioned owners (scope: src/ minus
#                                   src/util/ + src/task/)
#
# Each lint is validated before it is trusted: its *_fail.cc control must
# produce at least one match and its *_ok.cc control must produce none —
# a matcher that stopped matching (or started over-matching) fails the
# gate itself, exactly like the -Werror compile controls.
#
# clang-query reports every match in the AST, including headers pulled in
# from outside the lint's scope, so matches are filtered by path: only
# locations under the lint's scope directories count as findings.
#
# Usage: tools/static_analysis/run_clang_query_lints.sh
#   BUILD_DIR=build-tsa   compile-commands directory (made by the parent
#                         script; required for the src/ pass)
#   CLANG_QUERY=...       override clang-query discovery
#   JOBS=N                parallelism for the src/ pass
set -uo pipefail

SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
REPO_ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-tsa}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

find_tool() {
  local base="$1"
  local candidate
  for candidate in "$base" "$base"-20 "$base"-19 "$base"-18 "$base"-17 \
                   "$base"-16 "$base"-15 "$base"-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      command -v "$candidate"
      return 0
    fi
  done
  return 1
}

CLANG_QUERY="${CLANG_QUERY:-$(find_tool clang-query || true)}"
if [[ -z "$CLANG_QUERY" ]]; then
  echo "error: clang-query not found (install clang-tools)" >&2
  exit 2
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json missing — run the parent" >&2
  echo "tools/run_static_analysis.sh (phase 6 configures the build tree)" >&2
  exit 2
fi

CONTROL_FLAGS=(-std=c++20 -I"$REPO_ROOT/src")

# Match locations ("root binds here" notes) under any of the given path
# prefixes, minus any paths listed after a literal "--" separator.
# clang-query match output lines look like:
#   /path/file.cc:12:3: note: "root" binds here
matches_in_scope() {
  local output="$1"
  shift
  local include=() exclude=() seen_sep=0 arg
  for arg in "$@"; do
    if [[ "$arg" == "--" ]]; then
      seen_sep=1
    elif [[ "$seen_sep" == 1 ]]; then
      exclude+=("$arg")
    else
      include+=("$arg")
    fi
  done
  local line path hit
  while IFS= read -r line; do
    case "$line" in
      *'binds here'*) ;;
      *) continue ;;
    esac
    path="${line%%:*}"
    hit=0
    local prefix
    for prefix in "${include[@]}"; do
      [[ "$path" == "$prefix"* ]] && hit=1
    done
    for prefix in "${exclude[@]+"${exclude[@]}"}"; do
      [[ "$path" == "$prefix"* ]] && hit=0
    done
    [[ "$hit" == 1 ]] && printf '%s\n' "$line"
  done <<<"$output"
  return 0
}

# run_lint <name> <query-file> <scope dirs...> [-- <exempt dirs...>]
# Control-validates the matcher, then runs it over every in-scope TU via
# the compile database and fails on any in-scope match.
FAILED=0
run_lint() {
  local name="$1" query="$2"
  shift 2

  # 1. The negative control must match (the lint still detects the bug).
  local fail_out
  fail_out="$("$CLANG_QUERY" -f "$query" \
      "$SCRIPT_DIR/${name}_fail.cc" -- "${CONTROL_FLAGS[@]}" 2>&1)"
  if ! grep -q 'binds here' <<<"$fail_out"; then
    echo "error[$name]: negative control ${name}_fail.cc produced NO"
    echo "matches — the matcher went blind; refusing to trust the lint."
    echo "$fail_out" | tail -5
    FAILED=1
    return
  fi
  # 2. The positive control must not match (the lint is not over-broad).
  local ok_out
  ok_out="$("$CLANG_QUERY" -f "$query" \
      "$SCRIPT_DIR/${name}_ok.cc" -- "${CONTROL_FLAGS[@]}" 2>&1)"
  if grep -q 'binds here' <<<"$ok_out"; then
    echo "error[$name]: positive control ${name}_ok.cc matched — the"
    echo "matcher over-reaches; it would reject sanctioned patterns:"
    grep 'binds here' <<<"$ok_out"
    FAILED=1
    return
  fi
  echo "    controls OK: ${name}_fail.cc matches, ${name}_ok.cc clean"

  # 3. The real pass: every src/ TU through the compile database.
  local tu_out findings
  tu_out="$(find "$REPO_ROOT/src" -name '*.cc' -print0 \
      | xargs -0 -n 8 -P "$JOBS" \
          "$CLANG_QUERY" -f "$query" -p "$BUILD_DIR" 2>/dev/null)"
  findings="$(matches_in_scope "$tu_out" "$@")"
  if [[ -n "$findings" ]]; then
    echo "error[$name]: lint findings (see $query for the rule and the"
    echo "sanctioned alternatives):"
    echo "$findings" | sort -u
    FAILED=1
    return
  fi
  echo "    OK: $name clean over src/"
}

echo "--> lint: view stored beyond its snapshot pin"
run_lint view_storage "$SCRIPT_DIR/lint_view_storage.query" \
  "$REPO_ROOT/src/"

echo "--> lint: hash-order iteration in determinism-critical code"
run_lint unordered_iteration "$SCRIPT_DIR/lint_unordered_iteration.query" \
  "$REPO_ROOT/src/core/" "$REPO_ROOT/src/graph/"

echo "--> lint: raw std::thread ownership outside util/ + task/"
run_lint raw_thread "$SCRIPT_DIR/lint_raw_thread.query" \
  "$REPO_ROOT/src/" -- "$REPO_ROOT/src/util/" "$REPO_ROOT/src/task/"

exit "$FAILED"
