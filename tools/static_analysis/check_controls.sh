#!/usr/bin/env bash
# ctest adapter for the static-analysis smoke controls: checks ONE
# control expectation and exits 0 iff it holds. Registered by
# tools/CMakeLists.txt as static_controls.* tests whenever clang++ (and,
# for the query lints, clang-query) is found at configure time, so the
# regular test suite also proves the gate's controls discriminate —
# a broken control otherwise only surfaces in the CI static job.
#
# Usage: check_controls.sh <clang++|clang-query path> <mode>
#   modes (compile controls; tool = clang++):
#     ts_ok                         must compile under -Werror=thread-safety
#     ts_fail                       must NOT compile under the same flags
#     lifetime_ok                   must compile under the lifetime errors
#     lifetime_fail_lifetimebound   must be rejected (dangling family)
#     lifetime_fail_dangling_gsl    must be rejected (dangling family)
#     lifetime_fail_return_stack    must be rejected (stack family)
#     function_effects_ok           must compile under -Werror=function-effects
#     function_effects_fail_blocking    must be rejected (function-effects)
#     function_effects_fail_allocating  must be rejected (function-effects)
#       (the three function_effects_* modes exit 77 — ctest SKIP — when
#        the clang++ found at configure time predates the Clang 20
#        effect analysis; the version is printed so an old toolchain
#        stays visible)
#   modes (query controls; tool = clang-query):
#     query_view_storage            *_fail.cc matches, *_ok.cc clean
#     query_unordered_iteration     likewise
#     query_raw_thread              likewise
set -uo pipefail

TOOL="$1"
MODE="$2"
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
REPO_ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"

TS_FLAGS=(-std=c++20 -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          -I"$REPO_ROOT/src")
LT_FLAGS=(-std=c++20 -Werror=dangling -Werror=dangling-gsl
          -Werror=return-stack-address -I"$REPO_ROOT/src")
FE_FLAGS=(-std=c++20 -Wfunction-effects -Werror=function-effects
          -I"$REPO_ROOT/src")

# The effect attributes ([[clang::nonblocking]]) and their verification
# shipped in Clang 20; on older toolchains the util/function_effects.h
# macros are no-ops, so the fail controls would "pass" vacuously. Probe
# the actual feature rather than parsing a version string, and SKIP (77)
# with the discovered version when absent.
require_function_effects() {
  if ! "$TOOL" -std=c++20 -fsyntax-only -x c++ - <<'EOF' >/dev/null 2>&1
#if !defined(__clang__) || !defined(__has_cpp_attribute)
#error function-effect analysis unavailable
#elif !__has_cpp_attribute(clang::nonblocking)
#error function-effect analysis unavailable
#endif
EOF
  then
    local version
    version="$("$TOOL" --version 2>/dev/null | head -1)"
    echo "SKIP: $MODE needs Clang >= 20 (clang::nonblocking); found:" \
         "${version:-unknown}"
    exit 77
  fi
}

must_compile() {
  "$TOOL" "$@" || { echo "error: expected-clean control failed"; exit 1; }
}

must_reject() {
  local pattern="$1"
  shift
  local out
  if out="$("$TOOL" "$@" 2>&1)"; then
    echo "error: deliberately-broken control COMPILED; the gate is blind"
    exit 1
  fi
  if ! grep -qiE "$pattern" <<<"$out"; then
    echo "error: control rejected, but not by the expected '$pattern'"
    echo "diagnostic family; compiler output was:"
    echo "$out"
    exit 1
  fi
}

query_pair() {
  local name="$1"
  local out
  out="$("$TOOL" -f "$SCRIPT_DIR/lint_$name.query" \
      "$SCRIPT_DIR/${name}_fail.cc" -- -std=c++20 -I"$REPO_ROOT/src" 2>&1)"
  grep -q 'binds here' <<<"$out" || {
    echo "error: lint_$name.query missed ${name}_fail.cc — matcher blind"
    echo "$out" | tail -5
    exit 1
  }
  out="$("$TOOL" -f "$SCRIPT_DIR/lint_$name.query" \
      "$SCRIPT_DIR/${name}_ok.cc" -- -std=c++20 -I"$REPO_ROOT/src" 2>&1)"
  if grep -q 'binds here' <<<"$out"; then
    echo "error: lint_$name.query matched ${name}_ok.cc — over-broad:"
    grep 'binds here' <<<"$out"
    exit 1
  fi
}

case "$MODE" in
  ts_ok)
    must_compile "${TS_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/thread_safety_ok.cc"
    ;;
  ts_fail)
    must_reject 'thread-safety' "${TS_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/thread_safety_compile_fail.cc"
    ;;
  lifetime_ok)
    must_compile "${LT_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/lifetime_ok.cc"
    ;;
  lifetime_fail_lifetimebound)
    must_reject 'dangling' "${LT_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/lifetime_fail_lifetimebound.cc"
    ;;
  lifetime_fail_dangling_gsl)
    must_reject 'dangling' "${LT_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/lifetime_fail_dangling_gsl.cc"
    ;;
  lifetime_fail_return_stack)
    must_reject 'stack' "${LT_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/lifetime_fail_return_stack.cc"
    ;;
  function_effects_ok)
    require_function_effects
    must_compile "${FE_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/function_effects_ok.cc"
    ;;
  function_effects_fail_blocking)
    require_function_effects
    must_reject 'function-effects' "${FE_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/function_effects_fail_blocking.cc"
    ;;
  function_effects_fail_allocating)
    require_function_effects
    must_reject 'function-effects' "${FE_FLAGS[@]}" -fsyntax-only \
      "$SCRIPT_DIR/function_effects_fail_allocating.cc"
    ;;
  query_view_storage)
    query_pair view_storage
    ;;
  query_unordered_iteration)
    query_pair unordered_iteration
    ;;
  query_raw_thread)
    query_pair raw_thread
    ;;
  *)
    echo "error: unknown mode '$MODE'" >&2
    exit 2
    ;;
esac
echo "OK: $MODE behaves as expected"
