// POSITIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must compile cleanly under -Werror=dangling -Werror=dangling-gsl
// -Werror=return-stack-address. It exercises the safe shapes of the
// view-lifetime contract (util/lifetime.h, DESIGN.md §6): views taken
// from lvalue owners and consumed while the owner lives. A pass here
// plus failures of the three lifetime_fail_*.cc controls proves the
// lifetime diagnostics are both enabled and discriminating.
//
// Not part of any CMake target: only the analysis script touches it.

#include <string>
#include <string_view>

#include "util/lifetime.h"

namespace {

// The annotated-owner shape every KB component follows: the accessor
// returns a view pinned to the owner's lifetime.
class AIDA_OWNER_TYPE Buffer {
 public:
  explicit Buffer(std::string text) : storage_(std::move(text)) {}
  std::string_view view() const AIDA_LIFETIME_BOUND { return storage_; }

 private:
  std::string storage_;
};

// A view aggregate, like kb::Dictionary::FlatView: holding a view is
// fine when the record is marked AIDA_VIEW_TYPE and dies with its pin.
struct AIDA_VIEW_TYPE Line {
  std::string_view text;
};

std::size_t CountSpaces(std::string_view text AIDA_LIFETIME_BOUND) {
  std::size_t spaces = 0;
  for (char c : text) {
    if (c == ' ') ++spaces;
  }
  return spaces;
}

}  // namespace

int main() {
  // Owner is an lvalue; the view dies first. Safe in every shape below.
  Buffer buffer("one two three");
  std::string_view view = buffer.view();
  Line line{view};
  return static_cast<int>(CountSpaces(line.text));
}
