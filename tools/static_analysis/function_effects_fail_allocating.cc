// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must be REJECTED under -Werror=function-effects on Clang >= 20:
// it grows a std::vector (reaching operator new) inside an
// AIDA_NONBLOCKING function, with no audited escape. This is the other
// bug class the annotations exist to catch — per-request container churn
// reintroduced into a path that was made allocation-free (nonblocking
// implies nonallocating in Clang's effect lattice). If this file ever
// compiles in the gate's function-effect phase, the phase is blind and
// must itself fail.
//
// Not part of any CMake target: only the analysis script touches it.

#include <vector>

#include "util/function_effects.h"

namespace {

std::size_t GrowPerCall(std::vector<int>& scratch) AIDA_NONBLOCKING {
  scratch.push_back(42);  // allocation in a nonblocking fn
  return scratch.size();
}

}  // namespace

int main() {
  std::vector<int> scratch;
  return static_cast<int>(GrowPerCall(scratch));
}
