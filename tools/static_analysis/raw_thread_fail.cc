// NEGATIVE CONTROL for lint_raw_thread.query — clang-query must report
// at least one match in this translation unit. It constructs and stores
// raw std::threads, the ownership shapes the lint forbids outside
// src/util/ and src/task/: such threads bypass WorkerPool / Scheduler
// shutdown ordering and can outlive a request's snapshot pin. If the
// lint stops matching this file, the gate is broken.
//
// Not part of any CMake target: only the analysis script touches it.

#include <thread>
#include <vector>

namespace {

// BUG (deliberate): a record owning a raw thread.
struct Poller {
  std::thread worker;
};

void FanOut() {
  // BUG (deliberate): raw thread construction and ad-hoc storage.
  std::vector<std::thread> threads;
  std::thread one([] {});
  threads.push_back(std::move(one));
  for (std::thread& thread : threads) {
    thread.join();
  }
}

}  // namespace

int main() {
  FanOut();
  Poller poller;
  return 0;
}
