// NEGATIVE CONTROL for lint_view_storage.query — clang-query must
// report at least one match in this translation unit. It stores views
// in exactly the places the lint forbids: an unannotated member and a
// mutable global, both of which can outlive the snapshot pin backing
// the view. If the lint stops matching this file, the gate is broken.
//
// Not part of any CMake target: only the analysis script touches it.

#include <span>
#include <string_view>

namespace {

// BUG (deliberate): plain record holding a view without AIDA_VIEW_TYPE.
// Nothing ties `title`'s lifetime to the snapshot it aliases.
struct CachedEntity {
  long id = 0;
  std::string_view title;
};

// BUG (deliberate): a second view-typed member, span flavored.
struct CachedNeighbors {
  std::span<const long> out_links;
};

// BUG (deliberate): mutable global view — outlives every snapshot pin.
std::string_view g_last_mention;

}  // namespace

int main() {
  CachedEntity entity;
  CachedNeighbors neighbors;
  g_last_mention = entity.title;
  return static_cast<int>(neighbors.out_links.size());
}
