// POSITIVE CONTROL for lint_raw_thread.query — clang-query must report
// ZERO matches in this translation unit. It exercises the sanctioned
// uses of the std::thread TYPE that do not own a thread: the static
// hardware_concurrency() accessor, thread-id values, and this_thread
// utilities — all of which appear in src/serve/ and src/core/ today. A
// false positive here means the lint over-matches and would reject
// sizing heuristics and per-thread hashing in library code.
//
// Not part of any CMake target: only the analysis script touches it.

#include <cstddef>
#include <functional>
#include <thread>

namespace {

// Allowed: naming the type's statics sizes pools without owning threads.
std::size_t DefaultShards() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Allowed: thread-id values (not thread objects) key per-thread state.
std::size_t ShardOfCurrentThread(std::size_t shards) {
  std::size_t h = std::hash<std::thread::id>()(std::this_thread::get_id());
  return h % shards;
}

}  // namespace

int main() {
  return static_cast<int>(ShardOfCurrentThread(DefaultShards()));
}
