// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must FAIL to compile under -Werror=dangling-gsl. It initializes
// a [[gsl::Pointer]]-marked view type (AIDA_VIEW_TYPE) from a TEMPORARY
// [[gsl::Owner]]-marked owner (AIDA_OWNER_TYPE) — the statement-local
// shape Clang's -Wdangling-gsl analysis flags once the Owner/Pointer
// attributes are present, and the reason every snapshot owner and view
// struct in src/kb/ carries them. If this compiles, the gate is broken.
//
// Not part of any CMake target: only the analysis script touches it.

#include <string>
#include <string_view>

#include "util/lifetime.h"

namespace {

class AIDA_OWNER_TYPE Buffer {
 public:
  explicit Buffer(std::string text) : storage_(std::move(text)) {}
  std::string_view view() const AIDA_LIFETIME_BOUND { return storage_; }

 private:
  std::string storage_;
};

}  // namespace

int main() {
  // BUG (deliberate): std::string_view is a gsl Pointer type and the
  // std::string temporary it aliases is a gsl Owner; the owner dies at
  // the end of the statement. Clang must reject with -Werror=dangling-gsl.
  std::string_view from_std = std::string(64, 'y');
  // BUG (deliberate): same shape through our own annotated types.
  std::string_view from_aida = Buffer(std::string(64, 'z')).view();
  return static_cast<int>(from_std.size() + from_aida.size());
}
