// POSITIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must compile cleanly under `-Werror=thread-safety`. It exercises
// the same shapes the negative control breaks (guarded field, scoped
// lock, lock-requiring helper), so a pass here plus a failure of
// thread_safety_compile_fail.cc proves the analysis is both enabled and
// discriminating.
//
// Not part of any CMake target: only the analysis script touches it.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() AIDA_EXCLUDES(mutex_) {
    aida::util::MutexLock lock(&mutex_);
    IncrementLocked();
  }

  long Get() const AIDA_EXCLUDES(mutex_) {
    aida::util::MutexLock lock(&mutex_);
    return value_;
  }

 private:
  void IncrementLocked() AIDA_REQUIRES(mutex_) { ++value_; }

  mutable aida::util::Mutex mutex_;
  long value_ AIDA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.Get());
}
