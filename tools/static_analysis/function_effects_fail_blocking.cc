// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must be REJECTED under -Werror=function-effects on Clang >= 20:
// it takes a std::mutex (an unbounded wait through an opaque libc call)
// inside an AIDA_NONBLOCKING function, with no audited escape. This is
// the exact bug class the serving annotations exist to catch — a
// convenience lock sneaking into a warm worker's record path. If this
// file ever compiles in the gate's function-effect phase, the phase is
// blind and must itself fail.
//
// Not part of any CMake target: only the analysis script touches it.

#include <mutex>

#include "util/function_effects.h"

namespace {

std::mutex m;
int shared_value = 0;

int LockedRead() AIDA_NONBLOCKING {
  std::lock_guard<std::mutex> lock(m);  // blocking call in a nonblocking fn
  return shared_value;
}

}  // namespace

int main() { return LockedRead(); }
