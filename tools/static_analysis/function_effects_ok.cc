// POSITIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must compile cleanly under -Werror=function-effects on Clang >= 20.
// It exercises every shape the annotation sweep relies on
// (util/function_effects.h, DESIGN.md §6):
//  * AIDA_NONBLOCKING leaves: pure arithmetic, pointer walks, and
//    lock-free atomics (the histogram / deque idiom) — if the effect
//    analysis cannot verify a relaxed fetch_add, the whole sweep is
//    unbuildable, so this control is the canary;
//  * nonblocking-calls-nonblocking composition;
//  * AIDA_EFFECT_ESCAPE_BEGIN/END around a deliberate allocation in a
//    cold branch — proves the audited opt-out actually silences the
//    diagnostic (a regression here would surface as spurious CI errors
//    on every escape in src/);
//  * AIDA_BLOCKING as the explicit negative marker on a function that
//    parks, whose body faces no restrictions.
//
// A pass here plus failures of the two function_effects_fail_*.cc
// controls proves the diagnostics are both enabled and discriminating.
// Not part of any CMake target: only the analysis script touches it.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/function_effects.h"

namespace {

std::atomic<uint64_t> counter{0};

// Lock-free atomic update — the LatencyHistogram::Record /
// ServiceMetrics slot shape.
uint64_t BumpCounter() AIDA_NONBLOCKING {
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Pure computation over caller-owned memory — the scoring-kernel shape.
int64_t SumSpan(const int32_t* data, int count) AIDA_NONBLOCKING {
  int64_t total = 0;
  for (int i = 0; i < count; ++i) total += data[i];
  return total;
}

// Nonblocking may call nonblocking: composition must verify without
// re-deriving the callee's effects.
int64_t SumTwice(const int32_t* data, int count) AIDA_NONBLOCKING {
  BumpCounter();
  return SumSpan(data, count) + SumSpan(data, count);
}

// The audited opt-out: a deliberate, bounded allocation inside an
// annotated function must build once bracketed and justified.
std::size_t EscapedColdGrowth(std::vector<int>& spill) AIDA_NONALLOCATING {
  AIDA_EFFECT_ESCAPE_BEGIN("control: cold-branch spill, amortized O(1)")
  spill.push_back(1);
  AIDA_EFFECT_ESCAPE_END
  return spill.size();
}

// The explicit negative marker: blocking is this function's contract,
// so its body is unrestricted and callers cannot absorb it silently.
std::mutex gate;
int guarded_value = 0;
int ParkAndRead() AIDA_BLOCKING {
  std::lock_guard<std::mutex> lock(gate);
  return guarded_value;
}

}  // namespace

int main() {
  std::vector<int> spill;
  int32_t data[4] = {1, 2, 3, 4};
  return static_cast<int>(SumTwice(data, 4) + BumpCounter() +
                          static_cast<int64_t>(EscapedColdGrowth(spill)) +
                          ParkAndRead()) > 0
             ? 0
             : 1;
}
