// POSITIVE CONTROL for lint_view_storage.query — clang-query must
// report ZERO matches in this translation unit. It exercises every
// sanctioned way of handling views: stack-scoped locals, pass-through
// parameters, constexpr globals (aliasing immortal literals), and a
// record explicitly marked AIDA_VIEW_TYPE, whose members the lint
// exempts because -Wdangling-gsl owns that case. A false positive here
// means the lint over-matches and would reject legitimate KB code.
//
// Not part of any CMake target: only the analysis script touches it.

#include <cstddef>
#include <span>
#include <string_view>

#include "util/lifetime.h"

namespace {

// Allowed: constexpr global view of a string literal — no snapshot pin
// involved, the literal is immortal.
constexpr std::string_view kDefaultLanguage = "en";

// Allowed: a view aggregate marked AIDA_VIEW_TYPE, like the kb
// FlatView structs; it documents that it dies with its pin.
struct AIDA_VIEW_TYPE MentionView {
  std::string_view surface;
  std::span<const std::size_t> token_positions;
};

// Allowed: views as parameters and stack locals.
std::size_t Measure(std::string_view text) {
  std::string_view trimmed = text.substr(0, text.find(' '));
  return trimmed.size();
}

}  // namespace

int main() {
  MentionView view{kDefaultLanguage, {}};
  return static_cast<int>(Measure(view.surface));
}
