// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must FAIL to compile under -Werror=return-stack-address. It
// returns a view into a function-local buffer: the buffer dies when the
// function returns, so every use of the returned view is a read of dead
// stack. If this compiles, the gate is broken.
//
// Not part of any CMake target: only the analysis script touches it.

#include <string_view>

namespace {

std::string_view LeakLocal() {
  char buffer[16] = "stack-local";
  // BUG (deliberate): returns the address of `buffer`, which is about
  // to be destroyed. Clang must reject with -Werror=return-stack-address.
  return std::string_view(buffer, 11);
}

}  // namespace

int main() { return static_cast<int>(LeakLocal().size()); }
