// NEGATIVE CONTROL for tools/run_static_analysis.sh — this translation
// unit must FAIL to compile under -Werror=dangling. It binds a view
// returned by an AIDA_LIFETIME_BOUND accessor to a TEMPORARY owner: the
// owner dies at the end of the full-expression and the view dangles —
// exactly the use-after-munmap shape the annotation exists to catch on
// the span-based KB API. If a toolchain or flag regression ever lets
// this compile, the lifetime gate is decoration, not enforcement, so
// the script treats "this file compiled" as a hard failure.
//
// Not part of any CMake target: only the analysis script touches it.

#include <string>
#include <string_view>

#include "util/lifetime.h"

namespace {

class AIDA_OWNER_TYPE Buffer {
 public:
  explicit Buffer(std::string text) : storage_(std::move(text)) {}
  std::string_view view() const AIDA_LIFETIME_BOUND { return storage_; }

 private:
  std::string storage_;
};

}  // namespace

int main() {
  // BUG (deliberate): the Buffer temporary is destroyed at the end of
  // this statement; `dangling` then points into freed storage. Clang
  // must reject with -Werror=dangling via [[clang::lifetimebound]].
  std::string_view dangling = Buffer(std::string(64, 'x')).view();
  return static_cast<int>(dangling.size());
}
