// POSITIVE CONTROL for lint_unordered_iteration.query — clang-query
// must report ZERO matches in this translation unit. It exercises the
// sanctioned uses: probing an unordered container (find / contains),
// and iterating the deterministic replacement structure, a sorted
// vector of (key, value) rows. A false positive here means the lint
// over-matches and would reject legitimate probe-only hash-map use.
//
// Not part of any CMake target: only the analysis script touches it.

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace {

// Allowed: probing is order-free; only ITERATION is the hazard.
double Probe(const std::unordered_map<int, double>& weights, int word) {
  auto it = weights.find(word);
  return it == weights.end() ? 0.0 : it->second;
}

// Allowed: the deterministic structure — sorted rows, ordered fold.
double SumSorted(const std::vector<std::pair<int, double>>& rows) {
  double total = 0.0;
  for (const auto& [word, weight] : rows) {
    total += weight;
  }
  return total;
}

}  // namespace

int main() {
  std::unordered_map<int, double> weights{{1, 0.5}, {2, 0.25}};
  std::vector<std::pair<int, double>> rows(weights.begin(), weights.end());
  std::sort(rows.begin(), rows.end());
  return static_cast<int>(Probe(weights, 1) + SumSorted(rows));
}
