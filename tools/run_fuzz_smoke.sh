#!/usr/bin/env bash
# Bounded libFuzzer smoke run over the five untrusted-input surfaces:
# KB snapshot deserialization (v1 stream and flat mmap formats), the
# wiki-page importer, the corpus text format, and the tokenizer/
# sentence-splitter stack.
#
# Builds tests/fuzz/ with -DAIDA_FUZZERS=ON (Clang/libFuzzer) and
# -DAIDA_SANITIZE=address (ASan+UBSan), then fuzzes each target for
# FUZZ_SECONDS starting from the checked-in seed corpus in
# tests/fuzz/corpus/<target>/. New inputs the fuzzer discovers go to a
# scratch dir under the build tree; crashing inputs land in
# $BUILD_DIR/artifacts/ and fail the run. A reproducer worth keeping
# should be minimized, fixed, and checked into tests/fuzz/corpus/ so the
# fuzz_replay_* ctest tests pin the regression forever.
#
# libFuzzer needs Clang. Without clang++ on PATH the script SKIPS with a
# loud warning and exits 0 so developer machines stay usable; CI exports
# AIDA_REQUIRE_FUZZ=1, which turns a missing toolchain into a hard
# failure — the gate can be unavailable locally, never silently
# unavailable in CI.
#
# Usage: tools/run_fuzz_smoke.sh [target...]   (default: all five)
#   FUZZ_SECONDS=N          per-target time budget (default 60)
#   BUILD_DIR=build-fuzz    override the fuzzing build directory
#   JOBS=N                  override build parallelism
#   CLANGXX=/path/to/clang++ override compiler discovery
#   AIDA_REQUIRE_FUZZ=1     fail (exit 2) instead of skipping
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-fuzz}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FUZZ_SECONDS="${FUZZ_SECONDS:-60}"
REQUIRE="${AIDA_REQUIRE_FUZZ:-0}"

ALL_TARGETS=(fuzz_kb_serialization fuzz_flat_kb fuzz_wiki_importer
             fuzz_corpus_io fuzz_tokenizer)
TARGETS=("${@:-${ALL_TARGETS[@]}}")

find_tool() {
  local base="$1"
  local candidate
  for candidate in "$base" "$base"-20 "$base"-19 "$base"-18 "$base"-17 \
                   "$base"-16 "$base"-15 "$base"-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      command -v "$candidate"
      return 0
    fi
  done
  return 1
}

CLANGXX="${CLANGXX:-$(find_tool clang++ || true)}"
if [[ -z "$CLANGXX" ]]; then
  if [[ "$REQUIRE" == "1" ]]; then
    echo "error: clang++ not found and AIDA_REQUIRE_FUZZ=1" >&2
    exit 2
  fi
  echo "WARNING: clang++ not found; SKIPPING the libFuzzer smoke run."
  echo "The checked-in corpora still replay under ctest (fuzz_replay_*)"
  echo "with any compiler; install clang to fuzz locally. CI runs this"
  echo "gate unconditionally."
  exit 0
fi
echo "==> using $CLANGXX, ${FUZZ_SECONDS}s per target"

echo "==> [1/2] building libFuzzer harnesses (ASan+UBSan)"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DAIDA_FUZZERS=ON \
  -DAIDA_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${TARGETS[@]}"

echo "==> [2/2] smoke-fuzzing ${#TARGETS[@]} target(s)"
ARTIFACTS="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACTS"
for target in "${TARGETS[@]}"; do
  corpus_subdir="${target#fuzz_}"
  seed_dir="$REPO_ROOT/tests/fuzz/corpus/$corpus_subdir"
  work_dir="$BUILD_DIR/corpus-work/$corpus_subdir"
  mkdir -p "$work_dir"
  echo "--- $target (seeds: $seed_dir)"
  # Work dir first: discoveries accumulate there and reseed later runs
  # without touching the checked-in corpus. -timeout catches hangs,
  # -rss_limit_mb catches unbounded allocation on crafted headers.
  "$BUILD_DIR/tests/fuzz/$target" \
    -max_total_time="$FUZZ_SECONDS" \
    -timeout=10 \
    -rss_limit_mb=2048 \
    -print_final_stats=1 \
    -artifact_prefix="$ARTIFACTS/" \
    "$work_dir" "$seed_dir"
done

echo "Fuzz smoke passed: no crashes, hangs, or sanitizer findings."
