// Command-line interface to the library:
//
//   aida_cli generate-kb <out.kb> [entities] [topics] [seed]
//       Generates a synthetic knowledge base and saves it.
//   aida_cli inspect <kb>
//       Prints knowledge-base statistics.
//   aida_cli annotate <kb> [mw|kore|kore-lsh-g|kore-lsh-f]
//       Reads text from stdin (one document per line), recognizes and
//       disambiguates mentions, prints one "mention -> entity" line each.
//   aida_cli generate-corpus <out.kb> <out.corpus> [docs] [seed]
//       Generates a synthetic world AND a matching gold-annotated corpus
//       (the equivalent of the datasets the paper published).
//
// The synthetic generator stands in for a Wikipedia/YAGO importer; the
// annotate pipeline (tokenizer -> NER -> AIDA) is the production path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/aida.h"
#include "corpus/corpus_io.h"
#include "kb/kb_serialization.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "nlp/ner_tagger.h"
#include "synth/presets.h"
#include "synth/world_generator.h"
#include "text/tokenizer.h"

using namespace aida;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  aida_cli generate-kb <out.kb> [entities] [topics] [seed]\n"
      "  aida_cli inspect <kb>\n"
      "  aida_cli annotate <kb> [mw|kore|kore-lsh-g|kore-lsh-f]\n"
      "  aida_cli generate-corpus <out.kb> <out.corpus> [docs] [seed]\n");
  return 2;
}

int GenerateKb(int argc, char** argv) {
  if (argc < 1) return Usage();
  synth::WorldConfig config;
  config.num_entities = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  config.num_topics = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 40;
  config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  config.num_shared_names = std::max<size_t>(20, config.num_entities / 4);

  synth::World world = synth::WorldGenerator(config).Generate();
  util::Status status =
      kb::SaveKnowledgeBase(*world.knowledge_base, argv[0]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu entities, %zu names, %zu links\n", argv[0],
              world.knowledge_base->entity_count(),
              world.knowledge_base->dictionary().NameCount(),
              world.knowledge_base->links().link_count());
  return 0;
}

int Inspect(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto kb = kb::LoadKnowledgeBase(argv[0]);
  if (!kb.ok()) {
    std::fprintf(stderr, "error: %s\n", kb.status().ToString().c_str());
    return 1;
  }
  const kb::KnowledgeBase& base = **kb;
  std::printf("entities:        %zu\n", base.entity_count());
  std::printf("names:           %zu\n", base.dictionary().NameCount());
  std::printf("mean ambiguity:  %.2f candidates/name\n",
              base.dictionary().MeanAmbiguity());
  std::printf("keyphrases:      %zu distinct (%zu keywords)\n",
              base.keyphrases().phrase_count(),
              base.keyphrases().word_count());
  std::printf("links:           %zu\n", base.links().link_count());
  std::printf("types:           %zu\n", base.taxonomy().size());
  return 0;
}

int Annotate(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto kb = kb::LoadKnowledgeBase(argv[0]);
  if (!kb.ok()) {
    std::fprintf(stderr, "error: %s\n", kb.status().ToString().c_str());
    return 1;
  }
  const kb::KnowledgeBase& base = **kb;
  std::string measure_name = argc > 1 ? argv[1] : "mw";

  core::CandidateModelStore models(&base);
  core::MilneWittenRelatedness mw(&base);
  kore::KoreRelatedness kore;
  std::unique_ptr<kore::KoreLshRelatedness> lsh;
  const core::RelatednessMeasure* measure = &mw;
  if (measure_name == "kore") {
    measure = &kore;
  } else if (measure_name == "kore-lsh-g") {
    lsh = std::make_unique<kore::KoreLshRelatedness>(
        kore::KoreLshRelatedness::Good(&base.keyphrases()));
    measure = lsh.get();
  } else if (measure_name == "kore-lsh-f") {
    lsh = std::make_unique<kore::KoreLshRelatedness>(
        kore::KoreLshRelatedness::Fast(&base.keyphrases()));
    measure = lsh.get();
  } else if (measure_name != "mw") {
    return Usage();
  }

  core::Aida aida(&models, measure, core::AidaOptions());
  text::Tokenizer tokenizer;
  nlp::NerTagger ner(&base.dictionary());

  std::string line;
  size_t doc_id = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    text::TokenSequence tokens = tokenizer.Tokenize(line);
    std::vector<nlp::MentionSpan> mentions = ner.Recognize(tokens);
    std::vector<std::string> token_texts;
    for (const text::Token& t : tokens) token_texts.push_back(t.text);

    core::DisambiguationProblem problem;
    problem.tokens = &token_texts;
    for (const nlp::MentionSpan& span : mentions) {
      core::ProblemMention pm;
      pm.surface = span.text;
      pm.begin_token = span.begin_token;
      pm.end_token = span.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    core::DisambiguationResult result = aida.Disambiguate(problem, {});
    for (size_t m = 0; m < mentions.size(); ++m) {
      std::printf("doc%zu\t%s\t%s\t%.4f\n", doc_id,
                  mentions[m].text.c_str(),
                  result.mentions[m].entity == kb::kNoEntity
                      ? "<OOE>"
                      : base.entities()
                            .Get(result.mentions[m].entity)
                            .canonical_name.c_str(),
                  result.mentions[m].score);
    }
    ++doc_id;
  }
  return 0;
}

int GenerateCorpus(int argc, char** argv) {
  if (argc < 2) return Usage();
  synth::CorpusPreset preset = synth::ConllPreset();
  if (argc > 2) {
    preset.corpus.num_documents = std::strtoul(argv[2], nullptr, 10);
  }
  if (argc > 3) {
    preset.world.seed = std::strtoull(argv[3], nullptr, 10);
    preset.corpus.seed = preset.world.seed ^ 0xC0FFEE;
  }
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  util::Status status =
      kb::SaveKnowledgeBase(*world.knowledge_base, argv[0]);
  if (status.ok()) status = corpus::SaveCorpus(docs, argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  size_t mentions = 0;
  for (const corpus::Document& doc : docs) mentions += doc.mentions.size();
  std::printf("wrote %s (%zu entities) and %s (%zu docs, %zu mentions)\n",
              argv[0], world.knowledge_base->entity_count(), argv[1],
              docs.size(), mentions);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate-kb") == 0) {
    return GenerateKb(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "inspect") == 0) return Inspect(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "annotate") == 0) {
    return Annotate(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "generate-corpus") == 0) {
    return GenerateCorpus(argc - 2, argv + 2);
  }
  return Usage();
}
