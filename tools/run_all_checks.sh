#!/usr/bin/env bash
# The one-command CI gate: tier-1 build + full ctest suite, then the
# ASan/UBSan and TSan passes over the concurrency- and lifetime-sensitive
# tests (batch runner, serving layer, snapshot registry, KB
# serialization). Everything a PR must keep green, runnable locally
# exactly as the GitHub Actions workflow runs it.
#
# Usage: tools/run_all_checks.sh [--skip-sanitizers]
#   BUILD_DIR=build       override the tier-1 build directory
#   JOBS=N                override build/test parallelism (default: nproc)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
SKIP_SANITIZERS=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SANITIZERS=1

echo "==> tier-1: configure + build (${JOBS} jobs)"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [[ "$SKIP_SANITIZERS" == "1" ]]; then
  echo "==> sanitizers skipped (--skip-sanitizers)"
else
  echo "==> ASan/UBSan pass"
  "$REPO_ROOT/tools/run_asan_tests.sh"

  echo "==> TSan pass"
  "$REPO_ROOT/tools/run_tsan_tests.sh"
fi

echo "All checks passed."
