#!/usr/bin/env bash
# The one-command CI gate: tier-1 build + full ctest suite, the static
# analysis pass (Clang thread-safety + view-lifetime errors + static
# analyzer + clang-tidy + clang-query lints + format check;
# skipped with a warning when Clang is absent locally), the libFuzzer
# smoke run over the untrusted-input parsers (also Clang-gated), then
# the ASan/UBSan and TSan passes over the concurrency- and
# lifetime-sensitive tests (batch runner, serving layer, snapshot
# registry, KB serialization, fuzz corpus replay).
# Everything a PR must keep green, runnable locally exactly as the
# GitHub Actions workflow runs it.
#
# Usage: tools/run_all_checks.sh [--skip-sanitizers]
#   BUILD_DIR=build       override the tier-1 build directory
#   JOBS=N                override build/test parallelism (default: nproc)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
SKIP_SANITIZERS=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SANITIZERS=1

echo "==> tier-1: configure + build (${JOBS} jobs)"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "==> static analysis (thread-safety + lifetime + analyzer + tidy + lints)"
# Uses its own build tree (build-tsa); self-skips with a warning when no
# clang++ is installed. CI runs it as a separate job with
# AIDA_REQUIRE_STATIC_ANALYSIS=1 so the skip can never hide there.
"$REPO_ROOT/tools/run_static_analysis.sh"

echo "==> fuzz smoke (libFuzzer over the untrusted-input parsers)"
# Same Clang-gating pattern (build-fuzz tree); the corpus replay part of
# the coverage already ran above as the fuzz_replay_* ctest tests. CI
# runs this as its own job with AIDA_REQUIRE_FUZZ=1.
"$REPO_ROOT/tools/run_fuzz_smoke.sh"

if [[ "$SKIP_SANITIZERS" == "1" ]]; then
  echo "==> sanitizers skipped (--skip-sanitizers)"
else
  echo "==> ASan/UBSan pass"
  "$REPO_ROOT/tools/run_asan_tests.sh"

  echo "==> TSan pass"
  "$REPO_ROOT/tools/run_tsan_tests.sh"
fi

echo "All checks passed."
