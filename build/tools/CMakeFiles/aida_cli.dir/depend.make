# Empty dependencies file for aida_cli.
# This may be replaced when dependencies are built.
