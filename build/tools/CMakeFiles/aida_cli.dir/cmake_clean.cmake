file(REMOVE_RECURSE
  "CMakeFiles/aida_cli.dir/aida_cli.cc.o"
  "CMakeFiles/aida_cli.dir/aida_cli.cc.o.d"
  "aida_cli"
  "aida_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
