file(REMOVE_RECURSE
  "CMakeFiles/bench_aida_accuracy.dir/bench_aida_accuracy.cc.o"
  "CMakeFiles/bench_aida_accuracy.dir/bench_aida_accuracy.cc.o.d"
  "bench_aida_accuracy"
  "bench_aida_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aida_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
