# Empty dependencies file for bench_aida_accuracy.
# This may be replaced when dependencies are built.
