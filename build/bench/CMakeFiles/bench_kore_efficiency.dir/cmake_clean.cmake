file(REMOVE_RECURSE
  "CMakeFiles/bench_kore_efficiency.dir/bench_kore_efficiency.cc.o"
  "CMakeFiles/bench_kore_efficiency.dir/bench_kore_efficiency.cc.o.d"
  "bench_kore_efficiency"
  "bench_kore_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kore_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
