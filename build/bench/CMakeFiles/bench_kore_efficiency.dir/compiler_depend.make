# Empty compiler generated dependencies file for bench_kore_efficiency.
# This may be replaced when dependencies are built.
