file(REMOVE_RECURSE
  "CMakeFiles/bench_kore_longtail.dir/bench_kore_longtail.cc.o"
  "CMakeFiles/bench_kore_longtail.dir/bench_kore_longtail.cc.o.d"
  "bench_kore_longtail"
  "bench_kore_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kore_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
