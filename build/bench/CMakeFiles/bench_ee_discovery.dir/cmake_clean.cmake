file(REMOVE_RECURSE
  "CMakeFiles/bench_ee_discovery.dir/bench_ee_discovery.cc.o"
  "CMakeFiles/bench_ee_discovery.dir/bench_ee_discovery.cc.o.d"
  "bench_ee_discovery"
  "bench_ee_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ee_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
