# Empty dependencies file for bench_ee_discovery.
# This may be replaced when dependencies are built.
