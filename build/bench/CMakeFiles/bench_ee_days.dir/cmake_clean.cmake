file(REMOVE_RECURSE
  "CMakeFiles/bench_ee_days.dir/bench_ee_days.cc.o"
  "CMakeFiles/bench_ee_days.dir/bench_ee_days.cc.o.d"
  "bench_ee_days"
  "bench_ee_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ee_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
