# Empty compiler generated dependencies file for bench_ee_days.
# This may be replaced when dependencies are built.
