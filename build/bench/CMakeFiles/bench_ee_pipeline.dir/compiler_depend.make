# Empty compiler generated dependencies file for bench_ee_pipeline.
# This may be replaced when dependencies are built.
