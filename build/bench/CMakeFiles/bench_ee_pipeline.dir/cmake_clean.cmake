file(REMOVE_RECURSE
  "CMakeFiles/bench_ee_pipeline.dir/bench_ee_pipeline.cc.o"
  "CMakeFiles/bench_ee_pipeline.dir/bench_ee_pipeline.cc.o.d"
  "bench_ee_pipeline"
  "bench_ee_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ee_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
