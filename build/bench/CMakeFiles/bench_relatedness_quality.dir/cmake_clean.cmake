file(REMOVE_RECURSE
  "CMakeFiles/bench_relatedness_quality.dir/bench_relatedness_quality.cc.o"
  "CMakeFiles/bench_relatedness_quality.dir/bench_relatedness_quality.cc.o.d"
  "bench_relatedness_quality"
  "bench_relatedness_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relatedness_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
