# Empty dependencies file for bench_relatedness_quality.
# This may be replaced when dependencies are built.
