file(REMOVE_RECURSE
  "CMakeFiles/bench_kore_ned.dir/bench_kore_ned.cc.o"
  "CMakeFiles/bench_kore_ned.dir/bench_kore_ned.cc.o.d"
  "bench_kore_ned"
  "bench_kore_ned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kore_ned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
