# Empty compiler generated dependencies file for bench_kore_ned.
# This may be replaced when dependencies are built.
