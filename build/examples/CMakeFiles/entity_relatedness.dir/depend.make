# Empty dependencies file for entity_relatedness.
# This may be replaced when dependencies are built.
