file(REMOVE_RECURSE
  "CMakeFiles/entity_relatedness.dir/entity_relatedness.cpp.o"
  "CMakeFiles/entity_relatedness.dir/entity_relatedness.cpp.o.d"
  "entity_relatedness"
  "entity_relatedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_relatedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
