file(REMOVE_RECURSE
  "CMakeFiles/emerging_entities.dir/emerging_entities.cpp.o"
  "CMakeFiles/emerging_entities.dir/emerging_entities.cpp.o.d"
  "emerging_entities"
  "emerging_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerging_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
