# Empty dependencies file for emerging_entities.
# This may be replaced when dependencies are built.
