file(REMOVE_RECURSE
  "CMakeFiles/aida_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/aida_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/aida_eval.dir/eval/pr_curve.cc.o"
  "CMakeFiles/aida_eval.dir/eval/pr_curve.cc.o.d"
  "CMakeFiles/aida_eval.dir/eval/spearman.cc.o"
  "CMakeFiles/aida_eval.dir/eval/spearman.cc.o.d"
  "libaida_eval.a"
  "libaida_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
