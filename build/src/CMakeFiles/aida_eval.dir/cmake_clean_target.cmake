file(REMOVE_RECURSE
  "libaida_eval.a"
)
