# Empty compiler generated dependencies file for aida_eval.
# This may be replaced when dependencies are built.
