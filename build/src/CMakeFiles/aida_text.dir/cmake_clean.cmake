file(REMOVE_RECURSE
  "CMakeFiles/aida_text.dir/text/sentence_splitter.cc.o"
  "CMakeFiles/aida_text.dir/text/sentence_splitter.cc.o.d"
  "CMakeFiles/aida_text.dir/text/stopwords.cc.o"
  "CMakeFiles/aida_text.dir/text/stopwords.cc.o.d"
  "CMakeFiles/aida_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/aida_text.dir/text/tokenizer.cc.o.d"
  "libaida_text.a"
  "libaida_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
