file(REMOVE_RECURSE
  "libaida_text.a"
)
