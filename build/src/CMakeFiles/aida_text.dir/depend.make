# Empty dependencies file for aida_text.
# This may be replaced when dependencies are built.
