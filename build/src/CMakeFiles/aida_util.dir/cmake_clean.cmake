file(REMOVE_RECURSE
  "CMakeFiles/aida_util.dir/util/rng.cc.o"
  "CMakeFiles/aida_util.dir/util/rng.cc.o.d"
  "CMakeFiles/aida_util.dir/util/serialize.cc.o"
  "CMakeFiles/aida_util.dir/util/serialize.cc.o.d"
  "CMakeFiles/aida_util.dir/util/status.cc.o"
  "CMakeFiles/aida_util.dir/util/status.cc.o.d"
  "CMakeFiles/aida_util.dir/util/string_util.cc.o"
  "CMakeFiles/aida_util.dir/util/string_util.cc.o.d"
  "libaida_util.a"
  "libaida_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
