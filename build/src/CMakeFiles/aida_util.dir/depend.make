# Empty dependencies file for aida_util.
# This may be replaced when dependencies are built.
