file(REMOVE_RECURSE
  "libaida_util.a"
)
