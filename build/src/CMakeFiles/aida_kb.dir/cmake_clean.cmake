file(REMOVE_RECURSE
  "CMakeFiles/aida_kb.dir/corpus/corpus_io.cc.o"
  "CMakeFiles/aida_kb.dir/corpus/corpus_io.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/dictionary.cc.o"
  "CMakeFiles/aida_kb.dir/kb/dictionary.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/entity.cc.o"
  "CMakeFiles/aida_kb.dir/kb/entity.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/kb_builder.cc.o"
  "CMakeFiles/aida_kb.dir/kb/kb_builder.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/kb_serialization.cc.o"
  "CMakeFiles/aida_kb.dir/kb/kb_serialization.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/keyphrase_store.cc.o"
  "CMakeFiles/aida_kb.dir/kb/keyphrase_store.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/knowledge_base.cc.o"
  "CMakeFiles/aida_kb.dir/kb/knowledge_base.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/link_graph.cc.o"
  "CMakeFiles/aida_kb.dir/kb/link_graph.cc.o.d"
  "CMakeFiles/aida_kb.dir/kb/type_taxonomy.cc.o"
  "CMakeFiles/aida_kb.dir/kb/type_taxonomy.cc.o.d"
  "libaida_kb.a"
  "libaida_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
