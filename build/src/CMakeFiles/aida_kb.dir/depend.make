# Empty dependencies file for aida_kb.
# This may be replaced when dependencies are built.
