
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus_io.cc" "src/CMakeFiles/aida_kb.dir/corpus/corpus_io.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/corpus/corpus_io.cc.o.d"
  "/root/repo/src/kb/dictionary.cc" "src/CMakeFiles/aida_kb.dir/kb/dictionary.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/dictionary.cc.o.d"
  "/root/repo/src/kb/entity.cc" "src/CMakeFiles/aida_kb.dir/kb/entity.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/entity.cc.o.d"
  "/root/repo/src/kb/kb_builder.cc" "src/CMakeFiles/aida_kb.dir/kb/kb_builder.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/kb_builder.cc.o.d"
  "/root/repo/src/kb/kb_serialization.cc" "src/CMakeFiles/aida_kb.dir/kb/kb_serialization.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/kb_serialization.cc.o.d"
  "/root/repo/src/kb/keyphrase_store.cc" "src/CMakeFiles/aida_kb.dir/kb/keyphrase_store.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/keyphrase_store.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/CMakeFiles/aida_kb.dir/kb/knowledge_base.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/knowledge_base.cc.o.d"
  "/root/repo/src/kb/link_graph.cc" "src/CMakeFiles/aida_kb.dir/kb/link_graph.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/link_graph.cc.o.d"
  "/root/repo/src/kb/type_taxonomy.cc" "src/CMakeFiles/aida_kb.dir/kb/type_taxonomy.cc.o" "gcc" "src/CMakeFiles/aida_kb.dir/kb/type_taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
