file(REMOVE_RECURSE
  "libaida_kb.a"
)
