
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/corpus_generator.cc" "src/CMakeFiles/aida_synth.dir/synth/corpus_generator.cc.o" "gcc" "src/CMakeFiles/aida_synth.dir/synth/corpus_generator.cc.o.d"
  "/root/repo/src/synth/presets.cc" "src/CMakeFiles/aida_synth.dir/synth/presets.cc.o" "gcc" "src/CMakeFiles/aida_synth.dir/synth/presets.cc.o.d"
  "/root/repo/src/synth/relatedness_gold.cc" "src/CMakeFiles/aida_synth.dir/synth/relatedness_gold.cc.o" "gcc" "src/CMakeFiles/aida_synth.dir/synth/relatedness_gold.cc.o.d"
  "/root/repo/src/synth/word_forge.cc" "src/CMakeFiles/aida_synth.dir/synth/word_forge.cc.o" "gcc" "src/CMakeFiles/aida_synth.dir/synth/word_forge.cc.o.d"
  "/root/repo/src/synth/world_generator.cc" "src/CMakeFiles/aida_synth.dir/synth/world_generator.cc.o" "gcc" "src/CMakeFiles/aida_synth.dir/synth/world_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
