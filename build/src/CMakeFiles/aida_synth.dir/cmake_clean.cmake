file(REMOVE_RECURSE
  "CMakeFiles/aida_synth.dir/synth/corpus_generator.cc.o"
  "CMakeFiles/aida_synth.dir/synth/corpus_generator.cc.o.d"
  "CMakeFiles/aida_synth.dir/synth/presets.cc.o"
  "CMakeFiles/aida_synth.dir/synth/presets.cc.o.d"
  "CMakeFiles/aida_synth.dir/synth/relatedness_gold.cc.o"
  "CMakeFiles/aida_synth.dir/synth/relatedness_gold.cc.o.d"
  "CMakeFiles/aida_synth.dir/synth/word_forge.cc.o"
  "CMakeFiles/aida_synth.dir/synth/word_forge.cc.o.d"
  "CMakeFiles/aida_synth.dir/synth/world_generator.cc.o"
  "CMakeFiles/aida_synth.dir/synth/world_generator.cc.o.d"
  "libaida_synth.a"
  "libaida_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
