file(REMOVE_RECURSE
  "libaida_synth.a"
)
