# Empty compiler generated dependencies file for aida_synth.
# This may be replaced when dependencies are built.
