# Empty dependencies file for aida_ingest.
# This may be replaced when dependencies are built.
