file(REMOVE_RECURSE
  "CMakeFiles/aida_ingest.dir/ingest/wiki_importer.cc.o"
  "CMakeFiles/aida_ingest.dir/ingest/wiki_importer.cc.o.d"
  "libaida_ingest.a"
  "libaida_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
