file(REMOVE_RECURSE
  "libaida_ingest.a"
)
