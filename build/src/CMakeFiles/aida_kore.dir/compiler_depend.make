# Empty compiler generated dependencies file for aida_kore.
# This may be replaced when dependencies are built.
