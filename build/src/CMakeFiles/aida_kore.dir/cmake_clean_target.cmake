file(REMOVE_RECURSE
  "libaida_kore.a"
)
