file(REMOVE_RECURSE
  "CMakeFiles/aida_kore.dir/kore/keyterm_cosine.cc.o"
  "CMakeFiles/aida_kore.dir/kore/keyterm_cosine.cc.o.d"
  "CMakeFiles/aida_kore.dir/kore/kore_lsh.cc.o"
  "CMakeFiles/aida_kore.dir/kore/kore_lsh.cc.o.d"
  "CMakeFiles/aida_kore.dir/kore/kore_relatedness.cc.o"
  "CMakeFiles/aida_kore.dir/kore/kore_relatedness.cc.o.d"
  "libaida_kore.a"
  "libaida_kore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_kore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
