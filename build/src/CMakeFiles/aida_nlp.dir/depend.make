# Empty dependencies file for aida_nlp.
# This may be replaced when dependencies are built.
