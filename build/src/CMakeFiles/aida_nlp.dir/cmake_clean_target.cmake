file(REMOVE_RECURSE
  "libaida_nlp.a"
)
