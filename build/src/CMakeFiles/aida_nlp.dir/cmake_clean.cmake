file(REMOVE_RECURSE
  "CMakeFiles/aida_nlp.dir/nlp/keyphrase_extractor.cc.o"
  "CMakeFiles/aida_nlp.dir/nlp/keyphrase_extractor.cc.o.d"
  "CMakeFiles/aida_nlp.dir/nlp/ner_tagger.cc.o"
  "CMakeFiles/aida_nlp.dir/nlp/ner_tagger.cc.o.d"
  "CMakeFiles/aida_nlp.dir/nlp/pos_tagger.cc.o"
  "CMakeFiles/aida_nlp.dir/nlp/pos_tagger.cc.o.d"
  "libaida_nlp.a"
  "libaida_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
