file(REMOVE_RECURSE
  "CMakeFiles/aida_graph.dir/graph/dense_subgraph.cc.o"
  "CMakeFiles/aida_graph.dir/graph/dense_subgraph.cc.o.d"
  "CMakeFiles/aida_graph.dir/graph/shortest_paths.cc.o"
  "CMakeFiles/aida_graph.dir/graph/shortest_paths.cc.o.d"
  "CMakeFiles/aida_graph.dir/graph/weighted_graph.cc.o"
  "CMakeFiles/aida_graph.dir/graph/weighted_graph.cc.o.d"
  "libaida_graph.a"
  "libaida_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
