file(REMOVE_RECURSE
  "libaida_graph.a"
)
