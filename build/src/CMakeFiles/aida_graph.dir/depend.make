# Empty dependencies file for aida_graph.
# This may be replaced when dependencies are built.
