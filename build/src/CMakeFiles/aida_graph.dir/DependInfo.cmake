
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dense_subgraph.cc" "src/CMakeFiles/aida_graph.dir/graph/dense_subgraph.cc.o" "gcc" "src/CMakeFiles/aida_graph.dir/graph/dense_subgraph.cc.o.d"
  "/root/repo/src/graph/shortest_paths.cc" "src/CMakeFiles/aida_graph.dir/graph/shortest_paths.cc.o" "gcc" "src/CMakeFiles/aida_graph.dir/graph/shortest_paths.cc.o.d"
  "/root/repo/src/graph/weighted_graph.cc" "src/CMakeFiles/aida_graph.dir/graph/weighted_graph.cc.o" "gcc" "src/CMakeFiles/aida_graph.dir/graph/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
