file(REMOVE_RECURSE
  "libaida_apps.a"
)
