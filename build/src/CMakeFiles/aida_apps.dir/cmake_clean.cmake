file(REMOVE_RECURSE
  "CMakeFiles/aida_apps.dir/apps/entity_search.cc.o"
  "CMakeFiles/aida_apps.dir/apps/entity_search.cc.o.d"
  "CMakeFiles/aida_apps.dir/apps/news_analytics.cc.o"
  "CMakeFiles/aida_apps.dir/apps/news_analytics.cc.o.d"
  "libaida_apps.a"
  "libaida_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
