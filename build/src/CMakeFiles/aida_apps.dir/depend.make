# Empty dependencies file for aida_apps.
# This may be replaced when dependencies are built.
