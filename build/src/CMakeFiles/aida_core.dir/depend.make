# Empty dependencies file for aida_core.
# This may be replaced when dependencies are built.
