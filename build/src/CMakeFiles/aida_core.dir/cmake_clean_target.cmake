file(REMOVE_RECURSE
  "libaida_core.a"
)
