file(REMOVE_RECURSE
  "CMakeFiles/aida_core.dir/core/aida.cc.o"
  "CMakeFiles/aida_core.dir/core/aida.cc.o.d"
  "CMakeFiles/aida_core.dir/core/baselines.cc.o"
  "CMakeFiles/aida_core.dir/core/baselines.cc.o.d"
  "CMakeFiles/aida_core.dir/core/batch.cc.o"
  "CMakeFiles/aida_core.dir/core/batch.cc.o.d"
  "CMakeFiles/aida_core.dir/core/candidates.cc.o"
  "CMakeFiles/aida_core.dir/core/candidates.cc.o.d"
  "CMakeFiles/aida_core.dir/core/context_similarity.cc.o"
  "CMakeFiles/aida_core.dir/core/context_similarity.cc.o.d"
  "CMakeFiles/aida_core.dir/core/graph_disambiguator.cc.o"
  "CMakeFiles/aida_core.dir/core/graph_disambiguator.cc.o.d"
  "CMakeFiles/aida_core.dir/core/joint_recognition.cc.o"
  "CMakeFiles/aida_core.dir/core/joint_recognition.cc.o.d"
  "CMakeFiles/aida_core.dir/core/mention_entity_graph.cc.o"
  "CMakeFiles/aida_core.dir/core/mention_entity_graph.cc.o.d"
  "CMakeFiles/aida_core.dir/core/mention_expansion.cc.o"
  "CMakeFiles/aida_core.dir/core/mention_expansion.cc.o.d"
  "CMakeFiles/aida_core.dir/core/milne_witten.cc.o"
  "CMakeFiles/aida_core.dir/core/milne_witten.cc.o.d"
  "CMakeFiles/aida_core.dir/core/relatedness_cache.cc.o"
  "CMakeFiles/aida_core.dir/core/relatedness_cache.cc.o.d"
  "CMakeFiles/aida_core.dir/core/robustness.cc.o"
  "CMakeFiles/aida_core.dir/core/robustness.cc.o.d"
  "CMakeFiles/aida_core.dir/core/type_classifier.cc.o"
  "CMakeFiles/aida_core.dir/core/type_classifier.cc.o.d"
  "libaida_core.a"
  "libaida_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
