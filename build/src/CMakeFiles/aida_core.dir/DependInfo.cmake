
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aida.cc" "src/CMakeFiles/aida_core.dir/core/aida.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/aida.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/aida_core.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/CMakeFiles/aida_core.dir/core/batch.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/batch.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/aida_core.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/context_similarity.cc" "src/CMakeFiles/aida_core.dir/core/context_similarity.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/context_similarity.cc.o.d"
  "/root/repo/src/core/graph_disambiguator.cc" "src/CMakeFiles/aida_core.dir/core/graph_disambiguator.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/graph_disambiguator.cc.o.d"
  "/root/repo/src/core/joint_recognition.cc" "src/CMakeFiles/aida_core.dir/core/joint_recognition.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/joint_recognition.cc.o.d"
  "/root/repo/src/core/mention_entity_graph.cc" "src/CMakeFiles/aida_core.dir/core/mention_entity_graph.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/mention_entity_graph.cc.o.d"
  "/root/repo/src/core/mention_expansion.cc" "src/CMakeFiles/aida_core.dir/core/mention_expansion.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/mention_expansion.cc.o.d"
  "/root/repo/src/core/milne_witten.cc" "src/CMakeFiles/aida_core.dir/core/milne_witten.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/milne_witten.cc.o.d"
  "/root/repo/src/core/relatedness_cache.cc" "src/CMakeFiles/aida_core.dir/core/relatedness_cache.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/relatedness_cache.cc.o.d"
  "/root/repo/src/core/robustness.cc" "src/CMakeFiles/aida_core.dir/core/robustness.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/robustness.cc.o.d"
  "/root/repo/src/core/type_classifier.cc" "src/CMakeFiles/aida_core.dir/core/type_classifier.cc.o" "gcc" "src/CMakeFiles/aida_core.dir/core/type_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
