file(REMOVE_RECURSE
  "libaida_ee.a"
)
