# Empty dependencies file for aida_ee.
# This may be replaced when dependencies are built.
