file(REMOVE_RECURSE
  "CMakeFiles/aida_ee.dir/ee/confidence.cc.o"
  "CMakeFiles/aida_ee.dir/ee/confidence.cc.o.d"
  "CMakeFiles/aida_ee.dir/ee/ee_clustering.cc.o"
  "CMakeFiles/aida_ee.dir/ee/ee_clustering.cc.o.d"
  "CMakeFiles/aida_ee.dir/ee/ee_discovery.cc.o"
  "CMakeFiles/aida_ee.dir/ee/ee_discovery.cc.o.d"
  "CMakeFiles/aida_ee.dir/ee/emerging_entity_model.cc.o"
  "CMakeFiles/aida_ee.dir/ee/emerging_entity_model.cc.o.d"
  "CMakeFiles/aida_ee.dir/ee/keyphrase_harvester.cc.o"
  "CMakeFiles/aida_ee.dir/ee/keyphrase_harvester.cc.o.d"
  "libaida_ee.a"
  "libaida_ee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_ee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
