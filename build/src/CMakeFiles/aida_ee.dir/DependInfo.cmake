
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ee/confidence.cc" "src/CMakeFiles/aida_ee.dir/ee/confidence.cc.o" "gcc" "src/CMakeFiles/aida_ee.dir/ee/confidence.cc.o.d"
  "/root/repo/src/ee/ee_clustering.cc" "src/CMakeFiles/aida_ee.dir/ee/ee_clustering.cc.o" "gcc" "src/CMakeFiles/aida_ee.dir/ee/ee_clustering.cc.o.d"
  "/root/repo/src/ee/ee_discovery.cc" "src/CMakeFiles/aida_ee.dir/ee/ee_discovery.cc.o" "gcc" "src/CMakeFiles/aida_ee.dir/ee/ee_discovery.cc.o.d"
  "/root/repo/src/ee/emerging_entity_model.cc" "src/CMakeFiles/aida_ee.dir/ee/emerging_entity_model.cc.o" "gcc" "src/CMakeFiles/aida_ee.dir/ee/emerging_entity_model.cc.o.d"
  "/root/repo/src/ee/keyphrase_harvester.cc" "src/CMakeFiles/aida_ee.dir/ee/keyphrase_harvester.cc.o" "gcc" "src/CMakeFiles/aida_ee.dir/ee/keyphrase_harvester.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_kore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
