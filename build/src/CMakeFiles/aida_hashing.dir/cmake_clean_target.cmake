file(REMOVE_RECURSE
  "libaida_hashing.a"
)
