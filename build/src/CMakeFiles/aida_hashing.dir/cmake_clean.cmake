file(REMOVE_RECURSE
  "CMakeFiles/aida_hashing.dir/hashing/lsh_index.cc.o"
  "CMakeFiles/aida_hashing.dir/hashing/lsh_index.cc.o.d"
  "CMakeFiles/aida_hashing.dir/hashing/minhash.cc.o"
  "CMakeFiles/aida_hashing.dir/hashing/minhash.cc.o.d"
  "CMakeFiles/aida_hashing.dir/hashing/two_stage_hasher.cc.o"
  "CMakeFiles/aida_hashing.dir/hashing/two_stage_hasher.cc.o.d"
  "libaida_hashing.a"
  "libaida_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
