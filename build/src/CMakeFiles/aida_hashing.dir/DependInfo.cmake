
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/lsh_index.cc" "src/CMakeFiles/aida_hashing.dir/hashing/lsh_index.cc.o" "gcc" "src/CMakeFiles/aida_hashing.dir/hashing/lsh_index.cc.o.d"
  "/root/repo/src/hashing/minhash.cc" "src/CMakeFiles/aida_hashing.dir/hashing/minhash.cc.o" "gcc" "src/CMakeFiles/aida_hashing.dir/hashing/minhash.cc.o.d"
  "/root/repo/src/hashing/two_stage_hasher.cc" "src/CMakeFiles/aida_hashing.dir/hashing/two_stage_hasher.cc.o" "gcc" "src/CMakeFiles/aida_hashing.dir/hashing/two_stage_hasher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aida_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
