# Empty compiler generated dependencies file for aida_hashing.
# This may be replaced when dependencies are built.
