# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/kb_serialization_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_io_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/kore_test[1]_include.cmake")
include("/root/repo/build/tests/ee_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/aida_edge_test[1]_include.cmake")
include("/root/repo/build/tests/joint_recognition_test[1]_include.cmake")
include("/root/repo/build/tests/mention_expansion_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
