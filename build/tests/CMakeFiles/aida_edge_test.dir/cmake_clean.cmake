file(REMOVE_RECURSE
  "CMakeFiles/aida_edge_test.dir/aida_edge_test.cc.o"
  "CMakeFiles/aida_edge_test.dir/aida_edge_test.cc.o.d"
  "aida_edge_test"
  "aida_edge_test.pdb"
  "aida_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aida_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
