# Empty dependencies file for aida_edge_test.
# This may be replaced when dependencies are built.
