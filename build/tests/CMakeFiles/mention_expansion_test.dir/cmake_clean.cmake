file(REMOVE_RECURSE
  "CMakeFiles/mention_expansion_test.dir/mention_expansion_test.cc.o"
  "CMakeFiles/mention_expansion_test.dir/mention_expansion_test.cc.o.d"
  "mention_expansion_test"
  "mention_expansion_test.pdb"
  "mention_expansion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mention_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
