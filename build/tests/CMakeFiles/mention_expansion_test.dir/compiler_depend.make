# Empty compiler generated dependencies file for mention_expansion_test.
# This may be replaced when dependencies are built.
