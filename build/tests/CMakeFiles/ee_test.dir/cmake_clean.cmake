file(REMOVE_RECURSE
  "CMakeFiles/ee_test.dir/ee_test.cc.o"
  "CMakeFiles/ee_test.dir/ee_test.cc.o.d"
  "ee_test"
  "ee_test.pdb"
  "ee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
