# Empty compiler generated dependencies file for ee_test.
# This may be replaced when dependencies are built.
