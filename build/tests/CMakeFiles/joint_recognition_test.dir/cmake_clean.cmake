file(REMOVE_RECURSE
  "CMakeFiles/joint_recognition_test.dir/joint_recognition_test.cc.o"
  "CMakeFiles/joint_recognition_test.dir/joint_recognition_test.cc.o.d"
  "joint_recognition_test"
  "joint_recognition_test.pdb"
  "joint_recognition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_recognition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
