file(REMOVE_RECURSE
  "CMakeFiles/kore_test.dir/kore_test.cc.o"
  "CMakeFiles/kore_test.dir/kore_test.cc.o.d"
  "kore_test"
  "kore_test.pdb"
  "kore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
