# Empty dependencies file for kore_test.
# This may be replaced when dependencies are built.
