file(REMOVE_RECURSE
  "CMakeFiles/kb_serialization_test.dir/kb_serialization_test.cc.o"
  "CMakeFiles/kb_serialization_test.dir/kb_serialization_test.cc.o.d"
  "kb_serialization_test"
  "kb_serialization_test.pdb"
  "kb_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
