# Empty dependencies file for kb_serialization_test.
# This may be replaced when dependencies are built.
