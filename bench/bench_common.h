#ifndef AIDA_BENCH_BENCH_COMMON_H_
#define AIDA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/ned_system.h"
#include "corpus/document.h"
#include "synth/presets.h"

namespace aida::bench {

/// Builds a disambiguation problem from a gold document (gold mention
/// spans, candidates resolved by the system — the evaluation setting of
/// Section 3.6.1, "we assume all mentions to be present as input").
inline core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

/// Resolves where a BENCH_*.json artifact lands: the repo root
/// (compile-time source dir) so CI and humans find one canonical copy no
/// matter the launch cwd; falls back to the cwd if the bench was built
/// without the definition.
inline std::string JsonOutputPath(const std::string& filename) {
#ifdef AIDA_BENCH_OUTPUT_DIR
  return std::string(AIDA_BENCH_OUTPUT_DIR) + "/" + filename;
#else
  return filename;
#endif
}

/// Prints a horizontal rule sized to `width`.
inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Prints a table header line.
inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace aida::bench

#endif  // AIDA_BENCH_BENCH_COMMON_H_
