// Reproduces Figure 4.2 / Table 4.3: disambiguation accuracy of AIDA with
// different coherence measures (KWCS, KPCS, MW, KORE, KORE-LSH-G/F) on the
// three corpora: CoNLL-like, WP-like (family names only, prior disabled as
// in the paper), and KORE50-like (short, dense, long-tail).

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "eval/metrics.h"
#include "kore/keyterm_cosine.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

namespace {

struct DatasetRun {
  std::string dataset;
  std::string measure;
  double micro = 0;
  double macro = 0;
  double link_avg = 0;
};

// Macro average of per-inlink-count-group accuracies (the "Link Avg"
// rows of Table 4.3).
double LinkAveragedAccuracy(
    const std::map<size_t, std::pair<size_t, size_t>>& by_links) {
  if (by_links.empty()) return 0.0;
  double sum = 0;
  for (const auto& [links, counts] : by_links) {
    sum += static_cast<double>(counts.second) /
           static_cast<double>(counts.first);
  }
  return sum / static_cast<double>(by_links.size());
}

}  // namespace

int main() {
  struct Dataset {
    synth::CorpusPreset preset;
    size_t max_docs;
    bool use_prior;
  };
  std::vector<Dataset> datasets = {
      {synth::ConllPreset(), 231, true},
      {synth::WpPreset(), 400, false},  // prior disabled (Section 4.6.1)
      {synth::Kore50Preset(), 400, true},
  };
  // The original KORE50 has only 50 sentences; we evaluate 400 generated
  // ones so per-measure differences are not dominated by sampling noise.
  datasets[2].preset.corpus.num_documents = 400;

  std::vector<DatasetRun> rows;
  for (Dataset& dataset : datasets) {
    synth::World world =
        synth::WorldGenerator(dataset.preset.world).Generate();
    corpus::Corpus docs =
        synth::CorpusGenerator(&world, dataset.preset.corpus).Generate();
    // CoNLL-like: evaluate the test split (last 231 docs).
    size_t first = docs.size() > dataset.max_docs
                       ? docs.size() - dataset.max_docs
                       : 0;

    core::CandidateModelStore models(world.knowledge_base.get());
    const kb::KeyphraseStore& store = world.knowledge_base->keyphrases();
    kore::KeytermCosineRelatedness kwcs(
        kore::KeytermCosineRelatedness::Mode::kKeyword);
    kore::KeytermCosineRelatedness kpcs(
        kore::KeytermCosineRelatedness::Mode::kKeyphrase);
    core::MilneWittenRelatedness mw(world.knowledge_base.get());
    kore::KoreRelatedness kore;
    kore::KoreLshRelatedness lsh_g = kore::KoreLshRelatedness::Good(&store);
    kore::KoreLshRelatedness lsh_f = kore::KoreLshRelatedness::Fast(&store);
    std::vector<std::pair<std::string, const core::RelatednessMeasure*>>
        measures = {{"KWCS", &kwcs},  {"KPCS", &kpcs}, {"MW", &mw},
                    {"KORE", &kore},  {"KORE-LSH-G", &lsh_g},
                    {"KORE-LSH-F", &lsh_f}};

    for (const auto& [name, measure] : measures) {
      core::AidaOptions options;
      options.use_prior = dataset.use_prior;
      core::Aida aida(&models, measure, options);

      eval::NedEvaluator evaluator;
      std::map<size_t, std::pair<size_t, size_t>> by_links;  // total,correct
      for (size_t d = first; d < docs.size(); ++d) {
        core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
        core::DisambiguationResult result = aida.Disambiguate(problem, {});
        evaluator.AddDocument(docs[d], result);
        for (size_t m = 0; m < docs[d].mentions.size(); ++m) {
          const corpus::GoldMention& gm = docs[d].mentions[m];
          if (gm.out_of_kb()) continue;
          size_t links =
              world.knowledge_base->links().InLinkCount(gm.gold_entity);
          auto& counts = by_links[links];
          ++counts.first;
          if (result.mentions[m].entity == gm.gold_entity) ++counts.second;
        }
      }
      rows.push_back({dataset.preset.name, name,
                      100.0 * evaluator.MicroAccuracy(),
                      100.0 * evaluator.MacroAccuracy(),
                      100.0 * LinkAveragedAccuracy(by_links)});
    }
  }

  bench::PrintHeader(
      "Table 4.3 / Figure 4.2 — NED accuracy per relatedness measure");
  std::printf("%-14s %-12s %9s %9s %9s\n", "dataset", "measure", "MicA %",
              "MacA %", "LinkAvg %");
  bench::PrintRule();
  for (const DatasetRun& row : rows) {
    std::printf("%-14s %-12s %9.2f %9.2f %9.2f\n", row.dataset.c_str(),
                row.measure.c_str(), row.micro, row.macro, row.link_avg);
  }
  bench::PrintRule();
  std::printf(
      "Paper shape: MW and KORE comparable on the CoNLL-like corpus; KORE\n"
      "ahead on the WP-like and clearly ahead on the KORE50-like corpus\n"
      "(long-tail mentions), with KORE-LSH-G close to exact KORE and\n"
      "KORE-LSH-F trading some quality for speed.\n");
  return 0;
}
