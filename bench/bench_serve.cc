// Closed-loop load test of the aida::serve online serving layer (the
// architecture face of Section 7's efficiency story): C client threads,
// each with one outstanding request, hammer a NedService over a synthetic
// corpus. For each (workers, queue bound, clients) configuration we report
// sustained QPS and p50/p95/p99 total latency from the service's own
// streaming histograms, plus shed/expired counts. One deliberately
// undersized queue bound demonstrates explicit load shedding; every
// completed response is checked byte-identical to serial Aida output.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "core/relatedness_cache.h"
#include "serve/ned_service.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

namespace {

struct RunConfig {
  const char* label;
  size_t workers;
  size_t queue;
  size_t clients;
  double deadline_seconds;  // 0 = none
  double duration_seconds;
};

struct RunOutcome {
  size_t completed = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t mismatches = 0;
  double elapsed_seconds = 0.0;
  serve::NedServiceSnapshot snapshot;
};

bool SameAnnotation(const core::DisambiguationResult& a,
                    const core::DisambiguationResult& b) {
  if (a.mentions.size() != b.mentions.size()) return false;
  for (size_t m = 0; m < a.mentions.size(); ++m) {
    if (a.mentions[m].entity != b.mentions[m].entity) return false;
    if (a.mentions[m].score != b.mentions[m].score) return false;
    if (a.mentions[m].candidate_scores != b.mentions[m].candidate_scores) {
      return false;
    }
  }
  return true;
}

RunOutcome RunClosedLoop(const core::NedSystem& system,
                         const core::RelatednessCache* shared_cache,
                         const std::vector<core::DisambiguationProblem>& work,
                         const std::vector<core::DisambiguationResult>& gold,
                         const RunConfig& config) {
  serve::NedServiceOptions options;
  options.num_threads = config.workers;
  options.queue_capacity = config.queue;
  options.default_deadline_seconds = config.deadline_seconds;
  options.shared_cache = shared_cache;
  serve::NedService service(&system, options);

  std::atomic<size_t> completed{0}, shed{0}, expired{0}, mismatches{0};
  std::atomic<bool> stop{false};

  auto client = [&](size_t client_id) {
    size_t next = client_id;  // stagger document order across clients
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t doc = next++ % work.size();
      serve::ServeResult response = service.Submit(work[doc]).get();
      if (response.status.ok()) {
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!SameAnnotation(response.result, gold[doc])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (response.status.code() ==
                 util::StatusCode::kResourceExhausted) {
        shed.fetch_add(1, std::memory_order_relaxed);
        // A well-behaved client backs off briefly after being shed.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else if (response.status.code() ==
                 util::StatusCode::kDeadlineExceeded) {
        expired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  util::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) clients.emplace_back(client, c);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.duration_seconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();

  RunOutcome outcome;
  outcome.elapsed_seconds = watch.ElapsedSeconds();
  service.Drain();
  outcome.snapshot = service.Snapshot();
  outcome.completed = completed.load();
  outcome.shed = shed.load();
  outcome.expired = expired.load();
  outcome.mismatches = mismatches.load();
  return outcome;
}

}  // namespace

int main() {
  synth::CorpusPreset preset = synth::GigawordEePreset();
  preset.corpus.num_documents = 160;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();

  core::CandidateModelStore models(world.knowledge_base.get());
  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  core::RelatednessCache cache;
  core::CachedRelatednessMeasure cached_mw(&mw, &cache);
  core::Aida aida(&models, &cached_mw, core::AidaOptions());

  std::vector<core::DisambiguationProblem> work;
  work.reserve(docs.size());
  for (const corpus::Document& doc : docs) {
    work.push_back(bench::ToProblem(doc));
  }

  // Serial reference with an *uncached* measure: the served results must
  // match it byte-for-byte regardless of concurrency or cache reuse.
  core::Aida serial(&models, &mw, core::AidaOptions());
  std::vector<core::DisambiguationResult> gold;
  gold.reserve(work.size());
  util::Stopwatch serial_watch;
  for (const core::DisambiguationProblem& problem : work) {
    gold.push_back(serial.Disambiguate(problem));
  }
  const double serial_seconds = serial_watch.ElapsedSeconds();

  bench::PrintHeader("aida::serve — closed-loop load test");
  std::printf("corpus: %zu documents; serial Aida baseline %.2f ms/doc "
              "(%.0f QPS single-threaded)\n\n",
              docs.size(), 1000 * serial_seconds / docs.size(),
              docs.size() / serial_seconds);

  const std::vector<RunConfig> configs = {
      {"1w/64q/4c", 1, 64, 4, 0.0, 1.2},
      {"2w/64q/8c", 2, 64, 8, 0.0, 1.2},
      {"4w/64q/16c", 4, 64, 16, 0.0, 1.2},
      {"8w/64q/32c", 8, 64, 32, 0.0, 1.2},
      // Undersized queue: 16 clients contend for 2 workers + 4 slots, so
      // admission control must shed instead of parking callers.
      {"2w/4q/16c (undersized)", 2, 4, 16, 0.0, 1.2},
      // Tight deadline: requests expire in queue or cancel mid-flight.
      {"2w/64q/16c + 5ms deadline", 2, 64, 16, 0.005, 1.2},
  };

  std::printf("%-26s %8s %8s %8s %8s %8s %8s\n", "config", "QPS", "p50ms",
              "p95ms", "p99ms", "shed", "expired");
  bench::PrintRule();
  size_t total_mismatches = 0;
  for (const RunConfig& config : configs) {
    RunOutcome outcome = RunClosedLoop(aida, &cache, work, gold, config);
    const serve::ServiceMetricsSnapshot& m = outcome.snapshot.metrics;
    std::printf("%-26s %8.0f %8.2f %8.2f %8.2f %8zu %8zu\n", config.label,
                outcome.completed / outcome.elapsed_seconds,
                1000 * m.total_latency.p50_seconds,
                1000 * m.total_latency.p95_seconds,
                1000 * m.total_latency.p99_seconds,
                outcome.shed,
                outcome.expired);
    total_mismatches += outcome.mismatches;
    if (outcome.mismatches != 0) {
      std::printf("  !! %zu completed responses differed from serial Aida\n",
                  outcome.mismatches);
    }
  }
  bench::PrintRule();
  std::printf("all completed responses byte-identical to serial Aida: %s\n",
              total_mismatches == 0 ? "yes" : "NO");
  core::RelatednessCacheStats cache_stats = cache.Snapshot();
  std::printf("shared relatedness cache: %zu entries, %.1f%% hit rate "
              "(%llu hits / %llu misses)\n",
              static_cast<size_t>(cache_stats.entries),
              100.0 * cache_stats.HitRate(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));
  return total_mismatches == 0 ? 0 : 1;
}
