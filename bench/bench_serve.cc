// Closed-loop load test of the aida::serve online serving layer (the
// architecture face of Section 7's efficiency story): C client threads,
// each with one outstanding request, hammer a NedService over a synthetic
// corpus. For each (workers, queue bound, clients) configuration we report
// sustained QPS and p50/p95/p99 total latency from the service's own
// streaming histograms, plus shed/expired counts. One deliberately
// undersized queue bound demonstrates explicit load shedding; every
// completed response is checked byte-identical to serial Aida output.
//
// The final scenario exercises hot reload: a registry-backed service takes
// traffic while the KB is swapped via SnapshotRegistry::ReloadFromFile.
// The run must complete with zero shed/failed requests, every response
// byte-identical to a serial run against the generation it carries, and a
// p99 within 2x of the identical run without the reload.
//
// Results are also written to BENCH_serve.json at the repo root for
// machine consumption. The worker-sweep configurations double as a
// QPS-vs-workers scaling curve ("scaling" in the JSON): per-worker
// snapshot pinning, per-worker metrics slots and the sharded relatedness
// cache are exactly the changes that turned this curve from negative
// (more workers, less QPS) into the expected monotone one.
//
// BENCH_SERVE_SMOKE=1 selects the CI smoke shape: a smaller corpus, two
// sweep points ({1, hardware} workers), no reload scenario, and a
// nonzero exit when multi-worker QPS regresses below 0.7x single-worker
// (skipped on single-core machines, where there is nothing to scale).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "core/relatedness_cache.h"
#include "kb/kb_serialization.h"
#include "kb/snapshot_registry.h"
#include "serve/ned_service.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/alloc_probe.h"

using namespace aida;

namespace {

struct RunConfig {
  std::string label;
  size_t workers;
  size_t queue;
  size_t clients;
  double deadline_seconds;  // 0 = none
  double duration_seconds;
  /// Part of the QPS-vs-workers sweep (same queue/pressure shape, only
  /// the worker count varies) — these rows feed the "scaling" JSON curve.
  bool in_scaling_curve = false;
  /// Intra-request parallelism (the heavy-doc sweep): dedicated task
  /// threads for the service's work-stealing scheduler, and the per-request
  /// task cap. Zero threads = no scheduler (the serial default).
  size_t task_threads = 0;
  size_t max_tasks_per_request = 0;
};

struct RunOutcome {
  size_t completed = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t mismatches = 0;
  double elapsed_seconds = 0.0;
  serve::NedServiceSnapshot snapshot;
};

bool SameAnnotation(const core::DisambiguationResult& a,
                    const core::DisambiguationResult& b) {
  if (a.mentions.size() != b.mentions.size()) return false;
  for (size_t m = 0; m < a.mentions.size(); ++m) {
    if (a.mentions[m].entity != b.mentions[m].entity) return false;
    if (a.mentions[m].score != b.mentions[m].score) return false;
    if (a.mentions[m].candidate_scores != b.mentions[m].candidate_scores) {
      return false;
    }
  }
  return true;
}

RunOutcome RunClosedLoop(const core::NedSystem& system,
                         const core::RelatednessCache* shared_cache,
                         const std::vector<core::DisambiguationProblem>& work,
                         const std::vector<core::DisambiguationResult>& gold,
                         const RunConfig& config) {
  serve::NedServiceOptions options;
  options.num_threads = config.workers;
  options.queue_capacity = config.queue;
  options.default_deadline_seconds = config.deadline_seconds;
  options.shared_cache = shared_cache;
  options.parallelism.task_threads = config.task_threads;
  options.parallelism.max_tasks_per_request = config.max_tasks_per_request;
  serve::NedService service(kb::KbSnapshot::WrapUnowned(system, "bench-fixed"),
                            options);

  std::atomic<size_t> completed{0}, shed{0}, expired{0}, mismatches{0};
  std::atomic<bool> stop{false};

  auto client = [&](size_t client_id) {
    size_t next = client_id;  // stagger document order across clients
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t doc = next++ % work.size();
      serve::ServeResult response = service.Submit(work[doc]).get();
      if (response.status.ok()) {
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!SameAnnotation(response.result, gold[doc])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (response.status.code() ==
                 util::StatusCode::kResourceExhausted) {
        shed.fetch_add(1, std::memory_order_relaxed);
        // A well-behaved client backs off briefly after being shed.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else if (response.status.code() ==
                 util::StatusCode::kDeadlineExceeded) {
        expired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  util::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) clients.emplace_back(client, c);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.duration_seconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();

  RunOutcome outcome;
  outcome.elapsed_seconds = watch.ElapsedSeconds();
  service.Drain();
  outcome.snapshot = service.Snapshot();
  outcome.completed = completed.load();
  outcome.shed = shed.load();
  outcome.expired = expired.load();
  outcome.mismatches = mismatches.load();
  return outcome;
}

/// One recorded response of the reload scenario: which document it was,
/// and the full ServeResult (generation tag included) for post-hoc
/// verification against that generation's serial gold.
struct RecordedResponse {
  size_t doc = 0;
  serve::ServeResult result;
};

struct ReloadOutcome {
  size_t completed = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t failed = 0;
  size_t mismatches = 0;
  std::map<uint64_t, size_t> completed_by_generation;
  double elapsed_seconds = 0.0;
  /// Build+validate+swap duration of the reload (0 when none happened).
  double reload_pause_seconds = 0.0;
  bool reload_ok = true;
  serve::NedServiceSnapshot snapshot;
};

/// Drives closed-loop traffic against a registry-backed service; when
/// `reload_path` is non-empty, swaps the KB mid-run via ReloadFromFile.
/// Every completed response is verified byte-identical to a serial run
/// against the snapshot of the generation it reports.
ReloadOutcome RunReloadUnderLoad(
    const std::shared_ptr<kb::SnapshotRegistry>& registry,
    const std::string& reload_path,
    const std::vector<core::DisambiguationProblem>& work,
    const RunConfig& config) {
  serve::NedServiceOptions options;
  options.num_threads = config.workers;
  options.queue_capacity = config.queue;
  options.default_deadline_seconds = config.deadline_seconds;
  serve::NedService service(registry, options);

  // Pin the starting generation so its gold can be computed after the
  // run even if the registry has moved on.
  std::shared_ptr<const kb::KbSnapshot> before = registry->Current();

  std::atomic<bool> stop{false};
  std::vector<std::vector<RecordedResponse>> per_client(config.clients);
  auto client = [&](size_t client_id) {
    size_t next = client_id;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t doc = next++ % work.size();
      serve::ServeResult response = service.Submit(work[doc]).get();
      per_client[client_id].push_back({doc, std::move(response)});
    }
  };

  ReloadOutcome outcome;
  util::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) clients.emplace_back(client, c);

  std::shared_ptr<const kb::KbSnapshot> after;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(0.4 * config.duration_seconds));
  if (!reload_path.empty()) {
    util::StatusOr<std::shared_ptr<const kb::KbSnapshot>> reloaded =
        registry->ReloadFromFile(reload_path);
    outcome.reload_ok = reloaded.ok();
    if (reloaded.ok()) after = reloaded.value();
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(0.6 * config.duration_seconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();

  outcome.elapsed_seconds = watch.ElapsedSeconds();
  service.Drain();
  outcome.snapshot = service.Snapshot();
  if (!reload_path.empty()) {
    outcome.reload_pause_seconds =
        outcome.snapshot.registry.last_reload_seconds;
  }

  // Serial gold per generation, against the exact snapshot that served it.
  std::map<uint64_t, const kb::KbSnapshot*> snapshots;
  snapshots[before->generation()] = before.get();
  if (after != nullptr) snapshots[after->generation()] = after.get();
  std::map<uint64_t, std::vector<core::DisambiguationResult>> gold;
  for (const auto& [generation, snapshot] : snapshots) {
    std::vector<core::DisambiguationResult>& results = gold[generation];
    results.reserve(work.size());
    for (const core::DisambiguationProblem& problem : work) {
      results.push_back(snapshot->system().Disambiguate(problem, {}));
    }
  }

  for (const std::vector<RecordedResponse>& responses : per_client) {
    for (const RecordedResponse& response : responses) {
      const serve::ServeResult& r = response.result;
      if (r.status.ok()) {
        ++outcome.completed;
        ++outcome.completed_by_generation[r.generation];
        auto it = gold.find(r.generation);
        if (it == gold.end() ||
            !SameAnnotation(r.result, it->second[response.doc])) {
          ++outcome.mismatches;
        }
      } else if (r.status.code() == util::StatusCode::kResourceExhausted) {
        ++outcome.shed;
      } else if (r.status.code() == util::StatusCode::kDeadlineExceeded) {
        ++outcome.expired;
      } else {
        ++outcome.failed;
      }
    }
  }
  return outcome;
}

double Qps(size_t completed, double elapsed) {
  return elapsed > 0.0 ? completed / elapsed : 0.0;
}

/// Steady-state allocator traffic of one warm cached request, measured
/// with the global-new interposer (util/alloc_probe.h). The measuring
/// thread runs exactly what a warmed service worker runs per dequeue —
/// Disambiguate against a fully warmed relatedness cache — so the number
/// is the residual malloc churn of the request path itself (result
/// assembly, graph scratch), independent of client/queue plumbing.
struct AllocProbeReport {
  bool available = false;  // false under sanitizers / opt-out builds
  size_t requests = 0;
  double allocs_per_request = 0.0;
  double frees_per_request = 0.0;
  double bytes_per_request = 0.0;
};

/// The committed steady-state bound for the smoke gate, in allocations
/// per warm cached request on the smoke corpus. The paired ctest
/// regression (AllocProbeTest) pins the micro-paths (dictionary lookup,
/// cache hit, histogram record, warm fork-join) at exactly zero; this
/// end-to-end bound additionally covers per-request result assembly and
/// per-document graph scratch, which scale with document size and so
/// cannot be zero. Raising it requires a comment explaining which new
/// allocation is justified.
constexpr double kSmokeAllocsPerRequestBound = 6000.0;

AllocProbeReport MeasureAllocsPerRequest(
    const core::NedSystem& system,
    const std::vector<core::DisambiguationProblem>& work) {
  AllocProbeReport report;
  report.available = util::AllocProbeAvailable();
  if (!report.available || work.empty()) return report;
  // Two warmup passes populate every lazily-built structure (relatedness
  // cache entries for these exact documents, thread-local scratch) so the
  // measured pass sees only steady-state traffic.
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::DisambiguationProblem& problem : work) {
      (void)system.Disambiguate(problem, {});
    }
  }
  util::ScopedAllocationCount probe;
  for (const core::DisambiguationProblem& problem : work) {
    (void)system.Disambiguate(problem, {});
  }
  report.requests = work.size();
  const double n = static_cast<double>(work.size());
  report.allocs_per_request = static_cast<double>(probe.allocations()) / n;
  report.frees_per_request = static_cast<double>(probe.deallocations()) / n;
  report.bytes_per_request = static_cast<double>(probe.bytes_allocated()) / n;
  return report;
}

/// One point of the QPS-vs-workers curve.
struct ScalingPoint {
  size_t workers = 0;
  double qps = 0.0;
  double speedup = 0.0;  // vs the 1-worker point of the same sweep
};

/// One point of the heavy-doc intra-request parallelism sweep: the same
/// 50+ mention corpus and client pressure, only max_tasks_per_request
/// varies. p99_speedup is the serial (1-task) p99 over this point's p99.
struct HeavyDocPoint {
  size_t max_tasks = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t parallel_tasks = 0;
  uint64_t parallel_steals = 0;
  double p99_speedup = 0.0;
};

std::string JsonOutputPath() { return bench::JsonOutputPath("BENCH_serve.json"); }

/// `steady`/`reload` may be null (smoke mode skips the reload scenario);
/// the JSON then carries "reload_under_load": null.
void WriteJson(const std::vector<std::pair<RunConfig, RunOutcome>>& runs,
               const std::vector<ScalingPoint>& scaling,
               const std::vector<HeavyDocPoint>& heavy,
               const AllocProbeReport& alloc,
               const RunConfig* reload_config, const ReloadOutcome* steady,
               const ReloadOutcome* reload) {
  const std::string path = JsonOutputPath();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"scenarios\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunConfig& config = runs[i].first;
    const RunOutcome& outcome = runs[i].second;
    const serve::ServiceMetricsSnapshot& m = outcome.snapshot.metrics;
    std::fprintf(
        out,
        "    {\"label\": \"%s\", \"workers\": %zu, \"qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"shed\": %zu, \"expired\": %zu, \"mismatches\": %zu}%s\n",
        config.label.c_str(), config.workers,
        Qps(outcome.completed, outcome.elapsed_seconds),
        1000 * m.total_latency.p50_seconds, 1000 * m.total_latency.p95_seconds,
        1000 * m.total_latency.p99_seconds, outcome.shed, outcome.expired,
        outcome.mismatches, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(out,
                 "    {\"workers\": %zu, \"qps\": %.1f, \"speedup\": %.3f}%s\n",
                 scaling[i].workers, scaling[i].qps, scaling[i].speedup,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"heavy_doc\": [\n");
  for (size_t i = 0; i < heavy.size(); ++i) {
    const HeavyDocPoint& p = heavy[i];
    std::fprintf(
        out,
        "    {\"max_tasks\": %zu, \"qps\": %.1f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"parallel_tasks\": %llu, "
        "\"parallel_steals\": %llu, \"p99_speedup\": %.3f}%s\n",
        p.max_tasks, p.qps, p.p50_ms, p.p95_ms, p.p99_ms,
        static_cast<unsigned long long>(p.parallel_tasks),
        static_cast<unsigned long long>(p.parallel_steals), p.p99_speedup,
        i + 1 < heavy.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Steady-state allocator traffic of one warm cached request (see
  // AllocProbeReport). "available" is false when global-new interposition
  // is compiled out (sanitizer builds); the per-request numbers are then
  // absent rather than misleading zeros.
  if (alloc.available) {
    std::fprintf(out,
                 "  \"alloc_probe\": {\"available\": true, "
                 "\"requests\": %zu, \"allocs_per_request\": %.1f, "
                 "\"frees_per_request\": %.1f, "
                 "\"bytes_per_request\": %.0f},\n",
                 alloc.requests, alloc.allocs_per_request,
                 alloc.frees_per_request, alloc.bytes_per_request);
  } else {
    std::fprintf(out, "  \"alloc_probe\": {\"available\": false},\n");
  }
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  if (!scaling.empty()) {
    const ScalingPoint& last = scaling.back();
    std::fprintf(out,
                 "  \"scaling_summary\": {\"max_workers\": %zu, "
                 "\"speedup_at_max\": %.3f},\n",
                 last.workers, last.speedup);
  }
  if (reload_config == nullptr || steady == nullptr || reload == nullptr) {
    std::fprintf(out, "  \"reload_under_load\": null\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return;
  }
  const serve::ServiceMetricsSnapshot& sm = steady->snapshot.metrics;
  const serve::ServiceMetricsSnapshot& rm = reload->snapshot.metrics;
  const double steady_p99 = 1000 * sm.total_latency.p99_seconds;
  const double reload_p99 = 1000 * rm.total_latency.p99_seconds;
  std::fprintf(out, "  \"reload_under_load\": {\n");
  std::fprintf(out, "    \"label\": \"%s\",\n", reload_config->label.c_str());
  std::fprintf(out, "    \"qps\": %.1f,\n",
               Qps(reload->completed, reload->elapsed_seconds));
  std::fprintf(out,
               "    \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n",
               1000 * rm.total_latency.p50_seconds,
               1000 * rm.total_latency.p95_seconds, reload_p99);
  std::fprintf(out, "    \"steady_p99_ms\": %.3f,\n", steady_p99);
  std::fprintf(out, "    \"p99_ratio_vs_steady\": %.3f,\n",
               steady_p99 > 0.0 ? reload_p99 / steady_p99 : 0.0);
  std::fprintf(out, "    \"reload_pause_seconds\": %.6f,\n",
               reload->reload_pause_seconds);
  std::fprintf(out, "    \"shed\": %zu, \"failed\": %zu, \"expired\": %zu,\n",
               reload->shed, reload->failed, reload->expired);
  std::fprintf(out, "    \"mismatches\": %zu,\n", reload->mismatches);
  std::fprintf(out, "    \"completed_by_generation\": {");
  size_t emitted = 0;
  for (const auto& [generation, count] : reload->completed_by_generation) {
    std::fprintf(out, "%s\"%llu\": %zu", emitted++ > 0 ? ", " : "",
                 static_cast<unsigned long long>(generation), count);
  }
  std::fprintf(out, "}\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const bool smoke = std::getenv("BENCH_SERVE_SMOKE") != nullptr;
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());

  synth::CorpusPreset preset = synth::GigawordEePreset();
  preset.corpus.num_documents = smoke ? 64 : 160;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  // Heavy-document corpus for the intra-request parallelism sweep (50+
  // mentions per document); generated while the world still owns its KB.
  synth::CorpusConfig heavy_config = preset.corpus;
  heavy_config.seed = 2026;
  heavy_config.num_documents = smoke ? 6 : 12;
  heavy_config.doc_tokens = 500;
  heavy_config.entities_per_doc = 35;  // x1.5 repeats => 50+ mentions/doc
  heavy_config.mention_repeat = 1.5;
  corpus::Corpus heavy_docs =
      synth::CorpusGenerator(&world, heavy_config).Generate();
  // The registry-backed scenario shares ownership of the KB with the
  // snapshots it publishes, so the world's KB moves into a shared_ptr.
  std::shared_ptr<const kb::KnowledgeBase> base_kb =
      std::move(world.knowledge_base);

  core::CandidateModelStore models(base_kb.get());
  core::MilneWittenRelatedness mw(base_kb.get());
  core::RelatednessCache cache;
  core::CachedRelatednessMeasure cached_mw(&mw, &cache);
  core::Aida aida(&models, &cached_mw, core::AidaOptions());

  std::vector<core::DisambiguationProblem> work;
  work.reserve(docs.size());
  for (const corpus::Document& doc : docs) {
    work.push_back(bench::ToProblem(doc));
  }

  // Serial reference with an *uncached* measure: the served results must
  // match it byte-for-byte regardless of concurrency or cache reuse.
  core::Aida serial(&models, &mw, core::AidaOptions());
  std::vector<core::DisambiguationResult> gold;
  gold.reserve(work.size());
  util::Stopwatch serial_watch;
  for (const core::DisambiguationProblem& problem : work) {
    gold.push_back(serial.Disambiguate(problem, {}));
  }
  const double serial_seconds = serial_watch.ElapsedSeconds();

  bench::PrintHeader("aida::serve — closed-loop load test");
  std::printf("corpus: %zu documents; serial Aida baseline %.2f ms/doc "
              "(%.0f QPS single-threaded)\n\n",
              docs.size(), 1000 * serial_seconds / docs.size(),
              docs.size() / serial_seconds);

  // The worker sweep holds the traffic shape fixed (queue 64, four
  // closed-loop clients per worker) and varies only the worker count —
  // the QPS-vs-workers scaling curve. Smoke mode keeps just its two
  // endpoints, {1, hardware} workers, so CI can gate on the ratio.
  auto sweep_point = [&](size_t workers, double duration) {
    RunConfig config;
    config.label = std::to_string(workers) + "w/64q/" +
                   std::to_string(4 * workers) + "c";
    config.workers = workers;
    config.queue = 64;
    config.clients = 4 * workers;
    config.deadline_seconds = 0.0;
    config.duration_seconds = duration;
    config.in_scaling_curve = true;
    return config;
  };

  std::vector<RunConfig> configs;
  if (smoke) {
    configs.push_back(sweep_point(1, 0.5));
    if (hw > 1) configs.push_back(sweep_point(hw, 0.5));
  } else {
    for (size_t workers : {1, 2, 4, 8}) {
      configs.push_back(sweep_point(workers, 1.2));
    }
    // Undersized queue: 16 clients contend for 2 workers + 4 slots, so
    // admission control must shed instead of parking callers.
    configs.push_back({"2w/4q/16c (undersized)", 2, 4, 16, 0.0, 1.2});
    // Tight deadline: requests expire in queue or cancel mid-flight.
    configs.push_back({"2w/64q/16c + 5ms deadline", 2, 64, 16, 0.005, 1.2});
  }

  std::printf("%-26s %8s %8s %8s %8s %8s %8s\n", "config", "QPS", "p50ms",
              "p95ms", "p99ms", "shed", "expired");
  bench::PrintRule();
  size_t total_mismatches = 0;
  std::vector<std::pair<RunConfig, RunOutcome>> runs;
  for (const RunConfig& config : configs) {
    RunOutcome outcome = RunClosedLoop(aida, &cache, work, gold, config);
    const serve::ServiceMetricsSnapshot& m = outcome.snapshot.metrics;
    std::printf("%-26s %8.0f %8.2f %8.2f %8.2f %8zu %8zu\n",
                config.label.c_str(),
                Qps(outcome.completed, outcome.elapsed_seconds),
                1000 * m.total_latency.p50_seconds,
                1000 * m.total_latency.p95_seconds,
                1000 * m.total_latency.p99_seconds,
                outcome.shed,
                outcome.expired);
    total_mismatches += outcome.mismatches;
    if (outcome.mismatches != 0) {
      std::printf("  !! %zu completed responses differed from serial Aida\n",
                  outcome.mismatches);
    }
    runs.emplace_back(config, std::move(outcome));
  }
  bench::PrintRule();
  std::printf("all completed responses byte-identical to serial Aida: %s\n",
              total_mismatches == 0 ? "yes" : "NO");
  core::RelatednessCacheStats cache_stats = cache.Snapshot();
  std::printf("shared relatedness cache: %zu entries, %.1f%% hit rate "
              "(%llu hits / %llu misses)\n\n",
              static_cast<size_t>(cache_stats.entries),
              100.0 * cache_stats.HitRate(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));

  // --- QPS-vs-workers scaling curve ------------------------------------
  std::vector<ScalingPoint> scaling;
  for (const auto& [config, outcome] : runs) {
    if (!config.in_scaling_curve) continue;
    ScalingPoint point;
    point.workers = config.workers;
    point.qps = Qps(outcome.completed, outcome.elapsed_seconds);
    scaling.push_back(point);
  }
  const double base_qps = scaling.empty() ? 0.0 : scaling.front().qps;
  bench::PrintHeader("aida::serve — QPS vs workers");
  for (ScalingPoint& point : scaling) {
    point.speedup = base_qps > 0.0 ? point.qps / base_qps : 0.0;
    std::printf("  %2zu workers: %8.0f QPS  (%.2fx vs 1 worker)\n",
                point.workers, point.qps, point.speedup);
  }
  std::printf("  (machine has %zu hardware threads)\n\n", hw);

  bool scaling_healthy = true;
  if (scaling.size() >= 2 && hw > 1) {
    // The bug this bench guards against: ADDING workers LOSING throughput.
    // Modest sub-linearity is fine (the curve reports it); dropping below
    // 0.7x single-worker QPS at the top of the sweep is the regression.
    const ScalingPoint& top = scaling.back();
    if (top.qps < 0.7 * base_qps) {
      std::printf("  !! negative scaling: %zu workers deliver %.0f QPS "
                  "< 0.7x the 1-worker %.0f QPS\n",
                  top.workers, top.qps, base_qps);
      scaling_healthy = false;
    }
  }

  // --- Steady-state allocations per warm cached request ----------------
  // Measured after the worker sweep so the shared relatedness cache is in
  // its steady serving state for this corpus.
  bench::PrintHeader("aida::serve — allocations per warm cached request");
  const AllocProbeReport alloc_report = MeasureAllocsPerRequest(aida, work);
  bool alloc_healthy = true;
  if (alloc_report.available) {
    std::printf("  %.1f allocations / %.1f frees / %.0f bytes per request "
                "(over %zu warm requests)\n",
                alloc_report.allocs_per_request,
                alloc_report.frees_per_request,
                alloc_report.bytes_per_request, alloc_report.requests);
    if (smoke &&
        alloc_report.allocs_per_request > kSmokeAllocsPerRequestBound) {
      std::printf("  !! steady-state allocation regression: %.1f allocations "
                  "per request exceeds the committed bound of %.0f\n",
                  alloc_report.allocs_per_request,
                  kSmokeAllocsPerRequestBound);
      alloc_healthy = false;
    }
  } else {
    std::printf("  (alloc probe unavailable in this build — skipped)\n");
  }
  std::printf("\n");

  // --- Heavy documents: p99 vs max-tasks-per-request -------------------
  // Few clients, 50+ mention documents: the workload where one request is
  // too big for one core and intra-request task parallelism is the only
  // way to move the tail. Same service shape at every point (2 workers, a
  // dedicated task-thread pool); only the per-request task cap varies.
  bench::PrintHeader("aida::serve — heavy documents, p99 vs max tasks");
  std::vector<core::DisambiguationProblem> heavy_work;
  heavy_work.reserve(heavy_docs.size());
  size_t heavy_mentions = 0;
  for (const corpus::Document& doc : heavy_docs) {
    heavy_mentions += doc.mentions.size();
    heavy_work.push_back(bench::ToProblem(doc));
  }
  // Uncached relatedness: every request pays the full coherence cost, the
  // phase the task engine parallelizes.
  std::vector<core::DisambiguationResult> heavy_gold;
  heavy_gold.reserve(heavy_work.size());
  util::Stopwatch heavy_watch;
  for (const core::DisambiguationProblem& problem : heavy_work) {
    heavy_gold.push_back(serial.Disambiguate(problem, {}));
  }
  const double heavy_serial_seconds = heavy_watch.ElapsedSeconds();
  std::printf("corpus: %zu documents, %.1f mentions/doc; serial Aida "
              "%.2f ms/doc\n\n",
              heavy_docs.size(),
              static_cast<double>(heavy_mentions) / heavy_docs.size(),
              1000 * heavy_serial_seconds / heavy_docs.size());

  const size_t task_threads = std::min<size_t>(7, std::max<size_t>(1, hw - 1));
  const double heavy_duration = smoke ? 0.5 : 1.2;
  std::vector<size_t> task_sweep =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 2, 4, 8};
  std::printf("%-26s %8s %8s %8s %8s %10s\n", "config", "QPS", "p50ms",
              "p95ms", "p99ms", "p99 spdup");
  bench::PrintRule();
  std::vector<HeavyDocPoint> heavy_points;
  for (size_t max_tasks : task_sweep) {
    RunConfig config;
    config.label = "2w/32q/2c heavy " + std::to_string(max_tasks) + "t";
    config.workers = 2;
    config.queue = 32;
    config.clients = 2;
    config.deadline_seconds = 0.0;
    config.duration_seconds = heavy_duration;
    config.task_threads = task_threads;
    config.max_tasks_per_request = max_tasks;
    RunOutcome outcome =
        RunClosedLoop(serial, nullptr, heavy_work, heavy_gold, config);
    total_mismatches += outcome.mismatches;
    if (outcome.mismatches != 0) {
      std::printf("  !! %zu parallel responses differed from serial Aida\n",
                  outcome.mismatches);
    }
    const serve::ServiceMetricsSnapshot& m = outcome.snapshot.metrics;
    HeavyDocPoint point;
    point.max_tasks = max_tasks;
    point.qps = Qps(outcome.completed, outcome.elapsed_seconds);
    point.p50_ms = 1000 * m.total_latency.p50_seconds;
    point.p95_ms = 1000 * m.total_latency.p95_seconds;
    point.p99_ms = 1000 * m.total_latency.p99_seconds;
    point.parallel_tasks = m.parallel_tasks;
    point.parallel_steals = m.parallel_steals;
    point.p99_speedup = !heavy_points.empty() && point.p99_ms > 0.0
                            ? heavy_points.front().p99_ms / point.p99_ms
                            : 1.0;
    std::printf("%-26s %8.0f %8.2f %8.2f %8.2f %9.2fx\n", config.label.c_str(),
                point.qps, point.p50_ms, point.p95_ms, point.p99_ms,
                point.p99_speedup);
    heavy_points.push_back(point);
  }
  bench::PrintRule();
  std::printf("  (task threads: %zu; machine has %zu hardware threads)\n\n",
              task_threads, hw);

  bool heavy_healthy = true;
  if (hw >= 4 && heavy_points.size() >= 2) {
    // The regression gate: intra-request parallelism must never make the
    // heavy tail WORSE than serial. (On big multi-core machines the full
    // run should show >= 2x; CI smoke only gates the >= 1.0x floor.)
    const HeavyDocPoint& top = heavy_points.back();
    if (top.p99_speedup < 1.0) {
      std::printf("  !! heavy-doc regression: %zu tasks p99 %.2f ms is worse "
                  "than serial p99 %.2f ms\n",
                  top.max_tasks, top.p99_ms, heavy_points.front().p99_ms);
      heavy_healthy = false;
    }
  }

  if (smoke) {
    // Smoke mode stops here: no reload scenario; gate on scaling and
    // heavy-doc health.
    WriteJson(runs, scaling, heavy_points, alloc_report, nullptr, nullptr,
              nullptr);
    return (total_mismatches == 0 && scaling_healthy && heavy_healthy &&
            alloc_healthy)
               ? 0
               : 1;
  }

  // --- Hot reload under load -------------------------------------------
  bench::PrintHeader("aida::serve — KB hot reload under load");
  const std::string kb_path = "bench_serve_world.kb";
  util::Status saved = kb::SaveKnowledgeBase(*base_kb, kb_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "failed to save KB: %s\n",
                 saved.ToString().c_str());
    return 1;
  }

  const RunConfig reload_config = {"2w/256q/4c + reload", 2, 256, 4, 0.0,
                                   2.0};
  bool reload_healthy = true;

  // Steady-state twin of the reload run: identical traffic shape, no
  // reload — the p99 yardstick for "reload degrades p99 < 2x".
  auto steady_registry = std::make_shared<kb::SnapshotRegistry>();
  if (!steady_registry->Publish(base_kb, "initial").ok()) {
    std::fprintf(stderr, "failed to publish initial snapshot\n");
    return 1;
  }
  ReloadOutcome steady =
      RunReloadUnderLoad(steady_registry, "", work, reload_config);

  auto reload_registry = std::make_shared<kb::SnapshotRegistry>();
  if (!reload_registry->Publish(base_kb, "initial").ok()) {
    std::fprintf(stderr, "failed to publish initial snapshot\n");
    return 1;
  }
  ReloadOutcome reload =
      RunReloadUnderLoad(reload_registry, kb_path, work, reload_config);
  std::remove(kb_path.c_str());

  const double steady_p99 = steady.snapshot.metrics.total_latency.p99_seconds;
  const double reload_p99 = reload.snapshot.metrics.total_latency.p99_seconds;
  std::printf("steady run:  %zu completed, %zu shed, %zu failed, "
              "p99 %.2f ms\n",
              steady.completed, steady.shed, steady.failed, 1000 * steady_p99);
  std::printf("reload run:  %zu completed, %zu shed, %zu failed, "
              "p99 %.2f ms (%.2fx steady)\n",
              reload.completed, reload.shed, reload.failed, 1000 * reload_p99,
              steady_p99 > 0.0 ? reload_p99 / steady_p99 : 0.0);
  std::printf("reload build+validate+swap: %.1f ms (serving continued "
              "throughout)\n",
              1000 * reload.reload_pause_seconds);
  std::printf("completed by generation:");
  for (const auto& [generation, count] : reload.completed_by_generation) {
    std::printf(" gen%llu=%zu", static_cast<unsigned long long>(generation),
                count);
  }
  std::printf("\n");
  if (!reload.reload_ok) {
    std::printf("  !! ReloadFromFile failed\n");
    reload_healthy = false;
  }
  if (reload.shed != 0 || reload.failed != 0) {
    std::printf("  !! reload run shed/failed requests (%zu shed, %zu "
                "failed) — hot reload must not drop traffic\n",
                reload.shed, reload.failed);
    reload_healthy = false;
  }
  if (reload.mismatches != 0) {
    std::printf("  !! %zu responses differed from their generation's "
                "serial gold\n",
                reload.mismatches);
    reload_healthy = false;
  }
  if (reload.completed_by_generation.size() < 2) {
    std::printf("  (note: all completions landed in one generation — "
                "reload finished outside the traffic window)\n");
  }
  std::printf("served generations byte-identical to their serial gold: %s\n",
              reload.mismatches == 0 ? "yes" : "NO");

  WriteJson(runs, scaling, heavy_points, alloc_report, &reload_config, &steady,
            &reload);
  return (total_mismatches == 0 && reload_healthy && scaling_healthy &&
          heavy_healthy && alloc_healthy)
             ? 0
             : 1;
}
