// Reproduces Table 3.1 (CoNLL dataset properties) on the synthetic
// CoNLL-like corpus: documents, mentions, out-of-KB mentions, average
// words/mentions per article, and dictionary ambiguity.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

int main() {
  using namespace aida;

  synth::CorpusPreset preset = synth::ConllPreset();
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  const kb::KnowledgeBase& kb = *world.knowledge_base;

  size_t mentions = 0;
  size_t no_entity = 0;
  size_t words = 0;
  size_t distinct_total = 0;
  size_t with_candidates = 0;
  size_t candidate_sum = 0;
  for (const corpus::Document& doc : docs) {
    words += doc.tokens.size();
    mentions += doc.mentions.size();
    std::set<std::string> distinct;
    for (const corpus::GoldMention& m : doc.mentions) {
      if (m.out_of_kb()) ++no_entity;
      distinct.insert(m.surface);
      auto candidates = kb.dictionary().Lookup(m.surface);
      if (!candidates.empty()) {
        ++with_candidates;
        candidate_sum += candidates.size();
      }
    }
    distinct_total += distinct.size();
  }

  bench::PrintHeader(
      "Table 3.1 — dataset properties (synthetic CoNLL-like corpus)");
  std::printf("%-44s %10zu\n", "articles", docs.size());
  std::printf("%-44s %10zu\n", "mentions (total)", mentions);
  std::printf("%-44s %10zu\n", "mentions with no entity (out-of-KB)",
              no_entity);
  std::printf("%-44s %10.1f\n", "words per article (avg.)",
              static_cast<double>(words) / docs.size());
  std::printf("%-44s %10.1f\n", "mentions per article (avg.)",
              static_cast<double>(mentions) / docs.size());
  std::printf("%-44s %10.1f\n", "distinct mentions per article (avg.)",
              static_cast<double>(distinct_total) / docs.size());
  std::printf("%-44s %10.1f\n", "mentions with candidate in KB (avg.)",
              static_cast<double>(with_candidates) / docs.size());
  std::printf("%-44s %10.1f\n", "entities per mention (avg.)",
              with_candidates
                  ? static_cast<double>(candidate_sum) / with_candidates
                  : 0.0);
  std::printf("%-44s %10.2f%%\n", "out-of-KB mention rate",
              100.0 * static_cast<double>(no_entity) /
                  static_cast<double>(mentions));
  bench::PrintRule();
  std::printf(
      "Paper reference: 1,393 articles, 34,956 mentions, 7,136 without\n"
      "entity (20.4%%), 216 words and 25 mentions per article on average.\n");
  return 0;
}
