// Reproduces Table 5.3: emerging entity identification quality on the
// GigaWord-EE-like news stream. Threshold baselines (AIDAsim, AIDAcoh,
// IW-style) against the explicit-placeholder methods (EEsim, EEcoh).
// Thresholds and the EE gamma are tuned on a train slice of earlier days,
// mirroring the paper's protocol; metrics are reported on the test days.

#include <cstdio>
#include <vector>

#include "core/baselines.h"
#include "util/string_util.h"
#include "ee_common.h"

using namespace aida;

namespace {

struct Row {
  std::string name;
  double micro = 0;
  double macro = 0;
  double ee_p = 0;
  double ee_r = 0;
  double ee_f1 = 0;
};

Row ToRow(const std::string& name, const eval::NedEvaluator& evaluator) {
  return {name,
          100 * evaluator.MicroAccuracyWithEe(),
          100 * evaluator.MacroAccuracyWithEe(),
          100 * evaluator.EePrecision(),
          100 * evaluator.EeRecall(),
          100 * evaluator.EeF1()};
}

// Tunes gamma for a placeholder-based discoverer on the train docs.
double TuneGamma(bench::EeExperiment& exp, const core::NedSystem& ned,
                 const std::vector<const corpus::Document*>& train) {
  double best_gamma = 0.2;
  double best_f1 = -1;
  for (double gamma : {0.1, 0.2, 0.3, 0.45}) {
    ee::EeDiscoveryOptions options;
    options.gamma = gamma;
    options.harvest_days = 7;
    options.harvest_existing = false;  // enabled only for the final runs
    ee::EmergingEntityDiscoverer discoverer(exp.models.get(), &ned,
                                            &exp.stream, options);
    eval::NedEvaluator evaluator;
    for (const corpus::Document* doc : train) {
      evaluator.AddDocument(*doc, discoverer.Discover(*doc));
    }
    if (evaluator.EeF1() > best_f1) {
      best_f1 = evaluator.EeF1();
      best_gamma = gamma;
    }
  }
  return best_gamma;
}

}  // namespace

int main() {
  bench::EeExperiment exp = bench::EeExperiment::Make();
  // Train on days 20-23, test on days 25-30 (the last chunk of the
  // month-long stream); earlier days serve as harvesting history.
  std::vector<const corpus::Document*> train = exp.Slice(20, 23);
  if (train.size() > 60) train.resize(60);
  std::vector<const corpus::Document*> test = exp.Slice(25, 30);
  if (test.size() > 150) test.resize(150);
  std::printf("train docs: %zu, test docs: %zu\n", train.size(),
              test.size());

  core::KulkarniBaseline iw(exp.models.get(), nullptr,
                            core::KulkarniBaseline::Mode::kSimilarityPrior);

  std::vector<Row> rows;

  // ---- Threshold baselines --------------------------------------------------
  {
    double t = bench::TuneThreshold(*exp.aida_sim, train, false,
                                    exp.models.get());
    eval::NedEvaluator evaluator;
    bench::EvaluateThresholdBaseline(*exp.aida_sim, test, t, false,
                                     exp.models.get(), evaluator);
    rows.push_back(ToRow(util::StrFormat("AIDAsim (t=%.2f)", t), evaluator));
  }
  {
    double t = bench::TuneThreshold(*exp.aida_coh, train, true,
                                    exp.models.get());
    eval::NedEvaluator evaluator;
    bench::EvaluateThresholdBaseline(*exp.aida_coh, test, t, true,
                                     exp.models.get(), evaluator);
    rows.push_back(ToRow(util::StrFormat("AIDAcoh (t=%.2f)", t), evaluator));
  }
  {
    double t = bench::TuneThreshold(iw, train, false, exp.models.get());
    eval::NedEvaluator evaluator;
    bench::EvaluateThresholdBaseline(iw, test, t, false, exp.models.get(),
                                     evaluator);
    rows.push_back(ToRow(util::StrFormat("IW (t=%.2f)", t), evaluator));
  }

  // ---- Placeholder methods ----------------------------------------------------
  {
    double gamma = TuneGamma(exp, *exp.aida_sim, train);
    ee::EeDiscoveryOptions options;
    options.gamma = gamma;
    options.harvest_days = 7;
    options.harvest_existing = true;
    ee::EmergingEntityDiscoverer discoverer(exp.models.get(),
                                            exp.aida_sim.get(),
                                            &exp.stream, options);
    discoverer.HarvestExistingEntities(14, 24);
    eval::NedEvaluator evaluator;
    for (const corpus::Document* doc : test) {
      evaluator.AddDocument(*doc, discoverer.Discover(*doc));
    }
    rows.push_back(
        ToRow(util::StrFormat("EEsim (g=%.2f)", gamma), evaluator));
  }
  {
    double gamma = TuneGamma(exp, *exp.aida_kore, train);
    ee::EeDiscoveryOptions options;
    options.gamma = gamma;
    options.harvest_days = 7;
    options.harvest_existing = true;
    ee::EmergingEntityDiscoverer discoverer(exp.models.get(),
                                            exp.aida_kore.get(),
                                            &exp.stream, options);
    discoverer.HarvestExistingEntities(14, 24);
    eval::NedEvaluator evaluator;
    for (const corpus::Document* doc : test) {
      evaluator.AddDocument(*doc, discoverer.Discover(*doc));
    }
    rows.push_back(
        ToRow(util::StrFormat("EEcoh (g=%.2f)", gamma), evaluator));
  }

  bench::PrintHeader(
      "Table 5.3 — emerging entity identification (GigaWord-EE-like test "
      "days)");
  std::printf("%-18s %9s %9s %8s %8s %8s\n", "method", "MicA %", "MacA %",
              "EE P %", "EE R %", "EE F1 %");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-18s %9.2f %9.2f %8.2f %8.2f %8.2f\n", row.name.c_str(),
                row.micro, row.macro, row.ee_p, row.ee_r, row.ee_f1);
  }
  bench::PrintRule();
  std::printf(
      "Paper shape: the explicit placeholder methods (EEsim/EEcoh) achieve\n"
      "far higher EE precision than the threshold baselines (98/94 vs\n"
      "73/53/67) at somewhat lower recall, winning on EE F1; EEsim is the\n"
      "most precise.\n");
  return 0;
}
