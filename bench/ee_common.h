#ifndef AIDA_BENCH_EE_COMMON_H_
#define AIDA_BENCH_EE_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "ee/confidence.h"
#include "ee/ee_discovery.h"
#include "eval/metrics.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

namespace aida::bench {

/// Shared setup for the chapter-5 experiments: the GigaWord-EE-like
/// stream, the train/test day split, and the baseline systems.
struct EeExperiment {
  synth::World world;
  corpus::Corpus stream;
  std::unique_ptr<core::CandidateModelStore> models;
  std::unique_ptr<core::MilneWittenRelatedness> mw;
  std::unique_ptr<kore::KoreRelatedness> kore;
  std::unique_ptr<core::Aida> aida_sim;   // keyphrase similarity only
  std::unique_ptr<core::Aida> aida_coh;   // full AIDA with MW coherence
  std::unique_ptr<core::Aida> aida_kore;  // full AIDA with KORE coherence

  /// Documents of the stream whose day falls in [first, last] and that
  /// contain at least `min_mentions` mentions.
  std::vector<const corpus::Document*> Slice(int64_t first, int64_t last,
                                             size_t min_mentions = 1) const {
    std::vector<const corpus::Document*> docs;
    for (const corpus::Document& doc : stream) {
      if (doc.day < first || doc.day > last) continue;
      if (doc.mentions.size() < min_mentions) continue;
      docs.push_back(&doc);
    }
    return docs;
  }

  static EeExperiment Make() {
    EeExperiment exp;
    synth::CorpusPreset preset = synth::GigawordEePreset();
    exp.world = synth::WorldGenerator(preset.world).Generate();
    exp.stream =
        synth::CorpusGenerator(&exp.world, preset.corpus).Generate();
    exp.models = std::make_unique<core::CandidateModelStore>(
        exp.world.knowledge_base.get());
    exp.mw = std::make_unique<core::MilneWittenRelatedness>(
        exp.world.knowledge_base.get());
    exp.kore = std::make_unique<kore::KoreRelatedness>();

    core::AidaOptions sim_options;
    sim_options.use_coherence = false;
    exp.aida_sim = std::make_unique<core::Aida>(exp.models.get(),
                                                exp.kore.get(), sim_options);
    exp.aida_coh = std::make_unique<core::Aida>(
        exp.models.get(), exp.mw.get(), core::AidaOptions());
    exp.aida_kore = std::make_unique<core::Aida>(
        exp.models.get(), exp.kore.get(), core::AidaOptions());
    return exp;
  }
};

/// Evaluates threshold-based EE labeling (the baselines of Table 5.3):
/// run `system`, compute per-mention confidences, mark low-confidence
/// mentions as EE.
inline void EvaluateThresholdBaseline(
    const core::NedSystem& system,
    const std::vector<const corpus::Document*>& docs, double threshold,
    bool use_conf, const core::CandidateModelStore* models,
    eval::NedEvaluator& evaluator) {
  std::unique_ptr<ee::ConfidenceEstimator> estimator;
  if (use_conf) {
    ee::ConfidenceOptions conf_options;
    conf_options.rounds = 12;
    estimator = std::make_unique<ee::ConfidenceEstimator>(models, &system,
                                                          conf_options);
  }
  for (const corpus::Document* doc : docs) {
    core::DisambiguationProblem problem = ToProblem(*doc);
    core::DisambiguationResult result = system.Disambiguate(problem, {});
    std::vector<double> confidences =
        use_conf ? estimator->Conf(problem, result)
                 : ee::ConfidenceEstimator::NormalizedScores(result);
    evaluator.AddDocument(
        *doc, ee::ApplyEeThreshold(result, confidences, threshold));
  }
}

/// Sweeps thresholds on `train` docs and returns the one maximizing EE F1.
inline double TuneThreshold(const core::NedSystem& system,
                            const std::vector<const corpus::Document*>& train,
                            bool use_conf,
                            const core::CandidateModelStore* models) {
  double best_threshold = 0.1;
  double best_f1 = -1.0;
  for (double threshold :
       {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    eval::NedEvaluator evaluator;
    EvaluateThresholdBaseline(system, train, threshold, use_conf, models,
                              evaluator);
    if (evaluator.EeF1() > best_f1) {
      best_f1 = evaluator.EeF1();
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

}  // namespace aida::bench

#endif  // AIDA_BENCH_EE_COMMON_H_
