// Reproduces Table 4.4 and Figures 4.4/4.5: per-document relatedness
// comparison counts and disambiguation running time for MW, exact KORE,
// KORE-LSH-G and KORE-LSH-F over the CoNLL-like collection, reported as
// mean / stddev / 0.9-quantile plus curve samples over documents ordered
// by candidate-entity count. A final section measures the batch-level
// RelatednessCache: evaluations saved, hit rate, and speedup over a
// multi-document batch, with parallel results checked against serial.
//
// Results are also written to BENCH_kore_efficiency.json at the repo
// root for machine consumption.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "core/batch.h"
#include "core/relatedness_cache.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/stopwatch.h"

using namespace aida;

namespace {

struct Stats {
  double mean = 0;
  double stddev = 0;
  double q90 = 0;
};

Stats Summarize(std::vector<double> values) {
  Stats stats;
  if (values.empty()) return stats;
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  stats.mean = sum / values.size();
  double var = 0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(var / values.size());
  std::sort(values.begin(), values.end());
  stats.q90 = values[static_cast<size_t>(0.9 * (values.size() - 1))];
  return stats;
}

/// One JSON row of the batch-memoization table.
struct BatchRow {
  std::string measure;
  unsigned long long serial_evals = 0;
  unsigned long long cached_evals = 0;
  double hit_rate = 0.0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

bool ResultsIdentical(const std::vector<core::DisambiguationResult>& a,
                      const std::vector<core::DisambiguationResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t d = 0; d < a.size(); ++d) {
    if (a[d].mentions.size() != b[d].mentions.size()) return false;
    for (size_t m = 0; m < a[d].mentions.size(); ++m) {
      const core::MentionResult& x = a[d].mentions[m];
      const core::MentionResult& y = b[d].mentions[m];
      if (x.entity != y.entity || x.chose_placeholder != y.chose_placeholder ||
          x.score != y.score || x.candidate_scores != y.candidate_scores) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  synth::CorpusPreset preset = synth::ConllPreset();
  // A representative slice keeps the bench quick; the distribution over
  // documents is what matters.
  preset.corpus.num_documents = 400;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  core::CandidateModelStore models(world.knowledge_base.get());
  const kb::KeyphraseStore& store = world.knowledge_base->keyphrases();

  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  kore::KoreRelatedness kore;
  kore::KoreLshRelatedness lsh_g = kore::KoreLshRelatedness::Good(&store);
  kore::KoreLshRelatedness lsh_f = kore::KoreLshRelatedness::Fast(&store);
  std::vector<std::pair<std::string, const core::RelatednessMeasure*>>
      measures = {{"MW", &mw},
                  {"KORE", &kore},
                  {"KORE-LSH-G", &lsh_g},
                  {"KORE-LSH-F", &lsh_f}};

  // Candidate-entity count per document, for the x-axis of Figs 4.4/4.5.
  std::vector<size_t> doc_candidates(docs.size(), 0);
  for (size_t d = 0; d < docs.size(); ++d) {
    for (const corpus::GoldMention& gm : docs[d].mentions) {
      doc_candidates[d] +=
          world.knowledge_base->dictionary().Lookup(gm.surface).size();
    }
  }
  std::vector<size_t> order(docs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return doc_candidates[a] < doc_candidates[b];
  });

  struct MeasureRun {
    std::vector<double> comparisons;
    std::vector<double> millis;
  };
  std::vector<MeasureRun> runs(measures.size());

  for (size_t mi = 0; mi < measures.size(); ++mi) {
    core::AidaOptions options;
    core::Aida aida(&models, measures[mi].second, options);
    runs[mi].comparisons.resize(docs.size());
    runs[mi].millis.resize(docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
      util::Stopwatch watch;
      core::DisambiguationResult result = aida.Disambiguate(problem, {});
      runs[mi].millis[d] = watch.ElapsedMillis();
      runs[mi].comparisons[d] =
          static_cast<double>(result.stats.relatedness_computations);
    }
  }

  bench::PrintHeader(
      "Table 4.4 — relatedness comparisons and runtime per document "
      "(CoNLL-like, 400 docs)");
  std::printf("%-12s %12s %12s %12s %10s %10s %10s\n", "measure",
              "cmp mean", "cmp stddev", "cmp q90", "ms mean", "ms stddev",
              "ms q90");
  bench::PrintRule(86);
  for (size_t mi = 0; mi < measures.size(); ++mi) {
    Stats cmp = Summarize(runs[mi].comparisons);
    Stats ms = Summarize(runs[mi].millis);
    std::printf("%-12s %12.0f %12.0f %12.0f %10.2f %10.2f %10.2f\n",
                measures[mi].first.c_str(), cmp.mean, cmp.stddev, cmp.q90,
                ms.mean, ms.stddev, ms.q90);
  }
  bench::PrintRule(86);

  // Figures 4.4/4.5: sampled curves over documents sorted by candidate
  // count (10 sample points).
  std::printf(
      "\nFigure 4.4/4.5 samples (documents sorted by candidate count):\n");
  std::printf("%-12s %10s", "doc rank", "cands");
  for (const auto& [name, measure] : measures) {
    std::printf(" %12s", (name + " cmp").c_str());
  }
  std::printf("\n");
  for (int p = 1; p <= 10; ++p) {
    size_t idx = order[std::min(docs.size() - 1,
                                docs.size() * p / 10 - 1)];
    std::printf("%-12d %10zu", p * 10, doc_candidates[idx]);
    for (size_t mi = 0; mi < measures.size(); ++mi) {
      std::printf(" %12.0f", runs[mi].comparisons[idx]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shape: KORE-LSH-G prunes roughly two thirds of the pairwise\n"
      "comparisons, KORE-LSH-F an order of magnitude (q90 nearly 20x), and\n"
      "runtimes follow the comparison counts. (Our MW is cheap per pair —\n"
      "sorted-list intersection on modest link lists — unlike the paper's\n"
      "large-bitvector MW, so MW wall-time is not slower than KORE here;\n"
      "the LSH speedups over exact KORE are the reproduced effect.)\n");

  // ---- Batch-level relatedness memoization ---------------------------------
  // Entity pairs recur heavily across a corpus-scale batch (the
  // streaming-NED setting); one RelatednessCache shared by all workers
  // turns the repeats into hits. Uncached/serial vs cached/parallel must
  // produce identical results — the cache stores exact values.
  const size_t batch_docs = std::min<size_t>(120, docs.size());
  std::vector<core::DisambiguationProblem> problems;
  problems.reserve(batch_docs);
  for (size_t d = 0; d < batch_docs; ++d) {
    problems.push_back(bench::ToProblem(docs[d]));
  }

  std::vector<BatchRow> batch_rows;
  bench::PrintHeader(
      "Batch memoization — shared RelatednessCache over a 120-doc batch");
  std::printf("%-12s %12s %12s %10s %10s %10s %9s %6s\n", "measure",
              "evals", "evals+cache", "hit rate", "ser ms", "par ms",
              "speedup", "same");
  bench::PrintRule(88);
  for (size_t mi = 0; mi < measures.size(); ++mi) {
    core::AidaOptions options;

    // Uncached serial reference.
    core::Aida plain(&models, measures[mi].second, options);
    core::BatchOptions serial_options;
    serial_options.num_threads = 1;
    util::Stopwatch serial_watch;
    std::vector<core::DisambiguationResult> serial_results =
        core::BatchDisambiguator(&plain, serial_options).Run(problems);
    const double serial_ms = serial_watch.ElapsedMillis();
    const core::DisambiguationStats serial_stats =
        core::AggregateStats(serial_results);

    // Cached parallel run sharing one cache across workers.
    core::RelatednessCache cache;
    core::CachedRelatednessMeasure cached(measures[mi].second, &cache);
    core::Aida with_cache(&models, &cached, options);
    core::BatchOptions parallel_options;
    parallel_options.num_threads = 4;
    util::Stopwatch parallel_watch;
    std::vector<core::DisambiguationResult> parallel_results =
        core::BatchDisambiguator(&with_cache, parallel_options).Run(problems);
    const double parallel_ms = parallel_watch.ElapsedMillis();
    const core::DisambiguationStats parallel_stats =
        core::AggregateStats(parallel_results);

    const bool identical = ResultsIdentical(serial_results, parallel_results);
    std::printf("%-12s %12llu %12llu %9.1f%% %10.1f %10.1f %8.2fx %6s\n",
                measures[mi].first.c_str(),
                static_cast<unsigned long long>(
                    serial_stats.relatedness_computations),
                static_cast<unsigned long long>(
                    parallel_stats.relatedness_computations),
                100.0 * parallel_stats.RelatednessCacheHitRate(),
                serial_ms, parallel_ms, serial_ms / parallel_ms,
                identical ? "yes" : "NO");
    BatchRow row;
    row.measure = measures[mi].first;
    row.serial_evals = serial_stats.relatedness_computations;
    row.cached_evals = parallel_stats.relatedness_computations;
    row.hit_rate = parallel_stats.RelatednessCacheHitRate();
    row.serial_ms = serial_ms;
    row.parallel_ms = parallel_ms;
    row.identical = identical;
    batch_rows.push_back(std::move(row));
  }
  bench::PrintRule(88);
  std::printf(
      "\nThe cached path must evaluate strictly fewer pairs than the\n"
      "uncached one (hit rate > 0): cross-document entity repetition is\n"
      "what the shared cache monetizes. 'same' checks the parallel cached\n"
      "results are identical to the serial uncached reference.\n");

  const std::string json_path =
      bench::JsonOutputPath("BENCH_kore_efficiency.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"documents\": %zu,\n  \"measures\": [\n",
               docs.size());
  for (size_t mi = 0; mi < measures.size(); ++mi) {
    Stats cmp = Summarize(runs[mi].comparisons);
    Stats ms = Summarize(runs[mi].millis);
    std::fprintf(out,
                 "    {\"measure\": \"%s\", \"cmp_mean\": %.1f, "
                 "\"cmp_stddev\": %.1f, \"cmp_q90\": %.1f, "
                 "\"ms_mean\": %.3f, \"ms_stddev\": %.3f, "
                 "\"ms_q90\": %.3f}%s\n",
                 measures[mi].first.c_str(), cmp.mean, cmp.stddev, cmp.q90,
                 ms.mean, ms.stddev, ms.q90,
                 mi + 1 < measures.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"batch_memoization\": [\n");
  for (size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& row = batch_rows[i];
    std::fprintf(out,
                 "    {\"measure\": \"%s\", \"serial_evals\": %llu, "
                 "\"cached_evals\": %llu, \"hit_rate\": %.4f, "
                 "\"serial_ms\": %.1f, \"parallel_ms\": %.1f, "
                 "\"identical\": %s}%s\n",
                 row.measure.c_str(), row.serial_evals, row.cached_evals,
                 row.hit_rate, row.serial_ms, row.parallel_ms,
                 row.identical ? "true" : "false",
                 i + 1 < batch_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
