// Reproduces Table 4.4 and Figures 4.4/4.5: per-document relatedness
// comparison counts and disambiguation running time for MW, exact KORE,
// KORE-LSH-G and KORE-LSH-F over the CoNLL-like collection, reported as
// mean / stddev / 0.9-quantile plus curve samples over documents ordered
// by candidate-entity count.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/stopwatch.h"

using namespace aida;

namespace {

struct Stats {
  double mean = 0;
  double stddev = 0;
  double q90 = 0;
};

Stats Summarize(std::vector<double> values) {
  Stats stats;
  if (values.empty()) return stats;
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  stats.mean = sum / values.size();
  double var = 0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(var / values.size());
  std::sort(values.begin(), values.end());
  stats.q90 = values[static_cast<size_t>(0.9 * (values.size() - 1))];
  return stats;
}

}  // namespace

int main() {
  synth::CorpusPreset preset = synth::ConllPreset();
  // A representative slice keeps the bench quick; the distribution over
  // documents is what matters.
  preset.corpus.num_documents = 400;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  core::CandidateModelStore models(world.knowledge_base.get());
  const kb::KeyphraseStore& store = world.knowledge_base->keyphrases();

  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  kore::KoreRelatedness kore;
  kore::KoreLshRelatedness lsh_g = kore::KoreLshRelatedness::Good(&store);
  kore::KoreLshRelatedness lsh_f = kore::KoreLshRelatedness::Fast(&store);
  std::vector<std::pair<std::string, const core::RelatednessMeasure*>>
      measures = {{"MW", &mw},
                  {"KORE", &kore},
                  {"KORE-LSH-G", &lsh_g},
                  {"KORE-LSH-F", &lsh_f}};

  // Candidate-entity count per document, for the x-axis of Figs 4.4/4.5.
  std::vector<size_t> doc_candidates(docs.size(), 0);
  for (size_t d = 0; d < docs.size(); ++d) {
    for (const corpus::GoldMention& gm : docs[d].mentions) {
      doc_candidates[d] +=
          world.knowledge_base->dictionary().Lookup(gm.surface).size();
    }
  }
  std::vector<size_t> order(docs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return doc_candidates[a] < doc_candidates[b];
  });

  struct MeasureRun {
    std::vector<double> comparisons;
    std::vector<double> millis;
  };
  std::vector<MeasureRun> runs(measures.size());

  for (size_t mi = 0; mi < measures.size(); ++mi) {
    core::AidaOptions options;
    core::Aida aida(&models, measures[mi].second, options);
    runs[mi].comparisons.resize(docs.size());
    runs[mi].millis.resize(docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
      util::Stopwatch watch;
      core::DisambiguationResult result = aida.Disambiguate(problem);
      runs[mi].millis[d] = watch.ElapsedMillis();
      runs[mi].comparisons[d] =
          static_cast<double>(aida.last_relatedness_computations());
      (void)result;
    }
  }

  bench::PrintHeader(
      "Table 4.4 — relatedness comparisons and runtime per document "
      "(CoNLL-like, 400 docs)");
  std::printf("%-12s %12s %12s %12s %10s %10s %10s\n", "measure",
              "cmp mean", "cmp stddev", "cmp q90", "ms mean", "ms stddev",
              "ms q90");
  bench::PrintRule(86);
  for (size_t mi = 0; mi < measures.size(); ++mi) {
    Stats cmp = Summarize(runs[mi].comparisons);
    Stats ms = Summarize(runs[mi].millis);
    std::printf("%-12s %12.0f %12.0f %12.0f %10.2f %10.2f %10.2f\n",
                measures[mi].first.c_str(), cmp.mean, cmp.stddev, cmp.q90,
                ms.mean, ms.stddev, ms.q90);
  }
  bench::PrintRule(86);

  // Figures 4.4/4.5: sampled curves over documents sorted by candidate
  // count (10 sample points).
  std::printf(
      "\nFigure 4.4/4.5 samples (documents sorted by candidate count):\n");
  std::printf("%-12s %10s", "doc rank", "cands");
  for (const auto& [name, measure] : measures) {
    std::printf(" %12s", (name + " cmp").c_str());
  }
  std::printf("\n");
  for (int p = 1; p <= 10; ++p) {
    size_t idx = order[std::min(docs.size() - 1,
                                docs.size() * p / 10 - 1)];
    std::printf("%-12d %10zu", p * 10, doc_candidates[idx]);
    for (size_t mi = 0; mi < measures.size(); ++mi) {
      std::printf(" %12.0f", runs[mi].comparisons[idx]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shape: KORE-LSH-G prunes roughly two thirds of the pairwise\n"
      "comparisons, KORE-LSH-F an order of magnitude (q90 nearly 20x), and\n"
      "runtimes follow the comparison counts. (Our MW is cheap per pair —\n"
      "sorted-list intersection on modest link lists — unlike the paper's\n"
      "large-bitvector MW, so MW wall-time is not slower than KORE here;\n"
      "the LSH speedups over exact KORE are the reproduced effect.)\n");
  return 0;
}
