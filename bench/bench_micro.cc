// Google-benchmark microbenchmarks for the performance-critical
// primitives: min-hash sketching, two-stage LSH grouping, KORE and
// Milne-Witten pair computation, keyphrase-cover context scoring, and the
// constrained dense-subgraph solver.

#include <benchmark/benchmark.h>

#include "core/aida.h"
#include "core/candidates.h"
#include "core/context_similarity.h"
#include "core/relatedness.h"
#include "graph/dense_subgraph.h"
#include "hashing/minhash.h"
#include "hashing/two_stage_hasher.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/presets.h"
#include "synth/world_generator.h"
#include "util/rng.h"

namespace {

using namespace aida;

// A mid-sized shared world for all micro benchmarks.
struct Fixture {
  synth::World world;
  corpus::Corpus docs;
  std::unique_ptr<core::CandidateModelStore> models;

  static const Fixture& Get() {
    static const Fixture& fixture = *new Fixture();
    return fixture;
  }

 private:
  Fixture() {
    synth::WorldConfig config;
    config.seed = 31337;
    config.num_topics = 20;
    config.num_entities = 2000;
    config.num_shared_names = 500;
    world = synth::WorldGenerator(config).Generate();
    synth::CorpusConfig corpus_config;
    corpus_config.num_documents = 10;
    corpus_config.doc_tokens = 216;
    corpus_config.entities_per_doc = 12;
    docs = synth::CorpusGenerator(&world, corpus_config).Generate();
    models = std::make_unique<core::CandidateModelStore>(
        world.knowledge_base.get());
  }
};

void BM_MinHashSketch(benchmark::State& state) {
  hashing::MinHasher hasher(static_cast<size_t>(state.range(0)), 7);
  std::vector<uint32_t> items;
  util::Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    items.push_back(static_cast<uint32_t>(rng.UniformInt(1 << 20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Sketch(items));
  }
}
BENCHMARK(BM_MinHashSketch)->Arg(4)->Arg(200)->Arg(2000);

void BM_TwoStageGrouping(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  hashing::TwoStageHasher hasher(fixture.world.knowledge_base->keyphrases(),
                                 hashing::LshGoodConfig());
  std::vector<kb::EntityId> entities;
  for (kb::EntityId e = 0; e < static_cast<kb::EntityId>(state.range(0));
       ++e) {
    entities.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.GroupEntities(entities));
  }
}
BENCHMARK(BM_TwoStageGrouping)->Arg(50)->Arg(200);

void BM_KorePair(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  kore::KoreRelatedness kore;
  core::Candidate a;
  a.entity = 0;
  a.model = fixture.models->ModelFor(0);
  core::Candidate b;
  b.entity = 1;
  b.model = fixture.models->ModelFor(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kore.Relatedness(a, b));
  }
}
BENCHMARK(BM_KorePair);

void BM_MilneWittenPair(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  core::MilneWittenRelatedness mw(fixture.world.knowledge_base.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mw.RelatednessById(0, 1));
  }
}
BENCHMARK(BM_MilneWittenPair);

void BM_ContextSimilarity(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const corpus::Document& doc = fixture.docs.front();
  core::ExtendedVocabulary vocab(
      &fixture.world.knowledge_base->keyphrases());
  core::DocumentContext context(doc.tokens, vocab);
  core::ContextSimilarity similarity;
  auto model = fixture.models->ModelFor(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity.Score(context, 0, 0, *model));
  }
}
BENCHMARK(BM_ContextSimilarity);

void BM_DenseSubgraph(benchmark::State& state) {
  // Random bipartite-ish instance: m mentions, 5m entities.
  const size_t mentions = static_cast<size_t>(state.range(0));
  const size_t entities = mentions * 5;
  util::Rng rng(11);
  graph::WeightedGraph g(mentions + entities);
  std::vector<bool> removable(mentions + entities, false);
  std::vector<std::vector<graph::NodeId>> groups(mentions);
  for (size_t m = 0; m < mentions; ++m) {
    for (int c = 0; c < 5; ++c) {
      graph::NodeId node =
          static_cast<graph::NodeId>(mentions + rng.UniformInt(entities));
      removable[node] = true;
      groups[m].push_back(node);
      g.AddEdge(static_cast<graph::NodeId>(m), node, rng.UniformDouble());
    }
  }
  for (size_t e = 0; e < entities; ++e) {
    graph::NodeId u = static_cast<graph::NodeId>(mentions + e);
    graph::NodeId v = static_cast<graph::NodeId>(
        mentions + rng.UniformInt(entities));
    if (u != v && removable[u] && removable[v]) {
      g.AddEdge(u, v, rng.UniformDouble() * 0.4);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::ConstrainedDenseSubgraph(g, removable, groups));
  }
}
BENCHMARK(BM_DenseSubgraph)->Arg(10)->Arg(25)->Arg(50);

void BM_AidaDocument(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  core::MilneWittenRelatedness mw(fixture.world.knowledge_base.get());
  core::Aida aida(fixture.models.get(), &mw, core::AidaOptions());
  const corpus::Document& doc = fixture.docs.front();
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(aida.Disambiguate(problem, {}));
  }
}
BENCHMARK(BM_AidaDocument);

}  // namespace

BENCHMARK_MAIN();
