// Reproduces Table 4.2: Spearman correlation of the relatedness measures
// (KWCS, KPCS, MW, KORE, KORE-LSH-G, KORE-LSH-F) with the gold candidate
// ranking, per domain, plus the link-poor-seed average where KORE's
// advantage over the link-based MW measure shows.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench_common.h"
#include "core/candidates.h"
#include "core/relatedness.h"
#include "eval/spearman.h"
#include "kore/keyterm_cosine.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/relatedness_gold.h"

using namespace aida;

namespace {

// Scores all 20 candidates of one seed under `measure`, honoring the
// measure's pair filter the way NED does (pruned pairs count as 0).
std::vector<double> ScoreCandidates(const core::RelatednessMeasure& measure,
                                    const core::CandidateModelStore& models,
                                    const synth::RelatednessSeed& seed) {
  core::Candidate seed_cand;
  seed_cand.entity = seed.seed;
  seed_cand.model = models.ModelFor(seed.seed);

  std::vector<core::Candidate> cands;
  for (kb::EntityId e : seed.ranked_candidates) {
    core::Candidate c;
    c.entity = e;
    c.model = models.ModelFor(e);
    cands.push_back(std::move(c));
  }

  std::set<size_t> allowed;  // candidate indices allowed by the filter
  if (measure.has_pair_filter()) {
    std::vector<const core::Candidate*> all;
    all.push_back(&seed_cand);
    for (const core::Candidate& c : cands) all.push_back(&c);
    for (const auto& [i, j] : measure.FilterPairs(all)) {
      if (i == 0) allowed.insert(j - 1);
      if (j == 0) allowed.insert(i - 1);
    }
  }

  std::vector<double> scores;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (measure.has_pair_filter() && allowed.count(i) == 0) {
      scores.push_back(0.0);
      continue;
    }
    scores.push_back(measure.Relatedness(seed_cand, cands[i]));
  }
  return scores;
}

}  // namespace

int main() {
  synth::RelatednessGoldConfig config;
  synth::RelatednessGold gold = synth::GenerateRelatednessGold(config);
  core::CandidateModelStore models(gold.knowledge_base.get());

  kore::KeytermCosineRelatedness kwcs(
      kore::KeytermCosineRelatedness::Mode::kKeyword);
  kore::KeytermCosineRelatedness kpcs(
      kore::KeytermCosineRelatedness::Mode::kKeyphrase);
  core::MilneWittenRelatedness mw(gold.knowledge_base.get());
  kore::KoreRelatedness kore;
  kore::KoreLshRelatedness lsh_g =
      kore::KoreLshRelatedness::Good(&gold.knowledge_base->keyphrases());
  kore::KoreLshRelatedness lsh_f =
      kore::KoreLshRelatedness::Fast(&gold.knowledge_base->keyphrases());

  std::vector<std::pair<std::string, const core::RelatednessMeasure*>>
      measures = {{"KWCS", &kwcs},   {"KPCS", &kpcs}, {"MW", &mw},
                  {"KORE", &kore},   {"KORE-LSH-G", &lsh_g},
                  {"KORE-LSH-F", &lsh_f}};

  // Gold scores: 20 for the top candidate down to 1 for the last.
  const size_t k = config.candidates_per_seed;
  std::vector<double> gold_scores(k);
  for (size_t i = 0; i < k; ++i) {
    gold_scores[i] = static_cast<double>(k - i);
  }

  // Per-measure, per-domain correlation sums; plus link-poor average.
  std::map<std::string, std::map<std::string, std::vector<double>>> by_domain;
  std::map<std::string, std::vector<double>> link_poor;
  std::map<std::string, std::vector<double>> all_seeds;
  const size_t kLinkPoorThreshold = 40;

  for (size_t s = 0; s < gold.seeds.size(); ++s) {
    const synth::RelatednessSeed& seed = gold.seeds[s];
    for (const auto& [name, measure] : measures) {
      std::vector<double> scores = ScoreCandidates(*measure, models, seed);
      double rho = eval::SpearmanCorrelation(scores, gold_scores);
      by_domain[name][seed.domain].push_back(rho);
      all_seeds[name].push_back(rho);
      if (gold.seed_inlinks[s] <= kLinkPoorThreshold) {
        link_poor[name].push_back(rho);
      }
    }
  }

  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double total = 0;
    for (double x : v) total += x;
    return total / static_cast<double>(v.size());
  };

  bench::PrintHeader(
      "Table 4.2 — Spearman correlation of relatedness measures with the "
      "gold ranking");
  std::printf("%-26s", "domain");
  for (const auto& [name, measure] : measures) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  bench::PrintRule(92);
  std::vector<std::string> domains = {"it_companies", "hollywood_celebrities",
                                      "television_series", "video_games",
                                      "chuck_norris"};
  for (const std::string& domain : domains) {
    std::printf("%-26s", domain.c_str());
    for (const auto& [name, measure] : measures) {
      std::printf(" %10.3f", mean(by_domain[name][domain]));
    }
    std::printf("\n");
  }
  bench::PrintRule(92);
  std::printf("%-26s", "avg (link-poor seeds)");
  for (const auto& [name, measure] : measures) {
    std::printf(" %10.3f", mean(link_poor[name]));
  }
  std::printf("\n%-26s", "avg (all seeds)");
  for (const auto& [name, measure] : measures) {
    std::printf(" %10.3f", mean(all_seeds[name]));
  }
  std::printf("\n");
  bench::PrintRule(92);
  std::printf(
      "Paper shape: keyphrase measures (KPCS ~0.70, KORE ~0.67) beat MW\n"
      "(~0.61) overall; on link-poor seeds KORE leads (0.64 vs MW 0.51);\n"
      "KORE-LSH-G stays close to exact KORE, KORE-LSH-F degrades.\n");
  return 0;
}
