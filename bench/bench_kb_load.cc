// KB load-path benchmark: how fast does a serving process get from a
// snapshot file to an answering knowledge base?
//
// Compares the two on-disk formats end to end on the CoNLL-like world:
//
//   parse-load  — the v1 record stream (LoadKnowledgeBase on a .kb
//                 file): re-interns every string, rebuilds the hash
//                 maps, re-finalizes the keyphrase store (superdoc
//                 entropies, NPMI/MI weights) and the CSR link graph.
//   mmap-load   — the flat snapshot (kb::flat::LoadFlatSnapshot): maps
//                 the file, validates bounds/offsets/slots, and points
//                 the store views straight into the page cache. No
//                 interning, no allocation proportional to KB size, no
//                 weight recomputation.
//
// Reports wall times for build/save/load plus the process RSS growth
// attributable to each load, and writes BENCH_kb_load.json at the repo
// root. The flat format exists to make reload (SnapshotRegistry
// generation swap) cheap; the acceptance bar for this PR is
// mmap-load >= 10x faster than parse-load.
//
// BENCH_KB_LOAD_SMOKE=1 shrinks the world for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kb/flat/flat_snapshot.h"
#include "kb/kb_serialization.h"
#include "kb/knowledge_base.h"
#include "synth/presets.h"
#include "synth/world_generator.h"
#include "util/check.h"

using namespace aida;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current VmRSS in KiB from /proc/self/status; 0 where unsupported.
long RssKib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  long rss = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return rss;
}

/// Forces a query pass over the whole KB so mmap-backed pages actually
/// fault in; returns a checksum so the work cannot be optimized away.
uint64_t TouchEverything(const kb::KnowledgeBase& kb) {
  uint64_t checksum = 0;
  for (kb::EntityId e = 0; e < kb.entity_count(); ++e) {
    checksum += kb.entities().Get(e).anchor_count;
    checksum += kb.links().InLinks(e).size();
    for (kb::PhraseId p : kb.keyphrases().EntityPhrases(e)) {
      checksum += kb.keyphrases().PhraseWords(p).size();
    }
    for (kb::WordId w : kb.keyphrases().EntityWords(e)) {
      checksum += static_cast<uint64_t>(kb.keyphrases().KeywordNpmi(e, w) > 0);
    }
  }
  for (const std::string& name : kb.dictionary().AllNames()) {
    checksum += kb.dictionary().Lookup(name).size();
  }
  return checksum;
}

/// Best-of-N wall time of `load`, which returns a KB to keep alive until
/// after the timestamp (so destruction is not billed to the load).
template <typename Fn>
double TimeLoad(int iterations, const Fn& load) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    const double start = Now();
    std::unique_ptr<kb::KnowledgeBase> kb = load();
    const double elapsed = Now() - start;
    AIDA_CHECK(kb != nullptr);
    best = std::min(best, elapsed);
  }
  return best;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("BENCH_KB_LOAD_SMOKE") != nullptr;
  synth::WorldConfig config = synth::ConllPreset().world;
  if (smoke) {
    config.num_entities = 600;
    config.num_topics = 10;
  }

  const double build_start = Now();
  synth::World world = synth::WorldGenerator(config).Generate();
  const double build_seconds = Now() - build_start;
  const kb::KnowledgeBase& kb = *world.knowledge_base;

  const std::string dir = ::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp";
  const std::string v1_path = dir + "/bench_kb_load_v1.kb";
  const std::string flat_path = dir + "/bench_kb_load_flat.fkb";

  double save_v1_start = Now();
  AIDA_CHECK_OK(kb::SaveKnowledgeBase(kb, v1_path));
  const double save_v1_seconds = Now() - save_v1_start;
  double save_flat_start = Now();
  AIDA_CHECK_OK(kb::flat::SaveFlatSnapshot(kb, flat_path));
  const double save_flat_seconds = Now() - save_flat_start;

  const int iterations = smoke ? 3 : 5;

  // Parse-load: the v1 stream rebuilds every store from records.
  const long rss_before_parse = RssKib();
  const double parse_seconds = TimeLoad(iterations, [&] {
    auto loaded = kb::LoadKnowledgeBase(v1_path);
    AIDA_CHECK_OK(loaded.status());
    return std::move(loaded.value());
  });
  auto parsed = kb::LoadKnowledgeBase(v1_path);
  AIDA_CHECK_OK(parsed.status());
  const long rss_parse_kib = RssKib() - rss_before_parse;
  const uint64_t parse_checksum = TouchEverything(**parsed);
  parsed->reset();

  // Mmap-load: validate and point views into the page cache.
  const long rss_before_mmap = RssKib();
  const double mmap_seconds = TimeLoad(iterations, [&] {
    auto loaded = kb::flat::LoadFlatSnapshot(flat_path);
    AIDA_CHECK_OK(loaded.status());
    return std::move(loaded.value());
  });
  auto mapped = kb::flat::LoadFlatSnapshot(flat_path);
  AIDA_CHECK_OK(mapped.status());
  const long rss_mmap_kib = RssKib() - rss_before_mmap;
  AIDA_CHECK((*mapped)->flat_backed());
  const uint64_t mmap_checksum = TouchEverything(**mapped);
  const long rss_mmap_touched_kib = RssKib() - rss_before_mmap;
  AIDA_CHECK(parse_checksum == mmap_checksum,
             "flat and parsed KBs answered queries differently");

  const double speedup = parse_seconds / mmap_seconds;

  bench::PrintHeader("KB load paths (CoNLL-like world, best of N loads)");
  std::printf("%-44s %10zu\n", "entities", kb.entity_count());
  std::printf("%-44s %10.3f s\n", "world build (generator)", build_seconds);
  std::printf("%-44s %10.3f s\n", "save v1 stream", save_v1_seconds);
  std::printf("%-44s %10.3f s\n", "save flat snapshot", save_flat_seconds);
  std::printf("%-44s %10.4f s\n", "parse-load (v1 stream)", parse_seconds);
  std::printf("%-44s %10.4f s\n", "mmap-load (flat snapshot)", mmap_seconds);
  std::printf("%-44s %10.1fx\n", "mmap-load speedup", speedup);
  std::printf("%-44s %10ld KiB\n", "RSS growth, parse-load", rss_parse_kib);
  std::printf("%-44s %10ld KiB\n", "RSS growth, mmap-load", rss_mmap_kib);
  std::printf("%-44s %10ld KiB\n", "RSS growth, mmap-load + full touch",
              rss_mmap_touched_kib);
  bench::PrintRule();

  const std::string json_path = bench::JsonOutputPath("BENCH_kb_load.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"entities\": %zu,\n"
               "  \"smoke\": %s,\n"
               "  \"build_seconds\": %.4f,\n"
               "  \"save_v1_seconds\": %.4f,\n"
               "  \"save_flat_seconds\": %.4f,\n"
               "  \"parse_load_seconds\": %.6f,\n"
               "  \"mmap_load_seconds\": %.6f,\n"
               "  \"mmap_speedup\": %.2f,\n"
               "  \"rss_parse_load_kib\": %ld,\n"
               "  \"rss_mmap_load_kib\": %ld,\n"
               "  \"rss_mmap_touched_kib\": %ld\n"
               "}\n",
               kb.entity_count(), smoke ? "true" : "false", build_seconds,
               save_v1_seconds, save_flat_seconds, parse_seconds, mmap_seconds,
               speedup, rss_parse_kib, rss_mmap_kib, rss_mmap_touched_kib);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  std::remove(v1_path.c_str());
  std::remove(flat_path.c_str());

  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: mmap-load only %.1fx faster than parse-load "
                 "(bar: 10x)\n",
                 speedup);
    return 1;
  }
  return 0;
}
