// Reproduces Table 5.1 and Figure 5.3: quality of disambiguation
// confidence assessors. Mentions are ranked by confidence; we report
// precision at the 95% and 80% confidence cutoffs (with the number of
// qualifying mentions), MAP, and sampled precision-recall curves for
//   prior   — the mention-entity prior as confidence,
//   AIDAcoh — AIDA's normalized weighted-degree score,
//   IW      — a linker-score style baseline (Kulkarni sp score),
//   CONF    — 0.5 * normalized score + 0.5 * entity-perturbation stability.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "core/baselines.h"
#include "ee/confidence.h"
#include "eval/pr_curve.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

int main() {
  synth::CorpusPreset preset = synth::ConllPreset();
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  // Test split; perturbation-based confidence is costly, so evaluate a
  // representative slice of it.
  const size_t test_first = 1162;
  const size_t test_count = 100;

  core::CandidateModelStore models(world.knowledge_base.get());
  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());
  core::PriorBaseline prior(&models);
  core::KulkarniBaseline iw(&models, nullptr,
                            core::KulkarniBaseline::Mode::kSimilarityPrior);

  ee::ConfidenceOptions conf_options;
  conf_options.rounds = 24;
  ee::ConfidenceEstimator estimator(&models, &aida, conf_options);

  std::map<std::string, std::vector<eval::ScoredPrediction>> ranked;
  for (size_t d = test_first;
       d < docs.size() && d < test_first + test_count; ++d) {
    const corpus::Document& doc = docs[d];
    core::DisambiguationProblem problem = bench::ToProblem(doc);

    core::DisambiguationResult aida_result = aida.Disambiguate(problem, {});
    core::DisambiguationResult prior_result = prior.Disambiguate(problem, {});
    core::DisambiguationResult iw_result = iw.Disambiguate(problem, {});

    std::vector<double> conf = estimator.Conf(problem, aida_result);

    for (size_t m = 0; m < doc.mentions.size(); ++m) {
      const corpus::GoldMention& gm = doc.mentions[m];
      if (gm.out_of_kb()) continue;  // Section 5.7.1 evaluates in-KB gold
      ranked["prior"].push_back(
          {prior_result.mentions[m].score,
           prior_result.mentions[m].entity == gm.gold_entity});
      // AIDAcoh ranks by the RAW disambiguation score (as the original
      // system did); raw scores are not comparable across mentions, which
      // is exactly what the normalization of Section 5.4.1 fixes.
      ranked["aida-coh"].push_back(
          {aida_result.mentions[m].score,
           aida_result.mentions[m].entity == gm.gold_entity});
      // IW ranks by the raw linker score, as the original system did.
      ranked["iw"].push_back(
          {iw_result.mentions[m].score,
           iw_result.mentions[m].entity == gm.gold_entity});
      ranked["conf"].push_back(
          {conf[m], aida_result.mentions[m].entity == gm.gold_entity});
    }
  }

  bench::PrintHeader(
      "Table 5.1 — confidence assessors (CoNLL-like test slice)");
  std::printf("%-10s %10s %10s %10s %10s %8s\n", "method", "P@95%",
              "#men@95%", "P@80%", "#men@80%", "MAP");
  bench::PrintRule();
  for (const char* name : {"prior", "aida-coh", "iw", "conf"}) {
    const auto& preds = ranked[name];
    double map = eval::MeanAveragePrecision(preds);
    // Only probability-like scores admit fixed confidence cutoffs (the
    // paper reports "-" for the raw-score rankings).
    bool interpretable =
        std::string(name) == "prior" || std::string(name) == "conf";
    if (interpretable) {
      size_t n95 = 0;
      size_t n80 = 0;
      double p95 = eval::PrecisionAtConfidence(preds, 0.95, &n95);
      double p80 = eval::PrecisionAtConfidence(preds, 0.80, &n80);
      std::printf("%-10s %9.2f%% %10zu %9.2f%% %10zu %7.2f%%\n", name,
                  100 * p95, n95, 100 * p80, n80, 100 * map);
    } else {
      std::printf("%-10s %10s %10s %10s %10s %7.2f%%\n", name, "-", "-",
                  "-", "-", 100 * map);
    }
  }
  bench::PrintRule();

  std::printf("\nFigure 5.3 — precision at recall levels:\nrecall    ");
  for (int r = 1; r <= 10; ++r) std::printf(" %6.1f", r / 10.0);
  std::printf("\n");
  for (const char* name : {"prior", "aida-coh", "conf"}) {
    std::printf("%-10s", name);
    for (const eval::PrPoint& point :
         eval::PrecisionRecallCurve(ranked[name], 10)) {
      std::printf(" %6.3f", point.precision);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: CONF dominates — higher MAP (93.7 vs 87.9 prior /\n"
      "86.8 AIDAcoh / 67.1 IW), ~98%% precision at the 95%% confidence\n"
      "cutoff with a substantial fraction of mentions qualifying, and a\n"
      "flatter precision-recall curve than the prior.\n");
  return 0;
}
