// Reproduces Table 5.4: using emerging-entity identification as a
// PREPROCESSING step for regular NED. Mentions the EE stage labels as
// emerging are fixed; the remaining mentions are re-disambiguated with the
// full coherence-based AIDA. Compared against running the plain systems
// with their thresholds.

#include <cstdio>
#include <vector>

#include "ee_common.h"
#include "util/string_util.h"

using namespace aida;

namespace {

struct Row {
  std::string name;
  double micro = 0;
  double macro = 0;
  double ee_p = 0;
};

}  // namespace

int main() {
  bench::EeExperiment exp = bench::EeExperiment::Make();
  std::vector<const corpus::Document*> test = exp.Slice(25, 30);
  if (test.size() > 150) test.resize(150);

  std::vector<Row> rows;

  // ---- Plain systems (no EE preprocessing) -----------------------------------
  auto run_plain = [&](const std::string& name,
                       const core::NedSystem& system, double threshold,
                       bool use_conf) {
    eval::NedEvaluator evaluator;
    bench::EvaluateThresholdBaseline(system, test, threshold, use_conf,
                                     exp.models.get(), evaluator);
    rows.push_back({name, 100 * evaluator.MicroAccuracyWithEe(),
                    100 * evaluator.MacroAccuracyWithEe(),
                    100 * evaluator.EePrecision()});
  };
  run_plain("AIDAsim (t=0.15)", *exp.aida_sim, 0.15, false);
  run_plain("AIDAcoh (t=0.05)", *exp.aida_coh, 0.05, true);

  // ---- EE preprocessing + full NED on the rest --------------------------------
  auto run_pipeline = [&](const std::string& name,
                          const core::NedSystem& ee_stage) {
    ee::EeDiscoveryOptions options;
    options.gamma = 0.2;
    options.harvest_days = 7;
    options.harvest_existing = true;
    ee::EmergingEntityDiscoverer discoverer(exp.models.get(), &ee_stage,
                                            &exp.stream, options);
    discoverer.HarvestExistingEntities(14, 24);

    eval::NedEvaluator evaluator;
    for (const corpus::Document* doc : test) {
      core::DisambiguationResult ee_result = discoverer.Discover(*doc);

      // Second pass: plain full AIDA over the mentions NOT labeled EE.
      core::DisambiguationProblem problem = bench::ToProblem(*doc);
      std::vector<size_t> kept;
      core::DisambiguationProblem sub;
      sub.tokens = problem.tokens;
      for (size_t m = 0; m < problem.mentions.size(); ++m) {
        if (ee_result.mentions[m].chose_placeholder) continue;
        kept.push_back(m);
        sub.mentions.push_back(problem.mentions[m]);
      }
      core::DisambiguationResult ned = exp.aida_coh->Disambiguate(sub, {});
      core::DisambiguationResult merged = ee_result;
      for (size_t i = 0; i < kept.size(); ++i) {
        merged.mentions[kept[i]] = ned.mentions[i];
      }
      evaluator.AddDocument(*doc, merged);
    }
    rows.push_back({name, 100 * evaluator.MicroAccuracyWithEe(),
                    100 * evaluator.MacroAccuracyWithEe(),
                    100 * evaluator.EePrecision()});
  };
  run_pipeline("AIDA-EEsim", *exp.aida_sim);
  run_pipeline("AIDA-EEcoh", *exp.aida_kore);

  bench::PrintHeader(
      "Table 5.4 — NED quality with EE identification as preprocessing");
  std::printf("%-18s %9s %9s %9s\n", "method", "MicA %", "MacA %", "EE P %");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-18s %9.2f %9.2f %9.2f\n", row.name.c_str(), row.micro,
                row.macro, row.ee_p);
  }
  bench::PrintRule();
  std::printf(
      "Paper shape: pre-identifying emerging entities and re-running the\n"
      "full NED on the remaining mentions gives the best overall accuracy\n"
      "(AIDA-EEsim), at far higher EE precision than thresholding.\n");
  return 0;
}
