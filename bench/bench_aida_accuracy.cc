// Reproduces Figure 3.3 / Table 3.2: macro and micro accuracy of the AIDA
// feature ablations against the Cucerzan and Kulkarni baselines on the
// held-out test split of the CoNLL-like corpus. The paper's split uses
// documents 1163-1393 as test; we do the same on the synthetic corpus.
//
// Results are also written to BENCH_aida_accuracy.json at the repo root
// for machine consumption.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "core/baselines.h"
#include "core/relatedness_cache.h"
#include "eval/metrics.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/stopwatch.h"

using namespace aida;

namespace {

struct Row {
  std::string name;
  double macro = 0;
  double micro = 0;
  double seconds = 0;
  core::DisambiguationStats stats;
};

Row Evaluate(const std::string& name, const core::NedSystem& system,
             const corpus::Corpus& docs, size_t first, size_t last) {
  eval::NedEvaluator evaluator;
  util::Stopwatch watch;
  Row row;
  for (size_t d = first; d < last && d < docs.size(); ++d) {
    core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
    core::DisambiguationResult result = system.Disambiguate(problem, {});
    row.stats += result.stats;
    evaluator.AddDocument(docs[d], result);
  }
  row.name = name;
  row.macro = 100.0 * evaluator.MacroAccuracy();
  row.micro = 100.0 * evaluator.MicroAccuracy();
  row.seconds = watch.ElapsedSeconds();
  return row;
}

}  // namespace

int main() {
  synth::CorpusPreset preset = synth::ConllPreset();
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  const size_t test_first = 1162;  // documents 1163..1393, as in the paper
  const size_t test_last = docs.size();

  core::CandidateModelStore models(world.knowledge_base.get());
  core::MilneWittenRelatedness mw(world.knowledge_base.get());

  std::vector<Row> rows;

  {  // prior only
    core::PriorBaseline system(&models);
    rows.push_back(Evaluate("prior", system, docs, test_first, test_last));
  }
  {  // sim-k: keyphrase similarity only
    core::AidaOptions options;
    options.use_prior = false;
    options.use_coherence = false;
    core::Aida system(&models, &mw, options);
    rows.push_back(Evaluate("sim-k", system, docs, test_first, test_last));
  }
  {  // prior sim-k: unconditional combination
    core::AidaOptions options;
    options.use_prior = true;
    options.use_prior_test = false;
    options.use_coherence = false;
    core::Aida system(&models, &mw, options);
    rows.push_back(
        Evaluate("prior sim-k", system, docs, test_first, test_last));
  }
  {  // r-prior sim-k: prior behind the robustness test
    core::AidaOptions options;
    options.use_coherence = false;
    core::Aida system(&models, &mw, options);
    rows.push_back(
        Evaluate("r-prior sim-k", system, docs, test_first, test_last));
  }
  {  // r-prior sim-k coh: plus graph coherence, no coherence test
    core::AidaOptions options;
    options.use_coherence_test = false;
    core::Aida system(&models, &mw, options);
    rows.push_back(
        Evaluate("r-prior sim-k coh", system, docs, test_first, test_last));
  }
  {  // r-prior sim-k r-coh: full AIDA
    core::AidaOptions options;
    core::Aida system(&models, &mw, options);
    rows.push_back(
        Evaluate("r-prior sim-k r-coh", system, docs, test_first, test_last));
  }
  {  // full AIDA with a shared relatedness cache: same accuracy, fewer
     // relatedness evaluations (cross-document pair reuse)
    core::RelatednessCache cache;
    core::CachedRelatednessMeasure cached_mw(&mw, &cache);
    core::AidaOptions options;
    core::Aida system(&models, &cached_mw, options);
    rows.push_back(
        Evaluate("r-coh + rel-cache", system, docs, test_first, test_last));
  }
  {  // Cucerzan
    core::CucerzanBaseline system(&models);
    rows.push_back(Evaluate("cuc", system, docs, test_first, test_last));
  }
  {  // Kulkarni similarity
    core::KulkarniBaseline system(&models, nullptr,
                                  core::KulkarniBaseline::Mode::kSimilarity);
    rows.push_back(Evaluate("kul-s", system, docs, test_first, test_last));
  }
  {  // Kulkarni similarity + prior
    core::KulkarniBaseline system(
        &models, nullptr, core::KulkarniBaseline::Mode::kSimilarityPrior);
    rows.push_back(Evaluate("kul-sp", system, docs, test_first, test_last));
  }
  {  // Kulkarni collective inference
    core::KulkarniBaseline system(&models, &mw,
                                  core::KulkarniBaseline::Mode::kCollective);
    rows.push_back(Evaluate("kul-ci", system, docs, test_first, test_last));
  }

  bench::PrintHeader(
      "Table 3.2 / Figure 3.3 — NED accuracy on the CoNLL-like test split "
      "(231 docs)");
  std::printf("%-22s %9s %9s %9s %12s %8s\n", "method", "MacA %", "MicA %",
              "sec", "rel evals", "hit %");
  bench::PrintRule(76);
  for (const Row& row : rows) {
    std::printf("%-22s %9.2f %9.2f %9.2f %12llu %7.1f%%\n", row.name.c_str(),
                row.macro, row.micro, row.seconds,
                static_cast<unsigned long long>(
                    row.stats.relatedness_computations),
                100.0 * row.stats.RelatednessCacheHitRate());
  }
  bench::PrintRule(76);
  std::printf(
      "Paper shape: prior ~70/75, sim-k ~79/78, r-prior sim-k ~80/81,\n"
      "+coh ~82/82, +r-coh best (82.6/82.0); Cuc ~44/51, Kul s ~58/63,\n"
      "Kul sp ~77/72, Kul CI ~77/73. Expected ordering:\n"
      "full AIDA > ablations > collective Kulkarni > prior > Cucerzan.\n"
      "'r-coh + rel-cache' must match full AIDA's accuracy exactly while\n"
      "evaluating fewer relatedness pairs (the rest are cache hits).\n");

  const std::string json_path =
      bench::JsonOutputPath("BENCH_aida_accuracy.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"test_docs\": %zu,\n  \"methods\": [\n",
               test_last - test_first);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"method\": \"%s\", \"macro\": %.2f, \"micro\": %.2f, "
                 "\"seconds\": %.2f, \"relatedness_evals\": %llu, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 row.name.c_str(), row.macro, row.micro, row.seconds,
                 static_cast<unsigned long long>(
                     row.stats.relatedness_computations),
                 row.stats.RelatednessCacheHitRate(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
