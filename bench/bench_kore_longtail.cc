// Reproduces Figure 4.3: cumulative disambiguation accuracy over mentions
// whose gold entity has at most X in-links, on the KORE50-like corpus —
// the regime where keyphrase-based relatedness must carry what the link
// graph cannot.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "eval/metrics.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

int main() {
  synth::CorpusPreset preset = synth::Kore50Preset();
  // More documents than the 50-sentence original so the per-bucket curves
  // are statistically meaningful.
  preset.corpus.num_documents = 400;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  core::CandidateModelStore models(world.knowledge_base.get());
  const kb::KeyphraseStore& store = world.knowledge_base->keyphrases();

  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  kore::KoreRelatedness kore;
  kore::KoreLshRelatedness lsh_g = kore::KoreLshRelatedness::Good(&store);
  kore::KoreLshRelatedness lsh_f = kore::KoreLshRelatedness::Fast(&store);
  std::vector<std::pair<std::string, const core::RelatednessMeasure*>>
      measures = {{"MW", &mw},
                  {"KORE", &kore},
                  {"KORE-LSH-G", &lsh_g},
                  {"KORE-LSH-F", &lsh_f}};

  // Entity in-link histogram (printed alongside, as in Figure 4.3's upper
  // panel: the long tail dominates the entity population).
  std::map<size_t, size_t> inlink_histogram;
  for (kb::EntityId e = 0; e < world.knowledge_base->entity_count(); ++e) {
    ++inlink_histogram[world.knowledge_base->links().InLinkCount(e)];
  }

  // Per measure: per-mention (gold inlinks, correct) pairs.
  std::map<std::string, std::vector<std::pair<size_t, bool>>> outcomes;
  for (const auto& [name, measure] : measures) {
    core::AidaOptions options;
    core::Aida aida(&models, measure, options);
    for (const corpus::Document& doc : docs) {
      core::DisambiguationProblem problem = bench::ToProblem(doc);
      core::DisambiguationResult result = aida.Disambiguate(problem, {});
      for (size_t m = 0; m < doc.mentions.size(); ++m) {
        const corpus::GoldMention& gm = doc.mentions[m];
        if (gm.out_of_kb()) continue;
        size_t links =
            world.knowledge_base->links().InLinkCount(gm.gold_entity);
        outcomes[name].emplace_back(
            links, result.mentions[m].entity == gm.gold_entity);
      }
    }
  }

  bench::PrintHeader(
      "Figure 4.3 — cumulative accuracy over mentions with gold-entity "
      "in-links <= X (KORE50-like)");
  const std::vector<size_t> cutoffs = {0, 1, 2, 3, 5, 8, 12, 20, 40, 100000};
  std::printf("%-12s", "<= inlinks");
  for (const auto& [name, measure] : measures) {
    std::printf(" %11s", name.c_str());
  }
  std::printf(" %10s\n", "#mentions");
  bench::PrintRule(72);
  for (size_t cutoff : cutoffs) {
    std::printf("%-12zu", cutoff);
    size_t population = 0;
    for (const auto& [name, measure] : measures) {
      size_t total = 0;
      size_t correct = 0;
      for (const auto& [links, ok] : outcomes[name]) {
        if (links > cutoff) continue;
        ++total;
        if (ok) ++correct;
      }
      population = total;
      std::printf(" %11.3f",
                  total ? static_cast<double>(correct) / total : 0.0);
    }
    std::printf(" %10zu\n", population);
  }
  bench::PrintRule(72);

  // Entity population by in-link count (cumulative share).
  size_t total_entities = world.knowledge_base->entity_count();
  size_t cumulative = 0;
  std::printf("entity population: ");
  for (size_t cutoff : {0ul, 2ul, 5ul, 10ul, 50ul}) {
    cumulative = 0;
    for (const auto& [links, count] : inlink_histogram) {
      if (links <= cutoff) cumulative += count;
    }
    std::printf("<=%zu links: %.1f%%  ", cutoff,
                100.0 * cumulative / total_entities);
  }
  std::printf(
      "\nPaper shape: KORE (and KORE-LSH-G) clearly above MW for link-poor\n"
      "entities; the gap narrows as in-link counts grow. Entities with few\n"
      "in-links dominate the population (>80%% at <=50 links in Wikipedia).\n");
  return 0;
}
