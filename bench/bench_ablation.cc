// Ablation sweeps over AIDA's design choices (hyper-parameter study of
// Section 3.6.1): the prior-test threshold rho, the coherence-test
// threshold lambda, the mention-entity vs entity-entity edge mass split,
// and the pre-pruning budget of the graph algorithm. The paper reports
// that quality is insensitive to moderate variations ("when varying
// lambda within [0.5, 1.3], the changes in accuracy are within 1%").

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/aida.h"
#include "eval/metrics.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

namespace {

double Evaluate(const core::CandidateModelStore& models,
                const core::RelatednessMeasure& relatedness,
                const core::AidaOptions& options, const corpus::Corpus& docs,
                size_t first, size_t count) {
  core::Aida aida(&models, &relatedness, options);
  eval::NedEvaluator evaluator;
  for (size_t d = first; d < docs.size() && d < first + count; ++d) {
    core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
    evaluator.AddDocument(docs[d], aida.Disambiguate(problem, {}));
  }
  return 100.0 * evaluator.MicroAccuracy();
}

}  // namespace

int main() {
  synth::CorpusPreset preset = synth::ConllPreset();
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  core::CandidateModelStore models(world.knowledge_base.get());
  core::MilneWittenRelatedness mw(world.knowledge_base.get());
  const size_t first = 1162;
  const size_t count = 150;

  bench::PrintHeader("Ablations — AIDA design choices (micro accuracy %)");

  std::printf("prior-test threshold rho:\n  ");
  for (double rho : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    core::AidaOptions options;
    options.prior_threshold = rho;
    std::printf("rho=%.2f: %.2f  ", rho,
                Evaluate(models, mw, options, docs, first, count));
  }

  std::printf("\n\ncoherence-test threshold lambda:\n  ");
  for (double lambda : {0.3, 0.5, 0.7, 0.9, 1.1, 1.3}) {
    core::AidaOptions options;
    options.coherence_threshold = lambda;
    std::printf("l=%.1f: %.2f  ", lambda,
                Evaluate(models, mw, options, docs, first, count));
  }

  std::printf("\n\nedge-mass split (me/ee):\n  ");
  for (double me : {0.8, 0.7, 0.6, 0.5, 0.4, 0.3}) {
    core::AidaOptions options;
    options.me_scale = me;
    options.ee_scale = 1.0 - me;
    std::printf("%.1f/%.1f: %.2f  ", me, 1.0 - me,
                Evaluate(models, mw, options, docs, first, count));
  }

  std::printf("\n\npre-pruning budget (entities per mention):\n  ");
  for (size_t budget : {2ul, 3ul, 5ul, 8ul, 16ul}) {
    core::AidaOptions options;
    options.graph.entities_per_mention_budget = budget;
    std::printf("%zux: %.2f  ", budget,
                Evaluate(models, mw, options, docs, first, count));
  }

  std::printf("\n\nkeyword weight source for the cover score:\n  ");
  for (auto mode : {core::ContextSimilarity::WordWeight::kNpmi,
                    core::ContextSimilarity::WordWeight::kIdf}) {
    core::AidaOptions options;
    options.word_weight = mode;
    std::printf("%s: %.2f  ",
                mode == core::ContextSimilarity::WordWeight::kNpmi ? "NPMI"
                                                                   : "IDF",
                Evaluate(models, mw, options, docs, first, count));
  }
  std::printf("\n");
  bench::PrintRule();
  std::printf(
      "Expected: a broad plateau around the defaults (rho 0.9, lambda 0.9,\n"
      "split near balanced, budget 5x) — the robustness the paper claims —\n"
      "with degradation at the extremes (tiny budgets, lambda >> 1).\n");
  return 0;
}
