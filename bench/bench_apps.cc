// Chapter 6 applications: entity-centric search (STICS-style) and news
// analytics over a disambiguated stream. The paper reports use cases
// rather than tables; we measure index build and query latency and verify
// the semantic behaviours (entity search across surface forms, category
// expansion, trending detection).

#include <cstdio>
#include <vector>

#include "apps/entity_search.h"
#include "apps/news_analytics.h"
#include "bench_common.h"
#include "core/aida.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/stopwatch.h"

using namespace aida;

int main() {
  synth::CorpusPreset preset = synth::GigawordEePreset();
  preset.corpus.num_documents = 1200;
  synth::World world = synth::WorldGenerator(preset.world).Generate();
  corpus::Corpus docs =
      synth::CorpusGenerator(&world, preset.corpus).Generate();
  core::CandidateModelStore models(world.knowledge_base.get());
  kore::KoreRelatedness kore;
  core::Aida aida(&models, &kore, core::AidaOptions());

  // ---- Disambiguate the stream and index it --------------------------------
  apps::EntitySearch search(world.knowledge_base.get());
  apps::NewsAnalytics analytics;
  util::Stopwatch ned_watch;
  std::vector<std::vector<kb::EntityId>> annotations(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    core::DisambiguationProblem problem = bench::ToProblem(docs[d]);
    core::DisambiguationResult result = aida.Disambiguate(problem, {});
    for (const core::MentionResult& m : result.mentions) {
      annotations[d].push_back(m.entity);
    }
  }
  double ned_seconds = ned_watch.ElapsedSeconds();

  util::Stopwatch index_watch;
  for (size_t d = 0; d < docs.size(); ++d) {
    search.IndexDocument(docs[d], annotations[d]);
    analytics.AddDocument(docs[d].day, annotations[d]);
  }
  double index_seconds = index_watch.ElapsedSeconds();

  bench::PrintHeader("Section 6 — strings/things/cats search + analytics");
  std::printf("stream: %zu documents; NED %.2fs (%.2f ms/doc); "
              "indexing %.3fs\n",
              docs.size(), ned_seconds, 1000 * ned_seconds / docs.size(),
              index_seconds);

  // ---- Query latency ---------------------------------------------------------
  // Entity ("things") queries: 200 random entities.
  util::Rng rng(99);
  util::Stopwatch query_watch;
  size_t total_hits = 0;
  const int kQueries = 200;
  for (int q = 0; q < kQueries; ++q) {
    apps::EntitySearch::Query query;
    query.entities.push_back(static_cast<kb::EntityId>(
        rng.UniformInt(world.knowledge_base->entity_count())));
    total_hits += search.Search(query, 10).size();
  }
  std::printf("things queries: %.3f ms avg, %.1f hits avg\n",
              query_watch.ElapsedMillis() / kQueries,
              static_cast<double>(total_hits) / kQueries);

  // Category ("cats") queries with time filter.
  query_watch.Reset();
  kb::TypeId person = world.knowledge_base->taxonomy().FindType("person");
  apps::EntitySearch::Query cat_query;
  cat_query.categories.push_back(person);
  cat_query.first_day = 10;
  cat_query.last_day = 20;
  std::vector<apps::EntitySearch::Hit> cat_hits =
      search.Search(cat_query, 20);
  std::printf("cats query ('person', days 10-20): %.3f ms, %zu hits\n",
              query_watch.ElapsedMillis(), cat_hits.size());

  // Mixed strings+things query.
  query_watch.Reset();
  apps::EntitySearch::Query mixed;
  mixed.terms.push_back(world.topic_vocab[0][0]);
  mixed.entities.push_back(world.topic_entities[0].front());
  std::vector<apps::EntitySearch::Hit> mixed_hits = search.Search(mixed, 10);
  std::printf("mixed query: %.3f ms, %zu hits\n",
              query_watch.ElapsedMillis(), mixed_hits.size());

  // ---- Analytics --------------------------------------------------------------
  query_watch.Reset();
  auto trending = analytics.TrendingEntities(28, 3, 5);
  std::printf("trending(day 28, window 3): %.3f ms, top entities:",
              query_watch.ElapsedMillis());
  for (const auto& [entity, score] : trending) {
    std::printf(" %s(%.2f)",
                world.knowledge_base->entities()
                    .Get(entity)
                    .canonical_name.c_str(),
                score);
  }
  std::printf("\n");

  kb::EntityId head = world.topic_entities[0].front();
  auto cooc = analytics.TopCooccurring(head, 3);
  std::printf("top co-occurring with %s:",
              world.knowledge_base->entities().Get(head).canonical_name.c_str());
  for (const auto& [entity, count] : cooc) {
    std::printf(" %s(%u)",
                world.knowledge_base->entities()
                    .Get(entity)
                    .canonical_name.c_str(),
                count);
  }
  std::printf("\n");
  bench::PrintRule();
  std::printf(
      "Expected behaviour: millisecond-scale queries over the inverted\n"
      "indexes; entity queries find documents regardless of surface form;\n"
      "category queries expand through the taxonomy; trending surfaces\n"
      "entities whose recent frequency spikes over their baseline.\n");
  return 0;
}
