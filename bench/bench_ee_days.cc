// Reproduces Figure 5.4: emerging-entity precision and recall as a
// function of the number of stream days harvested into the placeholder
// model, with and without keyphrase harvesting for EXISTING entities.
// More harvested days enrich the placeholder until it starts dominating
// in-KB entities; extending the existing entities' models stabilizes
// precision over time.

#include <cstdio>
#include <vector>

#include "ee_common.h"

using namespace aida;

int main() {
  bench::EeExperiment exp = bench::EeExperiment::Make();
  std::vector<const corpus::Document*> test = exp.Slice(25, 30);
  if (test.size() > 80) test.resize(80);

  bench::PrintHeader(
      "Figure 5.4 — EE precision/recall vs harvested days (GigaWord-EE)");
  std::printf("%-6s %12s %12s %14s %14s\n", "days", "EE P", "EE R",
              "EE P (exist)", "EE R (exist)");
  bench::PrintRule(64);

  for (int64_t days : {1, 2, 4, 7, 10, 14}) {
    double p_plain = 0;
    double r_plain = 0;
    double p_exist = 0;
    double r_exist = 0;
    for (bool harvest_existing : {false, true}) {
      ee::EeDiscoveryOptions options;
      options.gamma = 0.2;
      options.harvest_days = days;
      options.harvest_existing = harvest_existing;
      ee::EmergingEntityDiscoverer discoverer(exp.models.get(),
                                              exp.aida_sim.get(),
                                              &exp.stream, options);
      if (harvest_existing) discoverer.HarvestExistingEntities(14, 24);
      eval::NedEvaluator evaluator;
      for (const corpus::Document* doc : test) {
        evaluator.AddDocument(*doc, discoverer.Discover(*doc));
      }
      if (harvest_existing) {
        p_exist = evaluator.EePrecision();
        r_exist = evaluator.EeRecall();
      } else {
        p_plain = evaluator.EePrecision();
        r_plain = evaluator.EeRecall();
      }
    }
    std::printf("%-6lld %12.3f %12.3f %14.3f %14.3f\n",
                static_cast<long long>(days), p_plain, r_plain, p_exist,
                r_exist);
  }
  bench::PrintRule(64);
  std::printf(
      "Paper shape: recall grows with more harvested days while precision\n"
      "degrades; adding harvested keyphrases for existing entities lifts\n"
      "precision and keeps it stable as the window grows.\n");
  return 0;
}
