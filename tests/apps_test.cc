#include <gtest/gtest.h>

#include "apps/entity_search.h"
#include "apps/news_analytics.h"
#include "test_world.h"
#include "util/string_util.h"

namespace aida::apps {
namespace {

using ::aida::testing::TestWorld;

class AppsTest : public ::testing::Test {
 protected:
  AppsTest()
      : world_(TestWorld::Get().world), corpus_(TestWorld::Get().corpus) {}

  // Gold entity annotations of a document.
  static std::vector<kb::EntityId> GoldEntities(const corpus::Document& doc) {
    std::vector<kb::EntityId> out;
    for (const corpus::GoldMention& m : doc.mentions) {
      out.push_back(m.gold_entity);
    }
    return out;
  }

  const synth::World& world_;
  const corpus::Corpus& corpus_;
};

TEST_F(AppsTest, EntitySearchFindsDocsByEntity) {
  EntitySearch search(world_.knowledge_base.get());
  for (const corpus::Document& doc : corpus_) {
    search.IndexDocument(doc, GoldEntities(doc));
  }
  // Pick an entity mentioned in some document.
  kb::EntityId target = kb::kNoEntity;
  size_t expected_doc = 0;
  for (size_t d = 0; d < corpus_.size(); ++d) {
    for (const corpus::GoldMention& m : corpus_[d].mentions) {
      if (!m.out_of_kb()) {
        target = m.gold_entity;
        expected_doc = d;
        break;
      }
    }
    if (target != kb::kNoEntity) break;
  }
  ASSERT_NE(target, kb::kNoEntity);

  EntitySearch::Query query;
  query.entities.push_back(target);
  std::vector<EntitySearch::Hit> hits = search.Search(query, 100);
  bool found = false;
  for (const auto& hit : hits) found |= (hit.doc_index == expected_doc);
  EXPECT_TRUE(found);
}

TEST_F(AppsTest, EntitySearchCategoryExpansion) {
  EntitySearch search(world_.knowledge_base.get());
  for (const corpus::Document& doc : corpus_) {
    search.IndexDocument(doc, GoldEntities(doc));
  }
  // The root type matches every document with at least one entity.
  kb::TypeId root = world_.knowledge_base->taxonomy().FindType("entity");
  ASSERT_NE(root, kb::kNoType);
  EntitySearch::Query query;
  query.categories.push_back(root);
  std::vector<EntitySearch::Hit> hits =
      search.Search(query, corpus_.size() + 10);
  EXPECT_EQ(hits.size(), corpus_.size());
}

TEST_F(AppsTest, EntitySearchDayFilter) {
  EntitySearch search(world_.knowledge_base.get());
  for (const corpus::Document& doc : corpus_) {
    search.IndexDocument(doc, GoldEntities(doc));
  }
  kb::TypeId root = world_.knowledge_base->taxonomy().FindType("entity");
  EntitySearch::Query query;
  query.categories.push_back(root);
  query.first_day = 3;
  query.last_day = 5;
  for (const auto& hit : search.Search(query, corpus_.size())) {
    EXPECT_GE(corpus_[hit.doc_index].day, 3);
    EXPECT_LE(corpus_[hit.doc_index].day, 5);
  }
}

TEST_F(AppsTest, EntitySearchTermQuery) {
  EntitySearch search(world_.knowledge_base.get());
  for (const corpus::Document& doc : corpus_) {
    search.IndexDocument(doc, GoldEntities(doc));
  }
  // Query a word from some document; that document must be retrievable.
  const corpus::Document& doc0 = corpus_.front();
  std::string term;
  for (const std::string& token : doc0.tokens) {
    if (token.size() > 4) {
      term = token;
      break;
    }
  }
  ASSERT_FALSE(term.empty());
  EntitySearch::Query query;
  query.terms.push_back(term);
  std::vector<EntitySearch::Hit> hits = search.Search(query, corpus_.size());
  bool found = false;
  for (const auto& hit : hits) found |= (hit.doc_index == 0);
  EXPECT_TRUE(found);
}

TEST(NewsAnalyticsTest, FrequencyTimeline) {
  NewsAnalytics analytics;
  analytics.AddDocument(0, {1, 2});
  analytics.AddDocument(1, {1});
  analytics.AddDocument(1, {1, 3});
  std::vector<uint32_t> timeline = analytics.FrequencyTimeline(1, 0, 2);
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0], 1u);
  EXPECT_EQ(timeline[1], 2u);
  EXPECT_EQ(timeline[2], 0u);
}

TEST(NewsAnalyticsTest, DedupesEntitiesPerDocument) {
  NewsAnalytics analytics;
  analytics.AddDocument(0, {1, 1, 1});
  EXPECT_EQ(analytics.FrequencyTimeline(1, 0, 0)[0], 1u);
}

TEST(NewsAnalyticsTest, Cooccurrence) {
  NewsAnalytics analytics;
  analytics.AddDocument(0, {1, 2});
  analytics.AddDocument(1, {1, 2});
  analytics.AddDocument(2, {1, 3});
  auto top = analytics.TopCooccurring(1, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[0].second, 2u);
  EXPECT_EQ(top[1].first, 3u);
}

TEST(NewsAnalyticsTest, TrendingDetectsSpike) {
  NewsAnalytics analytics;
  // Entity 7 is quiet for days 0..8, then spikes on days 9-10.
  // Entity 8 is steady throughout.
  for (int64_t day = 0; day <= 10; ++day) {
    analytics.AddDocument(day, {8});
  }
  for (int i = 0; i < 6; ++i) analytics.AddDocument(9, {7});
  for (int i = 0; i < 6; ++i) analytics.AddDocument(10, {7});
  auto trending = analytics.TrendingEntities(10, 2, 5);
  ASSERT_FALSE(trending.empty());
  EXPECT_EQ(trending[0].first, 7u);
}

TEST_F(AppsTest, SuggestCompletesNamesByPopularity) {
  EntitySearch search(world_.knowledge_base.get());
  // Pick a dictionary name and query its prefix.
  std::string name;
  for (const std::string& n : world_.knowledge_base->dictionary().AllNames()) {
    if (n.size() >= 5 && n.find(' ') == std::string::npos) {
      name = n;
      break;
    }
  }
  ASSERT_FALSE(name.empty());
  std::string prefix = name.substr(0, 4);
  std::vector<EntitySearch::Suggestion> suggestions =
      search.Suggest(prefix, 10);
  ASSERT_FALSE(suggestions.empty());
  bool found = false;
  for (size_t i = 0; i < suggestions.size(); ++i) {
    found |= (suggestions[i].name == name);
    EXPECT_NE(suggestions[i].entity, kb::kNoEntity);
    if (i > 0) {
      EXPECT_LE(suggestions[i].anchor_count,
                suggestions[i - 1].anchor_count);
    }
  }
  EXPECT_TRUE(found);
  // Case-insensitive for long prefixes; unknown prefixes yield nothing.
  EXPECT_FALSE(search.Suggest(util::ToLower(prefix), 10).empty());
  EXPECT_TRUE(search.Suggest("zzzzzzzzz", 10).empty());
}

TEST(NewsAnalyticsTest, CooccurrenceTimeline) {
  NewsAnalytics analytics;
  analytics.AddDocument(0, {1, 2});
  analytics.AddDocument(2, {1, 2});
  analytics.AddDocument(2, {2, 1});  // order-insensitive pair key
  analytics.AddDocument(3, {1, 3});
  std::vector<uint32_t> timeline =
      analytics.CooccurrenceTimeline(1, 2, 0, 3);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0], 1u);
  EXPECT_EQ(timeline[1], 0u);
  EXPECT_EQ(timeline[2], 2u);
  EXPECT_EQ(timeline[3], 0u);
  // Symmetric.
  EXPECT_EQ(analytics.CooccurrenceTimeline(2, 1, 0, 3), timeline);
}

TEST(NewsAnalyticsTest, TrendingRespectsMinCount) {
  NewsAnalytics analytics;
  analytics.AddDocument(0, {1});
  auto trending = analytics.TrendingEntities(0, 1, 5, 3);
  EXPECT_TRUE(trending.empty());
}

}  // namespace
}  // namespace aida::apps
