// Property-based sweeps: invariants that must hold for ANY generated
// world, checked across a set of seeds and world shapes via TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/candidates.h"
#include "core/context_similarity.h"
#include "core/relatedness.h"
#include "core/robustness.h"
#include "graph/dense_subgraph.h"
#include "kb/kb_serialization.h"
#include "kore/keyterm_cosine.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "util/rng.h"

namespace aida {
namespace {

struct WorldParam {
  uint64_t seed;
  size_t topics;
  size_t entities;
  size_t names;
};

std::ostream& operator<<(std::ostream& os, const WorldParam& p) {
  return os << "seed" << p.seed << "_e" << p.entities;
}

class WorldPropertyTest : public ::testing::TestWithParam<WorldParam> {
 protected:
  void SetUp() override {
    const WorldParam& param = GetParam();
    synth::WorldConfig config;
    config.seed = param.seed;
    config.num_topics = param.topics;
    config.num_entities = param.entities;
    config.num_shared_names = param.names;
    config.num_emerging = 8;
    config.topic_vocab_size = 60;
    config.generic_vocab_size = 120;
    world_ = synth::WorldGenerator(config).Generate();
    models_ = std::make_unique<core::CandidateModelStore>(
        world_.knowledge_base.get());
  }

  core::Candidate MakeCandidate(kb::EntityId e) const {
    core::Candidate c;
    c.entity = e;
    c.model = models_->ModelFor(e);
    return c;
  }

  synth::World world_;
  std::unique_ptr<core::CandidateModelStore> models_;
};

INSTANTIATE_TEST_SUITE_P(
    Worlds, WorldPropertyTest,
    ::testing::Values(WorldParam{1, 4, 120, 40},
                      WorldParam{2, 8, 300, 90},
                      WorldParam{77, 6, 200, 30},    // very ambiguous
                      WorldParam{123, 12, 400, 400}  // barely ambiguous
                      ));

// ---- Knowledge-base invariants -------------------------------------------------

TEST_P(WorldPropertyTest, DictionaryPriorsAreDistributions) {
  const kb::Dictionary& dict = world_.knowledge_base->dictionary();
  for (const std::string& name : dict.AllNames()) {
    auto candidates = dict.Lookup(name);
    ASSERT_FALSE(candidates.empty());
    double total = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_GT(candidates[i].prior, 0.0);
      EXPECT_LE(candidates[i].prior, 1.0);
      if (i > 0) {
        EXPECT_LE(candidates[i].prior, candidates[i - 1].prior);
      }
      total += candidates[i].prior;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << name;
  }
}

TEST_P(WorldPropertyTest, KeyphraseWeightsInRange) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  for (kb::EntityId e = 0; e < world_.knowledge_base->entity_count();
       e += 13) {
    for (kb::PhraseId p : store.EntityPhrases(e)) {
      double mi = store.PhraseMi(e, p);
      EXPECT_GE(mi, 0.0);
      EXPECT_LE(mi, 1.0);
    }
    for (kb::WordId w : store.EntityWords(e)) {
      double npmi = store.KeywordNpmi(e, w);
      EXPECT_GE(npmi, 0.0);
      EXPECT_LE(npmi, 1.0 + 1e-9);
      EXPECT_GE(store.WordIdf(w), 0.0);
    }
  }
}

TEST_P(WorldPropertyTest, LinkGraphIsConsistent) {
  const kb::LinkGraph& links = world_.knowledge_base->links();
  size_t in_total = 0;
  size_t out_total = 0;
  for (kb::EntityId e = 0; e < links.entity_count(); ++e) {
    in_total += links.InLinks(e).size();
    out_total += links.OutLinks(e).size();
    for (kb::EntityId source : links.InLinks(e)) {
      const auto& out = links.OutLinks(source);
      EXPECT_TRUE(std::binary_search(out.begin(), out.end(), e));
    }
  }
  EXPECT_EQ(in_total, out_total);
  EXPECT_EQ(out_total, links.link_count());
}

// ---- Relatedness measure invariants ------------------------------------------------

TEST_P(WorldPropertyTest, RelatednessSymmetricAndBounded) {
  core::MilneWittenRelatedness mw(world_.knowledge_base.get());
  kore::KoreRelatedness kore;
  kore::KeytermCosineRelatedness kwcs(
      kore::KeytermCosineRelatedness::Mode::kKeyword);
  kore::KeytermCosineRelatedness kpcs(
      kore::KeytermCosineRelatedness::Mode::kKeyphrase);
  std::vector<const core::RelatednessMeasure*> measures = {&mw, &kore,
                                                           &kwcs, &kpcs};
  util::Rng rng(GetParam().seed * 31 + 1);
  const size_t n = world_.knowledge_base->entity_count();
  for (int trial = 0; trial < 40; ++trial) {
    core::Candidate a = MakeCandidate(
        static_cast<kb::EntityId>(rng.UniformInt(n)));
    core::Candidate b = MakeCandidate(
        static_cast<kb::EntityId>(rng.UniformInt(n)));
    for (const core::RelatednessMeasure* measure : measures) {
      double ab = measure->Relatedness(a, b);
      double ba = measure->Relatedness(b, a);
      EXPECT_NEAR(ab, ba, 1e-9) << measure->name();
      EXPECT_GE(ab, 0.0) << measure->name();
      EXPECT_LE(ab, 1.0 + 1e-9) << measure->name();
    }
  }
}

TEST_P(WorldPropertyTest, LshPairsAreSubsetWithExactValues) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  kore::KoreLshRelatedness lsh = kore::KoreLshRelatedness::Good(&store);
  kore::KoreRelatedness exact;

  std::vector<core::Candidate> pool;
  for (kb::EntityId e = 0; e < std::min<size_t>(
                                   40, world_.knowledge_base->entity_count());
       ++e) {
    pool.push_back(MakeCandidate(e));
  }
  std::vector<const core::Candidate*> ptrs;
  for (const core::Candidate& c : pool) ptrs.push_back(&c);

  for (const auto& [i, j] : lsh.FilterPairs(ptrs)) {
    ASSERT_LT(i, j);
    ASSERT_LT(j, pool.size());
    // The LSH variant computes the EXACT measure on admitted pairs.
    EXPECT_DOUBLE_EQ(lsh.Relatedness(pool[i], pool[j]),
                     exact.Relatedness(pool[i], pool[j]));
  }
}

// ---- Corpus invariants ------------------------------------------------------------------

TEST_P(WorldPropertyTest, GeneratedCorpusIsWellFormed) {
  synth::CorpusConfig config;
  config.seed = GetParam().seed + 5;
  config.num_documents = 15;
  config.doc_tokens = 90;
  config.entities_per_doc = 5;
  config.emerging_mention_prob = 0.1;
  config.linked_entity_prob = 0.5;
  config.coherence_trap_prob = 0.3;
  corpus::Corpus docs =
      synth::CorpusGenerator(&world_, config).Generate();
  ASSERT_EQ(docs.size(), 15u);
  for (const corpus::Document& doc : docs) {
    for (const corpus::GoldMention& m : doc.mentions) {
      ASSERT_LT(m.begin_token, m.end_token);
      ASSERT_LE(m.end_token, doc.tokens.size());
      if (!m.out_of_kb()) {
        ASSERT_LT(m.gold_entity, world_.knowledge_base->entity_count());
        // The gold entity must be reachable through the dictionary.
        bool found = false;
        for (const kb::NameCandidate& nc :
             world_.knowledge_base->dictionary().Lookup(m.surface)) {
          found |= (nc.entity == m.gold_entity);
        }
        EXPECT_TRUE(found) << m.surface;
      } else {
        ASSERT_LT(m.gold_emerging, world_.emerging.size());
      }
    }
  }
}

TEST_P(WorldPropertyTest, SerializationRoundTripsAcrossSeeds) {
  std::string buffer =
      kb::SerializeKnowledgeBase(*world_.knowledge_base);
  auto loaded = kb::DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->entity_count(),
            world_.knowledge_base->entity_count());
  // Serialization is deterministic.
  EXPECT_EQ(kb::SerializeKnowledgeBase(**loaded), buffer);
}

// ---- Dense subgraph invariants (random instances) -----------------------------------------

class DenseSubgraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DenseSubgraphPropertyTest,
                         ::testing::Values(3u, 17u, 99u, 256u, 1024u));

TEST_P(DenseSubgraphPropertyTest, GroupConstraintAlwaysHolds) {
  util::Rng rng(GetParam());
  const size_t mentions = 4 + rng.UniformInt(8);
  const size_t entities = mentions * (2 + rng.UniformInt(5));
  graph::WeightedGraph g(mentions + entities);
  std::vector<bool> removable(mentions + entities, false);
  std::vector<std::vector<graph::NodeId>> groups(mentions);
  for (size_t m = 0; m < mentions; ++m) {
    size_t cands = 1 + rng.UniformInt(5);
    std::set<graph::NodeId> chosen;
    for (size_t c = 0; c < cands; ++c) {
      graph::NodeId node = static_cast<graph::NodeId>(
          mentions + rng.UniformInt(entities));
      if (!chosen.insert(node).second) continue;
      removable[node] = true;
      groups[m].push_back(node);
      g.AddEdge(static_cast<graph::NodeId>(m), node,
                rng.UniformDouble());
    }
  }
  for (int extra = 0; extra < 40; ++extra) {
    graph::NodeId u = static_cast<graph::NodeId>(
        mentions + rng.UniformInt(entities));
    graph::NodeId v = static_cast<graph::NodeId>(
        mentions + rng.UniformInt(entities));
    if (u == v || !removable[u] || !removable[v]) continue;
    g.AddEdge(u, v, rng.UniformDouble() * 0.5);
  }

  graph::DenseSubgraphResult result =
      graph::ConstrainedDenseSubgraph(g, removable, groups);
  ASSERT_EQ(result.alive.size(), g.node_count());
  for (const auto& group : groups) {
    size_t alive = 0;
    for (graph::NodeId node : group) {
      if (result.alive[node]) ++alive;
    }
    EXPECT_GE(alive, 1u);
  }
  EXPECT_GE(result.objective, 0.0);
}

// ---- Cover-scoring invariants --------------------------------------------------------------

class CoverScoreTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CoverScoreTest,
                         ::testing::Values(5u, 50u, 500u));

TEST_P(CoverScoreTest, MoreMatchedWordsNeverScoreLower) {
  // A phrase of k fresh words; documents matching progressively more of
  // them (adjacently) must score monotonically non-decreasing.
  synth::WorldConfig config;
  config.seed = GetParam();
  config.num_topics = 2;
  config.num_entities = 30;
  config.num_shared_names = 10;
  synth::World world = synth::WorldGenerator(config).Generate();
  core::ExtendedVocabulary vocab(&world.knowledge_base->keyphrases());

  core::CandidateModel model;
  core::CandidatePhrase phrase;
  std::vector<std::string> words = {"alpha-w", "beta-w", "gamma-w",
                                    "delta-w"};
  for (const std::string& w : words) {
    phrase.words.push_back(vocab.GetOrIntern(w, 5.0));
    phrase.word_idf.push_back(5.0);
    phrase.word_npmi.push_back(0.8);
  }
  phrase.phrase_weight = 1.0;
  model.phrases.push_back(phrase);
  model.total_phrase_weight = 1.0;

  core::ContextSimilarity similarity;
  double previous = -1.0;
  for (size_t k = 1; k <= words.size(); ++k) {
    std::vector<std::string> tokens = {"mention-token"};
    for (size_t i = 0; i < k; ++i) tokens.push_back(words[i]);
    core::DocumentContext context(tokens, vocab);
    double score = similarity.Score(context, 0, 1, model);
    EXPECT_GE(score, previous) << "k=" << k;
    previous = score;
  }
  // A full adjacent match attains the maximum possible score of 1 phrase
  // with cover length = phrase length: z = 1, fraction = 1.
  EXPECT_NEAR(previous, 1.0, 1e-9);
}

}  // namespace
}  // namespace aida
