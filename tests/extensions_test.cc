#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/baselines.h"
#include "core/batch.h"
#include "core/type_classifier.h"
#include "util/string_util.h"
#include "ee/ee_clustering.h"
#include "ee/keyphrase_harvester.h"
#include "kore/kore_relatedness.h"
#include "test_world.h"

namespace aida {
namespace {

using ::aida::testing::TestWorld;

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()) {}

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  core::CandidateModelStore models_;
  core::MilneWittenRelatedness mw_;
};

// ---- BatchDisambiguator --------------------------------------------------------

TEST_F(ExtensionsTest, BatchMatchesSequential) {
  core::Aida aida(&models_, &mw_, core::AidaOptions());
  std::vector<core::DisambiguationProblem> problems;
  for (size_t d = 0; d < 12; ++d) problems.push_back(ToProblem(corpus_[d]));

  core::BatchOptions options;
  options.num_threads = 4;
  core::BatchDisambiguator batch(&aida, options);
  std::vector<core::DisambiguationResult> parallel = batch.Run(problems);

  ASSERT_EQ(parallel.size(), problems.size());
  for (size_t d = 0; d < problems.size(); ++d) {
    core::DisambiguationResult sequential = aida.Disambiguate(problems[d], {});
    ASSERT_EQ(parallel[d].mentions.size(), sequential.mentions.size());
    for (size_t m = 0; m < sequential.mentions.size(); ++m) {
      EXPECT_EQ(parallel[d].mentions[m].entity,
                sequential.mentions[m].entity)
          << "doc " << d << " mention " << m;
    }
  }
}

TEST_F(ExtensionsTest, BatchEmptyInput) {
  core::Aida aida(&models_, &mw_, core::AidaOptions());
  core::BatchDisambiguator batch(&aida);
  EXPECT_TRUE(batch.Run({}).empty());
  EXPECT_GE(batch.num_threads(), 1u);
}

// ---- TagMe baseline --------------------------------------------------------------

TEST_F(ExtensionsTest, TagMeRunsAndUsesVotes) {
  kore::KoreRelatedness kore;
  core::TagMeBaseline tagme(&models_, &kore);
  size_t correct = 0;
  size_t total = 0;
  for (size_t d = 0; d < 10; ++d) {
    core::DisambiguationProblem problem = ToProblem(corpus_[d]);
    core::DisambiguationResult result = tagme.Disambiguate(problem, {});
    for (size_t m = 0; m < corpus_[d].mentions.size(); ++m) {
      if (corpus_[d].mentions[m].out_of_kb()) continue;
      ++total;
      if (result.mentions[m].entity == corpus_[d].mentions[m].gold_entity) {
        ++correct;
      }
    }
  }
  ASSERT_GT(total, 40u);
  // TagMe uses only priors and votes; it should clearly beat chance but
  // is not expected to reach AIDA's level.
  EXPECT_GT(static_cast<double>(correct) / total, 0.5);
}

// ---- EE clustering ------------------------------------------------------------------

TEST_F(ExtensionsTest, ClusterGroupsCoreferentEeMentions) {
  // Collect EE mentions with harvested window models, tracking the hidden
  // emerging id as ground truth.
  ee::KeyphraseHarvester harvester(ee::KeyphraseHarvester::Options{1});
  core::ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());

  std::vector<ee::EeMention> mentions;
  std::vector<corpus::EmergingId> gold;
  for (size_t d = 0; d < corpus_.size(); ++d) {
    for (size_t m = 0; m < corpus_[d].mentions.size(); ++m) {
      const corpus::GoldMention& gm = corpus_[d].mentions[m];
      if (!gm.out_of_kb()) continue;
      auto model = std::make_shared<core::CandidateModel>();
      for (const std::string& phrase :
           harvester.WindowPhrases(corpus_[d], m)) {
        core::CandidatePhrase cp;
        for (const std::string& token : util::Split(phrase, ' ')) {
          kb::WordId w = vocab.GetOrIntern(token);
          cp.words.push_back(w);
          cp.word_idf.push_back(vocab.Idf(w));
          cp.word_npmi.push_back(vocab.Idf(w));
        }
        cp.phrase_weight = 0.05;
        model->total_phrase_weight += cp.phrase_weight;
        model->phrases.push_back(std::move(cp));
      }
      mentions.push_back({d, m, gm.surface, model});
      gold.push_back(gm.gold_emerging);
    }
  }
  ASSERT_GT(mentions.size(), 10u);

  ee::EeClusterer clusterer;
  std::vector<std::vector<size_t>> clusters = clusterer.Cluster(mentions);

  // Pairwise precision/recall against the hidden emerging ids.
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  std::vector<int> cluster_of(mentions.size(), -1);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i : clusters[c]) cluster_of[i] = static_cast<int>(c);
  }
  for (size_t i = 0; i < mentions.size(); ++i) {
    for (size_t j = i + 1; j < mentions.size(); ++j) {
      bool same_gold = gold[i] == gold[j];
      bool same_cluster = cluster_of[i] == cluster_of[j];
      if (same_gold && same_cluster) ++tp;
      if (!same_gold && same_cluster) ++fp;
      if (same_gold && !same_cluster) ++fn;
    }
  }
  ASSERT_GT(tp + fn, 0u);
  double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
  double recall = static_cast<double>(tp) / (tp + fn);
  EXPECT_GT(precision, 0.7);
  EXPECT_GT(recall, 0.3);
}

TEST_F(ExtensionsTest, MergeModelsAccumulatesWeights) {
  auto model = std::make_shared<core::CandidateModel>();
  core::CandidatePhrase phrase;
  phrase.words = {1, 2};
  phrase.word_idf = {1.0, 1.0};
  phrase.word_npmi = {1.0, 1.0};
  phrase.phrase_weight = 0.1;
  model->phrases.push_back(phrase);
  model->total_phrase_weight = 0.1;

  std::vector<ee::EeMention> mentions = {{0, 0, "X", model},
                                         {1, 0, "X", model}};
  auto merged = ee::EeClusterer::MergeModels(mentions, {0, 1});
  ASSERT_EQ(merged->phrases.size(), 1u);
  EXPECT_DOUBLE_EQ(merged->phrases[0].phrase_weight, 0.2);
  EXPECT_DOUBLE_EQ(merged->total_phrase_weight, 0.2);
}

// ---- Type classifier -------------------------------------------------------------------

TEST_F(ExtensionsTest, TypeClassifierPrefersTopicType) {
  // Classify mention contexts against the topic types; the gold entity's
  // topic type should rank near the top far more often than chance.
  const kb::TypeTaxonomy& taxonomy = world_.knowledge_base->taxonomy();
  std::vector<kb::TypeId> topic_types;
  for (size_t t = 0; t < world_.num_topics(); ++t) {
    kb::TypeId type =
        taxonomy.FindType(util::StrFormat("topic_%zu", t));
    ASSERT_NE(type, kb::kNoType);
    topic_types.push_back(type);
  }
  core::TypeClassifier classifier(world_.knowledge_base.get(), topic_types);
  core::ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());

  size_t hits = 0;
  size_t total = 0;
  for (size_t d = 0; d < 10; ++d) {
    core::DocumentContext context(corpus_[d].tokens, vocab);
    for (const corpus::GoldMention& gm : corpus_[d].mentions) {
      if (gm.out_of_kb()) continue;
      auto predictions = classifier.Classify(context, gm.begin_token,
                                             gm.end_token);
      if (predictions.empty()) continue;
      ++total;
      uint32_t gold_topic = world_.entity_topic[gm.gold_entity];
      // Top-2 hit counts.
      for (size_t p = 0; p < std::min<size_t>(2, predictions.size()); ++p) {
        if (predictions[p].type == topic_types[gold_topic]) {
          ++hits;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 40u);
  // Chance level for top-2 of 8 topics is 25%.
  EXPECT_GT(static_cast<double>(hits) / total, 0.5);
}

TEST_F(ExtensionsTest, TypeClassifierScoresAreDeterministic) {
  // Regression: centroids used to accumulate IDF mass in unordered_map
  // iteration order, so prediction scores were a function of the hash
  // seed. Two classifiers built from the same KB must now agree bitwise.
  const kb::TypeTaxonomy& taxonomy = world_.knowledge_base->taxonomy();
  std::vector<kb::TypeId> topic_types;
  for (size_t t = 0; t < world_.num_topics(); ++t) {
    kb::TypeId type = taxonomy.FindType(util::StrFormat("topic_%zu", t));
    ASSERT_NE(type, kb::kNoType);
    topic_types.push_back(type);
  }
  core::TypeClassifier first(world_.knowledge_base.get(), topic_types);
  core::TypeClassifier second(world_.knowledge_base.get(), topic_types);
  core::ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());

  size_t compared = 0;
  for (size_t d = 0; d < 5; ++d) {
    core::DocumentContext context(corpus_[d].tokens, vocab);
    for (const corpus::GoldMention& gm : corpus_[d].mentions) {
      auto a = first.Classify(context, gm.begin_token, gm.end_token);
      auto b = second.Classify(context, gm.begin_token, gm.end_token);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type);
        // Bitwise, not approximate: the determinism contract promises
        // identical floating-point folds, not merely close ones.
        EXPECT_EQ(a[i].score, b[i].score);
      }
      compared += a.size();
    }
  }
  ASSERT_GT(compared, 0u);
}

}  // namespace
}  // namespace aida
