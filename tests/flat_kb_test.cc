// Tests of the zero-copy flat KB snapshot format: heap -> flat -> load
// round-trip equality, corruption robustness (every failure is a clean
// Status), byte-identical disambiguation between heap- and flat-backed
// knowledge bases, and registry publication of flat snapshot files.

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/relatedness.h"
#include "kb/flat/flat_layout.h"
#include "kb/flat/flat_snapshot.h"
#include "kb/kb_builder.h"
#include "kb/kb_serialization.h"
#include "kb/knowledge_base.h"
#include "kb/snapshot_registry.h"
#include "test_world.h"

namespace aida::kb {
namespace {

using ::aida::testing::TestWorld;

const KnowledgeBase& HeapKb() {
  return *TestWorld::Get().world.knowledge_base;
}

std::string FlatBytes() {
  static const std::string& bytes =
      *new std::string(flat::SerializeFlatSnapshot(HeapKb()));
  return bytes;
}

std::unique_ptr<KnowledgeBase> LoadFlatCopy() {
  auto loaded = flat::LoadFlatSnapshotFromString(FlatBytes());
  AIDA_CHECK(loaded.ok());
  return std::move(loaded.value());
}

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

TEST(FlatKbTest, RoundTripPreservesEntitiesAndTaxonomy) {
  std::unique_ptr<KnowledgeBase> flat = LoadFlatCopy();
  EXPECT_TRUE(flat->flat_backed());
  EXPECT_FALSE(HeapKb().flat_backed());

  ASSERT_EQ(flat->entity_count(), HeapKb().entity_count());
  for (EntityId e = 0; e < HeapKb().entity_count(); ++e) {
    const Entity& a = HeapKb().entities().Get(e);
    const Entity& b = flat->entities().Get(e);
    EXPECT_EQ(a.canonical_name, b.canonical_name);
    EXPECT_EQ(a.anchor_count, b.anchor_count);
    EXPECT_EQ(a.types, b.types);
  }

  ASSERT_EQ(flat->taxonomy().size(), HeapKb().taxonomy().size());
  for (TypeId t = 0; t < HeapKb().taxonomy().size(); ++t) {
    EXPECT_EQ(flat->taxonomy().TypeName(t), HeapKb().taxonomy().TypeName(t));
    EXPECT_EQ(flat->taxonomy().Parent(t), HeapKb().taxonomy().Parent(t));
  }
}

TEST(FlatKbTest, RoundTripPreservesDictionaryBitExactly) {
  std::unique_ptr<KnowledgeBase> flat = LoadFlatCopy();
  std::vector<std::string> names = HeapKb().dictionary().AllNames();
  EXPECT_EQ(flat->dictionary().AllNames(), names);
  for (const std::string& name : names) {
    std::span<const NameCandidate> a = HeapKb().dictionary().Lookup(name);
    std::span<const NameCandidate> b = flat->dictionary().Lookup(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].entity, b[i].entity);
      EXPECT_EQ(a[i].anchor_count, b[i].anchor_count);
      // Priors are stored, not recomputed: bit-equality, not EQ_NEAR.
      EXPECT_EQ(a[i].prior, b[i].prior) << name << " #" << i;
    }
  }
  // Case-dispatch semantics survive the flat round trip.
  EXPECT_EQ(flat->dictionary().MeanAmbiguity(),
            HeapKb().dictionary().MeanAmbiguity());
}

TEST(FlatKbTest, RoundTripPreservesLinksAndKeyphrasesBitExactly) {
  std::unique_ptr<KnowledgeBase> flat = LoadFlatCopy();
  const KeyphraseStore& a = HeapKb().keyphrases();
  const KeyphraseStore& b = flat->keyphrases();
  ASSERT_EQ(b.word_count(), a.word_count());
  ASSERT_EQ(b.phrase_count(), a.phrase_count());
  ASSERT_EQ(flat->links().link_count(), HeapKb().links().link_count());

  auto equal_rows = [](std::span<const EntityId> x,
                       std::span<const EntityId> y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  for (EntityId e = 0; e < HeapKb().entity_count(); ++e) {
    EXPECT_TRUE(
        equal_rows(HeapKb().links().InLinks(e), flat->links().InLinks(e)));
    EXPECT_TRUE(
        equal_rows(HeapKb().links().OutLinks(e), flat->links().OutLinks(e)));

    const std::span<const PhraseId> pa = a.EntityPhrases(e);
    const std::span<const PhraseId> pb = b.EntityPhrases(e);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
    for (PhraseId p : pa) {
      EXPECT_EQ(a.PhraseText(p), b.PhraseText(p));
      // Derived weights are stored verbatim in the snapshot.
      EXPECT_EQ(a.PhraseMi(e, p), b.PhraseMi(e, p));
      EXPECT_EQ(a.PhraseDf(p), b.PhraseDf(p));
    }
    const std::span<const WordId> wa = a.EntityWords(e);
    const std::span<const WordId> wb = b.EntityWords(e);
    ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()));
    for (WordId w : wa) {
      EXPECT_EQ(a.KeywordNpmi(e, w), b.KeywordNpmi(e, w));
    }
  }
  for (WordId w = 0; w < a.word_count(); ++w) {
    EXPECT_EQ(a.WordText(w), b.WordText(w));
    EXPECT_EQ(a.WordDf(w), b.WordDf(w));
    EXPECT_EQ(a.WordIdf(w), b.WordIdf(w));
    EXPECT_EQ(b.FindWord(a.WordText(w)), w);
  }
}

TEST(FlatKbTest, SerializationIsDeterministic) {
  // Re-serializing a flat-loaded KB reproduces the file byte for byte:
  // the flat arrays ARE the canonical representation.
  std::unique_ptr<KnowledgeBase> flat = LoadFlatCopy();
  EXPECT_EQ(flat::SerializeFlatSnapshot(*flat), FlatBytes());
  EXPECT_EQ(flat::SerializeFlatSnapshot(HeapKb()), FlatBytes());
}

TEST(FlatKbTest, DisambiguationIsByteIdenticalToHeap) {
  std::unique_ptr<KnowledgeBase> flat = LoadFlatCopy();

  core::CandidateModelStore heap_models(&HeapKb());
  core::MilneWittenRelatedness heap_mw(&HeapKb());
  core::Aida heap_aida(&heap_models, &heap_mw, core::AidaOptions());

  core::CandidateModelStore flat_models(flat.get());
  core::MilneWittenRelatedness flat_mw(flat.get());
  core::Aida flat_aida(&flat_models, &flat_mw, core::AidaOptions());

  size_t docs = 0;
  for (const corpus::Document& doc : TestWorld::Get().corpus) {
    if (++docs > 8) break;
    core::DisambiguationProblem problem = ToProblem(doc);
    core::DisambiguationResult a = heap_aida.Disambiguate(problem, {});
    core::DisambiguationResult b = flat_aida.Disambiguate(problem, {});
    ASSERT_EQ(a.mentions.size(), b.mentions.size());
    for (size_t m = 0; m < a.mentions.size(); ++m) {
      EXPECT_EQ(a.mentions[m].entity, b.mentions[m].entity);
      // Scores are doubles computed from stored weights: bit-equality.
      EXPECT_EQ(a.mentions[m].score, b.mentions[m].score);
      EXPECT_EQ(a.mentions[m].candidate_entities,
                b.mentions[m].candidate_entities);
      EXPECT_EQ(a.mentions[m].candidate_scores, b.mentions[m].candidate_scores);
    }
    // Work counters match exactly; wall-clock fields naturally differ.
    EXPECT_EQ(a.stats.relatedness_computations,
              b.stats.relatedness_computations);
    EXPECT_EQ(a.stats.graph_iterations, b.stats.graph_iterations);
  }
}

TEST(FlatKbTest, DeserializeKnowledgeBaseAutodetectsFlatMagic) {
  EXPECT_TRUE(flat::LooksLikeFlatSnapshot(FlatBytes()));
  EXPECT_FALSE(flat::LooksLikeFlatSnapshot(SerializeKnowledgeBase(HeapKb())));
  auto loaded = DeserializeKnowledgeBase(FlatBytes());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->flat_backed());
  EXPECT_EQ((*loaded)->entity_count(), HeapKb().entity_count());
}

TEST(FlatKbTest, FileRoundTripUsesMmap) {
  const std::string path = ::testing::TempDir() + "/flat_kb_test.fkb";
  ASSERT_TRUE(flat::SaveFlatSnapshot(HeapKb(), path).ok());
  EXPECT_EQ(flat::ProbeFileMagic(path), flat::MagicProbe::kFlat);

  auto direct = flat::LoadFlatSnapshot(path);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_TRUE((*direct)->flat_backed());
  EXPECT_EQ((*direct)->entity_count(), HeapKb().entity_count());

  // The generic loader dispatches on the magic prefix.
  auto generic = LoadKnowledgeBase(path);
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();
  EXPECT_TRUE((*generic)->flat_backed());
}

TEST(FlatKbTest, SnapshotRegistryPublishesFlatFile) {
  const std::string path = ::testing::TempDir() + "/flat_kb_registry.fkb";
  ASSERT_TRUE(flat::SaveFlatSnapshot(HeapKb(), path).ok());

  SnapshotRegistry registry;
  auto snapshot = registry.ReloadFromFile(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE((*snapshot)->has_knowledge_base());
  EXPECT_TRUE((*snapshot)->knowledge_base().flat_backed());

  core::DisambiguationProblem problem =
      ToProblem(TestWorld::Get().corpus.front());
  core::DisambiguationResult result =
      (*snapshot)->system().Disambiguate(problem, {});
  EXPECT_EQ(result.mentions.size(), problem.mentions.size());
}

TEST(FlatKbTest, RejectsUnalignedBuffer) {
  const std::string bytes = FlatBytes();
  std::vector<char> storage(bytes.size() + 1);
  std::memcpy(storage.data() + 1, bytes.data(), bytes.size());
  auto result = flat::LoadFlatSnapshotFromBuffer(
      std::string_view(storage.data() + 1, bytes.size()), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("align"), std::string::npos);
}

TEST(FlatKbTest, RejectsGarbageAndEmpty) {
  EXPECT_FALSE(flat::LoadFlatSnapshotFromString("").ok());
  EXPECT_FALSE(flat::LoadFlatSnapshotFromString("garbage bytes here").ok());
  // v1 stream bytes are not a flat snapshot.
  EXPECT_FALSE(
      flat::LoadFlatSnapshotFromString(SerializeKnowledgeBase(HeapKb())).ok());
}

TEST(FlatKbTest, RejectsVersionMismatch) {
  std::string corrupt = FlatBytes();
  // FileHeader: u32 magic, then u32 version.
  corrupt[4] = 0x7F;
  auto result = flat::LoadFlatSnapshotFromString(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos);
}

TEST(FlatKbTest, RejectsTruncationAtEveryStride) {
  const std::string bytes = FlatBytes();
  std::vector<size_t> cuts;
  for (size_t cut = 0; cut < bytes.size(); cut += bytes.size() / 97 + 1) {
    cuts.push_back(cut);
  }
  for (size_t tail = 1; tail <= 16 && tail < bytes.size(); ++tail) {
    cuts.push_back(bytes.size() - tail);
  }
  for (size_t cut : cuts) {
    auto result = flat::LoadFlatSnapshotFromString(
        std::string_view(bytes.data(), cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_FALSE(result.status().ToString().empty()) << "cut at " << cut;
  }
}

TEST(FlatKbTest, RejectsTrailingBytes) {
  std::string grown = FlatBytes();
  grown += "junk";
  EXPECT_FALSE(flat::LoadFlatSnapshotFromString(grown).ok());
}

TEST(FlatKbTest, HeaderAndSectionTableBitFlipSweepNeverCrashes) {
  // Single-bit corruption across the header, the whole section table and
  // the meta section: every variant must load or fail with a Status —
  // never crash, abort, or trip a sanitizer (the ASan config reruns
  // this sweep).
  const std::string pristine = FlatBytes();
  const size_t section_count =
      static_cast<size_t>(flat::SectionId::kOutLinkTargets);  // ids are dense
  const size_t table_end = sizeof(flat::FileHeader) +
                           section_count * sizeof(flat::SectionEntry) +
                           sizeof(flat::MetaSection);
  const size_t span = std::min(pristine.size(), table_end);
  for (size_t byte = 0; byte < span; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = pristine;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto result = flat::LoadFlatSnapshotFromString(corrupt);
      if (!result.ok()) {
        EXPECT_FALSE(result.status().ToString().empty())
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(FlatKbTest, PayloadClobberSweepNeverCrashes) {
  // Overwrite eight-byte windows throughout the payload region (offset
  // tables, hash slots, id arrays, string pools) with 0xFF. A corrupted
  // window may still happen to validate; it must never reach undefined
  // behaviour or a CHECK abort.
  const std::string pristine = FlatBytes();
  for (size_t off = 0; off + 8 <= pristine.size();
       off += pristine.size() / 211 + 1) {
    std::string corrupt = pristine;
    for (size_t b = 0; b < 8; ++b) corrupt[off + b] = '\xFF';
    auto result = flat::LoadFlatSnapshotFromString(corrupt);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().ToString().empty()) << "offset " << off;
    }
  }
}

TEST(FlatKbTest, SmallBuilderKbRoundTrips) {
  // A tiny hand-built KB (including an empty-phrase-set entity and an
  // entity with no links) survives the flat round trip.
  KbBuilder builder;
  EntityId a = builder.AddEntity("Alpha");
  EntityId b = builder.AddEntity("Beta");
  EntityId c = builder.AddEntity("Gamma");
  builder.AddName("A", a, 3);
  builder.AddName("Alpha", a, 7);
  builder.AddName("Alpha", b, 1);
  builder.AddName("Gamma", c, 2);
  builder.AddKeyphrase(a, "rock guitar");
  builder.AddKeyphrase(b, "rock opera");
  builder.AddLink(a, b);
  builder.AddLink(b, a);
  std::unique_ptr<KnowledgeBase> kb = std::move(builder).Build();

  auto loaded =
      flat::LoadFlatSnapshotFromString(flat::SerializeFlatSnapshot(*kb));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KnowledgeBase& flat_kb = **loaded;
  EXPECT_EQ(flat_kb.entity_count(), 3u);
  std::span<const NameCandidate> alpha = flat_kb.dictionary().Lookup("Alpha");
  ASSERT_EQ(alpha.size(), 2u);
  EXPECT_EQ(alpha[0].entity, a);
  EXPECT_EQ(alpha[1].entity, b);
  EXPECT_TRUE(flat_kb.keyphrases().EntityPhrases(c).empty());
  EXPECT_TRUE(flat_kb.links().InLinks(c).empty());
  EXPECT_EQ(flat_kb.links().link_count(), 2u);
}

}  // namespace
}  // namespace aida::kb
