#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/candidates.h"
#include "core/relatedness.h"
#include "ingest/wiki_importer.h"

namespace aida::ingest {
namespace {

constexpr const char* kPagePage = R"(= Jimmy_Page =
CATEGORY: person | musician
NAME: Page
REDIRECT-FROM: James_Patrick_Page
Jimmy Page is an english rock guitarist famous for the band
[[Led_Zeppelin]] and his [[Gibson_Les_Paul|gibson guitar]] solos .
)";

constexpr const char* kZeppelinPage = R"(= Led_Zeppelin =
CATEGORY: organization | band
An english rock band founded by [[Jimmy_Page|Page]] playing hard rock .
)";

constexpr const char* kRegionPage = R"(= Kashmir_Region =
CATEGORY: location
NAME: Kashmir
A disputed himalaya territory with high mountain passes .
)";

class WikiImporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WikiImporter importer;
    ASSERT_TRUE(importer.AddPage(kPagePage).ok());
    ASSERT_TRUE(importer.AddPage(kZeppelinPage).ok());
    ASSERT_TRUE(importer.AddPage(kRegionPage).ok());
    ASSERT_EQ(importer.page_count(), 3u);
    kb_ = std::move(importer).Build();
  }

  std::unique_ptr<kb::KnowledgeBase> kb_;
};

TEST_F(WikiImporterTest, PagesAndRedLinksBecomeEntities) {
  // 3 pages + the red-link target Gibson_Les_Paul.
  EXPECT_EQ(kb_->entity_count(), 4u);
  EXPECT_NE(kb_->entities().FindByName("Jimmy_Page"), kb::kNoEntity);
  EXPECT_NE(kb_->entities().FindByName("Gibson_Les_Paul"), kb::kNoEntity);
}

TEST_F(WikiImporterTest, DictionaryFromTitlesNamesRedirectsAnchors) {
  kb::EntityId page = kb_->entities().FindByName("Jimmy_Page");
  auto check = [&](const std::string& name) {
    for (const kb::NameCandidate& nc : kb_->dictionary().Lookup(name)) {
      if (nc.entity == page) return true;
    }
    return false;
  };
  EXPECT_TRUE(check("Jimmy Page"));        // title surface
  EXPECT_TRUE(check("Page"));              // NAME: line + anchor
  EXPECT_TRUE(check("James Patrick Page"));  // redirect
}

TEST_F(WikiImporterTest, LinksBecomeGraphEdges) {
  kb::EntityId page = kb_->entities().FindByName("Jimmy_Page");
  kb::EntityId zeppelin = kb_->entities().FindByName("Led_Zeppelin");
  const auto& out = kb_->links().OutLinks(page);
  EXPECT_TRUE(std::find(out.begin(), out.end(), zeppelin) != out.end());
  // Reciprocal link from the Zeppelin page.
  const auto& in = kb_->links().InLinks(page);
  EXPECT_TRUE(std::find(in.begin(), in.end(), zeppelin) != in.end());
}

TEST_F(WikiImporterTest, CategoriesBecomeTypes) {
  kb::EntityId page = kb_->entities().FindByName("Jimmy_Page");
  kb::TypeId musician = kb_->taxonomy().FindType("musician");
  ASSERT_NE(musician, kb::kNoType);
  const auto& types = kb_->entities().Get(page).types;
  EXPECT_TRUE(std::find(types.begin(), types.end(), musician) !=
              types.end());
}

TEST_F(WikiImporterTest, KeyphrasesFromAnchorsCategoriesAndText) {
  kb::EntityId page = kb_->entities().FindByName("Jimmy_Page");
  const kb::KeyphraseStore& store = kb_->keyphrases();
  std::vector<std::string> texts;
  for (kb::PhraseId p : store.EntityPhrases(page)) {
    texts.push_back(store.PhraseText(p));
  }
  auto has = [&](const std::string& t) {
    return std::find(texts.begin(), texts.end(), t) != texts.end();
  };
  EXPECT_TRUE(has("musician"));       // category
  EXPECT_TRUE(has("gibson guitar"));  // link anchor
  // A body noun group.
  bool body_phrase = false;
  for (const std::string& t : texts) {
    body_phrase |= t.find("guitarist") != std::string::npos;
  }
  EXPECT_TRUE(body_phrase);
}

TEST_F(WikiImporterTest, ImportedKbDisambiguates) {
  // The imported KB is a fully functional substrate for AIDA.
  core::CandidateModelStore models(kb_.get());
  core::MilneWittenRelatedness mw(kb_.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  std::vector<std::string> tokens = {"Page",  "played", "hard",
                                     "rock",  "with",   "the",
                                     "band", "on", "stage"};
  core::DisambiguationProblem problem;
  problem.tokens = &tokens;
  core::ProblemMention pm;
  pm.surface = "Page";
  pm.begin_token = 0;
  pm.end_token = 1;
  problem.mentions.push_back(pm);
  core::DisambiguationResult result = aida.Disambiguate(problem, {});
  EXPECT_EQ(result.mentions[0].entity,
            kb_->entities().FindByName("Jimmy_Page"));
}

TEST(WikiImporterErrorsTest, RejectsMalformedPages) {
  WikiImporter importer;
  EXPECT_FALSE(importer.AddPage("no title line at all\n").ok());
  EXPECT_FALSE(importer.AddPage("= T =\nbroken [[link\n").ok());
  EXPECT_FALSE(importer.AddPage("= T =\nempty [[|anchor]]\n").ok());
  EXPECT_FALSE(importer.AddPage("= =\n").ok());
  EXPECT_EQ(importer.page_count(), 0u);
}

// Wiki pages are untrusted input (the fuzz_wiki_importer harness feeds
// the importer arbitrary bytes), so malformed markup must come back as an
// error Status or parse to something harmless — never abort.
TEST(WikiImporterErrorsTest, MalformedHeaderAndMarkupVariants) {
  WikiImporter importer;
  EXPECT_FALSE(importer.AddPage("= T =\ntext [[unterminated link\n").ok());
  EXPECT_FALSE(importer.AddPage("= =\nbody\n").ok());
  EXPECT_FALSE(importer.AddPage("==\nbody\n").ok());
  EXPECT_FALSE(importer.AddPage("body before any header\n").ok());
  EXPECT_FALSE(importer.AddPage("= T =\nan [[|anchor only]] link\n").ok());
  EXPECT_FALSE(importer.AddPage("").ok());
  EXPECT_EQ(importer.page_count(), 0u);
}

TEST(WikiImporterErrorsTest, DuplicateTitleHeaderLastWins) {
  WikiImporter importer;
  ASSERT_TRUE(importer.AddPage("= First =\n= Second =\nbody text\n").ok());
  auto kb = std::move(importer).Build();
  EXPECT_EQ(kb->entities().FindByName("First"), kb::kNoEntity);
  EXPECT_NE(kb->entities().FindByName("Second"), kb::kNoEntity);
}

TEST(WikiImporterErrorsTest, DuplicatePageTitlesShareOneEntity) {
  WikiImporter importer;
  ASSERT_TRUE(importer.AddPage("= Twin =\nNAME: A\n").ok());
  ASSERT_TRUE(importer.AddPage("= Twin =\nNAME: B\n").ok());
  auto kb = std::move(importer).Build();
  EXPECT_EQ(kb->entity_count(), 1u);
  EXPECT_TRUE(kb->dictionary().Contains("A"));
  EXPECT_TRUE(kb->dictionary().Contains("B"));
}

TEST(WikiImporterErrorsTest, GarbageMetadataLinesAreHarmless) {
  WikiImporter importer;
  ASSERT_TRUE(importer
                  .AddPage("= T =\n"
                           "CATEGORY:\n"
                           "CATEGORY: | | |\n"
                           "NAME:|||\n"
                           "REDIRECT-FROM:   \n"
                           "CATEGORY: dup | dup\n")
                  .ok());
  auto kb = std::move(importer).Build();
  EXPECT_EQ(kb->entity_count(), 1u);
  // Only "entity" (root) and "dup" exist; empty list items were dropped.
  EXPECT_EQ(kb->taxonomy().size(), 2u);
}

// Regression (tests/fuzz/corpus/wiki_importer/crash-category-entity.txt):
// the literal category "entity" collides with the root type the importer
// seeds the taxonomy with, and used to abort Build() on the taxonomy's
// duplicate-name invariant. It must map onto the root instead.
TEST(WikiImporterErrorsTest, CategoryNamedEntityMapsOntoRootType) {
  WikiImporter importer;
  ASSERT_TRUE(importer.AddPage("= Anything =\nCATEGORY: entity\nBody.\n").ok());
  auto kb = std::move(importer).Build();
  EXPECT_EQ(kb->taxonomy().size(), 1u);
  kb::EntityId id = kb->entities().FindByName("Anything");
  ASSERT_NE(id, kb::kNoEntity);
  ASSERT_EQ(kb->entities().Get(id).types.size(), 1u);
  EXPECT_EQ(kb->taxonomy().TypeName(kb->entities().Get(id).types[0]),
            "entity");
}

TEST(WikiImporterErrorsTest, RenderRoundTrips) {
  std::string page = RenderWikiPage(
      "Some_Entity", {"person"}, {"Some", "S. Entity"},
      {{"Other_Entity", "the other one"}}, "A body line about things .");
  WikiImporter importer;
  ASSERT_TRUE(importer.AddPage(page).ok());
  auto kb = std::move(importer).Build();
  EXPECT_EQ(kb->entity_count(), 2u);
  EXPECT_TRUE(kb->dictionary().Contains("Some"));
  EXPECT_TRUE(kb->dictionary().Contains("the other one"));
}

}  // namespace
}  // namespace aida::ingest
