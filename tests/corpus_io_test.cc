#include <gtest/gtest.h>

#include "corpus/corpus_io.h"
#include "test_world.h"

namespace aida::corpus {
namespace {

using ::aida::testing::TestWorld;

TEST(CorpusIoTest, RoundTripsGeneratedCorpus) {
  const Corpus& corpus = TestWorld::Get().corpus;
  std::string data = SerializeCorpus(corpus);
  util::StatusOr<Corpus> loaded = DeserializeCorpus(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), corpus.size());
  for (size_t d = 0; d < corpus.size(); ++d) {
    const Document& a = corpus[d];
    const Document& b = (*loaded)[d];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.topic, b.topic);
    EXPECT_EQ(a.tokens, b.tokens);
    ASSERT_EQ(a.mentions.size(), b.mentions.size());
    for (size_t m = 0; m < a.mentions.size(); ++m) {
      EXPECT_EQ(a.mentions[m].surface, b.mentions[m].surface);
      EXPECT_EQ(a.mentions[m].begin_token, b.mentions[m].begin_token);
      EXPECT_EQ(a.mentions[m].end_token, b.mentions[m].end_token);
      EXPECT_EQ(a.mentions[m].gold_entity, b.mentions[m].gold_entity);
      EXPECT_EQ(a.mentions[m].gold_emerging, b.mentions[m].gold_emerging);
    }
  }
  // Deterministic.
  EXPECT_EQ(SerializeCorpus(*loaded), data);
}

TEST(CorpusIoTest, PreservesOutOfKbMarkers) {
  Document doc;
  doc.id = "d";
  doc.tokens = {"Prism", "leaked"};
  GoldMention m;
  m.surface = "Prism";
  m.begin_token = 0;
  m.end_token = 1;
  m.gold_entity = kb::kNoEntity;
  m.gold_emerging = 7;
  doc.mentions.push_back(m);
  util::StatusOr<Corpus> loaded = DeserializeCorpus(SerializeCorpus({doc}));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)[0].mentions[0].out_of_kb());
  EXPECT_EQ((*loaded)[0].mentions[0].gold_emerging, 7u);
}

TEST(CorpusIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeCorpus("garbage\n").ok());
  EXPECT_FALSE(DeserializeCorpus("#DOC a 1\n").ok());  // missing field
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\n0 9 - - x\n"
                        "#END\n")
          .ok());  // span out of range
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\n0 1 q - x\n"
                        "#END\n")
          .ok());  // bad entity id
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\n0 1 - - x\n")
          .ok());  // missing #END
}

// Regression (tests/fuzz/corpus/corpus_io/crash-empty-tokens.txt): a
// zero-token document serializes with a blank token line that the
// line-splitter drops, so the parser used to misread #MENTIONS as the
// token line and fail its own round-trip.
TEST(CorpusIoTest, EmptyTokenDocumentRoundTrips) {
  Corpus corpus(1);
  corpus[0].id = "empty_doc";
  std::string serialized = SerializeCorpus(corpus);
  util::StatusOr<Corpus> loaded = DeserializeCorpus(serialized);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].id, "empty_doc");
  EXPECT_TRUE((*loaded)[0].tokens.empty());
  EXPECT_TRUE((*loaded)[0].mentions.empty());
}

TEST(CorpusIoTest, RejectsNonNumericFields) {
  // Numeric fields go through checked strto* parsing; text where a
  // number belongs must be a clean error, not a silent zero.
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a day 0\n#TOKENS\nx\n#MENTIONS\n#END\n").ok());
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 topic\n#TOKENS\nx\n#MENTIONS\n#END\n").ok());
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\nzero 1 - - x\n#END\n")
          .ok());
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\n0 one - - x\n#END\n")
          .ok());
  EXPECT_FALSE(
      DeserializeCorpus("#DOC a 1 0\n#TOKENS\nx y\n#MENTIONS\n0 1x - - x\n#END\n")
          .ok());  // trailing garbage after the number
}

TEST(CorpusIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aida_corpus_test.txt";
  const Corpus& corpus = TestWorld::Get().corpus;
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  util::StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), corpus.size());
}

TEST(CorpusIoTest, EmptyCorpus) {
  EXPECT_EQ(SerializeCorpus({}), "");
  util::StatusOr<Corpus> loaded = DeserializeCorpus("");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace aida::corpus
