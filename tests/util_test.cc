#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::util {
namespace {

// ---- Status ------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing entity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing entity");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing entity");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),
      Status::FailedPrecondition("x").code(), Status::OutOfRange("x").code(),
      Status::Unimplemented("x").code(),    Status::Internal("x").code(),
      Status::IoError("x").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ---- String utilities ----------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("Hello World"), "hello world");
  EXPECT_EQ(ToUpper("Hello World"), "HELLO WORLD");
}

TEST(StringUtilTest, IsAllUpper) {
  EXPECT_TRUE(IsAllUpper("NASA"));
  EXPECT_TRUE(IsAllUpper("U.S."));
  EXPECT_FALSE(IsAllUpper("NaSA"));
  EXPECT_FALSE(IsAllUpper("123"));  // no alphabetic characters
}

TEST(StringUtilTest, SplitOmitsEmptyPieces) {
  EXPECT_EQ(Split("a b  c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ' '), (std::vector<std::string>{}));
  EXPECT_EQ(Split("  ", ' '), (std::vector<std::string>{}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"one", "two", "three"};
  EXPECT_EQ(Split(Join(pieces, " "), ' '), pieces);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s_%d", "doc", 7), "doc_7");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, GeometricRespectsCap) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.Geometric(0.01, 5), 5);
  }
}

// ---- ZipfSampler -------------------------------------------------------------

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (size_t i = 0; i < 100; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, HeadIsHeavier) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(ZipfSamplerTest, SampleInRangeAndSkewed) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(31);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    size_t s = zipf.Sample(rng);
    EXPECT_LT(s, 50u);
    if (s == 0) ++head;
  }
  // Rank 0 should receive roughly its pmf share of samples.
  EXPECT_NEAR(static_cast<double>(head) / n, zipf.Pmf(0), 0.03);
}

// ---- Binary serialization ------------------------------------------------------

TEST(SerializeTest, RoundTripScalars) {
  BinaryWriter writer;
  writer.WriteU32(7);
  writer.WriteU64(1ull << 40);
  writer.WriteI64(-12345);
  writer.WriteDouble(3.25);
  writer.WriteString("hello");

  BinaryReader reader(writer.buffer());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, RoundTripVectors) {
  BinaryWriter writer;
  std::vector<uint32_t> ids = {1, 2, 3, 99};
  std::vector<std::string> names = {"a", "bb", ""};
  writer.WriteVector(ids);
  writer.WriteStringVector(names);

  BinaryReader reader(writer.buffer());
  std::vector<uint32_t> ids2;
  std::vector<std::string> names2;
  ASSERT_TRUE(reader.ReadVector(&ids2).ok());
  ASSERT_TRUE(reader.ReadStringVector(&names2).ok());
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(names2, names);
}

TEST(SerializeTest, TruncatedInputFails) {
  BinaryWriter writer;
  writer.WriteU64(1);
  std::string data = writer.buffer().substr(0, 3);
  BinaryReader reader(data);
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadU64(&v).ok());
}

TEST(SerializeTest, TruncatedStringFails) {
  BinaryWriter writer;
  writer.WriteString("long string content");
  std::string data = writer.buffer().substr(0, 10);
  BinaryReader reader(data);
  std::string s;
  EXPECT_FALSE(reader.ReadString(&s).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aida_serialize_test.bin";
  // Embedded NUL and control bytes must survive the round trip.
  std::string payload("payload\x00\x01 bytes", 14);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(SerializeTest, MissingFileFails) {
  StatusOr<std::string> read = ReadFile("/nonexistent/path/file.bin");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace aida::util
