// Batch-mode concurrency, the shared RelatednessCache, per-call
// DisambiguationStats, and the numeric edge cases of Milne-Witten: the
// regression suite for the thread-safety fixes (racy "last call" counters,
// worker-thread exceptions) and the memoization layer.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/aida.h"
#include "core/batch.h"
#include "core/relatedness_cache.h"
#include "kb/kb_builder.h"
#include "kore/kore_lsh.h"
#include "test_world.h"

namespace aida::core {
namespace {

using ::aida::testing::TestWorld;

DisambiguationProblem ToProblem(const corpus::Document& doc) {
  DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

void ExpectSameResults(const std::vector<DisambiguationResult>& a,
                       const std::vector<DisambiguationResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    ASSERT_EQ(a[d].mentions.size(), b[d].mentions.size()) << "doc " << d;
    for (size_t m = 0; m < a[d].mentions.size(); ++m) {
      const MentionResult& x = a[d].mentions[m];
      const MentionResult& y = b[d].mentions[m];
      EXPECT_EQ(x.entity, y.entity) << "doc " << d << " mention " << m;
      EXPECT_EQ(x.chose_placeholder, y.chose_placeholder);
      // Byte-identical scoring, not approximate: the runs evaluate the
      // same deterministic arithmetic regardless of thread interleaving.
      EXPECT_EQ(x.score, y.score) << "doc " << d << " mention " << m;
      EXPECT_EQ(x.candidate_entities, y.candidate_entities);
      EXPECT_EQ(x.candidate_scores, y.candidate_scores);
      EXPECT_EQ(x.candidate_is_placeholder, y.candidate_is_placeholder);
    }
  }
}

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()) {
    for (const corpus::Document& doc : corpus_) {
      problems_.push_back(ToProblem(doc));
    }
  }

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  CandidateModelStore models_;
  MilneWittenRelatedness mw_;
  std::vector<DisambiguationProblem> problems_;
};

TEST_F(BatchTest, ParallelRunMatchesSerial) {
  Aida aida(&models_, &mw_, AidaOptions());
  BatchOptions serial;
  serial.num_threads = 1;
  BatchOptions parallel;
  parallel.num_threads = 4;
  std::vector<DisambiguationResult> serial_results =
      BatchDisambiguator(&aida, serial).Run(problems_);
  std::vector<DisambiguationResult> parallel_results =
      BatchDisambiguator(&aida, parallel).Run(problems_);
  ExpectSameResults(serial_results, parallel_results);
}

TEST_F(BatchTest, CachedParallelMatchesUncachedSerial) {
  Aida plain(&models_, &mw_, AidaOptions());
  BatchOptions serial;
  serial.num_threads = 1;
  std::vector<DisambiguationResult> reference =
      BatchDisambiguator(&plain, serial).Run(problems_);

  RelatednessCache cache;
  CachedRelatednessMeasure cached(&mw_, &cache);
  Aida with_cache(&models_, &cached, AidaOptions());
  BatchOptions parallel;
  parallel.num_threads = 4;
  std::vector<DisambiguationResult> cached_results =
      BatchDisambiguator(&with_cache, parallel).Run(problems_);

  ExpectSameResults(reference, cached_results);
  // Entities recur across the corpus, so the shared cache must have
  // converted some evaluations into hits.
  DisambiguationStats total = AggregateStats(cached_results);
  EXPECT_GT(total.relatedness_cache_hits, 0u);
  EXPECT_LT(total.relatedness_computations,
            AggregateStats(reference).relatedness_computations);
}

TEST_F(BatchTest, StatsSumAcrossThreadsWithoutCache) {
  MilneWittenRelatedness mw(world_.knowledge_base.get());
  Aida aida(&models_, &mw, AidaOptions());
  BatchOptions parallel;
  parallel.num_threads = 4;
  std::vector<DisambiguationResult> results =
      BatchDisambiguator(&aida, parallel).Run(problems_);

  DisambiguationStats total = AggregateStats(results);
  // Every evaluation of the measure is attributed to exactly one call's
  // stats, so the per-call sums must equal the measure's own counter.
  EXPECT_EQ(total.relatedness_computations, mw.comparisons());
  EXPECT_EQ(total.relatedness_cache_hits, 0u);
  EXPECT_GT(total.relatedness_computations, 0u);
  for (const DisambiguationResult& result : results) {
    EXPECT_GT(result.stats.total_seconds, 0.0);
    EXPECT_GE(result.stats.local_seconds, 0.0);
    EXPECT_GE(result.stats.graph_build_seconds, 0.0);
    EXPECT_GE(result.stats.graph_solve_seconds, 0.0);
  }
}

TEST_F(BatchTest, StatsSumAcrossThreadsWithCache) {
  MilneWittenRelatedness mw(world_.knowledge_base.get());
  RelatednessCache cache;
  CachedRelatednessMeasure cached(&mw, &cache);
  Aida aida(&models_, &cached, AidaOptions());
  BatchOptions parallel;
  parallel.num_threads = 4;
  std::vector<DisambiguationResult> results =
      BatchDisambiguator(&aida, parallel).Run(problems_);

  DisambiguationStats total = AggregateStats(results);
  RelatednessCacheStats snapshot = cache.Snapshot();
  // Computations are cache misses; both the wrapped measure's counter and
  // the cache's own counters must agree with the per-call sums. (All
  // candidates here are in-KB, so every pair is cacheable.)
  EXPECT_EQ(total.relatedness_computations, mw.comparisons());
  EXPECT_EQ(total.relatedness_computations, cached.comparisons());
  EXPECT_EQ(total.relatedness_computations, snapshot.misses);
  EXPECT_EQ(total.relatedness_cache_hits, snapshot.hits);
  EXPECT_GT(snapshot.hits, 0u);
  EXPECT_GT(total.RelatednessCacheHitRate(), 0.0);
}

TEST_F(BatchTest, BatchRethrowsWorkerException) {
  class ThrowingSystem : public NedSystem {
   public:
    DisambiguationResult Disambiguate(
        const DisambiguationProblem&,
        const DisambiguateOptions&) const override {
      throw std::runtime_error("worker failure");
    }
    std::string name() const override { return "throwing"; }
  };

  ThrowingSystem throwing;
  std::vector<DisambiguationProblem> problems(8);
  BatchOptions parallel;
  parallel.num_threads = 4;
  // Before the fix this called std::terminate; now the first worker
  // exception is captured, all threads are joined, and it is rethrown.
  EXPECT_THROW(BatchDisambiguator(&throwing, parallel).Run(problems),
               std::runtime_error);
  BatchOptions serial;
  serial.num_threads = 1;
  EXPECT_THROW(BatchDisambiguator(&throwing, serial).Run(problems),
               std::runtime_error);
}

TEST_F(BatchTest, MilneWittenTinyKbEdgeCasesStayFiniteInRange) {
  // Tiny KBs drive the Milne-Witten formula to its numeric extremes: the
  // denominator log N - log min(|Ia|,|Ib|) shrinks toward zero as in-link
  // sets approach the whole KB (it vanishes exactly at min == N, a case
  // LinkGraph cannot reach — self-links are dropped, so min <= N-1 — but
  // which the guard in RelatednessById still handles for hand-built or
  // imported link sets), and small shared counts push the raw value far
  // below zero. Every pair must come back finite and in [0, 1], the
  // contract of relatedness.h.
  kb::KbBuilder builder;
  kb::EntityId hub_a = builder.AddEntity("Hub_A");
  kb::EntityId hub_b = builder.AddEntity("Hub_B");
  kb::EntityId linker_1 = builder.AddEntity("Linker_1");
  kb::EntityId linker_2 = builder.AddEntity("Linker_2");
  // Both hubs are linked by every OTHER entity: in-link size N-1 == 3,
  // the densest reachable configuration (min-inlinks at its maximum).
  for (kb::EntityId target : {hub_a, hub_b}) {
    for (kb::EntityId source : {hub_a, hub_b, linker_1, linker_2}) {
      builder.AddLink(source, target);
    }
  }
  // The linkers share one in-link (hub_a) out of tiny in-link sets.
  builder.AddLink(hub_a, linker_1);
  builder.AddLink(hub_a, linker_2);
  builder.AddLink(hub_b, linker_2);
  std::unique_ptr<kb::KnowledgeBase> kb = std::move(builder).Build();
  MilneWittenRelatedness mw(kb.get());

  const kb::LinkGraph& links = kb->links();
  ASSERT_EQ(links.InLinkCount(hub_a), kb->entity_count() - 1);

  // Hub in-link sets differ only in each other ({b,l1,l2} vs {a,l1,l2}):
  // 2 of 3 shared with the denominator near its vanishing point — the
  // raw value is negative and must clamp to exactly 0, not NaN/inf.
  double hub_pair = mw.RelatednessById(hub_a, hub_b);
  EXPECT_TRUE(std::isfinite(hub_pair));
  EXPECT_GE(hub_pair, 0.0);
  EXPECT_LE(hub_pair, 1.0);

  // Fully-shared in-link sets of different sizes: shared == min, the
  // numerator's other extreme; linker_1's {hub_a} is a subset of
  // linker_2's {hub_a, hub_b}.
  double linker_pair = mw.RelatednessById(linker_1, linker_2);
  EXPECT_TRUE(std::isfinite(linker_pair));
  EXPECT_GT(linker_pair, 0.0);
  EXPECT_LE(linker_pair, 1.0);

  // Shared > 0 in a tiny KB must be finite and in range for every pair.
  for (kb::EntityId a : {hub_a, hub_b, linker_1, linker_2}) {
    for (kb::EntityId b : {hub_a, hub_b, linker_1, linker_2}) {
      double value = mw.RelatednessById(a, b);
      EXPECT_TRUE(std::isfinite(value)) << a << "," << b;
      EXPECT_GE(value, 0.0) << a << "," << b;
      EXPECT_LE(value, 1.0) << a << "," << b;
    }
  }
}

TEST_F(BatchTest, RelatednessCacheSymmetricKeysAndCounters) {
  RelatednessCache cache;
  double value = 0.0;
  EXPECT_FALSE(cache.Lookup(3, 7, &value));
  cache.Insert(3, 7, 0.25);
  // The key is the unordered pair: both orders must hit.
  EXPECT_TRUE(cache.Lookup(3, 7, &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(cache.Lookup(7, 3, &value));
  EXPECT_DOUBLE_EQ(value, 0.25);

  RelatednessCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  cache.Clear();
  EXPECT_FALSE(cache.Lookup(3, 7, &value));
  stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(BatchTest, RelatednessCacheBoundedEviction) {
  RelatednessCacheOptions options;
  options.capacity = 8;
  options.num_shards = 1;
  RelatednessCache cache(options);
  EXPECT_EQ(cache.capacity(), 8u);

  for (kb::EntityId pair = 0; pair < 100; ++pair) {
    cache.Insert(pair, pair + 1000, 0.5);
  }
  RelatednessCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.inserts, 100u);
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_GT(stats.evictions, 0u);
  // A long batch can never grow the cache past its slot budget.
  EXPECT_EQ(stats.entries + stats.evictions, stats.inserts);
}

TEST_F(BatchTest, CachedMeasurePreservesPairFilterSemantics) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  kore::KoreLshRelatedness lsh = kore::KoreLshRelatedness::Good(&store);
  RelatednessCache cache;
  CachedRelatednessMeasure cached(&lsh, &cache);
  EXPECT_TRUE(cached.has_pair_filter());
  EXPECT_EQ(cached.name(), "kore-lsh-g+cache");

  std::vector<Candidate> owned = LookupCandidates(models_, "the");
  if (owned.empty()) {
    // Fall back to the first document's first mention.
    owned = LookupCandidates(models_, corpus_.front().mentions.front().surface);
  }
  ASSERT_FALSE(owned.empty());
  std::vector<const Candidate*> pointers;
  for (const Candidate& cand : owned) pointers.push_back(&cand);
  EXPECT_EQ(cached.FilterPairs(pointers), lsh.FilterPairs(pointers));
}

TEST_F(BatchTest, RelatednessMeasureSelfAssignmentIsSafe) {
  MilneWittenRelatedness mw(world_.knowledge_base.get());
  const corpus::Document& doc = corpus_.front();
  std::vector<Candidate> cands =
      LookupCandidates(models_, doc.mentions.front().surface);
  if (cands.size() >= 2) {
    mw.Relatedness(cands[0], cands[1]);
  }
  mw.RelatednessById(0, 1);
  const uint64_t before = mw.comparisons();
  MilneWittenRelatedness& alias = mw;
  mw = alias;  // self-assignment must preserve the counter
  EXPECT_EQ(mw.comparisons(), before);
}

TEST_F(BatchTest, PerCallStatsReplaceLegacyCounter) {
  // The deprecated last_relatedness_computations() accumulator is gone;
  // per-call DisambiguationStats carry the same information race-free.
  Aida aida(&models_, &mw_, AidaOptions());
  const uint64_t before = mw_.comparisons();
  DisambiguationResult first = aida.Disambiguate(problems_.front(), {});
  DisambiguationResult second = aida.Disambiguate(problems_.back(), {});
  EXPECT_EQ(mw_.comparisons() - before,
            first.stats.relatedness_computations +
                second.stats.relatedness_computations);
}

}  // namespace
}  // namespace aida::core
