// The versioned-snapshot lifecycle: KbSnapshot construction and
// validation, RCU-style publication through SnapshotRegistry (reload,
// rollback on failure, retiring-generation tracking), and the serving
// guarantee that an in-flight request keeps its pinned generation alive
// across reloads. Runs under TSan: readers pin via one atomic
// shared_ptr load while writers publish concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kb/kb_builder.h"
#include "kb/kb_serialization.h"
#include "kb/snapshot_registry.h"
#include "serve/ned_service.h"
#include "test_world.h"

namespace aida::kb {
namespace {

using ::aida::testing::TestWorld;

/// A fresh, owned copy of the TestWorld KB via a serialization round
/// trip (the singleton's KB cannot be shared into a snapshot).
std::shared_ptr<const KnowledgeBase> CloneTestKb() {
  const KnowledgeBase& kb = *TestWorld::Get().world.knowledge_base;
  auto restored = DeserializeKnowledgeBase(SerializeKnowledgeBase(kb));
  AIDA_CHECK(restored.ok());
  return std::shared_ptr<const KnowledgeBase>(std::move(restored.value()));
}

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

TEST(ValidateKnowledgeBaseTest, RejectsNullAndEmpty) {
  EXPECT_FALSE(ValidateKnowledgeBase(nullptr).ok());

  KbBuilder empty;
  std::unique_ptr<KnowledgeBase> no_entities = std::move(empty).Build();
  EXPECT_FALSE(ValidateKnowledgeBase(no_entities.get()).ok());

  KbBuilder nameless;
  nameless.AddEntity("Orphan");
  std::unique_ptr<KnowledgeBase> no_names = std::move(nameless).Build();
  EXPECT_FALSE(ValidateKnowledgeBase(no_names.get()).ok());

  std::shared_ptr<const KnowledgeBase> real = CloneTestKb();
  EXPECT_TRUE(ValidateKnowledgeBase(real.get()).ok());
}

TEST(KbSnapshotTest, CreateBuildsFullServingStack) {
  std::shared_ptr<const KnowledgeBase> kb = CloneTestKb();
  auto snapshot = KbSnapshot::Create(kb, /*generation=*/7, "unit-test");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const KbSnapshot& snap = **snapshot;
  EXPECT_EQ(snap.generation(), 7u);
  EXPECT_EQ(snap.source(), "unit-test");
  ASSERT_TRUE(snap.has_knowledge_base());
  EXPECT_EQ(&snap.knowledge_base(), kb.get());
  EXPECT_NE(snap.models(), nullptr);
  EXPECT_NE(snap.relatedness_cache(), nullptr);

  // The bundled system is servable end to end.
  core::DisambiguationProblem problem =
      ToProblem(TestWorld::Get().corpus.front());
  core::DisambiguationResult result = snap.system().Disambiguate(problem, {});
  EXPECT_EQ(result.mentions.size(), problem.mentions.size());
}

TEST(KbSnapshotTest, CreateRejectsInvalidKb) {
  KbBuilder empty;
  std::shared_ptr<const KnowledgeBase> kb = std::move(empty).Build();
  auto snapshot = KbSnapshot::Create(kb, 1, "bad");
  EXPECT_FALSE(snapshot.ok());
}

TEST(KbSnapshotTest, WrapUnownedServesExternalSystem) {
  std::shared_ptr<const KnowledgeBase> kb = CloneTestKb();
  core::CandidateModelStore models(kb.get());
  core::MilneWittenRelatedness mw(kb.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  std::shared_ptr<const KbSnapshot> snapshot =
      KbSnapshot::WrapUnowned(aida, "wrapped");
  EXPECT_FALSE(snapshot->has_knowledge_base());
  EXPECT_EQ(snapshot->models(), nullptr);
  EXPECT_EQ(snapshot->generation(), 1u);
  EXPECT_EQ(&snapshot->system(), &aida);
}

TEST(SnapshotRegistryTest, PublishAndReloadBumpGenerations) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.Stats().active_generation, 0u);

  auto first = registry.Publish(CloneTestKb(), "initial");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->generation(), 1u);
  EXPECT_EQ(registry.Current(), *first);

  auto second = registry.ReloadFromBuilder(
      [] {
        return util::StatusOr<std::unique_ptr<KnowledgeBase>>(
            DeserializeKnowledgeBase(SerializeKnowledgeBase(
                *TestWorld::Get().world.knowledge_base)));
      },
      "builder:regrow");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*second)->generation(), 2u);
  EXPECT_EQ((*second)->source(), "builder:regrow");
  EXPECT_EQ(registry.Current(), *second);

  SnapshotRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.active_generation, 2u);
  EXPECT_EQ(stats.publishes, 2u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.reload_failures, 0u);
  EXPECT_GT(stats.last_reload_seconds, 0.0);
  EXPECT_GE(stats.total_reload_seconds, stats.last_reload_seconds);
}

TEST(SnapshotRegistryTest, ReloadFromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/snapshot_reload.kb";
  std::shared_ptr<const KnowledgeBase> kb = CloneTestKb();
  ASSERT_TRUE(SaveKnowledgeBase(*kb, path).ok());

  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish(kb, "initial").ok());
  auto reloaded = registry.ReloadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->generation(), 2u);
  EXPECT_TRUE((*reloaded)->has_knowledge_base());
  EXPECT_EQ((*reloaded)->knowledge_base().entity_count(), kb->entity_count());
  std::remove(path.c_str());
}

TEST(SnapshotRegistryTest, FailedReloadRollsBackAndCounts) {
  SnapshotRegistry registry;
  auto first = registry.Publish(CloneTestKb(), "initial");
  ASSERT_TRUE(first.ok());

  // Missing file: load error before anything is built.
  EXPECT_FALSE(
      registry.ReloadFromFile("/nonexistent/definitely_missing.kb").ok());
  // Builder error: the callback itself fails.
  EXPECT_FALSE(registry
                   .ReloadFromBuilder(
                       [] {
                         return util::StatusOr<
                             std::unique_ptr<KnowledgeBase>>(
                             util::Status::Internal("harvest failed"));
                       },
                       "builder:broken")
                   .ok());
  // Validation error: the builder produced an unservable KB.
  EXPECT_FALSE(registry
                   .ReloadFromBuilder(
                       [] {
                         KbBuilder empty;
                         return util::StatusOr<
                             std::unique_ptr<KnowledgeBase>>(
                             std::move(empty).Build());
                       },
                       "builder:empty")
                   .ok());

  // Every failure left generation 1 serving, untouched.
  EXPECT_EQ(registry.Current(), *first);
  SnapshotRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.active_generation, 1u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.reload_failures, 3u);
}

TEST(SnapshotRegistryTest, ConcurrentReadersAndReloadsAreClean) {
  // TSan coverage of the RCU pattern itself: four reader threads pin and
  // use Current() in a tight loop while the main thread republishes.
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneTestKb(), "initial").ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed_max{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const KbSnapshot> snap = registry.Current();
        ASSERT_NE(snap, nullptr);
        // Touch the stack to make a use-after-free visible to the
        // sanitizers if publication were broken.
        ASSERT_GT(snap->knowledge_base().entity_count(), 0u);
        uint64_t generation = snap->generation();
        uint64_t seen = observed_max.load(std::memory_order_relaxed);
        while (generation > seen &&
               !observed_max.compare_exchange_weak(
                   seen, generation, std::memory_order_relaxed)) {
        }
      }
    });
  }
  for (int reload = 0; reload < 3; ++reload) {
    auto published = registry.ReloadFromBuilder(
        [] {
          return util::StatusOr<std::unique_ptr<KnowledgeBase>>(
              DeserializeKnowledgeBase(SerializeKnowledgeBase(
                  *TestWorld::Get().world.knowledge_base)));
        },
        "builder:round-" + std::to_string(reload));
    ASSERT_TRUE(published.ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(registry.Stats().active_generation, 4u);
  EXPECT_GE(observed_max.load(), 1u);
}

/// Blocks inside Disambiguate until released; lets the pinning test hold
/// a request in flight across reloads.
class Gate {
 public:
  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_; });
  }
  void Enter() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable open_cv_;
  bool entered_ = false;
  bool open_ = false;
};

class GatedSystem : public core::NedSystem {
 public:
  explicit GatedSystem(Gate* gate) : gate_(gate) {}
  core::DisambiguationResult Disambiguate(
      const core::DisambiguationProblem& problem,
      const core::DisambiguateOptions&) const override {
    if (gate_ != nullptr) gate_->Enter();
    core::DisambiguationResult result;
    result.mentions.resize(problem.mentions.size());
    return result;
  }
  std::string name() const override { return "gated"; }

 private:
  Gate* gate_;
};

TEST(SnapshotRegistryTest, InFlightRequestOutlivesTwoReloads) {
  // The zero-downtime guarantee in miniature: a slow request pins
  // generation 1 while two reloads retire it; the generation's memory
  // survives until the request completes, and the response carries the
  // generation it actually ran on.
  Gate gate;
  SnapshotOptions options;
  int built = 0;
  options.system_factory = [&](const core::CandidateModelStore*,
                               const core::RelatednessMeasure*) {
    // Only the first generation's system blocks; reloads build free
    // running systems so the swap itself never waits on the gate.
    return std::make_unique<GatedSystem>(++built == 1 ? &gate : nullptr);
  };
  auto registry = std::make_shared<SnapshotRegistry>(options);
  auto first = registry->Publish(CloneTestKb(), "gen1");
  ASSERT_TRUE(first.ok());
  std::weak_ptr<const KbSnapshot> pinned = *first;

  serve::NedServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.queue_capacity = 4;
  serve::NedService service(registry, service_options);

  core::DisambiguationProblem problem =
      ToProblem(TestWorld::Get().corpus.front());
  std::future<serve::ServeResult> slow = service.Submit(problem);
  gate.WaitUntilEntered();  // the worker is inside generation 1

  auto clone_builder = [] {
    return util::StatusOr<std::unique_ptr<KnowledgeBase>>(
        DeserializeKnowledgeBase(SerializeKnowledgeBase(
            *TestWorld::Get().world.knowledge_base)));
  };
  ASSERT_TRUE(registry->ReloadFromBuilder(clone_builder, "gen2").ok());
  ASSERT_TRUE(registry->ReloadFromBuilder(clone_builder, "gen3").ok());

  // Generation 1 is no longer current but must still be alive: the
  // in-flight request pins it.
  SnapshotRegistryStats stats = registry->Stats();
  EXPECT_EQ(stats.active_generation, 3u);
  ASSERT_FALSE(pinned.expired());
  EXPECT_EQ(std::vector<uint64_t>{1}, stats.retiring_generations);

  // Release it; drop our strong handle; the request completes on
  // generation 1 and the retired snapshot dies with it.
  first = util::Status::Internal("handle dropped");
  gate.Open();
  serve::ServeResult result = slow.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.generation, 1u);

  service.Drain();  // joins the worker, releasing its pin
  EXPECT_TRUE(pinned.expired());
  EXPECT_TRUE(registry->Stats().retiring_generations.empty());

  // Fresh traffic lands on the new generation.
  std::future<serve::ServeResult> fresh = service.Submit(problem);
  serve::ServeResult fresh_result = fresh.get();
  // Service was drained above, so this submit is rejected — construct a
  // second service to prove the registry still serves generation 3.
  EXPECT_FALSE(fresh_result.status.ok());
  serve::NedService fresh_service(registry, service_options);
  serve::ServeResult gen3 = fresh_service.Submit(problem).get();
  ASSERT_TRUE(gen3.status.ok());
  EXPECT_EQ(gen3.generation, 3u);
}

TEST(SnapshotRegistryTest, ServicePicksUpNewGenerationPerDequeue) {
  auto registry = std::make_shared<SnapshotRegistry>();
  ASSERT_TRUE(registry->Publish(CloneTestKb(), "gen1").ok());

  serve::NedServiceOptions options;
  options.num_threads = 1;
  serve::NedService service(registry, options);

  core::DisambiguationProblem problem =
      ToProblem(TestWorld::Get().corpus.front());
  serve::ServeResult before = service.Submit(problem).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.generation, 1u);

  ASSERT_TRUE(registry
                  ->ReloadFromBuilder(
                      [] {
                        return util::StatusOr<
                            std::unique_ptr<KnowledgeBase>>(
                            DeserializeKnowledgeBase(SerializeKnowledgeBase(
                                *TestWorld::Get().world.knowledge_base)));
                      },
                      "gen2")
                  .ok());
  serve::ServeResult after = service.Submit(problem).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);

  // Identical KB content → identical annotation across generations, and
  // the per-generation metrics kept separate books.
  ASSERT_EQ(before.result.mentions.size(), after.result.mentions.size());
  for (size_t m = 0; m < before.result.mentions.size(); ++m) {
    EXPECT_EQ(before.result.mentions[m].entity,
              after.result.mentions[m].entity);
  }
  serve::NedServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.active_generation, 2u);
  ASSERT_TRUE(snapshot.has_registry);
  EXPECT_EQ(snapshot.registry.publishes, 2u);
  ASSERT_EQ(snapshot.metrics.generations.size(), 2u);
  EXPECT_EQ(snapshot.metrics.generations[0].generation, 1u);
  EXPECT_EQ(snapshot.metrics.generations[0].completed, 1u);
  EXPECT_EQ(snapshot.metrics.generations[1].generation, 2u);
  EXPECT_EQ(snapshot.metrics.generations[1].completed, 1u);
}

}  // namespace
}  // namespace aida::kb
