#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/mention_expansion.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "test_world.h"

namespace aida::core {
namespace {

using ::aida::testing::TestWorld;

class MentionExpansionTest : public ::testing::Test {
 protected:
  MentionExpansionTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()),
        expander_(&models_) {}

  DisambiguationProblem ToProblem(const corpus::Document& doc) const {
    DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    return problem;
  }

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  CandidateModelStore models_;
  MilneWittenRelatedness mw_;
  MentionExpander expander_;
};

TEST_F(MentionExpansionTest, FindsSuffixExpansion) {
  // Pick an entity with both a family name and a full name in the
  // dictionary.
  const auto& names = world_.entity_names[0];
  ASSERT_GE(names.size(), 2u);
  std::string family = names[0];
  std::string full = names[1];
  EXPECT_EQ(expander_.FindExpansion(family, {full, family}), full);
  // Prefix works too ("Jimmy" in "Jimmy Page") when in the dictionary.
  std::string given = util::Split(full, ' ').front();
  if (world_.knowledge_base->dictionary().Contains(given)) {
    EXPECT_EQ(expander_.FindExpansion(given, {full}), full);
  }
  // Unrelated surfaces do not expand.
  EXPECT_EQ(expander_.FindExpansion(family, {"Xyzzy Qwerty"}), "");
}

TEST_F(MentionExpansionTest, ExpansionNarrowsCandidates) {
  // Over the corpus, expanded short mentions must never have MORE
  // candidates than before, and frequently fewer.
  size_t narrowed = 0;
  size_t expanded_total = 0;
  for (size_t d = 0; d < 10; ++d) {
    DisambiguationProblem problem = ToProblem(corpus_[d]);
    DisambiguationProblem expanded = expander_.Expand(problem);
    for (size_t m = 0; m < problem.mentions.size(); ++m) {
      if (!expanded.mentions[m].candidates_resolved) continue;
      ++expanded_total;
      size_t before =
          LookupCandidates(models_, problem.mentions[m].surface).size();
      size_t after = expanded.mentions[m].candidates.size();
      EXPECT_LE(after, before);
      if (after < before) ++narrowed;
    }
  }
  ASSERT_GT(expanded_total, 5u);
  EXPECT_GT(narrowed, 0u);
}

TEST_F(MentionExpansionTest, ExpansionDoesNotHurtAccuracy) {
  Aida aida(&models_, &mw_, AidaOptions());
  eval::NedEvaluator plain;
  eval::NedEvaluator with_expansion;
  for (size_t d = 0; d < 15; ++d) {
    DisambiguationProblem problem = ToProblem(corpus_[d]);
    plain.AddDocument(corpus_[d], aida.Disambiguate(problem, {}));
    DisambiguationProblem expanded = expander_.Expand(problem);
    with_expansion.AddDocument(corpus_[d], aida.Disambiguate(expanded, {}));
  }
  EXPECT_GE(with_expansion.MicroAccuracy(), plain.MicroAccuracy() - 0.01);
}

TEST_F(MentionExpansionTest, ResolvedMentionsUntouched) {
  DisambiguationProblem problem = ToProblem(corpus_.front());
  problem.mentions[0].candidates_resolved = true;  // explicitly empty
  DisambiguationProblem expanded = expander_.Expand(problem);
  EXPECT_TRUE(expanded.mentions[0].candidates.empty());
}

}  // namespace
}  // namespace aida::core
