#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/pr_curve.h"
#include "eval/spearman.h"

namespace aida::eval {
namespace {

corpus::Document MakeGold(const std::vector<kb::EntityId>& gold) {
  corpus::Document doc;
  for (kb::EntityId e : gold) {
    corpus::GoldMention m;
    m.gold_entity = e;
    if (e == kb::kNoEntity) m.gold_emerging = 0;
    doc.mentions.push_back(m);
  }
  return doc;
}

core::DisambiguationResult MakePrediction(
    const std::vector<kb::EntityId>& predicted) {
  core::DisambiguationResult result;
  for (kb::EntityId e : predicted) {
    core::MentionResult m;
    m.entity = e;
    result.mentions.push_back(m);
  }
  return result;
}

TEST(NedEvaluatorTest, MicroAccuracyIgnoresOutOfKb) {
  NedEvaluator eval;
  // 3 in-KB mentions (2 correct), 1 EE mention predicted as entity.
  eval.AddDocument(MakeGold({1, 2, 3, kb::kNoEntity}),
                   MakePrediction({1, 2, 9, 7}));
  EXPECT_DOUBLE_EQ(eval.MicroAccuracy(), 2.0 / 3.0);
  EXPECT_EQ(eval.gold_in_kb_mentions(), 3u);
  EXPECT_EQ(eval.gold_ee_mentions(), 1u);
}

TEST(NedEvaluatorTest, MacroAveragesOverDocuments) {
  NedEvaluator eval;
  eval.AddDocument(MakeGold({1, 2}), MakePrediction({1, 2}));  // 1.0
  eval.AddDocument(MakeGold({1, 2}), MakePrediction({9, 9}));  // 0.0
  EXPECT_DOUBLE_EQ(eval.MacroAccuracy(), 0.5);
  EXPECT_DOUBLE_EQ(eval.MicroAccuracy(), 0.5);
}

TEST(NedEvaluatorTest, EeMetrics) {
  NedEvaluator eval;
  // gold: [E, EE, E, EE]; predicted: [E(correct), EE, EE(wrong), entity]
  eval.AddDocument(MakeGold({1, kb::kNoEntity, 2, kb::kNoEntity}),
                   MakePrediction({1, kb::kNoEntity, kb::kNoEntity, 5}));
  // predicted EE = 2, correct EE = 1, gold EE = 2.
  EXPECT_DOUBLE_EQ(eval.EePrecision(), 0.5);
  EXPECT_DOUBLE_EQ(eval.EeRecall(), 0.5);
  EXPECT_DOUBLE_EQ(eval.EeF1(), 0.5);
  // Accuracy with EE: correct = 1 (entity) + 1 (EE) of 4.
  EXPECT_DOUBLE_EQ(eval.MicroAccuracyWithEe(), 0.5);
}

TEST(NedEvaluatorTest, PerfectEe) {
  NedEvaluator eval;
  eval.AddDocument(MakeGold({kb::kNoEntity}),
                   MakePrediction({kb::kNoEntity}));
  EXPECT_DOUBLE_EQ(eval.EePrecision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.EeRecall(), 1.0);
  EXPECT_DOUBLE_EQ(eval.EeF1(), 1.0);
}

TEST(SpearmanTest, PerfectCorrelation) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({3, 2, 1}, {30, 20, 10}), 1.0);
}

TEST(SpearmanTest, PerfectAnticorrelation) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3}, {30, 20, 10}), -1.0);
}

TEST(SpearmanTest, HandlesTies) {
  double rho = SpearmanCorrelation({1, 1, 2}, {1, 2, 3});
  EXPECT_GT(rho, 0.0);
  EXPECT_LT(rho, 1.0);
}

TEST(SpearmanTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, DescendingRanks) {
  std::vector<double> ranks = DescendingRanks({10, 30, 20});
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
  // Ties share the average rank.
  std::vector<double> tied = DescendingRanks({5, 5});
  EXPECT_DOUBLE_EQ(tied[0], 1.5);
  EXPECT_DOUBLE_EQ(tied[1], 1.5);
}

TEST(PrCurveTest, PerfectRankingKeepsPrecisionHighEarly) {
  std::vector<ScoredPrediction> preds;
  for (int i = 0; i < 50; ++i) preds.push_back({1.0 - i * 0.01, i < 25});
  std::vector<PrPoint> curve = PrecisionRecallCurve(preds, 10);
  ASSERT_EQ(curve.size(), 10u);
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(PrCurveTest, MapOrdersRankingsCorrectly) {
  // Good ranking: correct predictions first.
  std::vector<ScoredPrediction> good;
  std::vector<ScoredPrediction> bad;
  for (int i = 0; i < 40; ++i) {
    good.push_back({1.0 - i * 0.01, i < 20});
    bad.push_back({1.0 - i * 0.01, i >= 20});
  }
  EXPECT_GT(MeanAveragePrecision(good), MeanAveragePrecision(bad));
}

TEST(PrCurveTest, PrecisionAtConfidence) {
  std::vector<ScoredPrediction> preds = {
      {0.99, true}, {0.97, true}, {0.90, false}, {0.50, true}};
  size_t count = 0;
  double precision = PrecisionAtConfidence(preds, 0.95, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_DOUBLE_EQ(precision, 1.0);
  precision = PrecisionAtConfidence(preds, 0.80, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_NEAR(precision, 2.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, EmptyInputs) {
  EXPECT_TRUE(PrecisionRecallCurve({}, 10).empty());
  EXPECT_DOUBLE_EQ(MeanAveragePrecision({}), 0.0);
  size_t count = 99;
  EXPECT_DOUBLE_EQ(PrecisionAtConfidence({}, 0.5, &count), 0.0);
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace aida::eval
