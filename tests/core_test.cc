#include <gtest/gtest.h>

#include <algorithm>

#include "core/aida.h"
#include "core/baselines.h"
#include "core/candidates.h"
#include "core/context_similarity.h"
#include "core/mention_entity_graph.h"
#include "core/relatedness.h"
#include "core/robustness.h"
#include "test_world.h"

namespace aida::core {
namespace {

using ::aida::testing::TestWorld;

// Builds a DisambiguationProblem from a gold document (mention spans from
// the annotation, candidates resolved by the system under test).
DisambiguationProblem ToProblem(const corpus::Document& doc) {
  DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()) {}

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  CandidateModelStore models_;
  MilneWittenRelatedness mw_;
};

// ---- Candidates -----------------------------------------------------------

TEST_F(CoreTest, LookupCandidatesOrderedByPrior) {
  // Find an ambiguous family name.
  for (const std::string& name :
       world_.knowledge_base->dictionary().AllNames()) {
    std::vector<Candidate> candidates = LookupCandidates(models_, name);
    if (candidates.size() < 2) continue;
    EXPECT_GE(candidates[0].prior, candidates[1].prior);
    for (const Candidate& c : candidates) {
      ASSERT_NE(c.model, nullptr);
      EXPECT_EQ(c.model->entity, c.entity);
      EXPECT_FALSE(c.is_placeholder);
    }
    return;
  }
  FAIL() << "no ambiguous name in test world";
}

TEST_F(CoreTest, ModelStoreCaches) {
  auto a = models_.ModelFor(0);
  auto b = models_.ModelFor(0);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_FALSE(a->phrases.empty());
  EXPECT_GT(a->total_phrase_weight, 0.0);
}

TEST_F(CoreTest, ExtendedVocabularyInternsNewWords) {
  ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  size_t base = vocab.size();
  kb::WordId w = vocab.GetOrIntern("zzz-neverseen", 7.5);
  EXPECT_GE(w, base);
  EXPECT_EQ(vocab.GetOrIntern("zzz-neverseen"), w);
  EXPECT_EQ(vocab.Find("zzz-neverseen"), w);
  EXPECT_DOUBLE_EQ(vocab.Idf(w), 7.5);
  vocab.SetIdf(w, 3.0);
  EXPECT_DOUBLE_EQ(vocab.Idf(w), 3.0);
  EXPECT_EQ(vocab.size(), base + 1);
}

// ---- Context similarity ------------------------------------------------------

TEST_F(CoreTest, ContextSimilarityPrefersTrueEntity) {
  // Over the corpus, the gold entity's similarity should usually beat the
  // alternatives for ambiguous mentions with context.
  ContextSimilarity similarity;
  ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  size_t wins = 0;
  size_t contested = 0;
  for (const corpus::Document& doc : corpus_) {
    DocumentContext context(doc.tokens, vocab);
    for (const corpus::GoldMention& gm : doc.mentions) {
      if (gm.out_of_kb()) continue;
      std::vector<Candidate> candidates =
          LookupCandidates(models_, gm.surface);
      if (candidates.size() < 2) continue;
      ++contested;
      double gold_score = -1;
      double best_other = -1;
      for (const Candidate& c : candidates) {
        double s = similarity.Score(context, gm.begin_token, gm.end_token,
                                    *c.model);
        if (c.entity == gm.gold_entity) {
          gold_score = s;
        } else {
          best_other = std::max(best_other, s);
        }
      }
      if (gold_score > best_other) ++wins;
    }
  }
  ASSERT_GT(contested, 20u);
  EXPECT_GT(static_cast<double>(wins) / static_cast<double>(contested), 0.6);
}

TEST_F(CoreTest, ContextSimilarityZeroWithoutContext) {
  ContextSimilarity similarity;
  ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  std::vector<std::string> tokens = {"Foo"};
  DocumentContext context(tokens, vocab);
  auto model = models_.ModelFor(0);
  EXPECT_EQ(similarity.Score(context, 0, 1, *model), 0.0);
}

TEST_F(CoreTest, PartialMatchScoresBelowFullMatch) {
  // Construct a fake model with one 3-word phrase; a document containing
  // all 3 words beats one containing 2 of them.
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  ExtendedVocabulary vocab(&store);
  CandidateModel model;
  CandidatePhrase phrase;
  for (const char* w : {"grammy", "award", "winner"}) {
    phrase.words.push_back(vocab.GetOrIntern(w, 5.0));
    phrase.word_npmi.push_back(1.0);
    phrase.word_idf.push_back(5.0);
  }
  phrase.phrase_weight = 1.0;
  model.phrases.push_back(phrase);
  model.total_phrase_weight = 1.0;

  ContextSimilarity similarity;
  std::vector<std::string> full = {"m", "grammy", "award", "winner"};
  std::vector<std::string> partial = {"m", "grammy", "winner"};
  DocumentContext full_ctx(full, vocab);
  DocumentContext partial_ctx(partial, vocab);
  double full_score = similarity.Score(full_ctx, 0, 1, model);
  double partial_score = similarity.Score(partial_ctx, 0, 1, model);
  EXPECT_GT(full_score, partial_score);
  EXPECT_GT(partial_score, 0.0);
}

TEST_F(CoreTest, MentionTokensExcluded) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  ExtendedVocabulary vocab(&store);
  CandidateModel model;
  CandidatePhrase phrase;
  phrase.words.push_back(vocab.GetOrIntern("unique-context-word", 5.0));
  phrase.word_npmi.push_back(1.0);
  phrase.word_idf.push_back(5.0);
  phrase.phrase_weight = 1.0;
  model.phrases.push_back(phrase);
  model.total_phrase_weight = 1.0;

  ContextSimilarity similarity;
  std::vector<std::string> tokens = {"unique-context-word"};
  DocumentContext ctx(tokens, vocab);
  // The only occurrence is inside the mention span -> no match.
  EXPECT_EQ(similarity.Score(ctx, 0, 1, model), 0.0);
  // Outside the span -> match.
  EXPECT_GT(similarity.Score(ctx, 0, 0, model), 0.0);
}

TEST_F(CoreTest, DocumentContextWordCountsSortedByWordId) {
  // Regression: WordCounts used to surface unordered_map iteration order,
  // so downstream floating-point folds (type-classifier scores) depended
  // on the hash seed / standard library. The index is now a sorted array
  // and WordCounts is specified to ascend by word id.
  ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  for (size_t d = 0; d < std::min<size_t>(5, corpus_.size()); ++d) {
    DocumentContext context(corpus_[d].tokens, vocab);
    auto counts = context.WordCounts();
    ASSERT_FALSE(counts.empty());
    size_t total = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) EXPECT_LT(counts[i - 1].first, counts[i].first);
      // Each row must agree with the probe path.
      const std::vector<size_t>& positions =
          context.Positions(counts[i].first);
      EXPECT_EQ(positions.size(), counts[i].second);
      EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
      total += counts[i].second;
    }
    EXPECT_LE(total, context.token_count());
    // Probing an unknown word still yields the shared empty row.
    EXPECT_TRUE(context.Positions(kb::kNoWord - 1).empty());
  }
}

// ---- Milne-Witten -----------------------------------------------------------

TEST_F(CoreTest, MilneWittenProperties) {
  // Find a strongly related pair (the MW formula clips weakly overlapping
  // pairs to zero, so require rel > 0 explicitly).
  kb::EntityId a = kb::kNoEntity;
  kb::EntityId b = kb::kNoEntity;
  for (kb::EntityId e = 0; e < 80 && a == kb::kNoEntity; ++e) {
    for (kb::EntityId f = e + 1; f < 120; ++f) {
      if (mw_.RelatednessById(e, f) > 0.0) {
        a = e;
        b = f;
        break;
      }
    }
  }
  ASSERT_NE(a, kb::kNoEntity);
  double rel = mw_.RelatednessById(a, b);
  EXPECT_GT(rel, 0.0);
  EXPECT_LE(rel, 1.0);
  // Symmetry and identity.
  EXPECT_DOUBLE_EQ(mw_.RelatednessById(b, a), rel);
  EXPECT_DOUBLE_EQ(mw_.RelatednessById(a, a), 1.0);
  // Entities with disjoint or empty in-link sets score zero.
  EXPECT_EQ(mw_.RelatednessById(a, kb::kNoEntity), 0.0);
}

TEST_F(CoreTest, MilneWittenSameTopicBeatsCrossTopic) {
  // Averaged over pairs, same-topic entities are more MW-related.
  double same = 0;
  size_t same_n = 0;
  double cross = 0;
  size_t cross_n = 0;
  for (kb::EntityId e = 0; e < 100; ++e) {
    for (kb::EntityId f = e + 1; f < 100; ++f) {
      double rel = mw_.RelatednessById(e, f);
      if (world_.entity_topic[e] == world_.entity_topic[f]) {
        same += rel;
        ++same_n;
      } else {
        cross += rel;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST_F(CoreTest, PlaceholderRelatednessIsZeroForMw) {
  Candidate a;
  a.entity = 0;
  a.model = models_.ModelFor(0);
  Candidate placeholder;
  placeholder.is_placeholder = true;
  placeholder.model = std::make_shared<CandidateModel>();
  EXPECT_EQ(mw_.Relatedness(a, placeholder), 0.0);
}

// ---- Robustness helpers --------------------------------------------------------

TEST(RobustnessTest, ToDistribution) {
  auto dist = robustness::ToDistribution({1.0, 3.0});
  EXPECT_DOUBLE_EQ(dist[0], 0.25);
  EXPECT_DOUBLE_EQ(dist[1], 0.75);
  auto uniform = robustness::ToDistribution({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(uniform[1], 1.0 / 3.0);
}

TEST(RobustnessTest, PriorTest) {
  EXPECT_TRUE(robustness::PriorTestPasses({0.95, 0.05}, 0.9));
  EXPECT_FALSE(robustness::PriorTestPasses({0.6, 0.4}, 0.9));
}

TEST(RobustnessTest, L1Distance) {
  EXPECT_DOUBLE_EQ(
      robustness::PriorSimilarityL1({1.0, 0.0}, {0.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(
      robustness::PriorSimilarityL1({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

// ---- Graph building + solving ---------------------------------------------------

TEST_F(CoreTest, GraphBuilderDedupsEntities) {
  // Two mentions sharing a candidate entity should share one node.
  std::vector<Candidate> cands;
  Candidate c;
  c.entity = 0;
  c.prior = 1.0;
  c.model = models_.ModelFor(0);
  cands.push_back(c);

  GraphBuildInput input;
  input.mentions.resize(2);
  input.mentions[0].candidates = &cands;
  input.mentions[0].me_weights = {0.5};
  input.mentions[1].candidates = &cands;
  input.mentions[1].me_weights = {0.7};
  MilneWittenRelatedness mw(world_.knowledge_base.get());
  MentionEntityGraph meg = BuildMentionEntityGraph(input, mw);
  EXPECT_EQ(meg.entity_node_count(), 1u);
  EXPECT_EQ(meg.graph->node_count(), 3u);
  EXPECT_EQ(meg.entity_sources[0].size(), 2u);
}

TEST_F(CoreTest, SolverPicksCoherentAssignment) {
  // Synthetic instance: mention 0 has candidates {e0 (related to e2),
  // e1 (unrelated)}; mention 1 has candidate {e2}. Coherence should pull
  // mention 0 to e0 even with a weaker local weight.
  auto make_model = [](double weight) {
    auto model = std::make_shared<CandidateModel>();
    model->total_phrase_weight = weight;
    return model;
  };
  (void)make_model;
  // Use a stub relatedness keyed on entity ids.
  class StubRelatedness : public RelatednessMeasure {
   public:
    std::string name() const override { return "stub"; }
    double Relatedness(const Candidate& a,
                       const Candidate& b) const override {
      CountComparison();
      // Entities 100 and 102 are strongly related.
      if ((a.entity == 100 && b.entity == 102) ||
          (a.entity == 102 && b.entity == 100)) {
        return 0.9;
      }
      return 0.0;
    }
  };

  auto dummy = std::make_shared<CandidateModel>();
  std::vector<Candidate> m0(2);
  m0[0].entity = 100;
  m0[0].model = dummy;
  m0[1].entity = 101;
  m0[1].model = dummy;
  std::vector<Candidate> m1(1);
  m1[0].entity = 102;
  m1[0].model = dummy;

  GraphBuildInput input;
  input.mentions.resize(2);
  input.mentions[0].candidates = &m0;
  input.mentions[0].me_weights = {0.4, 0.6};  // local prefers the wrong one
  input.mentions[1].candidates = &m1;
  input.mentions[1].me_weights = {0.9};

  StubRelatedness stub;
  MentionEntityGraph meg = BuildMentionEntityGraph(input, stub);
  GraphSolution sol = SolveMentionEntityGraph(meg, GraphDisambiguatorOptions());
  ASSERT_EQ(sol.chosen_candidate.size(), 2u);
  EXPECT_EQ(sol.chosen_candidate[0], 0);  // coherent candidate wins
  EXPECT_EQ(sol.chosen_candidate[1], 0);
}

// ---- AIDA end-to-end on the synthetic corpus -------------------------------------

TEST_F(CoreTest, AidaBeatsPriorBaseline) {
  AidaOptions options;
  Aida aida(&models_, &mw_, options);
  PriorBaseline prior(&models_);

  size_t aida_correct = 0;
  size_t prior_correct = 0;
  size_t total = 0;
  for (const corpus::Document& doc : corpus_) {
    DisambiguationProblem problem = ToProblem(doc);
    DisambiguationResult ar = aida.Disambiguate(problem, {});
    DisambiguationResult pr = prior.Disambiguate(problem, {});
    for (size_t m = 0; m < doc.mentions.size(); ++m) {
      if (doc.mentions[m].out_of_kb()) continue;
      ++total;
      if (ar.mentions[m].entity == doc.mentions[m].gold_entity) {
        ++aida_correct;
      }
      if (pr.mentions[m].entity == doc.mentions[m].gold_entity) {
        ++prior_correct;
      }
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(aida_correct, prior_correct);
  EXPECT_GT(static_cast<double>(aida_correct) / total, 0.6);
}

TEST_F(CoreTest, AidaResultShapeIsSound) {
  AidaOptions options;
  Aida aida(&models_, &mw_, options);
  const corpus::Document& doc = corpus_.front();
  DisambiguationProblem problem = ToProblem(doc);
  DisambiguationResult result = aida.Disambiguate(problem, {});
  ASSERT_EQ(result.mentions.size(), doc.mentions.size());
  for (const MentionResult& m : result.mentions) {
    EXPECT_EQ(m.candidate_entities.size(), m.candidate_scores.size());
    if (m.entity != kb::kNoEntity) {
      // The chosen entity must be among the candidates.
      bool found = false;
      for (kb::EntityId e : m.candidate_entities) found |= (e == m.entity);
      EXPECT_TRUE(found);
    }
  }
}

TEST_F(CoreTest, AidaConfigurationsDiffer) {
  AidaOptions sim_only;
  sim_only.use_prior = false;
  sim_only.use_coherence = false;
  Aida a1(&models_, &mw_, sim_only);
  EXPECT_EQ(a1.name(), "aida+sim-k");

  AidaOptions full;
  Aida a2(&models_, &mw_, full);
  EXPECT_EQ(a2.name(), "aida+r-prior+sim-k+r-coh(mw)");
}

TEST_F(CoreTest, BaselinesRunEndToEnd) {
  CucerzanBaseline cuc(&models_);
  KulkarniBaseline kul_s(&models_, nullptr, KulkarniBaseline::Mode::kSimilarity);
  KulkarniBaseline kul_ci(&models_, &mw_, KulkarniBaseline::Mode::kCollective);
  const corpus::Document& doc = corpus_.front();
  DisambiguationProblem problem = ToProblem(doc);
  for (NedSystem* system :
       std::initializer_list<NedSystem*>{&cuc, &kul_s, &kul_ci}) {
    DisambiguationResult result = system->Disambiguate(problem, {});
    EXPECT_EQ(result.mentions.size(), doc.mentions.size()) << system->name();
  }
}

}  // namespace
}  // namespace aida::core
