#ifndef AIDA_TESTS_TEST_WORLD_H_
#define AIDA_TESTS_TEST_WORLD_H_

#include <memory>

#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

namespace aida::testing {

/// A small deterministic world + corpus shared by the higher-level tests:
/// big enough to exercise ambiguity, coherence and emerging entities,
/// small enough to keep the suite fast.
struct TestWorld {
  synth::World world;
  corpus::Corpus corpus;

  static synth::WorldConfig WorldConfig() {
    synth::WorldConfig config;
    config.seed = 4242;
    config.num_topics = 8;
    config.num_entities = 400;
    config.num_emerging = 20;
    config.num_shared_names = 110;
    config.topic_vocab_size = 80;
    config.generic_vocab_size = 200;
    // Small worlds need denser link coverage for MW coherence to carry
    // any signal at all.
    config.min_link_coverage = 0.35;
    config.link_coverage_exponent = 1.5;
    return config;
  }

  static synth::CorpusConfig CorpusConfig() {
    synth::CorpusConfig config;
    config.seed = 777;
    config.num_documents = 30;
    config.doc_tokens = 150;
    config.entities_per_doc = 7;
    config.emerging_mention_prob = 0.12;
    config.first_day = 0;
    config.last_day = 8;
    // Realistic difficulty, mirroring the CoNLL-like preset.
    config.popularity_bias = 1.0;
    config.linked_entity_prob = 0.5;
    config.sparse_context_prob = 0.35;
    config.topical_context_prob = 0.35;
    config.confusion_prob = 0.12;
    config.coherence_trap_prob = 0.25;
    return config;
  }

  static const TestWorld& Get() {
    static const TestWorld& instance = *new TestWorld();
    return instance;
  }

 private:
  TestWorld() {
    world = synth::WorldGenerator(WorldConfig()).Generate();
    corpus = synth::CorpusGenerator(&world, CorpusConfig()).Generate();
  }
};

}  // namespace aida::testing

#endif  // AIDA_TESTS_TEST_WORLD_H_
