// Tests for the AIDA_CHECK contract macros (util/check.h) and for the
// StatusOr accessor contracts that build on them. The death tests pin
// down the failure-message format — "AIDA_CHECK failed: <expr> at
// file:line — <message>" — because operator runbooks and the fuzz
// tooling grep for that prefix.

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/status.h"

namespace aida {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  AIDA_CHECK(true);
  AIDA_CHECK(1 + 1 == 2, "arithmetic held");
  AIDA_CHECK_OK(util::Status::Ok());
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  AIDA_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, MessageArgumentsNotEvaluatedOnSuccess) {
  int calls = 0;
  AIDA_CHECK(true, "never formatted: %d", ++calls);
  EXPECT_EQ(calls, 0);
}

TEST(CheckTest, CheckOkEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  AIDA_CHECK_OK([&] {
    ++calls;
    return util::Status::Ok();
  }());
  EXPECT_EQ(calls, 1);
}

#ifdef NDEBUG
TEST(CheckTest, DcheckCompiledOutInReleaseWithoutEvaluating) {
  int calls = 0;
  AIDA_DCHECK([&] {
    ++calls;
    return false;
  }());
  EXPECT_EQ(calls, 0);
}
#else
TEST(CheckDeathTest, DcheckFatalInDebugBuilds) {
  EXPECT_DEATH(AIDA_DCHECK(false, "debug invariant"), "AIDA_CHECK failed");
}
#endif

TEST(CheckDeathTest, FailureLogsExpressionAndLocation) {
  EXPECT_DEATH(AIDA_CHECK(2 + 2 == 5),
               "AIDA_CHECK failed: 2 \\+ 2 == 5 at .*check_test\\.cc:");
}

TEST(CheckDeathTest, FailureLogsFormattedMessage) {
  int got = 41;
  EXPECT_DEATH(AIDA_CHECK(got == 42, "expected 42, got %d", got),
               "expected 42, got 41");
}

TEST(CheckDeathTest, CheckOkLogsStatusText) {
  EXPECT_DEATH(AIDA_CHECK_OK(util::Status::InvalidArgument("bad flux")),
               "non-OK status: .*bad flux");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(AIDA_UNREACHABLE("enum value %d fell through", 7),
               "reached unreachable code.*enum value 7 fell through");
}

// StatusOr's accessor contracts moved from assert() (silent UB in release)
// to AIDA_CHECK, so they must fire in every build type — including the
// RelWithDebInfo default this test suite runs under.
TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  util::StatusOr<int> result(util::Status::NotFound("no dice"));
  EXPECT_DEATH((void)result.value(),
               "StatusOr accessed without a value: .*no dice");
}

TEST(StatusOrDeathTest, DereferenceOnErrorAborts) {
  util::StatusOr<std::string> result(util::Status::Internal("boom"));
  EXPECT_DEATH((void)*result, "StatusOr accessed without a value: .*boom");
}

TEST(StatusOrDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(util::StatusOr<int>{util::Status::Ok()},
               "StatusOr constructed from an OK Status");
}

// The failure handler hook lets embedders (and this test) observe a check
// failure without the process dying. A handler that throws never returns
// to CheckFail, so std::abort() is not reached.
std::string g_seen_expression;   // NOLINT(runtime/string)
std::string g_seen_message;      // NOLINT(runtime/string)
int g_seen_line = 0;

void ThrowingHandler(const util::CheckFailureInfo& info) {
  g_seen_expression = info.expression;
  g_seen_message = info.message;
  g_seen_line = info.line;
  throw std::runtime_error("intercepted");
}

TEST(CheckTest, FailureHandlerInterceptsAbort) {
  util::CheckFailureHandler previous =
      util::SetCheckFailureHandler(&ThrowingHandler);
  EXPECT_THROW(AIDA_CHECK(2 + 2 == 5, "math is %s", "broken"),
               std::runtime_error);
  util::SetCheckFailureHandler(previous);
  EXPECT_EQ(g_seen_expression, "2 + 2 == 5");
  EXPECT_EQ(g_seen_message, "math is broken");
  EXPECT_GT(g_seen_line, 0);
}

TEST(CheckTest, HandlerThatReturnsFallsThroughToAbort) {
  // Registering a handler must not swallow the failure: if it returns,
  // CheckFail still logs and aborts.
  util::CheckFailureHandler previous =
      util::SetCheckFailureHandler(+[](const util::CheckFailureInfo&) {});
  EXPECT_DEATH(AIDA_CHECK(false, "still fatal"), "still fatal");
  util::SetCheckFailureHandler(previous);
}

}  // namespace
}  // namespace aida
