// Tests for the aida::task work-stealing engine and its integration
// into the disambiguation hot path: deque semantics, fork-join
// determinism, steal accounting under contention, exception transport,
// nested groups, cooperative cancellation mid-phase, and the contract
// the whole subsystem exists to keep — a parallel Disambiguate call is
// byte-identical to the serial one.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/aida.h"
#include "core/candidates.h"
#include "core/relatedness.h"
#include "task/parallel_for.h"
#include "task/scheduler.h"
#include "task/work_stealing_deque.h"
#include "test_world.h"
#include "util/alloc_probe.h"
#include "util/cancellation.h"
#include "util/stopwatch.h"
#include "util/worker_pool.h"

namespace aida::task {
namespace {

using ::aida::testing::TestWorld;

// ---- WorkStealingDeque ------------------------------------------------------

TEST(WorkStealingDequeTest, OwnerPopsLifoThiefStealsFifo) {
  WorkStealingDeque<int> deque(8);
  int values[3] = {1, 2, 3};
  for (int& v : values) ASSERT_TRUE(deque.TryPush(&v));
  EXPECT_EQ(deque.TrySteal(), &values[0]);  // thief takes the oldest
  EXPECT_EQ(deque.TryPop(), &values[2]);    // owner takes the newest
  EXPECT_EQ(deque.TryPop(), &values[1]);
  EXPECT_EQ(deque.TryPop(), nullptr);
  EXPECT_EQ(deque.TrySteal(), nullptr);
}

TEST(WorkStealingDequeTest, FullDequeRefusesPush) {
  WorkStealingDeque<int> deque(4);
  int values[5] = {0, 1, 2, 3, 4};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(deque.TryPush(&values[i]));
  EXPECT_FALSE(deque.TryPush(&values[4]));  // caller spills to injection
  EXPECT_EQ(deque.TrySteal(), &values[0]);
  EXPECT_TRUE(deque.TryPush(&values[4]));  // space reclaimed
}

TEST(WorkStealingDequeTest, ConcurrentThievesTakeEveryItemOnce) {
  constexpr int kItems = 4096;
  WorkStealingDeque<int> deque(kItems);
  std::vector<int> items(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  for (int i = 0; i < kItems; ++i) {
    items[i] = i;
    taken[i].store(0);
    ASSERT_TRUE(deque.TryPush(&items[i]));
  }
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      for (;;) {
        int* item = deque.TrySteal();
        if (item == nullptr) {
          if (deque.ApproxSize() == 0) return;
          continue;
        }
        taken[*item].fetch_add(1);
      }
    });
  }
  // The owner pops concurrently with the thieves.
  for (;;) {
    int* item = deque.TryPop();
    if (item == nullptr) break;
    taken[*item].fetch_add(1);
  }
  for (std::thread& thief : thieves) thief.join();
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[i].load(), 1) << "item " << i;
  }
}

// ---- Scheduler fork-join ----------------------------------------------------

TEST(SchedulerTest, ForkJoinExecutesEveryChunkExactlyOnce) {
  SchedulerOptions options;
  options.num_threads = 2;
  Scheduler scheduler(options);
  constexpr size_t kCount = 20'000;
  std::vector<std::atomic<uint32_t>> writes(kCount);
  for (auto& w : writes) w.store(0);
  const ParallelForStats stats = ParallelChunks(
      &scheduler, kCount, /*max_tasks=*/8, /*cancel=*/nullptr,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) writes[i].fetch_add(1);
      });
  EXPECT_EQ(stats.tasks, 8u);
  EXPECT_FALSE(stats.cancelled);
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(writes[i].load(), 1u) << "index " << i;
  }
}

TEST(SchedulerTest, ChunkBoundariesAreDeterministic) {
  // The determinism contract: boundaries depend only on (count,
  // max_tasks), so repeated runs fill identical per-chunk slots.
  SchedulerOptions options;
  options.num_threads = 3;
  Scheduler scheduler(options);
  constexpr size_t kCount = 1001;
  constexpr size_t kTasks = 7;
  std::vector<std::pair<size_t, size_t>> reference;
  for (int run = 0; run < 20; ++run) {
    std::vector<std::pair<size_t, size_t>> ranges(kCount);
    ParallelChunks(&scheduler, kCount, kTasks, nullptr,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       ranges[i] = {begin, end};
                     }
                   });
    if (run == 0) {
      reference = ranges;
    } else {
      ASSERT_EQ(ranges, reference) << "run " << run;
    }
  }
}

TEST(SchedulerTest, SerialFallbackRunsInlineWithoutScheduler) {
  std::vector<uint64_t> out(100, 0);
  const ParallelForStats stats = ParallelChunks(
      /*scheduler=*/nullptr, out.size(), /*max_tasks=*/8, nullptr,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = i;
      });
  EXPECT_EQ(stats.tasks, 0u);  // no tasks forked
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(SchedulerTest, StealUnderContentionStress) {
  // Many external fork-join callers hammer one scheduler with tiny
  // deques, forcing steals and injection-queue overflow. Every task must
  // run exactly once and the slot accounting must balance.
  SchedulerOptions options;
  options.num_threads = 4;
  options.deque_capacity = 8;  // forces overflow spills
  Scheduler scheduler(options);

  constexpr size_t kGroups = 6;
  constexpr size_t kTasksPerGroup = 400;
  std::atomic<uint64_t> executed{0};
  std::vector<TaskGroup::Stats> group_stats(kGroups);
  std::vector<std::thread> callers;
  for (size_t g = 0; g < kGroups; ++g) {
    callers.emplace_back([&, g] {
      TaskGroup group(&scheduler);
      for (size_t t = 0; t < kTasksPerGroup; ++t) {
        group.Run([&executed] {
          // A small spin so tasks overlap long enough to be stolen.
          volatile uint64_t x = 0;
          for (int i = 0; i < 200; ++i) x = x + static_cast<uint64_t>(i);
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      group.Wait();
      group_stats[g] = group.stats();
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(executed.load(), kGroups * kTasksPerGroup);
  // Every task ran exactly once: spawned tasks through scheduler slots,
  // the rest (slotless groups) inline in their caller.
  uint64_t spawned = 0, inline_executed = 0;
  for (const TaskGroup::Stats& s : group_stats) {
    EXPECT_EQ(s.spawned + s.inline_executed, kTasksPerGroup);
    spawned += s.spawned;
    inline_executed += s.inline_executed;
  }
  EXPECT_EQ(spawned + inline_executed, kGroups * kTasksPerGroup);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tasks_executed, spawned);
  EXPECT_LE(stats.tasks_stolen, stats.tasks_executed);
}

TEST(SchedulerTest, ExceptionPropagatesToWait) {
  SchedulerOptions options;
  options.num_threads = 2;
  Scheduler scheduler(options);
  TaskGroup group(&scheduler);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    group.Run([i, &ran] {
      ran.fetch_add(1);
      if (i == 13) throw std::runtime_error("task 13 failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The failing task ran; tasks spawned before the failure ran too. The
  // group must be fully drained either way (the scheduler would assert
  // on outstanding tasks at destruction otherwise).
  EXPECT_GE(ran.load(), 1);
}

TEST(SchedulerTest, NestedGroupsComposeOnOneSlot) {
  SchedulerOptions options;
  options.num_threads = 2;
  Scheduler scheduler(options);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<uint32_t>> writes(kOuter * kInner);
  for (auto& w : writes) w.store(0);
  TaskGroup outer(&scheduler);
  for (size_t i = 0; i < kOuter; ++i) {
    outer.Run([i, &writes, &scheduler] {
      // A nested group on a worker thread shares the worker's slot; on
      // an external thread it claims a participant slot.
      TaskGroup inner(&scheduler);
      for (size_t j = 0; j < kInner; ++j) {
        inner.Run([i, j, &writes] { writes[i * kInner + j].fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  for (size_t k = 0; k < writes.size(); ++k) {
    ASSERT_EQ(writes[k].load(), 1u) << "slot " << k;
  }
}

TEST(SchedulerTest, BorrowsWorkerPoolThreads) {
  util::WorkerPool pool(3);
  std::vector<uint64_t> out(5000, 0);
  {
    SchedulerOptions options;
    options.num_threads = 2;  // leaves one pool thread unborrowed
    options.borrow_pool = &pool;
    Scheduler scheduler(options);
    ParallelChunks(&scheduler, out.size(), 4, nullptr,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) out[i] = i * 3;
                   });
  }
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * 3);
  // The borrowed loops exited at scheduler destruction; the pool still
  // accepts ordinary work.
  std::atomic<bool> ran{false};
  pool.ParallelFor(1, [&](size_t) { ran.store(true); });
  EXPECT_TRUE(ran.load());
}

TEST(SchedulerTest, PreCancelledTokenSkipsSpawns) {
  SchedulerOptions options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  util::CancellationToken token;
  token.Cancel();
  TaskGroup group(&scheduler, &token);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) group.Run([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(group.cancelled());
}

TEST(SchedulerTest, CancelDuringSpawnStopsFurtherLaunches) {
  SchedulerOptions options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  util::CancellationToken token;
  TaskGroup group(&scheduler, &token);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    if (i == 10) token.Cancel();
    group.Run([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_LE(ran.load(), 10);
  EXPECT_TRUE(group.cancelled());
}

TEST(TaskGroupAllocTest, WarmForkJoinDoesNotAllocate) {
  // Pins the steady-state allocation discipline of the spawn/wait path:
  // after a warmup region has stocked the slot's TaskNode free list,
  // spawning tasks whose captures fit internal::kInlineTaskBytes, helping,
  // parking, and joining must not touch the allocator at all on the
  // spawning thread. (The old std::function-based TaskNode cost two heap
  // round-trips per spawned task.)
  if (!util::AllocProbeAvailable()) {
    GTEST_SKIP() << "global operator new interposition unavailable";
  }
  SchedulerOptions options;
  options.num_threads = 2;
  Scheduler scheduler(options);
  std::atomic<uint64_t> sum{0};
  constexpr int kTasks = 16;  // below deque_capacity: no injection spill
  auto region = [&] {
    TaskGroup group(&scheduler, /*cancel=*/nullptr);
    for (int i = 0; i < kTasks; ++i) {
      group.Run(
          [&sum, i] { sum.fetch_add(uint64_t(i) + 1, std::memory_order_relaxed); });
    }
    group.Wait();
  };
  // Two warm regions: stock the participant slot's node pool (nodes are
  // recycled before Wait returns) and touch any lazy thread-local state.
  region();
  region();
  util::ScopedAllocationCount probe;
  region();
  EXPECT_EQ(probe.allocations(), 0u)
      << "warm fork-join spawn/wait must be allocation-free";
  EXPECT_EQ(probe.deallocations(), 0u);
  EXPECT_EQ(sum.load(), 3u * (kTasks * (kTasks + 1) / 2));
}

TEST(TaskGroupAllocTest, OversizedCapturesStillRunCorrectly) {
  // Callables beyond the inline budget take the boxed fallback: one heap
  // allocation per spawn, identical observable behavior.
  SchedulerOptions options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  struct Big {
    uint64_t payload[24];  // 192 bytes > kInlineTaskBytes
  };
  Big big{};
  for (size_t i = 0; i < 24; ++i) big.payload[i] = i + 1;
  std::atomic<uint64_t> sum{0};
  TaskGroup group(&scheduler, /*cancel=*/nullptr);
  for (int t = 0; t < 8; ++t) {
    group.Run([big, &sum] {
      uint64_t local = 0;
      for (uint64_t v : big.payload) local += v;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 8u * (24u * 25u / 2));
}

// ---- Disambiguation hot path on the engine ---------------------------------

// Deterministic arithmetic relatedness: a pure function of the entity
// ids with a tunable spin so relatedness dominates request cost the way
// the real KORE measures do. Thread-safe (no state beyond the atomic
// comparison counter).
class SpinRelatedness : public core::RelatednessMeasure {
 public:
  explicit SpinRelatedness(uint64_t spin) : spin_(spin) {}
  std::string name() const override { return "spin"; }
  double Relatedness(const core::Candidate& a,
                     const core::Candidate& b) const override {
    CountComparison();
    uint64_t x = (static_cast<uint64_t>(a.entity) << 32) ^ b.entity ^
                 (static_cast<uint64_t>(b.entity) << 32) ^ a.entity;
    for (uint64_t i = 0; i < spin_; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
    return static_cast<double>(x % 1000) / 1000.0;
  }

 private:
  const uint64_t spin_;
};

// A relatedness measure that sleeps per evaluation — the knob that makes
// a mid-phase deadline trip observable without a big document.
class SleepyRelatedness : public core::RelatednessMeasure {
 public:
  std::string name() const override { return "sleepy"; }
  double Relatedness(const core::Candidate& a,
                     const core::Candidate& b) const override {
    CountComparison();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return a.entity == b.entity ? 1.0 : 0.5;
  }
};

// A document of `num_mentions` mentions, each with `num_candidates`
// pre-resolved candidates over distinct entities, so every cross-mention
// entity pair qualifies for the relatedness batch.
struct HeavyDoc {
  std::vector<std::string> tokens;
  std::vector<std::vector<core::Candidate>> candidate_storage;
  core::DisambiguationProblem problem;

  HeavyDoc(size_t num_mentions, size_t num_candidates) {
    auto dummy_model = std::make_shared<core::CandidateModel>();
    tokens.assign(num_mentions, "tok");
    problem.tokens = &tokens;
    candidate_storage.resize(num_mentions);
    for (size_t m = 0; m < num_mentions; ++m) {
      for (size_t c = 0; c < num_candidates; ++c) {
        core::Candidate cand;
        cand.entity = static_cast<kb::EntityId>(m * 100 + c);
        cand.prior = 1.0 / static_cast<double>(c + 1);
        cand.model = dummy_model;
        candidate_storage[m].push_back(std::move(cand));
      }
      core::ProblemMention mention;
      mention.surface = "tok";
      mention.begin_token = m;
      mention.end_token = m + 1;
      mention.candidates = candidate_storage[m];
      mention.candidates_resolved = true;
      problem.mentions.push_back(std::move(mention));
    }
  }
};

core::AidaOptions CoherenceOnlyOptions() {
  core::AidaOptions options;
  options.use_prior = true;
  options.use_prior_test = false;
  options.use_coherence = true;
  options.use_coherence_test = false;  // keep every candidate in the graph
  return options;
}

core::DisambiguateOptions ParallelOptions(Scheduler* scheduler,
                                          size_t max_tasks) {
  core::DisambiguateOptions options;
  options.parallel.scheduler = scheduler;
  options.parallel.max_tasks = max_tasks;
  options.parallel.min_parallel_mentions = 1;
  options.parallel.min_batch_pairs = 1;
  options.parallel.min_parallel_nodes = 1;
  return options;
}

TEST(TaskAidaTest, ParallelDisambiguationIsByteIdenticalToSerial) {
  const TestWorld& test_world = TestWorld::Get();
  core::CandidateModelStore models(test_world.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(test_world.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  SchedulerOptions scheduler_options;
  scheduler_options.num_threads = 3;
  Scheduler scheduler(scheduler_options);

  uint64_t parallel_tasks_total = 0;
  size_t docs_checked = 0;
  for (const corpus::Document& doc : test_world.corpus) {
    if (doc.mentions.empty()) continue;
    core::DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }

    const core::DisambiguationResult serial =
        aida.Disambiguate(problem, core::DisambiguateOptions());
    const core::DisambiguationResult parallel =
        aida.Disambiguate(problem, ParallelOptions(&scheduler, 4));

    ASSERT_EQ(parallel.mentions.size(), serial.mentions.size());
    for (size_t m = 0; m < serial.mentions.size(); ++m) {
      const core::MentionResult& s = serial.mentions[m];
      const core::MentionResult& p = parallel.mentions[m];
      EXPECT_EQ(p.entity, s.entity) << "doc " << docs_checked << " m " << m;
      EXPECT_EQ(p.chose_placeholder, s.chose_placeholder);
      // Bit-exact, not approximately equal: the whole determinism
      // contract of the task engine.
      EXPECT_EQ(p.score, s.score) << "doc " << docs_checked << " m " << m;
      ASSERT_EQ(p.candidate_scores.size(), s.candidate_scores.size());
      for (size_t c = 0; c < s.candidate_scores.size(); ++c) {
        EXPECT_EQ(p.candidate_scores[c], s.candidate_scores[c])
            << "doc " << docs_checked << " m " << m << " c " << c;
      }
      EXPECT_EQ(p.candidate_entities, s.candidate_entities);
    }
    EXPECT_EQ(parallel.stats.graph_iterations, serial.stats.graph_iterations);
    // MW has no cache, so the evaluation count is exactly reproducible.
    EXPECT_EQ(parallel.stats.relatedness_computations,
              serial.stats.relatedness_computations);
    parallel_tasks_total += parallel.stats.parallel_tasks;
    ++docs_checked;
  }
  ASSERT_GT(docs_checked, 10u);
  // The corpus has multi-mention documents, so at least some requests
  // actually forked tasks — otherwise this test proves nothing.
  EXPECT_GT(parallel_tasks_total, 0u);
}

TEST(TaskAidaTest, MidPhaseCancelReturnsDegradedLocalResultPromptly) {
  const TestWorld& test_world = TestWorld::Get();
  core::CandidateModelStore models(test_world.world.knowledge_base.get());
  SleepyRelatedness sleepy;
  core::Aida aida(&models, &sleepy, CoherenceOnlyOptions());

  SchedulerOptions scheduler_options;
  scheduler_options.num_threads = 2;
  Scheduler scheduler(scheduler_options);

  // 12 mentions x 6 candidates -> ~2400 qualifying pairs at 2ms each:
  // ~5 s of relatedness if the batch ran to completion. The token trips
  // 50ms in; the batched evaluation polls it every few dozen pairs, so
  // the call must come back orders of magnitude sooner than the full
  // batch would take.
  HeavyDoc doc(/*num_mentions=*/12, /*num_candidates=*/6);
  core::CancellationToken token(core::CancellationToken::Clock::now() +
                                std::chrono::milliseconds(50));
  core::DisambiguateOptions options = ParallelOptions(&scheduler, 3);
  options.cancel = &token;

  util::Stopwatch watch;
  const core::DisambiguationResult result =
      aida.Disambiguate(doc.problem, options);
  const double elapsed = watch.ElapsedSeconds();

  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(elapsed, 2.5) << "mid-phase cancel was not observed promptly";
  // Degraded but well-formed: every mention still carries its local-only
  // choice over the full candidate list.
  ASSERT_EQ(result.mentions.size(), doc.problem.mentions.size());
  for (const core::MentionResult& mention : result.mentions) {
    EXPECT_EQ(mention.candidate_scores.size(), 6u);
    EXPECT_NE(mention.entity, kb::kNoEntity);
  }
}

TEST(TaskAidaTest, SerialCallerWithoutSchedulerStillWorks) {
  // ParallelismOptions default: no scheduler, max_tasks 1 — the entire
  // parallel plumbing must be invisible.
  const TestWorld& test_world = TestWorld::Get();
  core::CandidateModelStore models(test_world.world.knowledge_base.get());
  SpinRelatedness spin(/*spin=*/10);
  core::Aida aida(&models, &spin, CoherenceOnlyOptions());
  HeavyDoc doc(/*num_mentions=*/5, /*num_candidates=*/3);
  const core::DisambiguationResult result =
      aida.Disambiguate(doc.problem, core::DisambiguateOptions());
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.stats.parallel_tasks, 0u);
  EXPECT_EQ(result.mentions.size(), 5u);
}

// ---- Intra-request scaling regression --------------------------------------

TEST(TaskScalingTest, EightTaskTailNotWorseThanSingleTask) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to measure intra-request "
                    "scaling, have "
                 << hw;
  }

  const TestWorld& test_world = TestWorld::Get();
  core::CandidateModelStore models(test_world.world.knowledge_base.get());
  // ~20us per relatedness evaluation; a 24x6 document needs ~3k
  // evaluations, so the batch dominates the request and has real work to
  // parallelize.
  SpinRelatedness spin(/*spin=*/20'000);
  core::Aida aida(&models, &spin, CoherenceOnlyOptions());
  HeavyDoc doc(/*num_mentions=*/24, /*num_candidates=*/6);

  SchedulerOptions scheduler_options;
  scheduler_options.num_threads = 7;
  Scheduler scheduler(scheduler_options);

  auto measure_p99 = [&](size_t max_tasks) {
    constexpr int kRuns = 15;
    std::vector<double> latencies;
    latencies.reserve(kRuns);
    // One warm-up absorbs cold caches and lazy model construction.
    (void)aida.Disambiguate(doc.problem, ParallelOptions(&scheduler, max_tasks));
    for (int run = 0; run < kRuns; ++run) {
      util::Stopwatch watch;
      const core::DisambiguationResult result = aida.Disambiguate(
          doc.problem, ParallelOptions(&scheduler, max_tasks));
      latencies.push_back(watch.ElapsedSeconds());
      EXPECT_FALSE(result.cancelled);
    }
    std::sort(latencies.begin(), latencies.end());
    return latencies[static_cast<size_t>(0.99 * (kRuns - 1))];
  };

  const double p99_single = measure_p99(1);
  const double p99_eight = measure_p99(8);
  ASSERT_GT(p99_single, 0.0);
  // The regression this guards: intra-request parallelism making the
  // tail WORSE. On >= 4 cores the 8-task path must not lose to serial.
  EXPECT_LE(p99_eight, p99_single)
      << "8-task p99 " << p99_eight << "s vs single-task p99 " << p99_single
      << "s: intra-request parallelism regressed the tail";
}

}  // namespace
}  // namespace aida::task
