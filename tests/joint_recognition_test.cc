#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/joint_recognition.h"
#include "test_world.h"

namespace aida::core {
namespace {

using ::aida::testing::TestWorld;

class JointRecognitionTest : public ::testing::Test {
 protected:
  JointRecognitionTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()),
        aida_(&models_, &mw_, AidaOptions()) {}

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  CandidateModelStore models_;
  MilneWittenRelatedness mw_;
  Aida aida_;
};

TEST_F(JointRecognitionTest, MentionsAreNonOverlappingAndOrdered) {
  JointRecognizer recognizer(&models_, &aida_);
  const corpus::Document& doc = corpus_.front();
  std::vector<RecognizedMention> mentions = recognizer.Annotate(doc.tokens);
  ASSERT_FALSE(mentions.empty());
  for (size_t i = 0; i < mentions.size(); ++i) {
    EXPECT_LT(mentions[i].begin_token, mentions[i].end_token);
    EXPECT_LE(mentions[i].end_token, doc.tokens.size());
    EXPECT_NE(mentions[i].entity, kb::kNoEntity);
    if (i > 0) {
      EXPECT_LE(mentions[i - 1].end_token, mentions[i].begin_token);
    }
  }
}

TEST_F(JointRecognitionTest, RecoversMostGoldMentions) {
  JointRecognizer recognizer(&models_, &aida_);
  size_t gold_in_kb = 0;
  size_t span_recovered = 0;
  size_t entity_correct = 0;
  for (size_t d = 0; d < 8; ++d) {
    const corpus::Document& doc = corpus_[d];
    std::vector<RecognizedMention> mentions =
        recognizer.Annotate(doc.tokens);
    for (const corpus::GoldMention& gm : doc.mentions) {
      if (gm.out_of_kb()) continue;
      ++gold_in_kb;
      for (const RecognizedMention& rm : mentions) {
        // Overlap with the gold span counts as recovered.
        if (rm.begin_token < gm.end_token && gm.begin_token < rm.end_token) {
          ++span_recovered;
          if (rm.entity == gm.gold_entity) ++entity_correct;
          break;
        }
      }
    }
  }
  ASSERT_GT(gold_in_kb, 40u);
  EXPECT_GT(static_cast<double>(span_recovered) / gold_in_kb, 0.85);
  EXPECT_GT(static_cast<double>(entity_correct) / gold_in_kb, 0.55);
}

TEST_F(JointRecognitionTest, LongSpanBeatsEmbeddedShortSpan) {
  // A document mentioning an entity by its full two-token name: the
  // embedded family-name reading must not fragment the span.
  kb::EntityId target = kb::kNoEntity;
  const corpus::Document* doc = nullptr;
  size_t gold_index = 0;
  for (const corpus::Document& d : corpus_) {
    for (size_t m = 0; m < d.mentions.size(); ++m) {
      if (!d.mentions[m].out_of_kb() &&
          d.mentions[m].end_token - d.mentions[m].begin_token == 2) {
        target = d.mentions[m].gold_entity;
        doc = &d;
        gold_index = m;
        break;
      }
    }
    if (doc != nullptr) break;
  }
  if (doc == nullptr) GTEST_SKIP() << "no two-token mention in corpus";

  JointRecognizer recognizer(&models_, &aida_);
  std::vector<RecognizedMention> mentions = recognizer.Annotate(doc->tokens);
  const corpus::GoldMention& gm = doc->mentions[gold_index];
  for (const RecognizedMention& rm : mentions) {
    if (rm.begin_token == gm.begin_token) {
      EXPECT_EQ(rm.end_token, gm.end_token) << "span fragmented";
      EXPECT_EQ(rm.entity, target);
      return;
    }
  }
  // The span may also have been consumed by a longer/better reading; at
  // minimum it must not have produced a conflicting fragment.
  for (const RecognizedMention& rm : mentions) {
    EXPECT_FALSE(rm.begin_token > gm.begin_token &&
                 rm.begin_token < gm.end_token)
        << "fragment inside gold span";
  }
}

TEST_F(JointRecognitionTest, NoNameTokensNoMentions) {
  JointRecognizer recognizer(&models_, &aida_);
  std::vector<std::string> tokens = {"all", "lower", "case", "words"};
  EXPECT_TRUE(recognizer.Annotate(tokens).empty());
}

}  // namespace
}  // namespace aida::core
