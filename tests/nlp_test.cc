#include <gtest/gtest.h>

#include "kb/dictionary.h"
#include "nlp/keyphrase_extractor.h"
#include "nlp/ner_tagger.h"
#include "nlp/pos_tagger.h"
#include "text/tokenizer.h"

namespace aida::nlp {
namespace {

text::TokenSequence Tokenize(const std::string& s) {
  return text::Tokenizer().Tokenize(s);
}

TEST(PosTaggerTest, TagsClosedClassWords) {
  PosTagger tagger;
  text::TokenSequence tokens = Tokenize("the band played in a stadium");
  std::vector<PosTag> tags = tagger.Tag(tokens);
  EXPECT_EQ(tags[0], PosTag::kDeterminer);
  EXPECT_EQ(tags[2], PosTag::kVerb);       // "played" (-ed)
  EXPECT_EQ(tags[3], PosTag::kPreposition);
  EXPECT_EQ(tags[1], PosTag::kNoun);
  EXPECT_EQ(tags[5], PosTag::kNoun);
}

TEST(PosTaggerTest, ProperNounsByCapitalization) {
  PosTagger tagger;
  text::TokenSequence tokens = Tokenize("He met Jimmy Page in London .");
  std::vector<PosTag> tags = tagger.Tag(tokens);
  EXPECT_EQ(tags[2], PosTag::kProperNoun);
  EXPECT_EQ(tags[3], PosTag::kProperNoun);
  EXPECT_EQ(tags[5], PosTag::kProperNoun);
  EXPECT_EQ(tags[6], PosTag::kPunctuation);
}

TEST(PosTaggerTest, AcronymsAreProperNouns) {
  PosTagger tagger;
  text::TokenSequence tokens = Tokenize("NASA launched a rocket");
  std::vector<PosTag> tags = tagger.Tag(tokens);
  // Even sentence-initial all-caps tokens are proper nouns.
  EXPECT_EQ(tags[0], PosTag::kProperNoun);
}

TEST(PosTaggerTest, NumbersAndAdjectives) {
  PosTagger tagger;
  text::TokenSequence tokens = Tokenize("a famous 1976 record");
  std::vector<PosTag> tags = tagger.Tag(tokens);
  EXPECT_EQ(tags[1], PosTag::kAdjective);  // -ous
  EXPECT_EQ(tags[2], PosTag::kNumber);
}

TEST(KeyphraseExtractorTest, ExtractsNounGroups) {
  PosTagger tagger;
  KeyphraseExtractor extractor;
  text::TokenSequence tokens = Tokenize("he bought a gibson guitar yesterday");
  // "yesterday" ends in -y: tagged noun; "gibson guitar yesterday" forms a
  // group. Check the core phrase is found.
  std::vector<ExtractedPhrase> phrases =
      extractor.Extract(tokens, tagger.Tag(tokens));
  bool found = false;
  for (const auto& p : phrases) {
    if (p.text.find("gibson guitar") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KeyphraseExtractorTest, PrepositionalPattern) {
  PosTagger tagger;
  KeyphraseExtractor extractor;
  text::TokenSequence tokens = Tokenize("the school of martial arts closed");
  std::vector<ExtractedPhrase> phrases =
      extractor.Extract(tokens, tagger.Tag(tokens));
  bool found = false;
  for (const auto& p : phrases) {
    if (p.text == "school of martial arts") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KeyphraseExtractorTest, SkipsVerbsAndFunctionWords) {
  PosTagger tagger;
  KeyphraseExtractor extractor;
  text::TokenSequence tokens = Tokenize("they performed and played");
  std::vector<ExtractedPhrase> phrases =
      extractor.Extract(tokens, tagger.Tag(tokens));
  EXPECT_TRUE(phrases.empty());
}

TEST(KeyphraseExtractorTest, RespectsMaxLength) {
  PosTagger tagger;
  KeyphraseExtractor::Options options;
  options.max_phrase_tokens = 2;
  KeyphraseExtractor extractor(options);
  text::TokenSequence tokens =
      Tokenize("big red heavy metal music festival");
  for (const auto& p :
       extractor.Extract(tokens, tagger.Tag(tokens))) {
    EXPECT_LE(p.end_token - p.begin_token, 3u);  // emitted text capped at 2
    EXPECT_LE(std::count(p.text.begin(), p.text.end(), ' '), 1);
  }
}

class NerTaggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_.AddAnchor("Jimmy Page", 1, 10);
    dict_.AddAnchor("Page", 1, 10);
    dict_.AddAnchor("Kashmir", 2, 10);
    dict_.AddAnchor("US", 3, 10);
  }
  kb::Dictionary dict_;
};

TEST_F(NerTaggerTest, LongestDictionaryMatchWins) {
  NerTagger tagger(&dict_);
  text::TokenSequence tokens =
      Tokenize("Jimmy Page wrote Kashmir");
  std::vector<MentionSpan> mentions = tagger.Recognize(tokens);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].text, "Jimmy Page");
  EXPECT_EQ(mentions[1].text, "Kashmir");
}

TEST_F(NerTaggerTest, EmitsUnknownCapitalizedSpans) {
  NerTagger tagger(&dict_);
  text::TokenSequence tokens = Tokenize("concert with Robert Plant there");
  std::vector<MentionSpan> mentions = tagger.Recognize(tokens);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "Robert Plant");
}

TEST_F(NerTaggerTest, CanSuppressUnknownSpans) {
  NerTagger::Options options;
  options.emit_unknown_spans = false;
  NerTagger tagger(&dict_, options);
  text::TokenSequence tokens = Tokenize("concert with Robert Plant there");
  EXPECT_TRUE(tagger.Recognize(tokens).empty());
}

TEST_F(NerTaggerTest, AcronymRecognized) {
  NerTagger tagger(&dict_);
  text::TokenSequence tokens = Tokenize("officials in the US said");
  std::vector<MentionSpan> mentions = tagger.Recognize(tokens);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].text, "US");
}

}  // namespace
}  // namespace aida::nlp
