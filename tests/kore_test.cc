#include <gtest/gtest.h>

#include <set>

#include "core/candidates.h"
#include "kore/keyterm_cosine.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "test_world.h"

namespace aida::kore {
namespace {

using ::aida::testing::TestWorld;

class KoreTest : public ::testing::Test {
 protected:
  KoreTest()
      : world_(TestWorld::Get().world),
        models_(world_.knowledge_base.get()) {}

  core::Candidate MakeCandidate(kb::EntityId e) const {
    core::Candidate c;
    c.entity = e;
    c.model = models_.ModelFor(e);
    return c;
  }

  // Finds two same-topic entities and one from a different topic.
  void FindTriple(kb::EntityId* a, kb::EntityId* b, kb::EntityId* c) const {
    *a = 0;
    *b = kb::kNoEntity;
    *c = kb::kNoEntity;
    for (kb::EntityId e = 1; e < world_.knowledge_base->entity_count(); ++e) {
      if (*b == kb::kNoEntity &&
          world_.entity_topic[e] == world_.entity_topic[*a]) {
        *b = e;
      }
      if (*c == kb::kNoEntity &&
          world_.entity_topic[e] != world_.entity_topic[*a]) {
        *c = e;
      }
      if (*b != kb::kNoEntity && *c != kb::kNoEntity) return;
    }
  }

  const synth::World& world_;
  core::CandidateModelStore models_;
};

TEST_F(KoreTest, SameTopicMoreRelated) {
  kb::EntityId a, b, c;
  FindTriple(&a, &b, &c);
  KoreRelatedness kore;
  double same = kore.Relatedness(MakeCandidate(a), MakeCandidate(b));
  double cross = kore.Relatedness(MakeCandidate(a), MakeCandidate(c));
  EXPECT_GT(same, cross);
}

TEST_F(KoreTest, SymmetricAndBounded) {
  KoreRelatedness kore;
  for (kb::EntityId e = 0; e < 20; ++e) {
    for (kb::EntityId f = e + 1; f < 20; ++f) {
      double ab = kore.Relatedness(MakeCandidate(e), MakeCandidate(f));
      double ba = kore.Relatedness(MakeCandidate(f), MakeCandidate(e));
      EXPECT_NEAR(ab, ba, 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST_F(KoreTest, SelfRelatednessIsHigh) {
  KoreRelatedness kore;
  kb::EntityId a, b, c;
  FindTriple(&a, &b, &c);
  double self = kore.Relatedness(MakeCandidate(a), MakeCandidate(a));
  double other = kore.Relatedness(MakeCandidate(a), MakeCandidate(b));
  EXPECT_GT(self, other);
}

TEST_F(KoreTest, WorksForPlaceholders) {
  // A placeholder model sharing phrases with an entity scores > 0 —
  // the capability MW lacks.
  kb::EntityId a = 0;
  core::Candidate real = MakeCandidate(a);
  core::Candidate placeholder;
  placeholder.is_placeholder = true;
  auto model = std::make_shared<core::CandidateModel>(*real.model);
  model->entity = kb::kNoEntity;
  placeholder.model = model;

  KoreRelatedness kore;
  EXPECT_GT(kore.Relatedness(real, placeholder), 0.0);
  core::MilneWittenRelatedness mw(world_.knowledge_base.get());
  EXPECT_EQ(mw.Relatedness(real, placeholder), 0.0);
}

TEST_F(KoreTest, CountsComparisons) {
  KoreRelatedness kore;
  kore.ResetComparisons();
  kore.Relatedness(MakeCandidate(0), MakeCandidate(1));
  kore.Relatedness(MakeCandidate(0), MakeCandidate(2));
  EXPECT_EQ(kore.comparisons(), 2u);
}

TEST_F(KoreTest, KeytermCosineVariants) {
  kb::EntityId a, b, c;
  FindTriple(&a, &b, &c);
  KeytermCosineRelatedness kwcs(KeytermCosineRelatedness::Mode::kKeyword);
  KeytermCosineRelatedness kpcs(KeytermCosineRelatedness::Mode::kKeyphrase);
  for (const KeytermCosineRelatedness* measure : {&kwcs, &kpcs}) {
    double same = measure->Relatedness(MakeCandidate(a), MakeCandidate(b));
    double cross = measure->Relatedness(MakeCandidate(a), MakeCandidate(c));
    EXPECT_GE(same, cross) << measure->name();
    double self = measure->Relatedness(MakeCandidate(a), MakeCandidate(a));
    EXPECT_NEAR(self, 1.0, 1e-9) << measure->name();
  }
}

TEST_F(KoreTest, LshFiltersPairsButKeepsRelated) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  KoreLshRelatedness good = KoreLshRelatedness::Good(&store);
  KoreLshRelatedness fast = KoreLshRelatedness::Fast(&store);
  ASSERT_TRUE(good.has_pair_filter());

  // Candidate pool: 30 entities.
  std::vector<core::Candidate> pool;
  for (kb::EntityId e = 0; e < 30; ++e) pool.push_back(MakeCandidate(e));
  std::vector<const core::Candidate*> ptrs;
  for (const core::Candidate& c : pool) ptrs.push_back(&c);

  auto good_pairs = good.FilterPairs(ptrs);
  auto fast_pairs = fast.FilterPairs(ptrs);
  size_t all_pairs = 30 * 29 / 2;
  EXPECT_LT(fast_pairs.size(), all_pairs);
  EXPECT_LE(fast_pairs.size(), good_pairs.size() + 5);

  // Strongly related pairs (KORE >= 0.05) should mostly survive the good
  // filter.
  KoreRelatedness exact;
  size_t strong = 0;
  size_t kept = 0;
  std::set<std::pair<uint32_t, uint32_t>> good_set(good_pairs.begin(),
                                                   good_pairs.end());
  for (uint32_t i = 0; i < 30; ++i) {
    for (uint32_t j = i + 1; j < 30; ++j) {
      if (exact.Relatedness(pool[i], pool[j]) >= 0.05) {
        ++strong;
        if (good_set.count({i, j})) ++kept;
      }
    }
  }
  if (strong > 0) {
    EXPECT_GE(static_cast<double>(kept) / strong, 0.7);
  }
}

TEST_F(KoreTest, LshAdmitsPlaceholderPairs) {
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  KoreLshRelatedness good = KoreLshRelatedness::Good(&store);
  core::Candidate placeholder;
  placeholder.is_placeholder = true;
  placeholder.model = std::make_shared<core::CandidateModel>();
  core::Candidate real = MakeCandidate(0);
  std::vector<const core::Candidate*> ptrs = {&real, &placeholder};
  auto pairs = good.FilterPairs(ptrs);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>(0, 1)));
}

}  // namespace
}  // namespace aida::kore
