#include <gtest/gtest.h>

#include <algorithm>

#include "hashing/lsh_index.h"
#include "hashing/minhash.h"
#include "hashing/two_stage_hasher.h"
#include "kb/kb_builder.h"

namespace aida::hashing {
namespace {

TEST(MinHashTest, IdenticalSetsIdenticalSketches) {
  MinHasher hasher(16, 7);
  std::vector<uint32_t> items = {1, 5, 9, 42};
  EXPECT_EQ(hasher.Sketch(items), hasher.Sketch(items));
}

TEST(MinHashTest, OrderInvariant) {
  MinHasher hasher(16, 7);
  std::vector<uint32_t> a = {1, 5, 9, 42};
  std::vector<uint32_t> b = {42, 9, 5, 1};
  EXPECT_EQ(hasher.Sketch(a), hasher.Sketch(b));
}

TEST(MinHashTest, JaccardEstimateTracksTruth) {
  MinHasher hasher(512, 11);
  // |A ∩ B| = 50, |A ∪ B| = 150 -> Jaccard = 1/3.
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  for (uint32_t i = 0; i < 100; ++i) a.push_back(i);
  for (uint32_t i = 50; i < 150; ++i) b.push_back(i);
  double estimate = EstimateJaccard(hasher.Sketch(a), hasher.Sketch(b));
  EXPECT_NEAR(estimate, 1.0 / 3.0, 0.08);
}

TEST(MinHashTest, DisjointSetsLowEstimate) {
  MinHasher hasher(256, 13);
  std::vector<uint32_t> a = {1, 2, 3, 4, 5};
  std::vector<uint32_t> b = {100, 200, 300, 400};
  EXPECT_LT(EstimateJaccard(hasher.Sketch(a), hasher.Sketch(b)), 0.05);
}

TEST(LshIndexTest, NearDuplicatesCollide) {
  MinHasher hasher(8, 17);
  LshIndex index(4, 2);
  std::vector<uint32_t> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<uint32_t> b = a;
  b[9] = 999;  // 9/11 Jaccard
  index.Insert(0, hasher.Sketch(a));
  index.Insert(1, hasher.Sketch(b));
  auto pairs = index.CandidatePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>(0, 1)));
}

TEST(LshIndexTest, UnrelatedItemsRarelyCollide) {
  MinHasher hasher(8, 19);
  LshIndex index(4, 2);
  for (uint32_t item = 0; item < 20; ++item) {
    std::vector<uint32_t> set;
    for (uint32_t k = 0; k < 10; ++k) set.push_back(item * 1000 + k);
    index.Insert(item, hasher.Sketch(set));
  }
  // With bands of size 2 over disjoint sets, collisions are unlikely.
  EXPECT_LT(index.CandidatePairs().size(), 5u);
}

class TwoStageHasherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kb::KbBuilder builder;
    // Two entities sharing most keyphrases, one unrelated.
    a_ = builder.AddEntity("A");
    b_ = builder.AddEntity("B");
    c_ = builder.AddEntity("C");
    for (const char* phrase :
         {"hard rock", "led zeppelin", "english guitarist",
          "grammy award winner"}) {
      builder.AddKeyphrase(a_, phrase);
      builder.AddKeyphrase(b_, phrase);
    }
    builder.AddKeyphrase(a_, "session musician");
    builder.AddKeyphrase(b_, "golden god");
    for (const char* phrase :
         {"himalaya mountains", "disputed territory", "line of control",
          "mountain pass"}) {
      builder.AddKeyphrase(c_, phrase);
    }
    kb_ = std::move(builder).Build();
  }

  kb::EntityId a_, b_, c_;
  std::unique_ptr<kb::KnowledgeBase> kb_;
};

TEST_F(TwoStageHasherTest, EntityBucketsNonEmpty) {
  TwoStageHasher hasher(kb_->keyphrases(), LshGoodConfig());
  EXPECT_FALSE(hasher.EntityBuckets(a_).empty());
  EXPECT_FALSE(hasher.EntityBuckets(c_).empty());
}

TEST_F(TwoStageHasherTest, SharedPhrasesShareBuckets) {
  TwoStageHasher hasher(kb_->keyphrases(), LshGoodConfig());
  const auto& ba = hasher.EntityBuckets(a_);
  const auto& bb = hasher.EntityBuckets(b_);
  size_t shared = 0;
  for (uint32_t bucket : ba) {
    if (std::binary_search(bb.begin(), bb.end(), bucket)) ++shared;
  }
  // Identical phrases hash to identical phrase buckets.
  EXPECT_GE(shared, 4u);
}

TEST_F(TwoStageHasherTest, GroupsRelatedPair) {
  TwoStageHasher hasher(kb_->keyphrases(), LshGoodConfig());
  auto pairs = hasher.GroupEntities({a_, b_, c_});
  bool ab = false;
  bool with_c = false;
  for (const auto& [i, j] : pairs) {
    if (i == 0 && j == 1) ab = true;
    if (j == 2 || i == 2) with_c = true;
  }
  EXPECT_TRUE(ab);
  // The recall-oriented config may or may not pair the unrelated entity;
  // the fast config should prune it.
  TwoStageHasher fast(kb_->keyphrases(), LshFastConfig());
  bool fast_with_c = false;
  for (const auto& [i, j] : fast.GroupEntities({a_, b_, c_})) {
    if (j == 2 || i == 2) fast_with_c = true;
  }
  EXPECT_FALSE(fast_with_c);
  (void)with_c;
}

TEST_F(TwoStageHasherTest, FastConfigPrunesAtLeastAsMuch) {
  TwoStageHasher good(kb_->keyphrases(), LshGoodConfig());
  TwoStageHasher fast(kb_->keyphrases(), LshFastConfig());
  std::vector<kb::EntityId> all = {a_, b_, c_};
  EXPECT_GE(good.GroupEntities(all).size(),
            fast.GroupEntities(all).size());
}

}  // namespace
}  // namespace aida::hashing
