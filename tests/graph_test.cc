#include <gtest/gtest.h>

#include <cmath>

#include "graph/dense_subgraph.h"
#include "graph/shortest_paths.h"
#include "graph/weighted_graph.h"

namespace aida::graph {
namespace {

TEST(WeightedGraphTest, DegreeAndNeighbors) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(0, 2, 0.25);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 0.75);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 0.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(3), 0.0);
  EXPECT_EQ(g.Neighbors(0).size(), 2u);
  EXPECT_EQ(g.Neighbors(1).size(), 1u);
}

TEST(ShortestPathsTest, PrefersHighSimilarityEdges) {
  // 0 -(0.9)- 1 -(0.9)- 3 and 0 -(0.1)- 2 -(0.1)- 3: the high-similarity
  // two-hop path is cheaper than the low-similarity one.
  WeightedGraph g(4);
  g.AddEdge(0, 1, 0.9);
  g.AddEdge(1, 3, 0.9);
  g.AddEdge(0, 2, 0.1);
  g.AddEdge(2, 3, 0.1);
  std::vector<double> dist =
      ShortestPathDistances(g, 0, InverseSimilarityCost);
  EXPECT_LT(dist[1], dist[2]);
  EXPECT_NEAR(dist[3], dist[1] * 2.0, 1e-6);
}

TEST(ShortestPathsTest, UnreachableIsInfinite) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  std::vector<double> dist =
      ShortestPathDistances(g, 0, InverseSimilarityCost);
  EXPECT_TRUE(std::isinf(dist[2]));
  EXPECT_EQ(dist[0], 0.0);
}

// Dense subgraph on a toy disambiguation instance: two mentions
// (nodes 0, 1), four entities (nodes 2..5). Entities 2 and 4 are coherent
// (heavy edge); entities 3 and 5 are isolated junk.
TEST(DenseSubgraphTest, KeepsCoherentEntities) {
  WeightedGraph g(6);
  g.AddEdge(0, 2, 0.5);  // mention 0 - good entity
  g.AddEdge(0, 3, 0.4);  // mention 0 - junk entity
  g.AddEdge(1, 4, 0.5);  // mention 1 - good entity
  g.AddEdge(1, 5, 0.4);  // mention 1 - junk entity
  g.AddEdge(2, 4, 0.9);  // coherence between the good entities

  std::vector<bool> removable = {false, false, true, true, true, true};
  std::vector<std::vector<NodeId>> groups = {{2, 3}, {4, 5}};
  DenseSubgraphResult result = ConstrainedDenseSubgraph(g, removable, groups);

  EXPECT_TRUE(result.alive[2]);
  EXPECT_TRUE(result.alive[4]);
  EXPECT_FALSE(result.alive[3]);
  EXPECT_FALSE(result.alive[5]);
  EXPECT_GT(result.objective, 0.0);
  EXPECT_EQ(result.iterations, 2u);
}

TEST(DenseSubgraphTest, GroupConstraintKeepsLastCandidate) {
  // A mention whose only candidate has tiny weight must keep it.
  WeightedGraph g(3);
  g.AddEdge(0, 1, 0.01);  // mention 0 -> entity 1 (only candidate)
  g.AddEdge(0, 2, 0.9);   // a much heavier unrelated removable node

  std::vector<bool> removable = {false, true, true};
  std::vector<std::vector<NodeId>> groups = {{1}};
  DenseSubgraphResult result = ConstrainedDenseSubgraph(g, removable, groups);
  EXPECT_TRUE(result.alive[1]);
}

TEST(DenseSubgraphTest, SharedCandidateAcrossGroups) {
  // Entity node 2 is the last candidate of group 0 AND group 1; it is
  // taboo even though group 1 has another member.
  WeightedGraph g(5);
  g.AddEdge(0, 2, 0.5);
  g.AddEdge(1, 2, 0.5);
  g.AddEdge(1, 3, 0.4);
  std::vector<bool> removable = {false, false, true, true, true};
  std::vector<std::vector<NodeId>> groups = {{2}, {2, 3}};
  DenseSubgraphResult result = ConstrainedDenseSubgraph(g, removable, groups);
  EXPECT_TRUE(result.alive[2]);
}

TEST(DenseSubgraphTest, EmptyGroupsRemoveEverything) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(1, 2, 0.5);
  std::vector<bool> removable = {true, true, true};
  DenseSubgraphResult result = ConstrainedDenseSubgraph(g, removable, {});
  // With no group constraints the greedy loop can peel everything; the
  // best intermediate subgraph is still recorded.
  EXPECT_EQ(result.iterations, 3u);
}

}  // namespace
}  // namespace aida::graph
