// Worker-scaling regression guard for the serving layer. The PR this
// test rides with fixed a negative-scaling bug: shared-state contention
// (per-dequeue snapshot pins, global metrics atomics, hot cache shards,
// allocation churn) made a multi-worker NedService SLOWER than a single
// worker. This test pins the sign of the curve — more workers must never
// again mean less throughput — without asserting linearity, which no
// ctest-tier machine can promise.
//
// The served system burns a fixed arithmetic quantum per request, so
// throughput depends only on how well workers overlap; real-machine
// noise is absorbed by the generous 0.8x floor. On machines with fewer
// than four hardware threads there is nothing to overlap and the test
// skips itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/ned_system.h"
#include "kb/snapshot_registry.h"
#include "serve/ned_service.h"
#include "util/stopwatch.h"

namespace aida::serve {
namespace {

/// Burns a deterministic ~quantum of CPU per call with an LCG spin — no
/// locks, no allocation, no shared state — so service throughput is a
/// pure function of worker overlap and serving-layer overhead.
class FixedCostSystem : public core::NedSystem {
 public:
  explicit FixedCostSystem(uint64_t spin_iterations)
      : spin_iterations_(spin_iterations) {}

  core::DisambiguationResult Disambiguate(
      const core::DisambiguationProblem& problem,
      const core::DisambiguateOptions& /*options*/) const override {
    uint64_t x = 0x243f6a8885a308d3ull;  // per-call; nothing shared
    for (uint64_t i = 0; i < spin_iterations_; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
    core::DisambiguationResult result;
    result.mentions.resize(problem.mentions.size());
    // Data-dependent, always-zero score: keeps the spin from being
    // optimized away without adding nondeterminism.
    if (!result.mentions.empty()) {
      result.mentions[0].score = static_cast<double>(x & 1u) * 0.0;
    }
    return result;
  }
  std::string name() const override { return "fixed-cost"; }

 private:
  const uint64_t spin_iterations_;
};

/// Closed-loop QPS of `system` behind a NedService with `workers` worker
/// threads and 4x that many single-outstanding-request clients.
double MeasureQps(const core::NedSystem& system, size_t workers,
                  double duration_seconds) {
  NedServiceOptions options;
  options.num_threads = workers;
  options.queue_capacity = 64;
  NedService service(kb::KbSnapshot::WrapUnowned(system, "scaling-test"),
                     options);

  static const std::vector<std::string> kTokens = {"scaling"};
  core::DisambiguationProblem problem;
  problem.tokens = &kTokens;
  core::ProblemMention mention;
  mention.surface = "scaling";
  mention.begin_token = 0;
  mention.end_token = 1;
  problem.mentions.push_back(mention);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  const size_t num_clients = 4 * workers;
  clients.reserve(num_clients);
  util::Stopwatch watch;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ServeResult response = service.Submit(problem).get();
        if (response.status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_seconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();
  const double elapsed = watch.ElapsedSeconds();
  service.Drain();
  return elapsed > 0.0 ? static_cast<double>(completed.load()) / elapsed : 0.0;
}

TEST(ServeScalingTest, MultiWorkerThroughputNotBelowSingleWorker) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to measure scaling, have "
                 << hw;
  }

  // ~200us per request: long enough that serving-layer overhead is a
  // small fraction, short enough for thousands of requests per second.
  FixedCostSystem system(/*spin_iterations=*/200'000);

  const size_t multi = std::min<size_t>(4, hw);
  // Warm-up run absorbs thread-pool and allocator cold starts.
  (void)MeasureQps(system, 1, /*duration_seconds=*/0.2);
  const double single_qps = MeasureQps(system, 1, /*duration_seconds=*/1.0);
  const double multi_qps = MeasureQps(system, multi, /*duration_seconds=*/1.0);

  ASSERT_GT(single_qps, 0.0);
  // The regression this guards: ADDING workers LOSING throughput. 0.8x
  // tolerates scheduler noise on busy CI machines; the pre-fix service
  // sat far below this line (multi-worker QPS under half of one worker).
  EXPECT_GE(multi_qps, 0.8 * single_qps)
      << multi << " workers served " << multi_qps << " QPS vs " << single_qps
      << " QPS single-worker: negative scaling regression";
}

}  // namespace
}  // namespace aida::serve
