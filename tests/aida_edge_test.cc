#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/baselines.h"
#include "ee/ee_discovery.h"
#include "kore/kore_relatedness.h"
#include "test_world.h"

namespace aida::core {
namespace {

using ::aida::testing::TestWorld;

class AidaEdgeTest : public ::testing::Test {
 protected:
  AidaEdgeTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        mw_(world_.knowledge_base.get()) {}

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  CandidateModelStore models_;
  MilneWittenRelatedness mw_;
};

TEST_F(AidaEdgeTest, EmptyProblem) {
  Aida aida(&models_, &mw_, AidaOptions());
  std::vector<std::string> tokens = {"nothing", "here"};
  DisambiguationProblem problem;
  problem.tokens = &tokens;
  DisambiguationResult result = aida.Disambiguate(problem, {});
  EXPECT_TRUE(result.mentions.empty());
}

TEST_F(AidaEdgeTest, MentionWithoutCandidates) {
  Aida aida(&models_, &mw_, AidaOptions());
  std::vector<std::string> tokens = {"Zzzunknownzzz", "said", "things"};
  DisambiguationProblem problem;
  problem.tokens = &tokens;
  ProblemMention pm;
  pm.surface = "Zzzunknownzzz";
  pm.begin_token = 0;
  pm.end_token = 1;
  problem.mentions.push_back(pm);
  DisambiguationResult result = aida.Disambiguate(problem, {});
  ASSERT_EQ(result.mentions.size(), 1u);
  EXPECT_EQ(result.mentions[0].entity, kb::kNoEntity);
  EXPECT_FALSE(result.mentions[0].chose_placeholder);
  EXPECT_TRUE(result.mentions[0].candidate_entities.empty());
}

TEST_F(AidaEdgeTest, ResolvedCandidatesAreRespected) {
  // Force a single (wrong-looking) candidate; the system must choose it.
  Aida aida(&models_, &mw_, AidaOptions());
  const corpus::Document& doc = corpus_.front();
  DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  ProblemMention pm;
  const corpus::GoldMention& gm = doc.mentions.front();
  pm.surface = gm.surface;
  pm.begin_token = gm.begin_token;
  pm.end_token = gm.end_token;
  Candidate forced;
  forced.entity = 3;  // arbitrary entity, probably not a dictionary match
  forced.prior = 1.0;
  forced.model = models_.ModelFor(3);
  pm.candidates.push_back(forced);
  pm.candidates_resolved = true;
  problem.mentions.push_back(std::move(pm));

  DisambiguationResult result = aida.Disambiguate(problem, {});
  EXPECT_EQ(result.mentions[0].entity, 3u);
}

TEST_F(AidaEdgeTest, EmptyResolvedCandidatesMeanNoEntity) {
  Aida aida(&models_, &mw_, AidaOptions());
  const corpus::Document& doc = corpus_.front();
  DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  ProblemMention pm;
  pm.surface = doc.mentions.front().surface;
  pm.begin_token = doc.mentions.front().begin_token;
  pm.end_token = doc.mentions.front().end_token;
  pm.candidates_resolved = true;  // and empty: trivially out-of-KB
  problem.mentions.push_back(std::move(pm));
  DisambiguationResult result = aida.Disambiguate(problem, {});
  EXPECT_EQ(result.mentions[0].entity, kb::kNoEntity);
}

TEST_F(AidaEdgeTest, WeightScaleSuppressesCandidate) {
  // Two identical candidates, one with a tiny weight scale: the scaled
  // one must not win under similarity-driven scoring.
  AidaOptions options;
  options.use_prior = false;
  options.use_coherence = false;
  Aida aida(&models_, &mw_, options);
  const corpus::Document& doc = corpus_.front();
  const corpus::GoldMention* gold = nullptr;
  for (const corpus::GoldMention& gm : doc.mentions) {
    if (!gm.out_of_kb()) {
      gold = &gm;
      break;
    }
  }
  ASSERT_NE(gold, nullptr);

  DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  ProblemMention pm;
  pm.surface = gold->surface;
  pm.begin_token = gold->begin_token;
  pm.end_token = gold->end_token;
  Candidate normal;
  normal.entity = gold->gold_entity;
  normal.model = models_.ModelFor(gold->gold_entity);
  Candidate scaled = normal;
  scaled.entity = gold->gold_entity;  // same entity id is fine for scoring
  scaled.weight_scale = 1e-6;
  pm.candidates.push_back(scaled);
  pm.candidates.push_back(normal);
  pm.candidates_resolved = true;
  problem.mentions.push_back(std::move(pm));

  DisambiguationResult result = aida.Disambiguate(problem, {});
  ASSERT_EQ(result.mentions[0].candidate_scores.size(), 2u);
  if (result.mentions[0].candidate_scores[1] > 0) {
    EXPECT_LT(result.mentions[0].candidate_scores[0],
              result.mentions[0].candidate_scores[1]);
  }
}

TEST_F(AidaEdgeTest, SystemNamesAreDescriptive) {
  PriorBaseline prior(&models_);
  CucerzanBaseline cuc(&models_);
  KulkarniBaseline kul(&models_, &mw_, KulkarniBaseline::Mode::kCollective);
  kore::KoreRelatedness kore;
  TagMeBaseline tagme(&models_, &kore);
  EXPECT_EQ(prior.name(), "prior");
  EXPECT_EQ(cuc.name(), "cucerzan");
  EXPECT_EQ(kul.name(), "kul-ci");
  EXPECT_EQ(tagme.name(), "tagme");
}

TEST_F(AidaEdgeTest, DiscovererFirstStageThresholds) {
  // With t_u = 0 every mention is pinned to its initial entity: no
  // placeholder may win. With t_l = 1 every mention with candidates is
  // forced to EE.
  kore::KoreRelatedness kore;
  AidaOptions options;
  Aida aida(&models_, &kore, options);

  const corpus::Document& doc = corpus_.front();

  {
    ee::EeDiscoveryOptions ee_options;
    ee_options.harvest_days = 8;
    ee_options.harvest_existing = false;
    ee_options.lower_threshold = 0.0;
    ee_options.upper_threshold = 0.0;  // pin everything
    ee_options.confidence.rounds = 4;
    ee::EmergingEntityDiscoverer discoverer(&models_, &aida,
                                            &corpus_, ee_options);
    core::DisambiguationResult result = discoverer.Discover(doc);
    for (const core::MentionResult& m : result.mentions) {
      EXPECT_FALSE(m.chose_placeholder);
    }
  }
  {
    ee::EeDiscoveryOptions ee_options;
    ee_options.harvest_days = 8;
    ee_options.harvest_existing = false;
    ee_options.lower_threshold = 1.0;  // everything low-confidence
    ee_options.upper_threshold = 2.0;
    ee_options.confidence.rounds = 4;
    ee::EmergingEntityDiscoverer discoverer(&models_, &aida,
                                            &corpus_, ee_options);
    core::DisambiguationResult result = discoverer.Discover(doc);
    for (size_t m = 0; m < result.mentions.size(); ++m) {
      if (result.mentions[m].candidate_entities.empty()) continue;
      EXPECT_TRUE(result.mentions[m].chose_placeholder) << m;
    }
  }
}

}  // namespace
}  // namespace aida::core
