#include <gtest/gtest.h>

#include <set>

#include "synth/corpus_generator.h"
#include "synth/presets.h"
#include "synth/relatedness_gold.h"
#include "synth/world_generator.h"

namespace aida::synth {
namespace {

WorldConfig SmallWorldConfig() {
  WorldConfig config;
  config.seed = 99;
  config.num_topics = 5;
  config.num_entities = 200;
  config.num_emerging = 10;
  config.num_shared_names = 60;
  config.topic_vocab_size = 60;
  config.generic_vocab_size = 120;
  return config;
}

class WorldGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = WorldGenerator(SmallWorldConfig()).Generate();
  }
  World world_;
};

TEST_F(WorldGeneratorTest, BasicShape) {
  EXPECT_EQ(world_.knowledge_base->entity_count(), 200u);
  EXPECT_EQ(world_.entity_topic.size(), 200u);
  EXPECT_EQ(world_.emerging.size(), 10u);
  EXPECT_EQ(world_.num_topics(), 5u);
  size_t members = 0;
  for (const auto& topic : world_.topic_entities) members += topic.size();
  EXPECT_EQ(members, 200u);
}

TEST_F(WorldGeneratorTest, PopularityIsZipfian) {
  const auto& entities = world_.knowledge_base->entities();
  // Entity 0 is the head; the tail is much less popular.
  EXPECT_GT(entities.Get(0).anchor_count, entities.Get(199).anchor_count * 10);
}

TEST_F(WorldGeneratorTest, NamesAreAmbiguous) {
  const auto& dict = world_.knowledge_base->dictionary();
  // With 200 entities over 60 shared family names, some name must be
  // ambiguous.
  double ambiguity = dict.MeanAmbiguity();
  EXPECT_GT(ambiguity, 1.0);
}

TEST_F(WorldGeneratorTest, EveryEntityHasNamesAndPhrases) {
  const auto& kb = *world_.knowledge_base;
  for (size_t e = 0; e < kb.entity_count(); ++e) {
    EXPECT_FALSE(world_.entity_names[e].empty());
    EXPECT_FALSE(world_.entity_phrases[e].empty());
    EXPECT_FALSE(kb.keyphrases().EntityPhrases(e).empty());
    EXPECT_GE(kb.entities().Get(e).types.size(), 2u);
  }
}

TEST_F(WorldGeneratorTest, PopularEntitiesHaveMoreInlinks) {
  const auto& links = world_.knowledge_base->links();
  size_t head = 0;
  size_t tail = 0;
  for (size_t e = 0; e < 20; ++e) head += links.InLinkCount(e);
  for (size_t e = 180; e < 200; ++e) tail += links.InLinkCount(e);
  EXPECT_GT(head, tail);
}

TEST_F(WorldGeneratorTest, DictionaryPriorsFavorPopularEntities) {
  const auto& kb = *world_.knowledge_base;
  // Find an ambiguous name and check the top candidate is the most
  // popular.
  for (const std::string& name : kb.dictionary().AllNames()) {
    auto candidates = kb.dictionary().Lookup(name);
    if (candidates.size() < 2) continue;
    EXPECT_GE(candidates[0].prior, candidates[1].prior);
    return;
  }
  FAIL() << "no ambiguous name found";
}

TEST_F(WorldGeneratorTest, EmergingEntitiesOftenCollide) {
  const auto& dict = world_.knowledge_base->dictionary();
  size_t colliding = 0;
  for (const EmergingEntity& ee : world_.emerging) {
    EXPECT_FALSE(ee.keyphrases.empty());
    if (dict.Contains(ee.name)) ++colliding;
  }
  // Most emerging entities share a name with in-KB entities by design.
  EXPECT_GT(colliding, world_.emerging.size() / 2);
}

TEST_F(WorldGeneratorTest, DeterministicPerSeed) {
  World again = WorldGenerator(SmallWorldConfig()).Generate();
  ASSERT_EQ(again.entity_names.size(), world_.entity_names.size());
  for (size_t e = 0; e < again.entity_names.size(); ++e) {
    EXPECT_EQ(again.entity_names[e], world_.entity_names[e]);
  }
  EXPECT_EQ(again.emerging.size(), world_.emerging.size());
}

class CorpusGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = WorldGenerator(SmallWorldConfig()).Generate();
    config_.seed = 5;
    config_.num_documents = 40;
    config_.doc_tokens = 120;
    config_.entities_per_doc = 6;
    config_.emerging_mention_prob = 0.15;
    config_.first_day = 0;
    config_.last_day = 10;
  }
  World world_;
  CorpusConfig config_;
};

TEST_F(CorpusGeneratorTest, GeneratesAnnotatedDocuments) {
  corpus::Corpus docs = CorpusGenerator(&world_, config_).Generate();
  ASSERT_EQ(docs.size(), 40u);
  size_t total_mentions = 0;
  for (const corpus::Document& doc : docs) {
    EXPECT_GE(doc.tokens.size(), 120u);
    EXPECT_FALSE(doc.mentions.empty());
    EXPECT_GE(doc.day, 0);
    EXPECT_LE(doc.day, 10);
    total_mentions += doc.mentions.size();
    for (const corpus::GoldMention& m : doc.mentions) {
      // Mention span matches the surface text.
      EXPECT_LT(m.begin_token, m.end_token);
      EXPECT_LE(m.end_token, doc.tokens.size());
      std::string joined;
      for (size_t i = m.begin_token; i < m.end_token; ++i) {
        if (!joined.empty()) joined += ' ';
        joined += doc.tokens[i];
      }
      EXPECT_EQ(joined, m.surface);
      if (m.out_of_kb()) {
        EXPECT_NE(m.gold_emerging, corpus::kNoEmerging);
      } else {
        EXPECT_LT(m.gold_entity, world_.knowledge_base->entity_count());
      }
    }
  }
  EXPECT_GT(total_mentions, 40u * 3);
}

TEST_F(CorpusGeneratorTest, EmergingMentionsPresent) {
  corpus::Corpus docs = CorpusGenerator(&world_, config_).Generate();
  size_t ee_mentions = 0;
  for (const corpus::Document& doc : docs) {
    for (const corpus::GoldMention& m : doc.mentions) {
      if (m.out_of_kb()) ++ee_mentions;
    }
  }
  EXPECT_GT(ee_mentions, 0u);
}

TEST_F(CorpusGeneratorTest, Deterministic) {
  corpus::Corpus a = CorpusGenerator(&world_, config_).Generate();
  corpus::Corpus b = CorpusGenerator(&world_, config_).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a[d].tokens, b[d].tokens);
    ASSERT_EQ(a[d].mentions.size(), b[d].mentions.size());
  }
}

TEST(PresetTest, AllPresetsHaveDistinctCharacter) {
  CorpusPreset conll = ConllPreset();
  CorpusPreset kore50 = Kore50Preset();
  CorpusPreset wp = WpPreset();
  CorpusPreset ee = GigawordEePreset();
  EXPECT_EQ(conll.corpus.num_documents, 1393u);
  EXPECT_EQ(kore50.corpus.num_documents, 50u);
  EXPECT_LT(kore50.corpus.doc_tokens, wp.corpus.doc_tokens);
  EXPECT_GT(ee.world.num_emerging, 0u);
  EXPECT_GT(ee.corpus.last_day, ee.corpus.first_day);
  EXPECT_EQ(kore50.corpus.ambiguous_name_prob, 1.0);
}

TEST(RelatednessGoldTest, StructureMatchesPaper) {
  RelatednessGoldConfig config;
  config.background_entities = 200;
  RelatednessGold gold = GenerateRelatednessGold(config);
  EXPECT_EQ(gold.seeds.size(), 21u);  // 5+5+5+5+1
  std::set<std::string> domains;
  for (const RelatednessSeed& seed : gold.seeds) {
    domains.insert(seed.domain);
    EXPECT_EQ(seed.ranked_candidates.size(), 20u);
  }
  EXPECT_EQ(domains.size(), 5u);
  ASSERT_EQ(gold.seed_inlinks.size(), 21u);
}

TEST(RelatednessGoldTest, LinkRichnessVariesByDomain) {
  RelatednessGoldConfig config;
  config.background_entities = 200;
  RelatednessGold gold = GenerateRelatednessGold(config);
  const auto& links = gold.knowledge_base->links();
  size_t rich = 0;
  size_t poor = 0;
  for (const RelatednessSeed& seed : gold.seeds) {
    size_t inlinks = links.InLinkCount(seed.seed);
    if (seed.domain == "it_companies") rich = std::max(rich, inlinks);
    if (seed.domain == "video_games") poor = std::max(poor, inlinks);
  }
  EXPECT_GT(rich, poor * 3);
}

TEST(RelatednessGoldTest, TopCandidateSharesMorePhrases) {
  RelatednessGoldConfig config;
  config.background_entities = 200;
  RelatednessGold gold = GenerateRelatednessGold(config);
  const auto& store = gold.knowledge_base->keyphrases();
  // Averaged over seeds, rank-1 candidates share more phrases with the
  // seed than rank-20 candidates.
  double top_shared = 0;
  double bottom_shared = 0;
  for (const RelatednessSeed& seed : gold.seeds) {
    auto count_shared = [&](kb::EntityId cand) {
      size_t shared = 0;
      const auto& sp = store.EntityPhrases(seed.seed);
      for (kb::PhraseId p : store.EntityPhrases(cand)) {
        if (std::find(sp.begin(), sp.end(), p) != sp.end()) ++shared;
      }
      return static_cast<double>(shared);
    };
    top_shared += count_shared(seed.ranked_candidates.front());
    bottom_shared += count_shared(seed.ranked_candidates.back());
  }
  EXPECT_GT(top_shared, bottom_shared * 2);
}

}  // namespace
}  // namespace aida::synth
