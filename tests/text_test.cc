#include <gtest/gtest.h>

#include "text/sentence_splitter.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace aida::text {
namespace {

std::vector<std::string> TokenTexts(const TokenSequence& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, SplitsOnWhitespace) {
  Tokenizer tokenizer;
  EXPECT_EQ(TokenTexts(tokenizer.Tokenize("one two three")),
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(TokenizerTest, SeparatesPunctuation) {
  Tokenizer tokenizer;
  EXPECT_EQ(TokenTexts(tokenizer.Tokenize("Hello, world.")),
            (std::vector<std::string>{"Hello", ",", "world", "."}));
}

TEST(TokenizerTest, KeepsInternalHyphens) {
  Tokenizer tokenizer;
  EXPECT_EQ(TokenTexts(tokenizer.Tokenize("long-tail entities")),
            (std::vector<std::string>{"long-tail", "entities"}));
}

TEST(TokenizerTest, SplitsPossessive) {
  Tokenizer tokenizer;
  EXPECT_EQ(TokenTexts(tokenizer.Tokenize("Dylan's record")),
            (std::vector<std::string>{"Dylan", "'s", "record"}));
}

TEST(TokenizerTest, RecordsOffsets) {
  Tokenizer tokenizer;
  TokenSequence tokens = tokenizer.Tokenize("ab cd");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 2u);
  EXPECT_EQ(tokens[1].begin, 3u);
  EXPECT_EQ(tokens[1].end, 5u);
}

TEST(TokenizerTest, MarksCapitalization) {
  Tokenizer tokenizer;
  TokenSequence tokens = tokenizer.Tokenize("Paris in spring");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].capitalized);
  EXPECT_FALSE(tokens[1].capitalized);
}

TEST(TokenizerTest, MarksSentenceFinalPunct) {
  Tokenizer tokenizer;
  TokenSequence tokens = tokenizer.Tokenize("End. Next");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[1].sentence_final_punct);
  EXPECT_FALSE(tokens[0].sentence_final_punct);
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("   ").empty());
}

TEST(StopwordsTest, ContainsCommonWords) {
  const StopwordList& list = DefaultStopwords();
  EXPECT_TRUE(list.Contains("the"));
  EXPECT_TRUE(list.Contains("The"));  // case-insensitive
  EXPECT_TRUE(list.Contains("of"));
  EXPECT_FALSE(list.Contains("guitar"));
  EXPECT_FALSE(list.Contains("Dylan"));
}

TEST(SentenceSplitterTest, SplitsAtFinalPunct) {
  Tokenizer tokenizer;
  SentenceSplitter splitter;
  TokenSequence tokens = tokenizer.Tokenize("One two. Three four! Five");
  std::vector<SentenceSpan> sentences = splitter.Split(tokens);
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(sentences[0].begin, 0u);
  EXPECT_EQ(sentences[0].end, 3u);  // "One two ."
  EXPECT_EQ(sentences[2].end, tokens.size());
}

TEST(SentenceSplitterTest, SentenceOfLocatesToken) {
  Tokenizer tokenizer;
  SentenceSplitter splitter;
  TokenSequence tokens = tokenizer.Tokenize("A b. C d. E");
  std::vector<SentenceSpan> sentences = splitter.Split(tokens);
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(SentenceSplitter::SentenceOf(sentences, 0), 0u);
  EXPECT_EQ(SentenceSplitter::SentenceOf(sentences, 4), 1u);
  EXPECT_EQ(SentenceSplitter::SentenceOf(sentences, tokens.size() - 1), 2u);
}

TEST(SentenceSplitterTest, NoPunctuationYieldsOneSentence) {
  Tokenizer tokenizer;
  SentenceSplitter splitter;
  TokenSequence tokens = tokenizer.Tokenize("no punctuation here");
  std::vector<SentenceSpan> sentences = splitter.Split(tokens);
  ASSERT_EQ(sentences.size(), 1u);
  EXPECT_EQ(sentences[0].begin, 0u);
  EXPECT_EQ(sentences[0].end, tokens.size());
}

}  // namespace
}  // namespace aida::text
