#include <gtest/gtest.h>

#include <span>

#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"

namespace aida::kb {
namespace {

TEST(EntityRepositoryTest, AddAndLookup) {
  EntityRepository repo;
  EntityId a = repo.Add("Jimmy_Page");
  EntityId b = repo.Add("Larry_Page");
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.FindByName("Jimmy_Page"), a);
  EXPECT_EQ(repo.FindByName("Larry_Page"), b);
  EXPECT_EQ(repo.FindByName("Nobody"), kNoEntity);
  EXPECT_EQ(repo.Get(a).canonical_name, "Jimmy_Page");
}

TEST(DictionaryTest, PriorsNormalize) {
  Dictionary dict;
  dict.AddAnchor("Page", 0, 90);
  dict.AddAnchor("Page", 1, 10);
  dict.Finalize();
  std::span<const NameCandidate> candidates = dict.Lookup("Page");
  ASSERT_EQ(candidates.size(), 2u);
  // Sorted by descending anchor count.
  EXPECT_EQ(candidates[0].entity, 0u);
  EXPECT_DOUBLE_EQ(candidates[0].prior, 0.9);
  EXPECT_DOUBLE_EQ(candidates[1].prior, 0.1);
}

TEST(DictionaryTest, ShortNamesAreCaseSensitive) {
  Dictionary dict;
  dict.AddAnchor("US", 0, 5);
  dict.Finalize();
  EXPECT_TRUE(dict.Contains("US"));
  EXPECT_FALSE(dict.Contains("us"));
}

TEST(DictionaryTest, LongNamesFoldCase) {
  Dictionary dict;
  dict.AddAnchor("Apple", 0, 5);
  dict.Finalize();
  // The all-upper-case acronym-style mention still retrieves the entity
  // (Section 3.3.2).
  EXPECT_TRUE(dict.Contains("APPLE"));
  EXPECT_TRUE(dict.Contains("apple"));
  std::span<const NameCandidate> candidates = dict.Lookup("APPLE");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].entity, 0u);
}

TEST(DictionaryTest, UnknownNameEmpty) {
  Dictionary dict;
  dict.Finalize();
  EXPECT_TRUE(dict.Lookup("Ghost").empty());
  EXPECT_FALSE(dict.Contains("Ghost"));
}

TEST(LinkGraphTest, InOutLinks) {
  LinkGraph graph(4);
  graph.AddLink(0, 1);
  graph.AddLink(0, 2);
  graph.AddLink(3, 1);
  graph.AddLink(3, 1);  // duplicate collapses
  graph.Finalize();
  EXPECT_EQ(graph.InLinkCount(1), 2u);
  EXPECT_EQ(graph.InLinkCount(0), 0u);
  EXPECT_EQ(graph.OutLinks(0).size(), 2u);
  EXPECT_EQ(graph.link_count(), 3u);
}

TEST(LinkGraphTest, SharedInLinks) {
  LinkGraph graph(5);
  graph.AddLink(0, 3);
  graph.AddLink(1, 3);
  graph.AddLink(0, 4);
  graph.AddLink(2, 4);
  graph.Finalize();
  EXPECT_EQ(graph.SharedInLinkCount(3, 4), 1u);  // entity 0 links to both
  EXPECT_EQ(graph.SharedInLinkCount(3, 3), 2u);
}

TEST(LinkGraphTest, SelfLinksIgnored) {
  LinkGraph graph(2);
  graph.AddLink(0, 0);
  graph.Finalize();
  EXPECT_EQ(graph.link_count(), 0u);
}

TEST(TypeTaxonomyTest, HierarchyQueries) {
  TypeTaxonomy taxonomy;
  TypeId root = taxonomy.AddType("entity");
  TypeId person = taxonomy.AddType("person", root);
  TypeId musician = taxonomy.AddType("musician", person);
  TypeId place = taxonomy.AddType("place", root);

  EXPECT_TRUE(taxonomy.IsSubtypeOf(musician, person));
  EXPECT_TRUE(taxonomy.IsSubtypeOf(musician, root));
  EXPECT_FALSE(taxonomy.IsSubtypeOf(person, musician));
  EXPECT_FALSE(taxonomy.IsSubtypeOf(musician, place));
  EXPECT_EQ(taxonomy.FindType("musician"), musician);
  EXPECT_EQ(taxonomy.FindType("unknown"), kNoType);
  EXPECT_EQ(taxonomy.AncestorsInclusive(musician).size(), 3u);
}

class KeyphraseStoreTest : public ::testing::Test {
 protected:
  // A small KB: two related musicians plus an unrelated place.
  void SetUp() override {
    KbBuilder builder;
    page_ = builder.AddEntity("Jimmy_Page");
    plant_ = builder.AddEntity("Robert_Plant");
    region_ = builder.AddEntity("Kashmir_Region");
    builder.AddName("Page", page_, 10);
    builder.AddName("Plant", plant_, 10);
    builder.AddName("Kashmir", region_, 10);
    builder.AddKeyphrase(page_, "hard rock");
    builder.AddKeyphrase(page_, "led zeppelin");
    builder.AddKeyphrase(page_, "gibson guitar");
    builder.AddKeyphrase(plant_, "hard rock");
    builder.AddKeyphrase(plant_, "led zeppelin");
    builder.AddKeyphrase(plant_, "golden god");
    builder.AddKeyphrase(region_, "himalaya mountains");
    builder.AddKeyphrase(region_, "disputed territory");
    builder.AddLink(page_, plant_);
    builder.AddLink(plant_, page_);
    kb_ = std::move(builder).Build();
  }

  EntityId page_, plant_, region_;
  std::unique_ptr<KnowledgeBase> kb_;
};

TEST_F(KeyphraseStoreTest, PhrasesAreInterned) {
  const KeyphraseStore& store = kb_->keyphrases();
  // "hard rock" is shared between the two musicians: one phrase id.
  ASSERT_EQ(store.EntityPhrases(page_).size(), 3u);
  ASSERT_EQ(store.EntityPhrases(plant_).size(), 3u);
  PhraseId shared = store.EntityPhrases(page_)[0];
  EXPECT_EQ(store.PhraseText(shared), "hard rock");
  EXPECT_EQ(store.EntityPhrases(plant_)[0], shared);
  EXPECT_EQ(store.PhraseDf(shared), 2u);
}

TEST_F(KeyphraseStoreTest, IdfOrdersByRarity) {
  const KeyphraseStore& store = kb_->keyphrases();
  WordId rock = store.FindWord("rock");
  WordId gibson = store.FindWord("gibson");
  ASSERT_NE(rock, kNoWord);
  ASSERT_NE(gibson, kNoWord);
  // "rock" occurs in two entities' phrase sets, "gibson" in one.
  EXPECT_LT(store.WordIdf(rock), store.WordIdf(gibson));
}

TEST_F(KeyphraseStoreTest, NpmiFavorsSpecificWords) {
  const KeyphraseStore& store = kb_->keyphrases();
  WordId gibson = store.FindWord("gibson");
  double w = store.KeywordNpmi(page_, gibson);
  EXPECT_GT(w, 0.0);
  // A word absent from the entity's superdocument scores zero.
  WordId himalaya = store.FindWord("himalaya");
  EXPECT_EQ(store.KeywordNpmi(page_, himalaya), 0.0);
}

TEST_F(KeyphraseStoreTest, PhraseMiPositiveForOwnPhrases) {
  const KeyphraseStore& store = kb_->keyphrases();
  for (PhraseId p : store.EntityPhrases(region_)) {
    EXPECT_GT(store.PhraseMi(region_, p), 0.0);
  }
  // Phrase not associated with the entity scores zero.
  PhraseId page_phrase = store.EntityPhrases(page_)[2];  // gibson guitar
  EXPECT_EQ(store.PhraseMi(region_, page_phrase), 0.0);
}

TEST_F(KeyphraseStoreTest, EntityWordsAreDistinctSorted) {
  const KeyphraseStore& store = kb_->keyphrases();
  const std::span<const WordId> words = store.EntityWords(page_);
  EXPECT_EQ(words.size(), 6u);  // hard rock led zeppelin gibson guitar
  for (size_t i = 1; i < words.size(); ++i) {
    EXPECT_LT(words[i - 1], words[i]);
  }
}

TEST_F(KeyphraseStoreTest, EntityPhraseCount) {
  const KeyphraseStore& store = kb_->keyphrases();
  PhraseId shared = store.EntityPhrases(page_)[0];
  EXPECT_EQ(store.EntityPhraseCount(page_, shared), 1u);
  EXPECT_EQ(store.EntityPhraseCount(region_, shared), 0u);
}

TEST(KbBuilderTest, AnchorCountsAccumulate) {
  KbBuilder builder;
  EntityId e = builder.AddEntity("Thing");
  builder.AddName("Thing", e, 5);
  builder.AddName("The Thing", e, 7);
  builder.AddKeyphrase(e, "some phrase");
  std::unique_ptr<KnowledgeBase> kb = std::move(builder).Build();
  EXPECT_EQ(kb->entities().Get(e).anchor_count, 12u);
  EXPECT_EQ(kb->entity_count(), 1u);
}

}  // namespace
}  // namespace aida::kb
