// The online serving layer: bounded-queue admission control and load
// shedding, per-request deadlines (in queue and cooperatively mid-flight),
// drain/shutdown semantics, the metrics registry, and byte-identical
// equivalence of served results with serial disambiguation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/serving.h"
#include "core/aida.h"
#include "core/batch.h"
#include "core/relatedness_cache.h"
#include "kb/snapshot_registry.h"
#include "serve/bounded_queue.h"
#include "serve/metrics.h"
#include "serve/ned_service.h"
#include "test_world.h"

namespace aida::serve {
namespace {

using ::aida::testing::TestWorld;

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

void ExpectSameResults(const core::DisambiguationResult& x,
                       const core::DisambiguationResult& y) {
  ASSERT_EQ(x.mentions.size(), y.mentions.size());
  for (size_t m = 0; m < x.mentions.size(); ++m) {
    const core::MentionResult& a = x.mentions[m];
    const core::MentionResult& b = y.mentions[m];
    EXPECT_EQ(a.entity, b.entity) << "mention " << m;
    EXPECT_EQ(a.chose_placeholder, b.chose_placeholder);
    // Byte-identical scoring: the service adds no nondeterminism.
    EXPECT_EQ(a.score, b.score) << "mention " << m;
    EXPECT_EQ(a.candidate_entities, b.candidate_entities);
    EXPECT_EQ(a.candidate_scores, b.candidate_scores);
    EXPECT_EQ(a.candidate_is_placeholder, b.candidate_is_placeholder);
  }
}

/// A NedSystem whose calls block on a gate until released — the tool for
/// filling the queue deterministically and for holding work in flight
/// across a drain or shutdown.
class GatedSystem : public core::NedSystem {
 public:
  core::DisambiguationResult Disambiguate(
      const core::DisambiguationProblem& problem,
      const core::DisambiguateOptions& /*options*/) const override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++started_;
    changed_.notify_all();
    changed_.wait(lock, [this] { return released_; });
    core::DisambiguationResult result;
    result.mentions.resize(problem.mentions.size());
    return result;
  }

  std::string name() const override { return "gated"; }

  /// Blocks until `n` calls entered Disambiguate.
  void WaitForStarts(int n) const {
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] { return started_ >= n; });
  }

  void Release() const {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    changed_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable changed_;
  mutable int started_ = 0;
  mutable bool released_ = false;
};

/// A NedSystem that honors the cooperative-cancellation contract: it spins
/// until its token trips, then returns a partial result flagged cancelled.
/// Only submit with a deadline, or it never returns.
class CooperativeSystem : public core::NedSystem {
 public:
  core::DisambiguationResult Disambiguate(
      const core::DisambiguationProblem& problem,
      const core::DisambiguateOptions& options) const override {
    core::DisambiguationResult result;
    result.mentions.resize(problem.mentions.size());
    if (options.cancel != nullptr) {
      while (!options.cancel->cancelled()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      result.cancelled = true;
    }
    return result;
  }
  std::string name() const override { return "cooperative"; }
};

core::DisambiguationProblem EmptyProblem() {
  static const std::vector<std::string> kNoTokens;
  core::DisambiguationProblem problem;
  problem.tokens = &kNoTokens;
  return problem;
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, AdmitsUntilCapacityThenShedsWithoutBlocking) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_FALSE(queue.TryPush(a).has_value());
  EXPECT_FALSE(queue.TryPush(b).has_value());
  EXPECT_EQ(queue.TryPush(c), AdmissionError::kQueueFull);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_FALSE(queue.TryPush(c).has_value());  // slot freed
}

TEST(BoundedQueueTest, CloseAdmissionDrainsRemainingItems) {
  BoundedQueue<int> queue(4);
  int a = 1, b = 2;
  ASSERT_FALSE(queue.TryPush(a).has_value());
  ASSERT_FALSE(queue.TryPush(b).has_value());
  queue.CloseAdmission();
  EXPECT_EQ(queue.TryPush(a), AdmissionError::kClosed);
  EXPECT_EQ(queue.Pop(), 1);  // queued work survives a drain-close
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // closed + empty: consumer exit
}

TEST(BoundedQueueTest, CloseAndFlushReturnsQueuedItems) {
  BoundedQueue<int> queue(4);
  int a = 1, b = 2;
  ASSERT_FALSE(queue.TryPush(a).has_value());
  ASSERT_FALSE(queue.TryPush(b).has_value());
  std::vector<int> flushed = queue.CloseAndFlush();
  EXPECT_EQ(flushed, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, StressManyProducersConsumersNoLostWakeup) {
  // Regression guard for the waiter-counted wakeup discipline: producers
  // notify only when a consumer is parked, so a lost-wakeup bug in that
  // bookkeeping shows up here as a consumer sleeping forever next to a
  // non-empty queue (the test then hangs deterministically instead of
  // flaking). The periodic producer stalls drain the queue so consumers
  // genuinely park and every wake path is exercised; the tiny capacity
  // exercises the full-queue shed/retry path at the same time.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kItemsPerProducer = 2000;
  BoundedQueue<int> queue(8);

  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::optional<int> item = queue.Pop();  // parks when empty
        if (!item.has_value()) return;          // closed + drained
        consumed.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(*item, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        int item = p * kItemsPerProducer + i;
        while (queue.TryPush(item).has_value()) {
          std::this_thread::yield();  // full: never blocks, so spin politely
        }
        if (i % 128 == 0) {
          // Let consumers drain and park so the next push must wake one.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  queue.CloseAdmission();  // wakes every parked consumer to exit
  for (std::thread& thread : consumers) thread.join();

  // Exactly-once delivery: the item values partition [0, total), so the
  // count and the sum together pin down the consumed multiset.
  const long long total = kProducers * kItemsPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, QuantilesLandInTheRightBuckets) {
  LatencyHistogram histogram;
  // 1000 fast requests at ~1ms plus a 9% tail at ~500ms: the median must
  // sit in the fast bucket and both tail quantiles in the slow bucket.
  for (int i = 0; i < 1000; ++i) histogram.Record(0.001);
  for (int i = 0; i < 100; ++i) histogram.Record(0.5);
  LatencySnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1100u);
  // Geometric buckets are ~12% wide; allow one bucket of slack.
  EXPECT_GT(snapshot.p50_seconds, 0.0005);
  EXPECT_LT(snapshot.p50_seconds, 0.002);
  EXPECT_GT(snapshot.p95_seconds, 0.25);
  EXPECT_LT(snapshot.p95_seconds, 1.0);
  EXPECT_LE(snapshot.p50_seconds, snapshot.p95_seconds);
  EXPECT_LE(snapshot.p95_seconds, snapshot.p99_seconds);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 0.5);
  EXPECT_NEAR(snapshot.mean_seconds, (1000 * 0.001 + 100 * 0.5) / 1100.0,
              1e-9);

  histogram.Clear();
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(LatencyHistogramTest, ExtremesClampIntoTerminalBuckets) {
  LatencyHistogram histogram;
  histogram.Record(0.0);      // below the 1us floor
  histogram.Record(-1.0);     // negative: clamped to 0
  histogram.Record(1e6);      // beyond the 1000s ceiling: overflow bucket
  LatencySnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_LE(snapshot.p50_seconds, 2e-6);
  EXPECT_GT(snapshot.p99_seconds, 100.0);
}

// ---------------------------------------------------------------------------
// Admission control and load shedding

TEST(NedServiceTest, ShedsWithStatusWhenQueueFull) {
  GatedSystem gated;
  NedServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  NedService service(kb::KbSnapshot::WrapUnowned(gated, "gated"), options);

  std::future<ServeResult> in_flight = service.Submit(EmptyProblem());
  gated.WaitForStarts(1);  // the lone worker is now held by the gate
  std::future<ServeResult> queued1 = service.Submit(EmptyProblem());
  std::future<ServeResult> queued2 = service.Submit(EmptyProblem());

  // Queue full: the fourth submission must resolve immediately (never
  // parked) with an explicit shed status.
  std::future<ServeResult> shed = service.Submit(EmptyProblem());
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ServeResult shed_result = shed.get();
  EXPECT_EQ(shed_result.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed_result.result.cancelled);
  EXPECT_EQ(shed_result.generation, 0u);  // never reached a worker

  NedServiceSnapshot mid = service.Snapshot();
  EXPECT_EQ(mid.metrics.submitted, 4u);
  EXPECT_EQ(mid.metrics.admitted, 3u);
  EXPECT_EQ(mid.metrics.rejected_queue_full, 1u);
  EXPECT_EQ(mid.metrics.queue_depth, 2u);
  EXPECT_EQ(mid.metrics.in_flight, 1u);

  gated.Release();
  EXPECT_TRUE(in_flight.get().status.ok());
  EXPECT_TRUE(queued1.get().status.ok());
  EXPECT_TRUE(queued2.get().status.ok());
  service.Drain();

  NedServiceSnapshot done = service.Snapshot();
  EXPECT_EQ(done.metrics.completed, 3u);
  EXPECT_EQ(done.metrics.Resolved(), done.metrics.submitted);
  EXPECT_EQ(done.metrics.queue_depth, 0u);
  EXPECT_EQ(done.metrics.in_flight, 0u);
  EXPECT_EQ(done.metrics.total_latency.count, 3u);
}

// ---------------------------------------------------------------------------
// Deadlines

TEST(NedServiceTest, DeadlineExpiresWhileQueued) {
  GatedSystem gated;
  NedServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  NedService service(kb::KbSnapshot::WrapUnowned(gated, "gated"), options);

  std::future<ServeResult> blocker = service.Submit(EmptyProblem());
  gated.WaitForStarts(1);
  RequestOptions tight;
  tight.deadline_seconds = 0.005;
  std::future<ServeResult> victim = service.Submit(EmptyProblem(), tight);

  // Hold the worker well past the victim's deadline before releasing.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gated.Release();

  ServeResult expired = victim.get();
  EXPECT_EQ(expired.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(expired.result.cancelled);
  EXPECT_EQ(expired.service_seconds, 0.0);  // never ran
  EXPECT_GE(expired.queue_seconds, 0.005);
  EXPECT_TRUE(blocker.get().status.ok());
  service.Drain();
  EXPECT_EQ(service.Snapshot().metrics.expired_in_queue, 1u);
}

TEST(NedServiceTest, DeadlineCancelsCooperativelyMidFlight) {
  CooperativeSystem cooperative;
  NedServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  NedService service(
      kb::KbSnapshot::WrapUnowned(cooperative, "cooperative"), options);

  RequestOptions tight;
  tight.deadline_seconds = 0.02;
  ServeResult result = service.Submit(EmptyProblem(), tight).get();
  EXPECT_EQ(result.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.result.cancelled);
  EXPECT_GT(result.service_seconds, 0.0);  // it ran, then bailed out
  service.Drain();
  EXPECT_EQ(service.Snapshot().metrics.cancelled_in_flight, 1u);
  EXPECT_EQ(service.Snapshot().metrics.completed, 0u);
}

TEST(NedServiceTest, AidaHonorsCancellationTokenBetweenPhases) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  core::DisambiguationProblem problem = ToProblem(tw.corpus.front());
  core::CancellationToken token;
  token.Cancel();
  core::DisambiguateOptions tripped;
  tripped.cancel = &token;
  core::DisambiguationResult cancelled = aida.Disambiguate(problem, tripped);
  EXPECT_TRUE(cancelled.cancelled);
  ASSERT_EQ(cancelled.mentions.size(), problem.mentions.size());
  // The pre-phase check fires before candidate lookup: no graph work.
  EXPECT_EQ(cancelled.stats.relatedness_computations, 0u);
  EXPECT_EQ(cancelled.stats.graph_iterations, 0u);

  // An untripped token changes nothing — byte-identical to no token.
  core::CancellationToken open_token;
  core::DisambiguateOptions open_options;
  open_options.cancel = &open_token;
  core::DisambiguationResult with_token =
      aida.Disambiguate(problem, open_options);
  core::DisambiguationResult without = aida.Disambiguate(problem, {});
  EXPECT_FALSE(with_token.cancelled);
  ExpectSameResults(with_token, without);
}

TEST(NedServiceTest, AggregateStatsSkipsShedAndCancelledResults) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  core::DisambiguationProblem problem = ToProblem(tw.corpus.front());
  std::vector<core::DisambiguationResult> results;
  results.push_back(aida.Disambiguate(problem, {}));
  // A shed request: never ran, default-initialized stats.
  core::DisambiguationResult shed;
  shed.cancelled = true;
  results.push_back(shed);
  // A mid-flight cancellation: partial stats that must not pollute totals.
  core::CancellationToken token;
  token.Cancel();
  core::DisambiguateOptions tripped;
  tripped.cancel = &token;
  results.push_back(aida.Disambiguate(problem, tripped));
  ASSERT_TRUE(results.back().cancelled);

  core::DisambiguationStats total = core::AggregateStats(results);
  EXPECT_EQ(total.relatedness_computations,
            results.front().stats.relatedness_computations);
  EXPECT_DOUBLE_EQ(total.total_seconds, results.front().stats.total_seconds);
  EXPECT_DOUBLE_EQ(total.local_seconds, results.front().stats.local_seconds);
}

// ---------------------------------------------------------------------------
// Drain and shutdown

TEST(NedServiceTest, DrainCompletesQueuedAndInflightWork) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  NedServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);

  std::vector<core::DisambiguationProblem> problems;
  for (const corpus::Document& doc : tw.corpus) {
    problems.push_back(ToProblem(doc));
  }
  std::vector<std::future<ServeResult>> futures;
  for (const core::DisambiguationProblem& problem : problems) {
    futures.push_back(service.Submit(problem));
  }
  service.Drain();

  // Every admitted request completed despite the immediate drain.
  for (std::future<ServeResult>& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_TRUE(service.stopped());
  NedServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.metrics.completed, problems.size());
  EXPECT_EQ(snapshot.metrics.in_flight, 0u);
  EXPECT_EQ(snapshot.metrics.queue_depth, 0u);

  // Post-drain submissions are rejected-with-status, not blocked.
  ServeResult late = service.Submit(problems.front()).get();
  EXPECT_EQ(late.status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(service.Snapshot().metrics.rejected_closed, 1u);
}

TEST(NedServiceTest, ShutdownFailsQueuedAndCompletesInflight) {
  GatedSystem gated;
  NedServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  NedService service(kb::KbSnapshot::WrapUnowned(gated, "gated"), options);

  std::future<ServeResult> in_flight = service.Submit(EmptyProblem());
  gated.WaitForStarts(1);
  std::future<ServeResult> queued1 = service.Submit(EmptyProblem());
  std::future<ServeResult> queued2 = service.Submit(EmptyProblem());

  std::thread shutdown_thread([&] { service.Shutdown(); });
  // Shutdown flushes the queue first: both queued futures resolve with
  // kCancelled even while the in-flight request still blocks the worker.
  EXPECT_EQ(queued1.get().status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(queued2.get().status.code(), util::StatusCode::kCancelled);
  gated.Release();
  shutdown_thread.join();
  EXPECT_TRUE(in_flight.get().status.ok());

  NedServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.metrics.cancelled_queued, 2u);
  EXPECT_EQ(snapshot.metrics.completed, 1u);
  EXPECT_EQ(snapshot.metrics.Resolved(), snapshot.metrics.submitted);
}

TEST(NedServiceTest, ShutdownWhileSubmittingResolvesEveryFuture) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  NedServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 2;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);

  std::vector<core::DisambiguationProblem> problems;
  for (const corpus::Document& doc : tw.corpus) {
    problems.push_back(ToProblem(doc));
  }

  std::vector<std::future<ServeResult>> futures;
  std::atomic<bool> go{false};
  std::thread submitter([&] {
    go.wait(false);
    for (int round = 0; round < 8; ++round) {
      for (const core::DisambiguationProblem& problem : problems) {
        futures.push_back(service.Submit(problem));
      }
    }
  });
  go.store(true);
  go.notify_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.Shutdown();
  submitter.join();

  // No future hangs; each resolves to one of the documented outcomes.
  size_t ok = 0, rejected = 0;
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(result.status.code() ==
                      util::StatusCode::kResourceExhausted ||
                  result.status.code() == util::StatusCode::kCancelled)
          << result.status.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, futures.size());
  NedServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.metrics.submitted, futures.size());
  EXPECT_EQ(snapshot.metrics.Resolved(), snapshot.metrics.submitted);
}

// ---------------------------------------------------------------------------
// Correctness and cache sharing

TEST(NedServiceTest, ServedResultsByteIdenticalToSerial) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  std::vector<core::DisambiguationProblem> problems;
  for (const corpus::Document& doc : tw.corpus) {
    problems.push_back(ToProblem(doc));
  }
  std::vector<core::DisambiguationResult> reference;
  for (const core::DisambiguationProblem& problem : problems) {
    reference.push_back(aida.Disambiguate(problem, {}));
  }

  // Small queue on purpose: DisambiguateAll must apply backpressure, not
  // shed its own requests.
  NedServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);
  std::vector<ServeResult> served = service.DisambiguateAll(problems);

  ASSERT_EQ(served.size(), reference.size());
  for (size_t d = 0; d < served.size(); ++d) {
    ASSERT_TRUE(served[d].status.ok()) << served[d].status.ToString();
    // A fixed-snapshot service serves every request from generation 1.
    EXPECT_EQ(served[d].generation, 1u);
    ExpectSameResults(reference[d], served[d].result);
  }
  core::DisambiguationStats serial_total = core::AggregateStats(reference);
  core::DisambiguationStats served_total = AggregateCompletedStats(served);
  EXPECT_EQ(served_total.relatedness_computations,
            serial_total.relatedness_computations);
  EXPECT_EQ(served_total.graph_iterations, serial_total.graph_iterations);
}

TEST(NedServiceTest, SharedRelatednessCacheServesConcurrentRequests) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida plain(&models, &mw, core::AidaOptions());

  std::vector<core::DisambiguationProblem> problems;
  for (const corpus::Document& doc : tw.corpus) {
    problems.push_back(ToProblem(doc));
  }
  std::vector<core::DisambiguationResult> reference;
  for (const core::DisambiguationProblem& problem : problems) {
    reference.push_back(plain.Disambiguate(problem, {}));
  }

  core::RelatednessCache cache;
  core::CachedRelatednessMeasure cached(&mw, &cache);
  core::Aida aida(&models, &cached, core::AidaOptions());
  NedServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 16;
  options.shared_cache = &cache;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);
  std::vector<ServeResult> served = service.DisambiguateAll(problems);

  for (size_t d = 0; d < served.size(); ++d) {
    ASSERT_TRUE(served[d].status.ok());
    ExpectSameResults(reference[d], served[d].result);
  }
  NedServiceSnapshot snapshot = service.Snapshot();
  ASSERT_TRUE(snapshot.has_cache);
  // Entities recur across documents: concurrent requests must have reused
  // pairs through the shared cache.
  EXPECT_GT(snapshot.cache.hits, 0u);
  EXPECT_EQ(snapshot.cache.hits + snapshot.cache.misses,
            AggregateCompletedStats(served).relatedness_cache_hits +
                AggregateCompletedStats(served).relatedness_computations);
}

// ---------------------------------------------------------------------------
// Apps over a service handle

TEST(NedServiceTest, IngestCorpusIndexesCompletedDocuments) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  NedServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 16;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);

  apps::EntitySearch search(tw.world.knowledge_base.get());
  apps::NewsAnalytics analytics;
  apps::StreamIngestReport report =
      apps::IngestCorpus(service, tw.corpus, &search, &analytics);

  EXPECT_EQ(report.documents, tw.corpus.size());
  EXPECT_EQ(report.indexed, tw.corpus.size());
  EXPECT_EQ(report.shed + report.deadline_expired + report.failed, 0u);
  EXPECT_EQ(search.document_count(), tw.corpus.size());
  EXPECT_EQ(analytics.document_count(), tw.corpus.size());
  EXPECT_GT(report.ned_stats.total_seconds, 0.0);
}

TEST(NedServiceTest, IngestCorpusSkipsExpiredDocuments) {
  const TestWorld& tw = TestWorld::Get();
  core::CandidateModelStore models(tw.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(tw.world.knowledge_base.get());
  core::Aida aida(&models, &mw, core::AidaOptions());

  NedServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4;
  NedService service(kb::KbSnapshot::WrapUnowned(aida, "aida"), options);

  apps::EntitySearch search(tw.world.knowledge_base.get());
  serve::RequestOptions hopeless;
  hopeless.deadline_seconds = 1e-9;  // expires before any worker can start
  apps::StreamIngestReport report =
      apps::IngestCorpus(service, tw.corpus, &search, nullptr, hopeless);

  EXPECT_EQ(report.indexed, 0u);
  EXPECT_EQ(report.deadline_expired, tw.corpus.size());
  EXPECT_EQ(search.document_count(), 0u);
}

// ---------------------------------------------------------------------------
// Worker exceptions become statuses, not dead workers

TEST(NedServiceTest, ThrowingSystemYieldsInternalStatusAndServiceSurvives) {
  class ThrowingSystem : public core::NedSystem {
   public:
    core::DisambiguationResult Disambiguate(
        const core::DisambiguationProblem& problem,
        const core::DisambiguateOptions& /*options*/) const override {
      if (problem.mentions.empty()) throw std::runtime_error("boom");
      core::DisambiguationResult result;
      result.mentions.resize(problem.mentions.size());
      return result;
    }
    std::string name() const override { return "throwing"; }
  };

  ThrowingSystem throwing;
  NedServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 8;
  NedService service(kb::KbSnapshot::WrapUnowned(throwing, "throwing"),
                     options);

  ServeResult failed = service.Submit(EmptyProblem()).get();
  EXPECT_EQ(failed.status.code(), util::StatusCode::kInternal);

  // The worker that caught the exception keeps serving.
  core::DisambiguationProblem with_mention = EmptyProblem();
  with_mention.mentions.emplace_back();
  ServeResult ok = service.Submit(with_mention).get();
  EXPECT_TRUE(ok.status.ok());
  service.Drain();
  NedServiceSnapshot snapshot = service.Snapshot();
  EXPECT_EQ(snapshot.metrics.failed, 1u);
  EXPECT_EQ(snapshot.metrics.completed, 1u);
}

}  // namespace
}  // namespace aida::serve
