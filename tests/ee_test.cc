#include <gtest/gtest.h>

#include "core/aida.h"
#include "ee/confidence.h"
#include "ee/ee_discovery.h"
#include "ee/emerging_entity_model.h"
#include "ee/keyphrase_harvester.h"
#include "eval/metrics.h"
#include "eval/pr_curve.h"
#include "kore/kore_relatedness.h"
#include "test_world.h"

namespace aida::ee {
namespace {

using ::aida::testing::TestWorld;

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

class EeTest : public ::testing::Test {
 protected:
  EeTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()),
        kore_() {
    core::AidaOptions options;
    options.graph.entities_per_mention_budget = 5;
    aida_ = std::make_unique<core::Aida>(&models_, &kore_, options);
  }

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  core::CandidateModelStore models_;
  kore::KoreRelatedness kore_;
  std::unique_ptr<core::Aida> aida_;
};

// ---- Confidence ------------------------------------------------------------

TEST_F(EeTest, NormalizedScoresSumToShare) {
  core::DisambiguationResult result;
  core::MentionResult m;
  m.entity = 5;
  m.candidate_entities = {5, 6};
  m.candidate_scores = {3.0, 1.0};
  m.candidate_is_placeholder = {false, false};
  result.mentions.push_back(m);
  std::vector<double> conf = ConfidenceEstimator::NormalizedScores(result);
  ASSERT_EQ(conf.size(), 1u);
  EXPECT_DOUBLE_EQ(conf[0], 0.75);
}

TEST_F(EeTest, ConfidencesInUnitInterval) {
  ConfidenceOptions options;
  options.rounds = 8;
  ConfidenceEstimator estimator(&models_, aida_.get(), options);
  const corpus::Document& doc = corpus_.front();
  core::DisambiguationProblem problem = ToProblem(doc);
  core::DisambiguationResult base = aida_->Disambiguate(problem, {});

  for (const std::vector<double>& conf :
       {estimator.MentionPerturbation(problem, base),
        estimator.EntityPerturbation(problem, base),
        estimator.Conf(problem, base)}) {
    ASSERT_EQ(conf.size(), doc.mentions.size());
    for (double c : conf) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST_F(EeTest, ConfidenceRanksCorrectness) {
  // CONF-ranked predictions should yield decent MAP: correct
  // disambiguations should concentrate at high confidence.
  ConfidenceOptions options;
  options.rounds = 6;
  ConfidenceEstimator estimator(&models_, aida_.get(), options);
  std::vector<eval::ScoredPrediction> scored;
  for (size_t d = 0; d < 5; ++d) {
    const corpus::Document& doc = corpus_[d];
    core::DisambiguationProblem problem = ToProblem(doc);
    core::DisambiguationResult base = aida_->Disambiguate(problem, {});
    std::vector<double> conf = estimator.Conf(problem, base);
    for (size_t m = 0; m < doc.mentions.size(); ++m) {
      if (doc.mentions[m].out_of_kb()) continue;
      scored.push_back(
          {conf[m], base.mentions[m].entity == doc.mentions[m].gold_entity});
    }
  }
  ASSERT_GT(scored.size(), 30u);
  double map = eval::MeanAveragePrecision(scored);
  // Baseline: overall accuracy (precision of an unranked list).
  size_t correct = 0;
  for (const auto& s : scored) correct += s.correct ? 1 : 0;
  double accuracy = static_cast<double>(correct) / scored.size();
  EXPECT_GT(map, accuracy - 0.02);
}

// ---- Harvesting ---------------------------------------------------------------

TEST(SurfaceMatchingTest, Rules) {
  EXPECT_TRUE(SurfaceMatchesName("Paris", "PARIS"));
  EXPECT_TRUE(SurfaceMatchesName("Paris", "Paris"));
  EXPECT_FALSE(SurfaceMatchesName("Pas", "Paris"));
  // Short names are case-sensitive.
  EXPECT_TRUE(SurfaceMatchesName("US", "US"));
  EXPECT_FALSE(SurfaceMatchesName("us", "US"));
}

TEST_F(EeTest, HarvestForNameFindsPhrases) {
  KeyphraseHarvester harvester;
  // Use a name that occurs in the corpus.
  std::string name;
  for (const corpus::Document& doc : corpus_) {
    if (!doc.mentions.empty()) {
      name = doc.mentions.front().surface;
      break;
    }
  }
  ASSERT_FALSE(name.empty());
  std::vector<const corpus::Document*> docs;
  for (const corpus::Document& doc : corpus_) docs.push_back(&doc);
  HarvestedCounts counts = harvester.HarvestForName(docs, name);
  EXPECT_GT(counts.occurrences, 0u);
  EXPECT_GT(counts.documents, 0u);
  EXPECT_FALSE(counts.phrase_counts.empty());
}

TEST_F(EeTest, WindowPhrasesExcludeName) {
  KeyphraseHarvester harvester;
  const corpus::Document& doc = corpus_.front();
  ASSERT_FALSE(doc.mentions.empty());
  std::vector<std::string> phrases = harvester.WindowPhrases(doc, 0);
  std::string lower = doc.mentions[0].surface;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  for (const std::string& p : phrases) EXPECT_NE(p, lower);
}

// ---- Model difference -----------------------------------------------------------

TEST_F(EeTest, PlaceholderModelSubtractsKbPhrases) {
  core::ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  EeModelOptions options;
  EmergingEntityModelBuilder builder(&models_, &vocab, options);

  // Candidate entity 0's first keyphrase, plus a novel phrase.
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  std::string kb_phrase = store.PhraseText(store.EntityPhrases(0).front());
  HarvestedCounts harvested;
  harvested.phrase_counts[kb_phrase] = 1;  // weak; candidate owns it
  harvested.phrase_counts["brand new signal phrase"] = 40;
  harvested.occurrences = 40;

  std::vector<core::Candidate> kb_candidates;
  core::Candidate c;
  c.entity = 0;
  c.model = models_.ModelFor(0);
  kb_candidates.push_back(c);

  auto model = builder.BuildPlaceholder("Name", harvested, kb_candidates,
                                        /*chunk_docs=*/100);
  ASSERT_FALSE(model->phrases.empty());
  // The novel phrase dominates; words were interned into the vocabulary.
  EXPECT_NE(vocab.Find("brand"), kb::kNoWord);
  EXPECT_GT(model->total_phrase_weight, 0.0);
  // The strongest phrase is the novel one.
  double best = 0;
  size_t best_idx = 0;
  for (size_t i = 0; i < model->phrases.size(); ++i) {
    if (model->phrases[i].phrase_weight > best) {
      best = model->phrases[i].phrase_weight;
      best_idx = i;
    }
  }
  EXPECT_EQ(model->phrases[best_idx].words.size(), 4u);
}

TEST_F(EeTest, ExtendModelAddsNewPhrasesOnly) {
  core::ExtendedVocabulary vocab(&world_.knowledge_base->keyphrases());
  EeModelOptions options;
  EmergingEntityModelBuilder builder(&models_, &vocab, options);

  auto base = models_.ModelFor(0);
  size_t base_count = base->phrases.size();
  const kb::KeyphraseStore& store = world_.knowledge_base->keyphrases();
  std::string existing = store.PhraseText(store.EntityPhrases(0).front());

  HarvestedCounts harvested;
  harvested.phrase_counts[existing] = 10;       // already known: skipped
  harvested.phrase_counts["fresh event phrase"] = 10;  // added
  auto extended = builder.ExtendModel(*base, harvested, 50);
  EXPECT_EQ(extended->phrases.size(), base_count + 1);
  EXPECT_GT(extended->total_phrase_weight, base->total_phrase_weight);
}

// ---- Discovery -------------------------------------------------------------------

TEST_F(EeTest, ApplyEeThreshold) {
  core::DisambiguationResult result;
  core::MentionResult m;
  m.entity = 3;
  result.mentions.push_back(m);
  result.mentions.push_back(m);
  core::DisambiguationResult out =
      ApplyEeThreshold(result, {0.9, 0.1}, 0.5);
  EXPECT_EQ(out.mentions[0].entity, 3u);
  EXPECT_EQ(out.mentions[1].entity, kb::kNoEntity);
}

TEST_F(EeTest, DiscovererLabelsEmergingEntities) {
  EeDiscoveryOptions options;
  options.harvest_days = 8;  // the whole little stream
  options.harvest_existing = false;
  // The tiny test stream yields sparse placeholder models; a higher gamma
  // compensates (the benches tune this on a proper train split).
  options.gamma = 0.4;
  EmergingEntityDiscoverer discoverer(&models_, aida_.get(), &corpus_,
                                      options);

  eval::NedEvaluator evaluator;
  size_t docs_with_ee = 0;
  for (size_t d = 0; d < corpus_.size(); ++d) {
    const corpus::Document& doc = corpus_[d];
    bool has_ee = false;
    for (const corpus::GoldMention& m : doc.mentions) {
      has_ee |= m.out_of_kb();
    }
    if (!has_ee) continue;
    ++docs_with_ee;
    core::DisambiguationResult result = discoverer.Discover(doc);
    evaluator.AddDocument(doc, result);
  }
  ASSERT_GT(docs_with_ee, 2u);
  // The discoverer must find a nontrivial share of the emerging entities
  // without destroying in-KB accuracy.
  EXPECT_GT(evaluator.EeRecall(), 0.3);
  EXPECT_GT(evaluator.EePrecision(), 0.35);
  EXPECT_GT(evaluator.MicroAccuracy(), 0.4);
}

TEST_F(EeTest, PlaceholderModelsAreCached) {
  EeDiscoveryOptions options;
  options.harvest_days = 8;
  options.harvest_existing = false;
  EmergingEntityDiscoverer discoverer(&models_, aida_.get(), &corpus_,
                                      options);
  auto a = discoverer.PlaceholderModel("SomeName", 5);
  auto b = discoverer.PlaceholderModel("SomeName", 5);
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(EeTest, HarvestExistingEntitiesExtendsModels) {
  EeDiscoveryOptions options;
  options.harvest_days = 8;
  EmergingEntityDiscoverer discoverer(&models_, aida_.get(), &corpus_,
                                      options);
  // Should run without error and allow discovery afterwards.
  discoverer.HarvestExistingEntities(0, 8);
  core::DisambiguationResult result = discoverer.Discover(corpus_.front());
  EXPECT_EQ(result.mentions.size(), corpus_.front().mentions.size());
}

}  // namespace
}  // namespace aida::ee
