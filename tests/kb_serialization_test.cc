#include <algorithm>
#include <span>

#include <gtest/gtest.h>

#include "kb/kb_serialization.h"
#include "test_world.h"
#include "util/serialize.h"

namespace aida::kb {
namespace {

using ::aida::testing::TestWorld;

class KbSerializationTest : public ::testing::Test {
 protected:
  const KnowledgeBase& kb() const {
    return *TestWorld::Get().world.knowledge_base;
  }
};

TEST_F(KbSerializationTest, RoundTripPreservesEntities) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KnowledgeBase& restored = **loaded;

  ASSERT_EQ(restored.entity_count(), kb().entity_count());
  for (EntityId e = 0; e < kb().entity_count(); ++e) {
    const Entity& a = kb().entities().Get(e);
    const Entity& b = restored.entities().Get(e);
    EXPECT_EQ(a.canonical_name, b.canonical_name);
    EXPECT_EQ(a.anchor_count, b.anchor_count);
    EXPECT_EQ(a.types, b.types);
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesDictionary) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;

  for (const std::string& name : kb().dictionary().AllNames()) {
    auto original = kb().dictionary().Lookup(name);
    auto round_trip = restored.dictionary().Lookup(name);
    ASSERT_EQ(original.size(), round_trip.size()) << name;
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].entity, round_trip[i].entity);
      EXPECT_EQ(original[i].anchor_count, round_trip[i].anchor_count);
      EXPECT_DOUBLE_EQ(original[i].prior, round_trip[i].prior);
    }
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesLinksAndWeights) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;

  auto equal_rows = [](std::span<const EntityId> a,
                       std::span<const EntityId> b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  for (EntityId e = 0; e < kb().entity_count(); e += 7) {
    EXPECT_TRUE(equal_rows(kb().links().InLinks(e),
                           restored.links().InLinks(e)));
    EXPECT_TRUE(equal_rows(kb().links().OutLinks(e),
                           restored.links().OutLinks(e)));
    // Derived keyphrase statistics are recomputed identically.
    const auto phrases_a = kb().keyphrases().EntityPhrases(e);
    const auto phrases_b = restored.keyphrases().EntityPhrases(e);
    ASSERT_EQ(phrases_a.size(), phrases_b.size());
    for (size_t i = 0; i < phrases_a.size(); ++i) {
      EXPECT_EQ(kb().keyphrases().PhraseText(phrases_a[i]),
                restored.keyphrases().PhraseText(phrases_b[i]));
      EXPECT_NEAR(kb().keyphrases().PhraseMi(e, phrases_a[i]),
                  restored.keyphrases().PhraseMi(e, phrases_b[i]), 1e-12);
    }
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesTaxonomy) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;
  ASSERT_EQ(restored.taxonomy().size(), kb().taxonomy().size());
  for (TypeId t = 0; t < kb().taxonomy().size(); ++t) {
    EXPECT_EQ(restored.taxonomy().TypeName(t), kb().taxonomy().TypeName(t));
    EXPECT_EQ(restored.taxonomy().Parent(t), kb().taxonomy().Parent(t));
  }
}

TEST_F(KbSerializationTest, RejectsGarbage) {
  auto result = DeserializeKnowledgeBase("not a knowledge base at all");
  EXPECT_FALSE(result.ok());
}

TEST_F(KbSerializationTest, RejectsTruncation) {
  std::string buffer = SerializeKnowledgeBase(kb());
  for (size_t cut : {size_t{4}, buffer.size() / 2, buffer.size() - 3}) {
    auto result = DeserializeKnowledgeBase(
        std::string_view(buffer.data(), cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST_F(KbSerializationTest, RejectsVersionMismatch) {
  std::string buffer = SerializeKnowledgeBase(kb());
  // Bytes [4, 8) hold the format version (little-endian u32, currently 1).
  ASSERT_GE(buffer.size(), 8u);
  buffer[4] = 0x7F;
  auto result = DeserializeKnowledgeBase(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos);
}

TEST_F(KbSerializationTest, RejectsCorruptSectionHeaders) {
  // Overwrite each section-leading u64 count in turn with an absurd value.
  // Every variant must come back as a clean Status — no crash, no
  // gigabyte allocation, no out-of-bounds read (the ASan configuration
  // runs this same test). The first count (taxonomy size) sits at offset
  // 8, right after magic + version; later counts are found by scanning a
  // handful of positions across the buffer, which covers the entity,
  // anchor, keyphrase, and link headers without hardcoding the layout.
  const std::string pristine = SerializeKnowledgeBase(kb());
  ASSERT_GT(pristine.size(), 16u);
  std::vector<size_t> offsets = {8};
  for (size_t off = 16; off + 8 <= pristine.size();
       off += pristine.size() / 64 + 1) {
    offsets.push_back(off);
  }
  for (size_t off : offsets) {
    std::string corrupt = pristine;
    for (size_t b = 0; b < 8; ++b) corrupt[off + b] = '\xFF';
    auto result = DeserializeKnowledgeBase(corrupt);
    // A clobbered count must fail; a clobbered value region may happen to
    // still parse — but it must never crash. Only assert failure for the
    // known count position.
    if (off == 8) {
      EXPECT_FALSE(result.ok());
    }
    if (!result.ok()) {
      EXPECT_FALSE(result.status().ToString().empty());
    }
  }
}

TEST_F(KbSerializationTest, RejectsTruncationAtEveryStride) {
  // Denser sweep than RejectsTruncation: cut the buffer at many points
  // (including every boundary near the end) and require a clean error.
  const std::string buffer = SerializeKnowledgeBase(kb());
  std::vector<size_t> cuts;
  for (size_t cut = 0; cut < buffer.size(); cut += buffer.size() / 97 + 1) {
    cuts.push_back(cut);
  }
  for (size_t tail = 1; tail <= 16 && tail < buffer.size(); ++tail) {
    cuts.push_back(buffer.size() - tail);
  }
  for (size_t cut : cuts) {
    auto result =
        DeserializeKnowledgeBase(std::string_view(buffer.data(), cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST_F(KbSerializationTest, LoadRejectsMissingFile) {
  auto result = LoadKnowledgeBase(::testing::TempDir() + "/does_not_exist.kb");
  EXPECT_FALSE(result.ok());
}

TEST_F(KbSerializationTest, RejectsTrailingBytes) {
  std::string buffer = SerializeKnowledgeBase(kb());
  buffer += "junk";
  EXPECT_FALSE(DeserializeKnowledgeBase(buffer).ok());
}

TEST_F(KbSerializationTest, HeaderBitFlipSweepNeverCrashes) {
  // Single-bit corruption of the leading bytes (magic, version, and the
  // first section counts): every variant must either still parse or come
  // back as a Status with a message — never abort or trip a sanitizer
  // (the ASan configuration runs this same sweep).
  const std::string pristine = SerializeKnowledgeBase(kb());
  const size_t span = std::min(pristine.size(), size_t{64});
  for (size_t byte = 0; byte < span; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = pristine;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto result = DeserializeKnowledgeBase(corrupt);
      if (!result.ok()) {
        EXPECT_FALSE(result.status().ToString().empty())
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

// The crash-*.kb regression inputs in tests/fuzz/corpus/kb_serialization/
// hold these same byte layouts; the tests below keep the reader's reason
// for rejecting them documented and independently reproducible.

TEST_F(KbSerializationTest, RejectsDuplicateEntityNames) {
  // Two entities named "X" used to abort in EntityRepository::Add's
  // unique-canonical-name invariant instead of returning an error.
  util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);
  w.WriteU32(1);
  w.WriteU64(0);  // taxonomy
  w.WriteU64(2);  // entities
  w.WriteString("X");
  w.WriteU64(0);
  w.WriteString("X");
  w.WriteU64(0);
  w.WriteU64(0);  // anchors
  w.WriteU64(0);  // phrases
  w.WriteU64(2);  // per-entity phrase lists
  w.WriteU64(0);
  w.WriteU64(0);
  w.WriteU64(0);  // links
  auto result = DeserializeKnowledgeBase(std::move(w).TakeBuffer());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("duplicate entity name"),
            std::string::npos);
}

TEST_F(KbSerializationTest, RejectsDuplicateTypeNames) {
  util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);
  w.WriteU32(1);
  w.WriteU64(2);  // taxonomy: two types named "t"
  w.WriteString("t");
  w.WriteU32(kNoType);
  w.WriteString("t");
  w.WriteU32(kNoType);
  w.WriteU64(0);  // entities
  w.WriteU64(0);  // anchors
  w.WriteU64(0);  // phrases
  w.WriteU64(0);  // per-entity phrase lists
  w.WriteU64(0);  // links
  auto result = DeserializeKnowledgeBase(std::move(w).TakeBuffer());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("duplicate type name"),
            std::string::npos);
}

TEST_F(KbSerializationTest, RejectsEmptyKeyphraseText) {
  // An all-space phrase splits into zero words, which used to abort on
  // KeyphraseStore::InternPhrase's non-empty invariant.
  util::BinaryWriter w;
  w.WriteU32(0xA1DA4B42);
  w.WriteU32(1);
  w.WriteU64(0);  // taxonomy
  w.WriteU64(1);  // one entity
  w.WriteString("X");
  w.WriteU64(0);
  w.WriteU64(0);       // anchors
  w.WriteU64(1);       // one phrase...
  w.WriteString(" ");  // ...with no visible word
  w.WriteU64(1);       // per-entity phrase lists
  w.WriteU64(1);
  w.WriteU32(0);
  w.WriteU32(3);
  w.WriteU64(0);  // links
  auto result = DeserializeKnowledgeBase(std::move(w).TakeBuffer());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("empty keyphrase text"),
            std::string::npos);
}

TEST_F(KbSerializationTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aida_kb_test.bin";
  ASSERT_TRUE(SaveKnowledgeBase(kb(), path).ok());
  auto loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->entity_count(), kb().entity_count());
}

}  // namespace
}  // namespace aida::kb
