#include <gtest/gtest.h>

#include "kb/kb_serialization.h"
#include "test_world.h"

namespace aida::kb {
namespace {

using ::aida::testing::TestWorld;

class KbSerializationTest : public ::testing::Test {
 protected:
  const KnowledgeBase& kb() const {
    return *TestWorld::Get().world.knowledge_base;
  }
};

TEST_F(KbSerializationTest, RoundTripPreservesEntities) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KnowledgeBase& restored = **loaded;

  ASSERT_EQ(restored.entity_count(), kb().entity_count());
  for (EntityId e = 0; e < kb().entity_count(); ++e) {
    const Entity& a = kb().entities().Get(e);
    const Entity& b = restored.entities().Get(e);
    EXPECT_EQ(a.canonical_name, b.canonical_name);
    EXPECT_EQ(a.anchor_count, b.anchor_count);
    EXPECT_EQ(a.types, b.types);
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesDictionary) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;

  for (const std::string& name : kb().dictionary().AllNames()) {
    auto original = kb().dictionary().Lookup(name);
    auto round_trip = restored.dictionary().Lookup(name);
    ASSERT_EQ(original.size(), round_trip.size()) << name;
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].entity, round_trip[i].entity);
      EXPECT_EQ(original[i].anchor_count, round_trip[i].anchor_count);
      EXPECT_DOUBLE_EQ(original[i].prior, round_trip[i].prior);
    }
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesLinksAndWeights) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;

  for (EntityId e = 0; e < kb().entity_count(); e += 7) {
    EXPECT_EQ(kb().links().InLinks(e), restored.links().InLinks(e));
    EXPECT_EQ(kb().links().OutLinks(e), restored.links().OutLinks(e));
    // Derived keyphrase statistics are recomputed identically.
    const auto& phrases_a = kb().keyphrases().EntityPhrases(e);
    const auto& phrases_b = restored.keyphrases().EntityPhrases(e);
    ASSERT_EQ(phrases_a.size(), phrases_b.size());
    for (size_t i = 0; i < phrases_a.size(); ++i) {
      EXPECT_EQ(kb().keyphrases().PhraseText(phrases_a[i]),
                restored.keyphrases().PhraseText(phrases_b[i]));
      EXPECT_NEAR(kb().keyphrases().PhraseMi(e, phrases_a[i]),
                  restored.keyphrases().PhraseMi(e, phrases_b[i]), 1e-12);
    }
  }
}

TEST_F(KbSerializationTest, RoundTripPreservesTaxonomy) {
  std::string buffer = SerializeKnowledgeBase(kb());
  auto loaded = DeserializeKnowledgeBase(buffer);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeBase& restored = **loaded;
  ASSERT_EQ(restored.taxonomy().size(), kb().taxonomy().size());
  for (TypeId t = 0; t < kb().taxonomy().size(); ++t) {
    EXPECT_EQ(restored.taxonomy().TypeName(t), kb().taxonomy().TypeName(t));
    EXPECT_EQ(restored.taxonomy().Parent(t), kb().taxonomy().Parent(t));
  }
}

TEST_F(KbSerializationTest, RejectsGarbage) {
  auto result = DeserializeKnowledgeBase("not a knowledge base at all");
  EXPECT_FALSE(result.ok());
}

TEST_F(KbSerializationTest, RejectsTruncation) {
  std::string buffer = SerializeKnowledgeBase(kb());
  for (size_t cut : {size_t{4}, buffer.size() / 2, buffer.size() - 3}) {
    auto result = DeserializeKnowledgeBase(
        std::string_view(buffer.data(), cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST_F(KbSerializationTest, RejectsTrailingBytes) {
  std::string buffer = SerializeKnowledgeBase(kb());
  buffer += "junk";
  EXPECT_FALSE(DeserializeKnowledgeBase(buffer).ok());
}

TEST_F(KbSerializationTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aida_kb_test.bin";
  ASSERT_TRUE(SaveKnowledgeBase(kb(), path).ok());
  auto loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->entity_count(), kb().entity_count());
}

}  // namespace
}  // namespace aida::kb
