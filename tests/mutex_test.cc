// Tests for the annotated concurrency primitives (util/mutex.h): the
// util::Mutex / util::MutexLock / util::CondVar wrappers every component
// of the concurrency stack now locks through, and the debug lock-rank
// checker that turns lock-order inversions into immediate reports
// instead of latent deadlocks. The compile-time side of the contracts
// (guarded_by rejection of unguarded accesses) is exercised by
// tools/run_static_analysis.sh via tools/static_analysis/*.cc — a
// runtime test cannot observe a compile error.

#include "util/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace aida::util {
namespace {

// ---------------------------------------------------------------------------
// Mutex + MutexLock

TEST(MutexTest, GuardedCounterIsExactUnderContention) {
  Mutex mutex;
  long counter AIDA_GUARDED_BY(mutex) = 0;

  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(&mutex);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrementsPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.Lock();

  // Another thread must not get the lock while we hold it.
  std::atomic<bool> try_result{true};
  std::thread contender([&] { try_result = mutex.TryLock(); });
  contender.join();
  EXPECT_FALSE(try_result.load());

  mutex.Unlock();
  std::thread taker([&] {
    try_result = mutex.TryLock();
    if (try_result) mutex.Unlock();
  });
  taker.join();
  EXPECT_TRUE(try_result.load());
}

TEST(MutexTest, AssertHeldPassesForTheHoldingThread) {
  Mutex mutex;
  MutexLock lock(&mutex);
  // Must not abort: the calling thread holds the mutex. (The failing
  // direction is a debug-build abort and is intentionally not exercised
  // in-process.)
  AIDA_ASSERT_HELD(mutex);
}

// ---------------------------------------------------------------------------
// CondVar

TEST(CondVarTest, WaitObservesStateChangedUnderTheMutex) {
  Mutex mutex;
  bool ready AIDA_GUARDED_BY(mutex) = false;
  CondVar cv;

  std::thread waiter([&] {
    MutexLock lock(&mutex);
    while (!ready) cv.Wait(mutex);
    // Mutex is held again on wakeup; mutate to prove it.
    ready = false;
  });

  {
    MutexLock lock(&mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();

  MutexLock lock(&mutex);
  EXPECT_FALSE(ready);  // the waiter ran its locked post-wait section
}

TEST(CondVarTest, PredicateOverloadWaits) {
  Mutex mutex;
  int stage AIDA_GUARDED_BY(mutex) = 0;
  CondVar cv;

  std::thread waiter([&] {
    MutexLock lock(&mutex);
    // The predicate runs under the mutex (see the header's note on
    // annotating lambdas that touch guarded state).
    cv.Wait(mutex, [&]() AIDA_REQUIRES(mutex) { return stage == 2; });
    stage = 3;
  });

  for (int next = 1; next <= 2; ++next) {
    {
      MutexLock lock(&mutex);
      stage = next;
    }
    cv.NotifyAll();
  }
  waiter.join();

  MutexLock lock(&mutex);
  EXPECT_EQ(stage, 3);
}

TEST(CondVarTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(&mutex);
  const bool notified = cv.WaitFor(mutex, std::chrono::milliseconds(10));
  EXPECT_FALSE(notified);
}

TEST(CondVarTest, WaitForReturnsTrueOnNotification) {
  Mutex mutex;
  bool waiting AIDA_GUARDED_BY(mutex) = false;
  bool ready AIDA_GUARDED_BY(mutex) = false;
  CondVar cv;
  std::atomic<bool> saw_notification{false};

  std::thread waiter([&] {
    MutexLock lock(&mutex);
    waiting = true;
    cv.NotifyAll();
    while (!ready) {
      if (cv.WaitFor(mutex, std::chrono::seconds(30))) {
        saw_notification = true;
      }
    }
  });

  {
    // Handshake: only notify once the waiter is provably inside WaitFor
    // (it set `waiting` under the mutex we are about to reacquire), so
    // the notification cannot land before the wait begins.
    MutexLock lock(&mutex);
    while (!waiting) cv.Wait(mutex);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(saw_notification.load());
}

// ---------------------------------------------------------------------------
// Lock-rank checker

/// Records violations instead of aborting so the inversion paths are
/// testable in-process; restores the default handler and the build's
/// default checking mode on destruction.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    violations().clear();
    previous_handler_ = SetLockRankViolationHandler(&Record);
    previously_enabled_ = LockRankCheckingEnabled();
    EnableLockRankChecking(true);
  }

  void TearDown() override {
    SetLockRankViolationHandler(previous_handler_);
    EnableLockRankChecking(previously_enabled_);
  }

  static std::vector<LockRankViolation>& violations() {
    static std::vector<LockRankViolation> recorded;
    return recorded;
  }

 private:
  static void Record(const LockRankViolation& violation) {
    violations().push_back(violation);
  }

  LockRankViolationHandler previous_handler_ = nullptr;
  bool previously_enabled_ = false;
};

TEST_F(LockRankTest, AscendingAcquisitionPasses) {
  Mutex service(lock_rank::kServiceStop);
  Mutex queue(lock_rank::kBoundedQueue);
  Mutex shard(lock_rank::kRelatednessShard);
  {
    MutexLock outer(&service);
    MutexLock middle(&queue);
    MutexLock inner(&shard);
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, InversionIsDetectedAndReported) {
  Mutex queue(lock_rank::kBoundedQueue);
  Mutex service(lock_rank::kServiceStop);
  {
    MutexLock outer(&queue);
    MutexLock inner(&service);  // kServiceStop < kBoundedQueue: inversion
  }
  ASSERT_EQ(violations().size(), 1u);
  EXPECT_EQ(violations()[0].held_rank, lock_rank::kBoundedQueue);
  EXPECT_EQ(violations()[0].acquiring_rank, lock_rank::kServiceStop);
}

TEST_F(LockRankTest, EqualRanksAreAnInversion) {
  // Two mutexes of the same family must never nest: strict increase is
  // the contract, so rank == rank reports.
  Mutex first(lock_rank::kWorkerPool);
  Mutex second(lock_rank::kWorkerPool);
  {
    MutexLock outer(&first);
    MutexLock inner(&second);
  }
  EXPECT_EQ(violations().size(), 1u);
}

TEST_F(LockRankTest, ReleaseResetsTheOrderSoSiblingsPass) {
  Mutex queue(lock_rank::kBoundedQueue);
  Mutex service(lock_rank::kServiceStop);
  // Sequential (non-nested) acquisition in any order is fine.
  { MutexLock lock(&queue); }
  { MutexLock lock(&service); }
  { MutexLock lock(&queue); }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, UnrankedMutexesAreExempt) {
  Mutex ranked(lock_rank::kRelatednessShard);
  Mutex unranked;
  {
    MutexLock outer(&ranked);
    MutexLock inner(&unranked);  // no rank: not part of the order
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, DisabledCheckerStaysSilent) {
  EnableLockRankChecking(false);
  Mutex queue(lock_rank::kBoundedQueue);
  Mutex service(lock_rank::kServiceStop);
  {
    MutexLock outer(&queue);
    MutexLock inner(&service);  // would report if checking were on
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, CondVarWaitReleasesAndReacquiresTheRank) {
  Mutex pool(lock_rank::kWorkerPool);
  bool ready AIDA_GUARDED_BY(pool) = false;
  CondVar cv;

  std::thread waiter([&] {
    MutexLock lock(&pool);
    while (!ready) cv.Wait(pool);
  });

  // While the waiter sleeps inside Wait it must NOT count as holding the
  // pool rank on ITS thread — and this thread's independent acquisition
  // below is on a different thread's stack entirely, so neither side
  // reports.
  {
    MutexLock lock(&pool);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, NonAbortingHandlerStillAcquiresTheLock) {
  Mutex queue(lock_rank::kBoundedQueue);
  Mutex service(lock_rank::kServiceStop);
  MutexLock outer(&queue);
  MutexLock inner(&service);
  EXPECT_EQ(violations().size(), 1u);
  // The inversion was reported but the recording handler returned; the
  // lock is genuinely held, so the guarded contract still holds.
  AIDA_ASSERT_HELD(service);
}

// ---------------------------------------------------------------------------
// The production lock order, end to end

TEST_F(LockRankTest, DeclaredStackOrderIsStrictlyIncreasing) {
  const int ranks[] = {
      lock_rank::kServiceStop,     lock_rank::kSnapshotPublish,
      lock_rank::kBoundedQueue,    lock_rank::kWorkerPool,
      lock_rank::kServiceMetrics,  lock_rank::kCandidateStore,
      lock_rank::kRelatednessShard, lock_rank::kParallelForState,
  };
  for (size_t i = 1; i < std::size(ranks); ++i) {
    EXPECT_LT(ranks[i - 1], ranks[i])
        << "lock_ranks.h order must stay strictly increasing";
  }
}

}  // namespace
}  // namespace aida::util
