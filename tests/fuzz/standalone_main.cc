// Replay driver linked into the fuzz targets when they are built WITHOUT
// -DAIDA_FUZZERS=ON (i.e. without libFuzzer, on any compiler). It feeds
// every file under the given paths through LLVMFuzzerTestOneInput once, so
// the checked-in corpora — including the regression inputs for fixed
// crashers — run as ordinary ctest tests on toolchains that cannot build
// the coverage-guided fuzzers.
//
// Arguments mirror a libFuzzer replay invocation: flags (anything starting
// with '-', e.g. -runs=0) are ignored, files are replayed directly, and
// directories are walked recursively. This lets CMake register ONE test
// command that works in both build modes.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::fprintf(stderr, "replay: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer-style flag
    std::filesystem::path path(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        ok = ReplayFile(entry.path()) && ok;
        ++replayed;
      }
    } else {
      ok = ReplayFile(path) && ok;
      ++replayed;
    }
  }
  std::fprintf(stderr, "replayed %zu corpus inputs without a check failure\n",
               replayed);
  return ok && replayed > 0 ? 0 : 1;
}
