// Fuzz target for the KB snapshot deserializer — the highest-stakes
// untrusted surface in the system: kb::SnapshotRegistry hot-reloads these
// bytes into a live service, so a malformed snapshot that crashes the
// parser crashes production. Contract under test:
//
//   * arbitrary bytes either load or come back as an error Status —
//     never a crash, check failure, overflow, or sanitizer report;
//   * any accepted payload re-serializes into a buffer that loads again
//     with the same entity/taxonomy shape (canonicalization round-trip).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "kb/kb_serialization.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  auto loaded = aida::kb::DeserializeKnowledgeBase(input);
  if (!loaded.ok()) return 0;  // clean rejection is the expected path

  const aida::kb::KnowledgeBase& kb = **loaded;
  std::string canonical = aida::kb::SerializeKnowledgeBase(kb);
  auto reloaded = aida::kb::DeserializeKnowledgeBase(canonical);
  AIDA_CHECK(reloaded.ok(), "accepted payload failed to round-trip: %s",
             reloaded.status().ToString().c_str());
  AIDA_CHECK((*reloaded)->entity_count() == kb.entity_count(),
             "entity count diverged across round-trip: %zu vs %zu",
             (*reloaded)->entity_count(), kb.entity_count());
  AIDA_CHECK((*reloaded)->taxonomy().size() == kb.taxonomy().size(),
             "taxonomy size diverged across round-trip: %zu vs %zu",
             (*reloaded)->taxonomy().size(), kb.taxonomy().size());
  return 0;
}
