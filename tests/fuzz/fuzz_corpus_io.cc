// Fuzz target for the line-based corpus format — the published-artifact
// equivalent of the paper's CoNLL-YAGO/AIDA-EE datasets, read back from
// disk where truncation and hand-editing are routine. Contract under test:
//
//   * arbitrary text either parses or returns an error Status — never a
//     crash or an out-of-range mention span surviving into the Corpus;
//   * an accepted corpus serializes and re-parses with the same document
//     count (this invariant caught the empty-token-line round-trip bug).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "corpus/corpus_io.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  auto corpus = aida::corpus::DeserializeCorpus(input);
  if (!corpus.ok()) return 0;

  for (const aida::corpus::Document& doc : *corpus) {
    for (const aida::corpus::GoldMention& m : doc.mentions) {
      AIDA_CHECK(m.begin_token < m.end_token &&
                     m.end_token <= doc.tokens.size(),
                 "accepted mention span [%zu, %zu) escapes %zu tokens",
                 m.begin_token, m.end_token, doc.tokens.size());
    }
  }

  std::string again = aida::corpus::SerializeCorpus(*corpus);
  auto reparsed = aida::corpus::DeserializeCorpus(again);
  AIDA_CHECK(reparsed.ok(), "accepted corpus failed to round-trip: %s",
             reparsed.status().ToString().c_str());
  AIDA_CHECK(reparsed->size() == corpus->size(),
             "document count diverged across round-trip: %zu vs %zu",
             reparsed->size(), corpus->size());
  return 0;
}
