// Fuzz target for the tokenizer + sentence splitter — raw document text is
// the most exposed input of all (every serving request carries some), and
// the ASCII-oriented rules must at minimum stay memory-safe on arbitrary
// bytes: UTF-8 multi-byte sequences, overlong encodings, lone
// continuation bytes, BOMs, NULs. Contract under test:
//
//   * token offsets are in-bounds, non-overlapping, and monotonically
//     increasing, and each token's text is exactly the input slice it
//     claims to cover;
//   * sentence spans partition the token range with no gaps or overlaps,
//     and SentenceOf agrees with the span that contains each token.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "text/sentence_splitter.h"
#include "text/tokenizer.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  aida::text::Tokenizer tokenizer;
  aida::text::TokenSequence tokens = tokenizer.Tokenize(input);

  size_t prev_end = 0;
  for (const aida::text::Token& t : tokens) {
    AIDA_CHECK(t.begin >= prev_end, "token at %zu overlaps previous end %zu",
               t.begin, prev_end);
    AIDA_CHECK(t.end > t.begin, "empty token span at %zu", t.begin);
    AIDA_CHECK(t.end <= input.size(), "token end %zu past input size %zu",
               t.end, input.size());
    AIDA_CHECK(t.text == input.substr(t.begin, t.end - t.begin),
               "token text does not match its claimed input slice");
    prev_end = t.end;
  }

  aida::text::SentenceSplitter splitter;
  std::vector<aida::text::SentenceSpan> sentences = splitter.Split(tokens);
  if (tokens.empty()) {
    AIDA_CHECK(sentences.empty(), "sentences without tokens");
    return 0;
  }
  size_t expected_begin = 0;
  for (const aida::text::SentenceSpan& s : sentences) {
    AIDA_CHECK(s.begin == expected_begin,
               "sentence begins at %zu, expected %zu", s.begin,
               expected_begin);
    AIDA_CHECK(s.end > s.begin, "empty sentence span at %zu", s.begin);
    expected_begin = s.end;
  }
  AIDA_CHECK(expected_begin == tokens.size(),
             "sentences cover %zu of %zu tokens", expected_begin,
             tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    size_t s = aida::text::SentenceSplitter::SentenceOf(sentences, i);
    AIDA_CHECK(s < sentences.size(), "SentenceOf out of range");
    AIDA_CHECK(i >= sentences[s].begin && i < sentences[s].end,
               "token %zu not inside its sentence [%zu, %zu)", i,
               sentences[s].begin, sentences[s].end);
  }
  return 0;
}
