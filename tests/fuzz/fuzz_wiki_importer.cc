// Fuzz target for ingest::WikiImporter — wiki-style article pages are the
// paper's Section 2.3.3 extraction input and arrive from whatever dump the
// operator points the importer at. Contract under test: any page text is
// either accepted or rejected with a Status by AddPage, and Build() on
// whatever subset was accepted always produces a knowledge base — no crash
// and no internal check failure (e.g. a category colliding with the root
// taxonomy type, which this harness caught as a crasher; see
// corpus/wiki_importer/crash-category-entity.txt).
//
// NUL bytes split the input into multiple pages so the fuzzer can explore
// cross-page interactions (red links, duplicate titles, shared anchors).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

#include "ingest/wiki_importer.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  aida::ingest::WikiImporter importer;
  size_t start = 0;
  while (start <= input.size()) {
    size_t nul = input.find('\0', start);
    std::string_view page =
        nul == std::string_view::npos
            ? input.substr(start)
            : input.substr(start, nul - start);
    // An error Status is a valid outcome for garbage; a crash is not.
    (void)importer.AddPage(page);
    if (nul == std::string_view::npos) break;
    start = nul + 1;
  }
  std::unique_ptr<aida::kb::KnowledgeBase> kb = std::move(importer).Build();
  AIDA_CHECK(kb != nullptr, "Build() must always produce a knowledge base");
  return 0;
}
