// Fuzz target for the flat (mmap-able) KB snapshot loader. Like the v1
// stream deserializer, this is a hot-reload surface: SnapshotRegistry
// maps these bytes straight into a serving process, and the loader's
// views alias the input buffer directly, so an unvalidated offset or
// hash slot would be an out-of-bounds read in production. Contract:
//
//   * arbitrary bytes either load or come back as an error Status —
//     never a crash, check failure, or sanitizer report;
//   * any accepted payload re-serializes into a canonical buffer that
//     loads again and re-serializes to the same bytes (canonicalization
//     is a fixed point; the input itself may differ in reserved fields,
//     padding, or section-table order and still be valid).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "kb/flat/flat_snapshot.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  auto loaded = aida::kb::flat::LoadFlatSnapshotFromString(input);
  if (!loaded.ok()) return 0;  // clean rejection is the expected path

  const aida::kb::KnowledgeBase& kb = **loaded;
  std::string canonical = aida::kb::flat::SerializeFlatSnapshot(kb);
  auto reloaded = aida::kb::flat::LoadFlatSnapshotFromString(canonical);
  AIDA_CHECK(reloaded.ok(), "accepted payload failed to reload: %s",
             reloaded.status().ToString().c_str());
  AIDA_CHECK((*reloaded)->entity_count() == kb.entity_count(),
             "entity count diverged across round-trip: %zu vs %zu",
             (*reloaded)->entity_count(), kb.entity_count());
  AIDA_CHECK(aida::kb::flat::SerializeFlatSnapshot(**reloaded) == canonical,
             "flat canonicalization is not a fixed point");
  return 0;
}
