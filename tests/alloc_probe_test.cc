// Tests for util/alloc_probe.h — the runtime half of the hot-path effect
// discipline (the compile-time half is -Wfunction-effects, see
// util/function_effects.h). Counter-exactness tests pin the interposer
// contract; the zero-allocation tests pin the request-path micro-paths
// that the AIDA_NONBLOCKING annotations promise stay off the allocator;
// the serving regression bounds the end-to-end residual churn of a warm
// cached request.
//
// Every test self-skips when interposition is compiled out (sanitizer
// builds define their own operator new, AIDA_DISABLE_ALLOC_PROBE opts
// out explicitly).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/aida.h"
#include "core/relatedness.h"
#include "core/relatedness_cache.h"
#include "kb/dictionary.h"
#include "serve/metrics.h"
#include "test_world.h"
#include "util/alloc_probe.h"

namespace aida {
namespace {

#define SKIP_WITHOUT_PROBE()                                             \
  if (!util::AllocProbeAvailable()) {                                    \
    GTEST_SKIP() << "global operator new interposition unavailable "     \
                    "(sanitizer build or AIDA_DISABLE_ALLOC_PROBE)";     \
  }

/// Publishing the pointer through an atomic the optimizer cannot see
/// through defeats C++14 allocation elision: GCC happily removes a
/// paired new/delete whose pointer never escapes, which would make these
/// counter-exactness tests assert on nothing.
std::atomic<void*> g_escape_sink{nullptr};

template <typename T>
T* Escape(T* pointer) {
  g_escape_sink.store(pointer, std::memory_order_relaxed);
  return pointer;
}

TEST(AllocProbeTest, CountsPlainNewAndDelete) {
  SKIP_WITHOUT_PROBE();
  util::ScopedAllocationCount probe;
  int* p = Escape(new int(7));
  EXPECT_EQ(probe.allocations(), 1u);
  EXPECT_EQ(probe.deallocations(), 0u);
  EXPECT_GE(probe.bytes_allocated(), sizeof(int));
  delete p;
  EXPECT_EQ(probe.allocations(), 1u);
  EXPECT_EQ(probe.deallocations(), 1u);
}

TEST(AllocProbeTest, ArrayNewAndDeleteAreSymmetric) {
  SKIP_WITHOUT_PROBE();
  util::ScopedAllocationCount probe;
  // std::string elements force the non-trivial-destructor new[] shape
  // (cookie-prefixed allocation) through the interposer.
  std::string* strings = Escape(new std::string[4]);
  double* doubles = Escape(new double[16]);
  const uint64_t allocs_after_new = probe.allocations();
  const uint64_t bytes_after_new = probe.bytes_allocated();
  delete[] strings;
  delete[] doubles;
  const uint64_t allocs_after_delete = probe.allocations();
  const uint64_t frees_after_delete = probe.deallocations();
  EXPECT_EQ(allocs_after_new, 2u);
  EXPECT_GE(bytes_after_new, 4 * sizeof(std::string) + 16 * sizeof(double));
  EXPECT_EQ(allocs_after_delete, 2u);
  EXPECT_EQ(frees_after_delete, 2u);
}

TEST(AllocProbeTest, NothrowAndOveralignedFormsAreCounted) {
  SKIP_WITHOUT_PROBE();
  struct alignas(64) Overaligned {
    unsigned char bytes[64];
  };
  util::ScopedAllocationCount probe;
  int* nothrow_int = Escape(new (std::nothrow) int(1));
  ASSERT_NE(nothrow_int, nullptr);
  Overaligned* aligned = Escape(new Overaligned);
  const uint64_t allocs = probe.allocations();
  const bool is_aligned = reinterpret_cast<uintptr_t>(aligned) % 64 == 0;
  delete nothrow_int;
  delete aligned;
  const uint64_t frees = probe.deallocations();
  EXPECT_TRUE(is_aligned);
  EXPECT_EQ(allocs, 2u);
  EXPECT_EQ(frees, 2u);
}

TEST(AllocProbeTest, NestedScopesSeeDisjointWindows) {
  SKIP_WITHOUT_PROBE();
  util::ScopedAllocationCount outer;
  delete Escape(new int(1));
  uint64_t inner_allocs_at_start = ~0ull;
  uint64_t inner_allocs = 0;
  uint64_t inner_frees = 0;
  {
    util::ScopedAllocationCount inner;
    inner_allocs_at_start = inner.allocations();
    delete Escape(new int(2));
    inner_allocs = inner.allocations();
    inner_frees = inner.deallocations();
  }
  const uint64_t outer_allocs = outer.allocations();
  const uint64_t outer_frees = outer.deallocations();
  EXPECT_EQ(inner_allocs_at_start, 0u);
  EXPECT_EQ(inner_allocs, 1u);
  EXPECT_EQ(inner_frees, 1u);
  EXPECT_EQ(outer_allocs, 2u);
  EXPECT_EQ(outer_frees, 2u);
}

TEST(AllocProbeTest, CountersArePerThread) {
  SKIP_WITHOUT_PROBE();
  int* cross_freed = Escape(new int(3));  // freed on the spawned thread
  util::AllocProbeCounters other_delta{};
  std::thread other([&] {
    // The window opens inside the thread body, past any start-up
    // allocations of the thread runtime itself.
    const util::AllocProbeCounters before = util::ThisThreadAllocCounts();
    delete Escape(new int(4));
    delete cross_freed;
    const util::AllocProbeCounters after = util::ThisThreadAllocCounts();
    other_delta.allocations = after.allocations - before.allocations;
    other_delta.deallocations = after.deallocations - before.deallocations;
  });
  // The main-thread window covers only the join: the spawned thread's
  // traffic (its own new/delete plus the cross-thread free of
  // cross_freed) must not leak into this thread's counters.
  util::ScopedAllocationCount main_probe;
  other.join();
  EXPECT_EQ(other_delta.allocations, 1u);
  EXPECT_EQ(other_delta.deallocations, 2u);
  EXPECT_EQ(main_probe.allocations(), 0u);
}

// ---------------------------------------------------------------------------
// Zero-allocation pins for the annotated request-path micro-operations.

TEST(AllocProbeTest, WarmDictionaryLookupDoesNotAllocate) {
  SKIP_WITHOUT_PROBE();
  kb::Dictionary dict;
  dict.AddAnchor("Alan Turing", 0, 9);
  dict.AddAnchor("Turing", 0, 5);
  dict.AddAnchor("AT", 0, 2);
  dict.Finalize();
  // Warm pass (first calls may touch lazily-built thread state).
  (void)dict.Lookup("Alan Turing");
  (void)dict.Lookup("AT");
  util::ScopedAllocationCount probe;
  for (int i = 0; i < 100; ++i) {
    // Long path (> 3 chars): the stack-buffer case fold that replaced
    // the old per-lookup std::string — the fix this test pins.
    ASSERT_FALSE(dict.Lookup("Alan Turing").empty());
    // Short path (<= 3 chars): exact-table probe.
    ASSERT_FALSE(dict.Lookup("AT").empty());
    // Miss: must not allocate either.
    ASSERT_TRUE(dict.Lookup("Unknown Name").empty());
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_EQ(probe.deallocations(), 0u);
}

TEST(AllocProbeTest, RelatednessCacheHitAndInsertDoNotAllocate) {
  SKIP_WITHOUT_PROBE();
  core::RelatednessCache cache;
  // Warm: first Insert/Lookup initializes the per-thread L1 block.
  cache.Insert(1, 2, 0.5);
  double value = 0.0;
  (void)cache.Lookup(1, 2, &value);
  util::ScopedAllocationCount probe;
  for (kb::EntityId e = 0; e < 200; ++e) {
    cache.Insert(e, e + 1, 0.25);
  }
  for (kb::EntityId e = 0; e < 200; ++e) {
    (void)cache.Lookup(e, e + 1, &value);
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_EQ(probe.deallocations(), 0u);
}

TEST(AllocProbeTest, LatencyHistogramRecordDoesNotAllocate) {
  SKIP_WITHOUT_PROBE();
  serve::LatencyHistogram histogram;
  histogram.Record(0.001);  // warm
  util::ScopedAllocationCount probe;
  for (int i = 0; i < 1000; ++i) {
    histogram.Record(0.0001 * (i + 1));
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_EQ(probe.deallocations(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end serving regression: warm cached requests stay within the
// committed steady-state allocation bound.

TEST(AllocProbeTest, WarmCachedRequestStaysWithinAllocationBound) {
  SKIP_WITHOUT_PROBE();
  const testing::TestWorld& world = testing::TestWorld::Get();
  core::CandidateModelStore models(world.world.knowledge_base.get());
  core::MilneWittenRelatedness mw(world.world.knowledge_base.get());
  core::RelatednessCache cache;
  core::CachedRelatednessMeasure cached_mw(&mw, &cache);
  core::Aida aida(&models, &cached_mw, core::AidaOptions());

  std::vector<core::DisambiguationProblem> work;
  for (size_t d = 0; d < 4 && d < world.corpus.size(); ++d) {
    const corpus::Document& doc = world.corpus[d];
    core::DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    work.push_back(std::move(problem));
  }
  ASSERT_FALSE(work.empty());

  // Two warm passes: fill the relatedness cache for these documents and
  // any lazily-built thread-local state, exactly like a warmed worker.
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::DisambiguationProblem& problem : work) {
      (void)aida.Disambiguate(problem, {});
    }
  }

  util::ScopedAllocationCount probe;
  for (const core::DisambiguationProblem& problem : work) {
    (void)aida.Disambiguate(problem, {});
  }
  const double per_request =
      static_cast<double>(probe.allocations()) / work.size();

  // Committed steady-state bound for the TestWorld documents (150 tokens,
  // ~7 entities). The residual traffic is per-request result assembly and
  // per-document graph scratch — measured well under half this bound on
  // the reference toolchain; the headroom absorbs library differences,
  // not new per-pair or per-lookup churn, which would blow through it.
  // Raising the bound requires explaining which new allocation is
  // justified (see DESIGN.md §6).
  constexpr double kAllocsPerRequestBound = 20000.0;
  EXPECT_LE(per_request, kAllocsPerRequestBound)
      << "steady-state allocations per warm cached request regressed";
  // Steady state also means no monotone growth: frees keep pace with
  // allocations across the window (within one request's worth of slack
  // for caches that legitimately retain).
  EXPECT_GE(static_cast<double>(probe.deallocations()),
            0.9 * static_cast<double>(probe.allocations()));
}

}  // namespace
}  // namespace aida
