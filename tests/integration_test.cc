#include <gtest/gtest.h>

#include "apps/entity_search.h"
#include "core/aida.h"
#include "core/baselines.h"
#include "eval/metrics.h"
#include "kore/kore_lsh.h"
#include "kore/kore_relatedness.h"
#include "nlp/ner_tagger.h"
#include "test_world.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace aida {
namespace {

using ::aida::testing::TestWorld;

core::DisambiguationProblem ToProblem(const corpus::Document& doc) {
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  return problem;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : world_(TestWorld::Get().world),
        corpus_(TestWorld::Get().corpus),
        models_(world_.knowledge_base.get()) {}

  double Accuracy(const core::NedSystem& system, size_t docs) {
    eval::NedEvaluator evaluator;
    for (size_t d = 0; d < docs && d < corpus_.size(); ++d) {
      core::DisambiguationProblem problem = ToProblem(corpus_[d]);
      evaluator.AddDocument(corpus_[d], system.Disambiguate(problem, {}));
    }
    return evaluator.MicroAccuracy();
  }

  const synth::World& world_;
  const corpus::Corpus& corpus_;
  core::CandidateModelStore models_;
};

// The headline claim of chapter 3: full AIDA (prior test + keyphrase
// similarity + coherence test) beats the prior-only baseline and plain
// local similarity.
TEST_F(IntegrationTest, AidaPipelineOrdering) {
  core::MilneWittenRelatedness mw(world_.knowledge_base.get());

  core::AidaOptions sim_only;
  sim_only.use_prior = false;
  sim_only.use_coherence = false;
  core::Aida aida_sim(&models_, &mw, sim_only);

  core::AidaOptions full;
  core::Aida aida_full(&models_, &mw, full);

  core::PriorBaseline prior(&models_);

  double acc_prior = Accuracy(prior, 20);
  double acc_sim = Accuracy(aida_sim, 20);
  double acc_full = Accuracy(aida_full, 20);

  EXPECT_GT(acc_full, acc_prior);
  EXPECT_GE(acc_full, acc_sim - 0.02);
  EXPECT_GT(acc_full, 0.6);
}

// Chapter 4: KORE-based coherence disambiguates about as well as MW on a
// general corpus, and the LSH variants stay close to exact KORE.
TEST_F(IntegrationTest, KoreVariantsCloseToExact) {
  kore::KoreRelatedness kore;
  kore::KoreLshRelatedness lsh_g =
      kore::KoreLshRelatedness::Good(&world_.knowledge_base->keyphrases());

  core::AidaOptions options;
  core::Aida aida_kore(&models_, &kore, options);
  core::Aida aida_lsh(&models_, &lsh_g, options);

  double acc_kore = Accuracy(aida_kore, 15);
  double acc_lsh = Accuracy(aida_lsh, 15);
  EXPECT_GT(acc_kore, 0.6);
  EXPECT_GT(acc_lsh, acc_kore - 0.1);
}

// Raw text to entities: tokenizer -> NER -> AIDA, no gold mention spans.
TEST_F(IntegrationTest, RawTextPipeline) {
  core::MilneWittenRelatedness mw(world_.knowledge_base.get());
  core::Aida aida(&models_, &mw, core::AidaOptions());

  // Reconstruct a document's text and run the full stack.
  const corpus::Document& doc = corpus_.front();
  std::string text = util::Join(doc.tokens, " ");
  text::Tokenizer tokenizer;
  text::TokenSequence tokens = tokenizer.Tokenize(text);
  nlp::NerTagger::Options ner_options;
  ner_options.emit_unknown_spans = false;
  nlp::NerTagger ner(&world_.knowledge_base->dictionary(), ner_options);
  std::vector<nlp::MentionSpan> mentions = ner.Recognize(tokens);
  ASSERT_FALSE(mentions.empty());

  std::vector<std::string> token_texts;
  for (const text::Token& t : tokens) token_texts.push_back(t.text);
  core::DisambiguationProblem problem;
  problem.tokens = &token_texts;
  for (const nlp::MentionSpan& span : mentions) {
    core::ProblemMention pm;
    pm.surface = span.text;
    pm.begin_token = span.begin_token;
    pm.end_token = span.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  core::DisambiguationResult result = aida.Disambiguate(problem, {});
  size_t resolved = 0;
  for (const core::MentionResult& m : result.mentions) {
    if (m.entity != kb::kNoEntity) ++resolved;
  }
  EXPECT_GT(resolved, mentions.size() / 2);
}

// NED output feeds the search application: a document retrieved by the
// entity it mentions, regardless of surface form.
TEST_F(IntegrationTest, NedFeedsEntitySearch) {
  core::MilneWittenRelatedness mw(world_.knowledge_base.get());
  core::Aida aida(&models_, &mw, core::AidaOptions());
  apps::EntitySearch search(world_.knowledge_base.get());

  std::vector<std::vector<kb::EntityId>> per_doc;
  for (size_t d = 0; d < 10; ++d) {
    core::DisambiguationProblem problem = ToProblem(corpus_[d]);
    core::DisambiguationResult result = aida.Disambiguate(problem, {});
    std::vector<kb::EntityId> entities;
    for (const core::MentionResult& m : result.mentions) {
      entities.push_back(m.entity);
    }
    search.IndexDocument(corpus_[d], entities);
    per_doc.push_back(std::move(entities));
  }

  // Query for some disambiguated entity.
  for (size_t d = 0; d < per_doc.size(); ++d) {
    for (kb::EntityId e : per_doc[d]) {
      if (e == kb::kNoEntity) continue;
      apps::EntitySearch::Query query;
      query.entities.push_back(e);
      bool found = false;
      for (const auto& hit : search.Search(query, 20)) {
        found |= (hit.doc_index == d);
      }
      EXPECT_TRUE(found);
      return;
    }
  }
  FAIL() << "no disambiguated entity found";
}

}  // namespace
}  // namespace aida
