// Entity relatedness with KORE vs Milne-Witten (chapter 4): the paper's
// "Cash performed Jackson" scenario. The song has NO Wikipedia-style
// links (a long-tail entity), so the link-based MW measure is blind to
// its tight connection with the singer — while the keyphrase-overlap
// measure sees it.

#include <cstdio>

#include "core/candidates.h"
#include "core/relatedness.h"
#include "kb/kb_builder.h"
#include "kore/keyterm_cosine.h"
#include "kore/kore_relatedness.h"

using namespace aida;

int main() {
  kb::KbBuilder builder;
  kb::EntityId cash = builder.AddEntity("Johnny_Cash");
  kb::EntityId jackson_song = builder.AddEntity("Jackson_(song)");
  kb::EntityId jackson_city = builder.AddEntity("Jackson_Mississippi");
  kb::EntityId nashville = builder.AddEntity("Nashville");

  builder.AddName("Cash", cash, 50);
  builder.AddName("Jackson", jackson_song, 5);
  builder.AddName("Jackson", jackson_city, 60);
  builder.AddName("Nashville", nashville, 40);

  builder.AddKeyphrase(cash, "country singer");
  builder.AddKeyphrase(cash, "man in black");
  builder.AddKeyphrase(cash, "june carter duet");
  builder.AddKeyphrase(cash, "folsom prison");
  builder.AddKeyphrase(cash, "nashville sound");

  // The long-tail song: keyphrases from a music portal, NO links.
  builder.AddKeyphrase(jackson_song, "june carter duet");
  builder.AddKeyphrase(jackson_song, "country singer classic");
  builder.AddKeyphrase(jackson_song, "grammy winning duet");

  builder.AddKeyphrase(jackson_city, "state capital");
  builder.AddKeyphrase(jackson_city, "mississippi river");
  builder.AddKeyphrase(nashville, "country music capital");
  builder.AddKeyphrase(nashville, "tennessee city");

  // Links exist only among the popular entities; the song has none.
  builder.AddLink(cash, nashville);
  builder.AddLink(nashville, cash);
  builder.AddLink(jackson_city, nashville);
  builder.AddLink(jackson_city, cash);
  builder.AddLink(nashville, jackson_city);

  std::unique_ptr<kb::KnowledgeBase> kb = std::move(builder).Build();
  core::CandidateModelStore models(kb.get());

  core::MilneWittenRelatedness mw(kb.get());
  kore::KoreRelatedness kore;
  kore::KeytermCosineRelatedness kwcs(
      kore::KeytermCosineRelatedness::Mode::kKeyword);
  kore::KeytermCosineRelatedness kpcs(
      kore::KeytermCosineRelatedness::Mode::kKeyphrase);

  auto candidate = [&](kb::EntityId e) {
    core::Candidate c;
    c.entity = e;
    c.model = models.ModelFor(e);
    return c;
  };
  auto report = [&](const char* label, kb::EntityId a, kb::EntityId b) {
    std::printf("%-36s  MW %.4f  KORE %.4f  KWCS %.4f  KPCS %.4f\n", label,
                mw.Relatedness(candidate(a), candidate(b)),
                kore.Relatedness(candidate(a), candidate(b)),
                kwcs.Relatedness(candidate(a), candidate(b)),
                kpcs.Relatedness(candidate(a), candidate(b)));
  };

  std::printf("pair%34s  link-based   keyphrase-based measures\n", "");
  report("Johnny_Cash ~ Jackson_(song)", cash, jackson_song);
  report("Johnny_Cash ~ Jackson_Mississippi", cash, jackson_city);
  report("Johnny_Cash ~ Nashville", cash, nashville);

  std::printf(
      "\nThe song is link-poor, so MW scores it zero against the singer —\n"
      "the keyphrase measures capture the connection (shared 'june carter\n"
      "duet' and 'country singer' phrases), which is what lets KORE-based\n"
      "disambiguation resolve 'The audience got wild when Cash performed\n"
      "Jackson.' to the song instead of the more popular city.\n");
  return 0;
}
