// Emerging-entity discovery on a miniature news stream: the paper's
// running example. "Prism" and "Snowden" exist in the knowledge base only
// as a band and a small town; a burst of news articles about a
// surveillance program and a whistleblower should surface TWO emerging
// entities rather than being forced onto the wrong in-KB candidates.

#include <cstdio>

#include "core/aida.h"
#include "ee/ee_discovery.h"
#include "kb/kb_builder.h"
#include "kore/kore_relatedness.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

using namespace aida;

namespace {

// Builds a document from raw text, treating the listed surface names as
// the (gold-recognized) mentions.
corpus::Document MakeDoc(const std::string& text,
                         const std::vector<std::string>& mention_names,
                         int64_t day) {
  corpus::Document doc;
  text::Tokenizer tokenizer;
  for (const text::Token& token : tokenizer.Tokenize(text)) {
    doc.tokens.push_back(token.text);
  }
  doc.day = day;
  for (size_t i = 0; i < doc.tokens.size(); ++i) {
    for (const std::string& name : mention_names) {
      std::vector<std::string> parts = util::Split(name, ' ');
      if (i + parts.size() > doc.tokens.size()) continue;
      bool match = true;
      for (size_t k = 0; k < parts.size(); ++k) {
        if (doc.tokens[i + k] != parts[k]) match = false;
      }
      if (match) {
        corpus::GoldMention m;
        m.surface = name;
        m.begin_token = i;
        m.end_token = i + parts.size();
        doc.mentions.push_back(m);
      }
    }
  }
  return doc;
}

}  // namespace

int main() {
  // ---- Knowledge base: the OLD senses of the ambiguous names ----------------
  kb::KbBuilder builder;
  kb::EntityId prism_band = builder.AddEntity("Prism_(band)");
  kb::EntityId snowden_town = builder.AddEntity("Snowden_WA");
  kb::EntityId washington_state = builder.AddEntity("Washington_(state)");
  kb::EntityId us_government = builder.AddEntity("US_Government");

  builder.AddName("Prism", prism_band, 40);
  builder.AddName("Snowden", snowden_town, 30);
  builder.AddName("Washington", washington_state, 60);
  builder.AddName("Washington", us_government, 40);

  builder.AddKeyphrase(prism_band, "canadian rock band");
  builder.AddKeyphrase(prism_band, "studio album");
  builder.AddKeyphrase(snowden_town, "small town");
  builder.AddKeyphrase(snowden_town, "yakima county");
  builder.AddKeyphrase(snowden_town, "washington state");
  builder.AddKeyphrase(washington_state, "pacific northwest");
  builder.AddKeyphrase(washington_state, "evergreen state");
  builder.AddKeyphrase(us_government, "federal agencies");
  builder.AddKeyphrase(us_government, "intelligence services");
  builder.AddLink(snowden_town, washington_state);
  builder.AddLink(washington_state, snowden_town);
  std::unique_ptr<kb::KnowledgeBase> kb = std::move(builder).Build();

  // ---- A few days of news about the NEW entities ----------------------------
  corpus::Corpus stream;
  stream.push_back(MakeDoc(
      "Reports describe Prism as a secret surveillance program collecting "
      "internet communications . The surveillance program Prism was run by "
      "intelligence services .",
      {"Prism"}, 1));
  stream.push_back(MakeDoc(
      "The whistleblower Snowden leaked classified documents about the "
      "surveillance program . Snowden was a contractor for intelligence "
      "services before becoming a whistleblower .",
      {"Snowden", "Prism"}, 1));
  stream.push_back(MakeDoc(
      "Snowden the whistleblower revealed that Prism , a surveillance "
      "program , collected internet communications . The leaked classified "
      "documents shocked the public .",
      {"Snowden", "Prism"}, 2));

  // ---- The test sentence -----------------------------------------------------
  corpus::Document test = MakeDoc(
      "Washington 's program Prism was revealed by the whistleblower "
      "Snowden , according to leaked classified documents .",
      {"Washington", "Prism", "Snowden"}, 2);

  core::CandidateModelStore models(kb.get());
  kore::KoreRelatedness kore;
  core::Aida aida(&models, &kore, core::AidaOptions());

  // Without EE modeling: the mentions are forced onto the wrong in-KB
  // senses.
  {
    core::DisambiguationProblem problem;
    problem.tokens = &test.tokens;
    for (const corpus::GoldMention& gm : test.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    core::DisambiguationResult result = aida.Disambiguate(problem, {});
    std::printf("plain NED (no emerging-entity model):\n");
    for (size_t m = 0; m < test.mentions.size(); ++m) {
      std::printf("  %-12s -> %s\n", test.mentions[m].surface.c_str(),
                  result.mentions[m].entity == kb::kNoEntity
                      ? "<no candidate>"
                      : kb->entities()
                            .Get(result.mentions[m].entity)
                            .canonical_name.c_str());
    }
  }

  // With NED-EE: placeholders built from the news chunk win for the new
  // senses, while "Washington" stays with an in-KB entity.
  ee::EeDiscoveryOptions options;
  options.harvest_days = 3;
  options.gamma = 0.4;
  options.harvest_existing = false;
  ee::EmergingEntityDiscoverer discoverer(&models, &aida, &stream, options);
  core::DisambiguationResult result = discoverer.Discover(test);
  std::printf("\nNED-EE (placeholder candidates from the news stream):\n");
  for (size_t m = 0; m < test.mentions.size(); ++m) {
    std::printf("  %-12s -> %s\n", test.mentions[m].surface.c_str(),
                result.mentions[m].chose_placeholder
                    ? "<EMERGING ENTITY>"
                    : (result.mentions[m].entity == kb::kNoEntity
                           ? "<no candidate>"
                           : kb->entities()
                                 .Get(result.mentions[m].entity)
                                 .canonical_name.c_str()));
  }

  // Show the strongest harvested phrases of the "Prism" placeholder.
  auto model = discoverer.PlaceholderModel("Prism", 2);
  std::printf("\nstrongest harvested keyphrases for the 'Prism' placeholder:\n");
  size_t shown = 0;
  for (const core::CandidatePhrase& phrase : model->phrases) {
    if (shown++ >= 5) break;
    std::printf("  (%.3f)", phrase.phrase_weight);
    for (kb::WordId w : phrase.words) {
      // Extension words live past the KB vocabulary; the discoverer's
      // vocabulary resolves both.
      const std::string word(discoverer.vocab().Text(w));
      std::printf(" %s", word.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
