// Quickstart: build a tiny knowledge base by hand, then disambiguate the
// paper's running example — "They performed Kashmir, written by Page and
// Plant. Page played unusual chords on his Gibson." — where coherence must
// pull "Kashmir" to the song, "Page" to the guitarist, and "Gibson" to the
// guitar model rather than the popular alternatives.

#include <cstdio>

#include "core/aida.h"
#include "core/candidates.h"
#include "core/relatedness.h"
#include "kb/kb_builder.h"
#include "nlp/ner_tagger.h"
#include "text/tokenizer.h"

using namespace aida;

int main() {
  // ---- 1. Build a miniature knowledge base --------------------------------
  kb::KbBuilder builder;

  kb::EntityId kashmir_song = builder.AddEntity("Kashmir_(song)");
  kb::EntityId kashmir_region = builder.AddEntity("Kashmir_(region)");
  kb::EntityId jimmy = builder.AddEntity("Jimmy_Page");
  kb::EntityId larry = builder.AddEntity("Larry_Page");
  kb::EntityId plant = builder.AddEntity("Robert_Plant");
  kb::EntityId gibson_guitar = builder.AddEntity("Gibson_Les_Paul");
  kb::EntityId gibson_town = builder.AddEntity("Gibson_Missouri");

  // Names with anchor counts: the region and Larry Page are the popular
  // senses, so a prior-only system gets this sentence wrong.
  builder.AddName("Kashmir", kashmir_region, 90);
  builder.AddName("Kashmir", kashmir_song, 6);
  builder.AddName("Page", larry, 70);
  builder.AddName("Page", jimmy, 30);
  builder.AddName("Plant", plant, 10);
  builder.AddName("Gibson", gibson_town, 55);
  builder.AddName("Gibson", gibson_guitar, 45);

  builder.AddKeyphrase(kashmir_song, "led zeppelin");
  builder.AddKeyphrase(kashmir_song, "unusual chords");
  builder.AddKeyphrase(kashmir_song, "rock song");
  builder.AddKeyphrase(kashmir_region, "himalaya mountains");
  builder.AddKeyphrase(kashmir_region, "disputed territory");
  builder.AddKeyphrase(jimmy, "led zeppelin");
  builder.AddKeyphrase(jimmy, "session guitarist");
  builder.AddKeyphrase(jimmy, "gibson signature model");
  builder.AddKeyphrase(larry, "search engine");
  builder.AddKeyphrase(larry, "stanford university");
  builder.AddKeyphrase(plant, "led zeppelin");
  builder.AddKeyphrase(plant, "rock singer");
  builder.AddKeyphrase(gibson_guitar, "electric guitar");
  builder.AddKeyphrase(gibson_guitar, "jimmy page signature model");
  builder.AddKeyphrase(gibson_town, "small town");
  builder.AddKeyphrase(gibson_town, "missouri county");

  // Wikipedia-style links among the music entities.
  builder.AddLink(kashmir_song, jimmy);
  builder.AddLink(kashmir_song, plant);
  builder.AddLink(jimmy, plant);
  builder.AddLink(plant, jimmy);
  builder.AddLink(jimmy, gibson_guitar);
  builder.AddLink(gibson_guitar, jimmy);
  builder.AddLink(plant, kashmir_song);
  builder.AddLink(jimmy, kashmir_song);

  std::unique_ptr<kb::KnowledgeBase> kb = std::move(builder).Build();

  // ---- 2. Recognize mentions in raw text ----------------------------------
  const char* input =
      "They performed Kashmir written by Page and Plant . "
      "Page played unusual chords on his Gibson .";
  text::Tokenizer tokenizer;
  text::TokenSequence tokens = tokenizer.Tokenize(input);
  nlp::NerTagger ner(&kb->dictionary());
  std::vector<nlp::MentionSpan> mentions = ner.Recognize(tokens);

  std::vector<std::string> token_texts;
  for (const text::Token& t : tokens) token_texts.push_back(t.text);

  // ---- 3. Disambiguate jointly with AIDA -----------------------------------
  core::CandidateModelStore models(kb.get());
  core::MilneWittenRelatedness relatedness(kb.get());
  core::AidaOptions options;
  core::Aida aida(&models, &relatedness, options);

  core::DisambiguationProblem problem;
  problem.tokens = &token_texts;
  for (const nlp::MentionSpan& span : mentions) {
    core::ProblemMention pm;
    pm.surface = span.text;
    pm.begin_token = span.begin_token;
    pm.end_token = span.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  core::DisambiguationResult result = aida.Disambiguate(problem, {});

  // ---- 4. Report ------------------------------------------------------------
  std::printf("input: %s\n\n", input);
  std::printf("%-12s -> %-20s (score %.3f)\n", "mention", "entity", 0.0);
  for (size_t m = 0; m < mentions.size(); ++m) {
    const core::MentionResult& r = result.mentions[m];
    std::printf("%-12s -> %-20s (score %.3f)\n", mentions[m].text.c_str(),
                r.entity == kb::kNoEntity
                    ? "<out of KB>"
                    : kb->entities().Get(r.entity).canonical_name.c_str(),
                r.score);
  }
  return 0;
}
