// Strings, things, and cats (chapter 6): disambiguate a synthetic news
// stream with AIDA, index it with EntitySearch, and demonstrate the three
// query levels plus trending analytics — the STICS use cases.

#include <cstdio>

#include "apps/entity_search.h"
#include "apps/news_analytics.h"
#include "core/aida.h"
#include "core/batch.h"
#include "kore/kore_relatedness.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

using namespace aida;

int main() {
  // A small world and a two-week stream.
  synth::WorldConfig world_config;
  world_config.seed = 2024;
  world_config.num_topics = 10;
  world_config.num_entities = 800;
  world_config.num_shared_names = 200;
  synth::World world = synth::WorldGenerator(world_config).Generate();

  synth::CorpusConfig corpus_config;
  corpus_config.seed = 2025;
  corpus_config.num_documents = 200;
  corpus_config.doc_tokens = 120;
  corpus_config.entities_per_doc = 8;
  corpus_config.linked_entity_prob = 0.5;
  corpus_config.first_day = 0;
  corpus_config.last_day = 13;
  corpus::Corpus stream =
      synth::CorpusGenerator(&world, corpus_config).Generate();

  // ---- Disambiguate the stream in parallel -----------------------------------
  core::CandidateModelStore models(world.knowledge_base.get());
  kore::KoreRelatedness kore;
  core::Aida aida(&models, &kore, core::AidaOptions());
  core::BatchDisambiguator batch(&aida);

  std::vector<core::DisambiguationProblem> problems;
  problems.reserve(stream.size());
  for (const corpus::Document& doc : stream) {
    core::DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    problems.push_back(std::move(problem));
  }
  std::vector<core::DisambiguationResult> results = batch.Run(problems);
  std::printf("disambiguated %zu documents on %zu threads\n", stream.size(),
              batch.num_threads());

  // ---- Index --------------------------------------------------------------------
  apps::EntitySearch search(world.knowledge_base.get());
  apps::NewsAnalytics analytics;
  for (size_t d = 0; d < stream.size(); ++d) {
    std::vector<kb::EntityId> entities;
    for (const core::MentionResult& m : results[d].mentions) {
      entities.push_back(m.entity);
    }
    search.IndexDocument(stream[d], entities);
    analytics.AddDocument(stream[d].day, entities);
  }

  // ---- Things: search by canonical entity, across surface forms ------------------
  kb::EntityId star = world.topic_entities[3].front();
  const kb::Entity& star_entity = world.knowledge_base->entities().Get(star);
  apps::EntitySearch::Query things;
  things.entities.push_back(star);
  std::printf("\n'things' query for %s:\n", star_entity.canonical_name.c_str());
  for (const auto& hit : search.Search(things, 5)) {
    std::printf("  doc %-4zu (day %2lld) score %.2f\n", hit.doc_index,
                static_cast<long long>(stream[hit.doc_index].day),
                hit.score);
  }

  // ---- Cats: search by category with a date filter ---------------------------------
  kb::TypeId person = world.knowledge_base->taxonomy().FindType("person");
  apps::EntitySearch::Query cats;
  cats.categories.push_back(person);
  cats.first_day = 5;
  cats.last_day = 9;
  std::printf("\n'cats' query for <person> in days 5-9: %zu hits\n",
              search.Search(cats, 1000).size());

  // ---- Strings + things combined ------------------------------------------------------
  apps::EntitySearch::Query mixed;
  mixed.terms.push_back(world.topic_vocab[3][0]);
  mixed.entities.push_back(star);
  std::printf("\nmixed query ('%s' + %s): top doc %zu\n",
              world.topic_vocab[3][0].c_str(),
              star_entity.canonical_name.c_str(),
              search.Search(mixed, 1).front().doc_index);

  // ---- Analytics -----------------------------------------------------------------------
  std::printf("\ntrending entities at day 13 (3-day window):\n");
  for (const auto& [entity, ratio] : analytics.TrendingEntities(13, 3, 5)) {
    std::printf("  %-28s ratio %.2f\n",
                world.knowledge_base->entities()
                    .Get(entity)
                    .canonical_name.c_str(),
                ratio);
  }
  std::printf("\nco-occurrence neighbourhood of %s:\n",
              star_entity.canonical_name.c_str());
  for (const auto& [entity, count] : analytics.TopCooccurring(star, 5)) {
    std::printf("  %-28s %u shared documents\n",
                world.knowledge_base->entities()
                    .Get(entity)
                    .canonical_name.c_str(),
                count);
  }
  return 0;
}
