#include "eval/pr_curve.h"

#include <algorithm>

namespace aida::eval {

namespace {

void SortByConfidence(std::vector<ScoredPrediction>& predictions) {
  std::stable_sort(predictions.begin(), predictions.end(),
                   [](const ScoredPrediction& a, const ScoredPrediction& b) {
                     return a.confidence > b.confidence;
                   });
}

}  // namespace

std::vector<PrPoint> PrecisionRecallCurve(
    std::vector<ScoredPrediction> predictions, size_t num_points) {
  std::vector<PrPoint> curve;
  if (predictions.empty() || num_points == 0) return curve;
  SortByConfidence(predictions);
  const size_t n = predictions.size();
  for (size_t p = 1; p <= num_points; ++p) {
    size_t take = std::max<size_t>(1, n * p / num_points);
    size_t correct = 0;
    for (size_t i = 0; i < take; ++i) {
      if (predictions[i].correct) ++correct;
    }
    curve.push_back({static_cast<double>(p) / static_cast<double>(num_points),
                     static_cast<double>(correct) /
                         static_cast<double>(take)});
  }
  return curve;
}

double MeanAveragePrecision(std::vector<ScoredPrediction> predictions) {
  if (predictions.empty()) return 0.0;
  // Precision at every recall level i/m, averaged (Eq. 5.1) — with one
  // level per prediction this is exactly the area under the PR curve.
  std::vector<PrPoint> curve =
      PrecisionRecallCurve(std::move(predictions), 100);
  double sum = 0.0;
  for (const PrPoint& point : curve) sum += point.precision;
  return sum / static_cast<double>(curve.size());
}

double PrecisionAtConfidence(const std::vector<ScoredPrediction>& predictions,
                             double threshold, size_t* count) {
  size_t qualifying = 0;
  size_t correct = 0;
  for (const ScoredPrediction& p : predictions) {
    if (p.confidence >= threshold) {
      ++qualifying;
      if (p.correct) ++correct;
    }
  }
  if (count != nullptr) *count = qualifying;
  return qualifying == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(qualifying);
}

}  // namespace aida::eval
