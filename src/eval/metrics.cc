#include "eval/metrics.h"

#include "util/status.h"

namespace aida::eval {

void NedEvaluator::AddDocument(const corpus::Document& gold,
                               const core::DisambiguationResult& prediction) {
  AIDA_CHECK(gold.mentions.size() == prediction.mentions.size());
  DocCounts counts;
  for (size_t i = 0; i < gold.mentions.size(); ++i) {
    const corpus::GoldMention& gm = gold.mentions[i];
    const core::MentionResult& pm = prediction.mentions[i];
    bool predicted_ee = pm.entity == kb::kNoEntity;
    if (gm.out_of_kb()) {
      ++counts.gold_ee;
      if (predicted_ee) ++counts.correct_ee;
    } else {
      ++counts.gold_in_kb;
      if (!predicted_ee && pm.entity == gm.gold_entity) {
        ++counts.correct_in_kb;
      }
    }
    if (predicted_ee) ++counts.predicted_ee;
  }
  docs_.push_back(counts);
}

double NedEvaluator::MicroAccuracy() const {
  size_t gold = 0;
  size_t correct = 0;
  for (const DocCounts& d : docs_) {
    gold += d.gold_in_kb;
    correct += d.correct_in_kb;
  }
  return gold == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(gold);
}

double NedEvaluator::MacroAccuracy() const {
  double sum = 0.0;
  size_t considered = 0;
  for (const DocCounts& d : docs_) {
    if (d.gold_in_kb == 0) continue;
    sum += static_cast<double>(d.correct_in_kb) /
           static_cast<double>(d.gold_in_kb);
    ++considered;
  }
  return considered == 0 ? 0.0 : sum / static_cast<double>(considered);
}

double NedEvaluator::MicroAccuracyWithEe() const {
  size_t gold = 0;
  size_t correct = 0;
  for (const DocCounts& d : docs_) {
    gold += d.gold_in_kb + d.gold_ee;
    correct += d.correct_in_kb + d.correct_ee;
  }
  return gold == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(gold);
}

double NedEvaluator::MacroAccuracyWithEe() const {
  double sum = 0.0;
  size_t considered = 0;
  for (const DocCounts& d : docs_) {
    size_t gold = d.gold_in_kb + d.gold_ee;
    if (gold == 0) continue;
    sum += static_cast<double>(d.correct_in_kb + d.correct_ee) /
           static_cast<double>(gold);
    ++considered;
  }
  return considered == 0 ? 0.0 : sum / static_cast<double>(considered);
}

double NedEvaluator::EePrecision() const {
  double sum = 0.0;
  size_t considered = 0;
  for (const DocCounts& d : docs_) {
    if (d.predicted_ee == 0) continue;
    sum += static_cast<double>(d.correct_ee) /
           static_cast<double>(d.predicted_ee);
    ++considered;
  }
  return considered == 0 ? 0.0 : sum / static_cast<double>(considered);
}

double NedEvaluator::EeRecall() const {
  double sum = 0.0;
  size_t considered = 0;
  for (const DocCounts& d : docs_) {
    if (d.gold_ee == 0) continue;
    sum += static_cast<double>(d.correct_ee) / static_cast<double>(d.gold_ee);
    ++considered;
  }
  return considered == 0 ? 0.0 : sum / static_cast<double>(considered);
}

double NedEvaluator::EeF1() const {
  double sum = 0.0;
  size_t considered = 0;
  for (const DocCounts& d : docs_) {
    if (d.gold_ee == 0 && d.predicted_ee == 0) continue;
    double p = d.predicted_ee == 0 ? 0.0
                                   : static_cast<double>(d.correct_ee) /
                                         static_cast<double>(d.predicted_ee);
    double r = d.gold_ee == 0 ? 0.0
                              : static_cast<double>(d.correct_ee) /
                                    static_cast<double>(d.gold_ee);
    sum += (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
    ++considered;
  }
  return considered == 0 ? 0.0 : sum / static_cast<double>(considered);
}

size_t NedEvaluator::gold_in_kb_mentions() const {
  size_t total = 0;
  for (const DocCounts& d : docs_) total += d.gold_in_kb;
  return total;
}

size_t NedEvaluator::gold_ee_mentions() const {
  size_t total = 0;
  for (const DocCounts& d : docs_) total += d.gold_ee;
  return total;
}

}  // namespace aida::eval
