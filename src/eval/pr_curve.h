#ifndef AIDA_EVAL_PR_CURVE_H_
#define AIDA_EVAL_PR_CURVE_H_

#include <cstddef>
#include <vector>

namespace aida::eval {

/// One scored prediction: a confidence value and whether it was correct.
struct ScoredPrediction {
  double confidence = 0.0;
  bool correct = false;
};

/// A precision point at a given recall level.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

/// Precision-recall curve over predictions ranked by descending
/// confidence: at x% recall, the precision among the top-x% most confident
/// predictions (Figure 5.3's construction).
std::vector<PrPoint> PrecisionRecallCurve(
    std::vector<ScoredPrediction> predictions, size_t num_points = 20);

/// Interpolated mean average precision (Eq. 5.1): the mean of precision at
/// the m recall levels i/m — the area under the precision-recall curve.
double MeanAveragePrecision(std::vector<ScoredPrediction> predictions);

/// Precision among predictions with confidence >= threshold; also returns
/// how many predictions qualify via `count` (Table 5.1's
/// Prec@conf / #Men@conf).
double PrecisionAtConfidence(const std::vector<ScoredPrediction>& predictions,
                             double threshold, size_t* count);

}  // namespace aida::eval

#endif  // AIDA_EVAL_PR_CURVE_H_
