#include "eval/spearman.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace aida::eval {

std::vector<double> DescendingRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] > values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    double rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  AIDA_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  std::vector<double> ra = DescendingRanks(a);
  std::vector<double> rb = DescendingRanks(b);
  double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = ra[i] - mean;
    double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace aida::eval
