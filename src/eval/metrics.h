#ifndef AIDA_EVAL_METRICS_H_
#define AIDA_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/ned_system.h"
#include "corpus/document.h"

namespace aida::eval {

/// Accumulates NED quality over a corpus. Two evaluation regimes coexist
/// in the paper:
///
///  * chapters 3/4 ignore mentions whose gold entity is out of the KB and
///    report Micro / Macro Average Accuracy over the rest (Section 3.6.1);
///  * chapter 5 treats "EE" as a first-class label and additionally
///    reports EE precision / recall / F1 (Section 5.7.2).
///
/// A prediction counts as EE when the system chose a placeholder or left
/// the mention unassigned (entity == kb::kNoEntity).
class NedEvaluator {
 public:
  /// Records one document's predictions; `prediction.mentions` must be
  /// parallel to `gold.mentions`.
  void AddDocument(const corpus::Document& gold,
                   const core::DisambiguationResult& prediction);

  /// Fraction of correctly disambiguated in-KB gold mentions, micro
  /// averaged over the collection.
  double MicroAccuracy() const;

  /// Document-averaged accuracy over in-KB gold mentions.
  double MacroAccuracy() const;

  /// Micro accuracy treating EE as a label: an out-of-KB gold mention is
  /// correct iff the system predicted EE.
  double MicroAccuracyWithEe() const;

  /// Document-averaged variant of MicroAccuracyWithEe.
  double MacroAccuracyWithEe() const;

  /// Macro-averaged EE precision / recall / F1 over documents that
  /// contain (for recall) or predict (for precision) EE mentions.
  double EePrecision() const;
  double EeRecall() const;
  double EeF1() const;

  size_t document_count() const { return docs_.size(); }
  size_t gold_in_kb_mentions() const;
  size_t gold_ee_mentions() const;

 private:
  struct DocCounts {
    size_t gold_in_kb = 0;
    size_t correct_in_kb = 0;
    size_t gold_ee = 0;
    size_t predicted_ee = 0;
    size_t correct_ee = 0;
  };
  std::vector<DocCounts> docs_;
};

}  // namespace aida::eval

#endif  // AIDA_EVAL_METRICS_H_
