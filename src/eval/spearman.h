#ifndef AIDA_EVAL_SPEARMAN_H_
#define AIDA_EVAL_SPEARMAN_H_

#include <vector>

namespace aida::eval {

/// Average ranks of `values` in descending order (rank 1 = largest), with
/// ties receiving the mean of their rank range.
std::vector<double> DescendingRanks(const std::vector<double>& values);

/// Spearman rank correlation between two score vectors of equal length
/// (computed as the Pearson correlation of their rank vectors, which
/// handles ties). Returns 0 for degenerate inputs (length < 2 or constant
/// vectors).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace aida::eval

#endif  // AIDA_EVAL_SPEARMAN_H_
