#ifndef AIDA_TEXT_TOKEN_H_
#define AIDA_TEXT_TOKEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aida::text {

/// A single token of an input document: the surface text plus character
/// offsets into the original string.
struct Token {
  std::string text;
  /// Byte offset of the first character in the source document.
  size_t begin = 0;
  /// Byte offset one past the last character.
  size_t end = 0;
  /// True if the token starts with an upper-case letter.
  bool capitalized = false;
  /// True if the token ends a sentence (".", "!", "?").
  bool sentence_final_punct = false;
};

using TokenSequence = std::vector<Token>;

}  // namespace aida::text

#endif  // AIDA_TEXT_TOKEN_H_
