#ifndef AIDA_TEXT_SENTENCE_SPLITTER_H_
#define AIDA_TEXT_SENTENCE_SPLITTER_H_

#include <cstddef>
#include <vector>

#include "text/token.h"

namespace aida::text {

/// Half-open token-index range [begin, end) identifying one sentence.
struct SentenceSpan {
  size_t begin = 0;
  size_t end = 0;
};

/// Splits a token sequence into sentences at sentence-final punctuation.
/// Used by the dynamic keyphrase harvester, which operates on sentence
/// windows around a mention (Section 5.5.1).
class SentenceSplitter {
 public:
  /// Returns sentence spans covering all of `tokens`.
  std::vector<SentenceSpan> Split(const TokenSequence& tokens) const;

  /// Returns the index (into the result of Split) of the sentence
  /// containing token `token_index`, or the last sentence if out of range.
  static size_t SentenceOf(const std::vector<SentenceSpan>& sentences,
                           size_t token_index);
};

}  // namespace aida::text

#endif  // AIDA_TEXT_SENTENCE_SPLITTER_H_
