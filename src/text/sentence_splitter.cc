#include "text/sentence_splitter.h"

namespace aida::text {

std::vector<SentenceSpan> SentenceSplitter::Split(
    const TokenSequence& tokens) const {
  std::vector<SentenceSpan> sentences;
  size_t begin = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].sentence_final_punct) {
      sentences.push_back({begin, i + 1});
      begin = i + 1;
    }
  }
  if (begin < tokens.size()) sentences.push_back({begin, tokens.size()});
  return sentences;
}

size_t SentenceSplitter::SentenceOf(
    const std::vector<SentenceSpan>& sentences, size_t token_index) {
  for (size_t i = 0; i < sentences.size(); ++i) {
    if (token_index >= sentences[i].begin && token_index < sentences[i].end) {
      return i;
    }
  }
  return sentences.empty() ? 0 : sentences.size() - 1;
}

}  // namespace aida::text
