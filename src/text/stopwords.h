#ifndef AIDA_TEXT_STOPWORDS_H_
#define AIDA_TEXT_STOPWORDS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>

namespace aida::text {

/// Fixed English stopword list used when building mention contexts
/// (Section 3.3.4 of the paper discards stopwords from the context).
class StopwordList {
 public:
  /// Constructs the default English list.
  StopwordList();

  /// True if `word` (matched case-insensitively) is a stopword.
  bool Contains(std::string_view word) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

/// Shared default instance (thread-safe after first use).
const StopwordList& DefaultStopwords();

}  // namespace aida::text

#endif  // AIDA_TEXT_STOPWORDS_H_
