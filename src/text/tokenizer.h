#ifndef AIDA_TEXT_TOKENIZER_H_
#define AIDA_TEXT_TOKENIZER_H_

#include <string_view>

#include "text/token.h"

namespace aida::text {

/// Rule-based whitespace/punctuation tokenizer for the ASCII news-style
/// text the synthetic corpora produce. Splits on whitespace, separates
/// leading/trailing punctuation into their own tokens, and keeps internal
/// hyphens and apostrophes ("long-tail", "Dylan's" -> "Dylan", "'s").
class Tokenizer {
 public:
  /// Tokenizes `input`, recording character offsets.
  TokenSequence Tokenize(std::string_view input) const;
};

}  // namespace aida::text

#endif  // AIDA_TEXT_TOKENIZER_H_
