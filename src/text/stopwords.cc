#include "text/stopwords.h"

#include "util/string_util.h"

namespace aida::text {

namespace {

constexpr const char* kWords[] = {
    "a",      "about", "above", "after",  "again",   "all",    "also",
    "am",     "an",    "and",   "any",    "are",     "as",     "at",
    "be",     "been",  "before", "being", "below",   "between", "both",
    "but",    "by",    "can",   "could",  "did",     "do",     "does",
    "doing",  "down",  "during", "each",  "few",     "for",    "from",
    "further", "had",  "has",   "have",   "having",  "he",     "her",
    "here",   "hers",  "him",   "his",    "how",     "i",      "if",
    "in",     "into",  "is",    "it",     "its",     "itself", "just",
    "me",     "more",  "most",  "my",     "no",      "nor",    "not",
    "now",    "of",    "off",   "on",     "once",    "only",   "or",
    "other",  "our",   "out",   "over",   "own",     "s",      "said",
    "same",   "she",   "should", "so",    "some",    "such",   "t",
    "than",   "that",  "the",   "their",  "them",    "then",   "there",
    "these",  "they",  "this",  "those",  "through", "to",     "too",
    "under",  "until", "up",    "very",   "was",     "we",     "were",
    "what",   "when",  "where", "which",  "while",   "who",    "whom",
    "why",    "will",  "with",  "would",  "you",     "your",   "yours",
};

}  // namespace

StopwordList::StopwordList() {
  for (const char* w : kWords) words_.insert(w);
}

bool StopwordList::Contains(std::string_view word) const {
  return words_.count(util::ToLower(word)) > 0;
}

const StopwordList& DefaultStopwords() {
  static const StopwordList& list = *new StopwordList();
  return list;
}

}  // namespace aida::text
