#include "text/tokenizer.h"

#include <cctype>

namespace aida::text {

namespace {

bool IsWordChar(char c) {
  unsigned char uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) || c == '-' || c == '_';
}

bool IsSentenceFinal(char c) { return c == '.' || c == '!' || c == '?'; }

Token MakeToken(std::string_view input, size_t begin, size_t end) {
  Token t;
  t.text = std::string(input.substr(begin, end - begin));
  t.begin = begin;
  t.end = end;
  t.capitalized =
      !t.text.empty() &&
      std::isupper(static_cast<unsigned char>(t.text.front())) != 0;
  t.sentence_final_punct =
      t.text.size() == 1 && IsSentenceFinal(t.text.front());
  return t;
}

}  // namespace

TokenSequence Tokenizer::Tokenize(std::string_view input) const {
  TokenSequence tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (IsWordChar(input[i]) || input[i] == '\'') {
      size_t begin = i;
      // Apostrophe-led clitic like "'s".
      if (input[i] == '\'') ++i;
      while (i < n && IsWordChar(input[i])) ++i;
      // Split possessive "'s" into its own token.
      tokens.push_back(MakeToken(input, begin, i));
    } else {
      // Single punctuation character.
      tokens.push_back(MakeToken(input, i, i + 1));
      ++i;
    }
  }
  return tokens;
}

}  // namespace aida::text
