#include "graph/shortest_paths.h"

#include <queue>

namespace aida::graph {

double InverseSimilarityCost(double edge_weight) {
  constexpr double kEpsilon = 1e-4;
  return 1.0 / (edge_weight + kEpsilon);
}

std::vector<double> ShortestPathDistances(const WeightedGraph& graph,
                                          NodeId source,
                                          const EdgeCostFn& cost_fn) {
  std::vector<double> dist(graph.node_count(), kUnreachable);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : graph.Neighbors(u)) {
      double nd = d + cost_fn(e.weight);
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        queue.push({nd, e.to});
      }
    }
  }
  return dist;
}

}  // namespace aida::graph
