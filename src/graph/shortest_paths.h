#ifndef AIDA_GRAPH_SHORTEST_PATHS_H_
#define AIDA_GRAPH_SHORTEST_PATHS_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/weighted_graph.h"

namespace aida::graph {

/// Distance assigned to unreachable nodes.
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Converts an edge similarity weight into a traversal cost. AIDA's
/// pre-pruning phase treats strongly similar edges as short.
using EdgeCostFn = std::function<double(double edge_weight)>;

/// Similarity-to-cost transform used by the disambiguation pre-pruning:
/// cost = 1 / (weight + epsilon), so high-similarity edges are cheap.
double InverseSimilarityCost(double edge_weight);

/// Single-source Dijkstra over `graph` with per-edge costs derived from
/// edge weights by `cost_fn`. Returns a distance per node.
std::vector<double> ShortestPathDistances(const WeightedGraph& graph,
                                          NodeId source,
                                          const EdgeCostFn& cost_fn);

}  // namespace aida::graph

#endif  // AIDA_GRAPH_SHORTEST_PATHS_H_
