#ifndef AIDA_GRAPH_WEIGHTED_GRAPH_H_
#define AIDA_GRAPH_WEIGHTED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aida::graph {

using NodeId = uint32_t;

/// One directed half of an undirected weighted edge.
struct Edge {
  NodeId to = 0;
  double weight = 0.0;
};

/// Undirected weighted graph over a fixed node set, stored as adjacency
/// lists. Nodes are dense indices [0, node_count).
class WeightedGraph {
 public:
  /// Creates a graph with `node_count` isolated nodes.
  explicit WeightedGraph(size_t node_count);

  /// Adds an undirected edge {u, v} with `weight`. Parallel edges are
  /// allowed but the library never creates them.
  void AddEdge(NodeId u, NodeId v, double weight);

  const std::vector<Edge>& Neighbors(NodeId u) const;

  /// Sum of incident edge weights of `u`.
  double WeightedDegree(NodeId u) const;

  size_t node_count() const { return adjacency_.size(); }
  size_t edge_count() const { return edge_count_; }

  /// Multiplies every edge weight incident to nodes selected by `scale`
  /// with the given factor; used for weight rescaling during graph
  /// construction. Applies per undirected edge exactly once.
  void ScaleAllEdges(double factor);

 private:
  std::vector<std::vector<Edge>> adjacency_;
  size_t edge_count_ = 0;
};

}  // namespace aida::graph

#endif  // AIDA_GRAPH_WEIGHTED_GRAPH_H_
