#ifndef AIDA_GRAPH_DENSE_SUBGRAPH_H_
#define AIDA_GRAPH_DENSE_SUBGRAPH_H_

#include <cstddef>
#include <vector>

#include "graph/weighted_graph.h"

namespace aida::graph {

/// Result of the constrained greedy densest-subgraph reduction.
struct DenseSubgraphResult {
  /// Per node: whether it survives in the best subgraph found.
  std::vector<bool> alive;
  /// The objective value (minimum weighted degree over removable alive
  /// nodes, divided by their count) of the returned subgraph.
  double objective = 0.0;
  /// Number of removal iterations executed.
  size_t iterations = 0;
};

/// Greedy approximation for the constrained densest-subgraph problem of
/// Section 3.4.2, extending Sozio & Gionis: iteratively remove the
/// removable node of minimum weighted degree, subject to the constraint
/// that every group (the candidate set of one mention) keeps at least one
/// alive member; among all intermediate subgraphs, return the one that
/// maximizes (min weighted degree of removable nodes) / (#removable nodes).
///
/// `removable[u]` marks entity nodes (mention nodes are never removed).
/// `groups[g]` lists the removable nodes that are candidates of group g.
/// A node that belongs to several groups is taboo as soon as it is the last
/// alive member of any of them.
DenseSubgraphResult ConstrainedDenseSubgraph(
    const WeightedGraph& graph, const std::vector<bool>& removable,
    const std::vector<std::vector<NodeId>>& groups);

}  // namespace aida::graph

#endif  // AIDA_GRAPH_DENSE_SUBGRAPH_H_
