#ifndef AIDA_GRAPH_DENSE_SUBGRAPH_H_
#define AIDA_GRAPH_DENSE_SUBGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"
#include "util/cancellation.h"

namespace aida::task {
class Scheduler;
}  // namespace aida::task

namespace aida::graph {

/// Execution knobs of the greedy reduction: cooperative cancellation
/// (polled between peel iterations) and task parallelism for the
/// per-iteration node scans (victim selection and objective
/// recomputation). The scans are chunked deterministically and reduced
/// in chunk order with the same strict-less tie-break as the serial
/// loop, so the parallel peel removes the exact same victim sequence.
struct DenseSubgraphOptions {
  /// Not owned; null keeps every scan serial.
  task::Scheduler* scheduler = nullptr;
  /// Maximum tasks per scan (<= 1 = serial).
  size_t max_tasks = 1;
  /// Graphs smaller than this keep serial scans: a peel iteration's scan
  /// is O(n), so forking only pays off for large candidate graphs.
  size_t min_parallel_nodes = 2048;
  /// Polled between peel iterations; a tripped token aborts the
  /// reduction (DenseSubgraphResult::aborted). Not owned.
  const util::CancellationToken* cancel = nullptr;
};

/// Result of the constrained greedy densest-subgraph reduction.
struct DenseSubgraphResult {
  /// Per node: whether it survives in the best subgraph found.
  std::vector<bool> alive;
  /// The objective value (minimum weighted degree over removable alive
  /// nodes, divided by their count) of the returned subgraph.
  double objective = 0.0;
  /// Number of removal iterations executed.
  size_t iterations = 0;
  /// True when the reduction observed a tripped CancellationToken and
  /// stopped early: the result is partial and must be discarded.
  bool aborted = false;
  /// Task accounting of the parallel scans (0 when serial).
  uint64_t parallel_tasks = 0;
  uint64_t parallel_steals = 0;
};

/// Greedy approximation for the constrained densest-subgraph problem of
/// Section 3.4.2, extending Sozio & Gionis: iteratively remove the
/// removable node of minimum weighted degree, subject to the constraint
/// that every group (the candidate set of one mention) keeps at least one
/// alive member; among all intermediate subgraphs, return the one that
/// maximizes (min weighted degree of removable nodes) / (#removable nodes).
///
/// `removable[u]` marks entity nodes (mention nodes are never removed).
/// `groups[g]` lists the removable nodes that are candidates of group g.
/// A node that belongs to several groups is taboo as soon as it is the last
/// alive member of any of them.
DenseSubgraphResult ConstrainedDenseSubgraph(
    const WeightedGraph& graph, const std::vector<bool>& removable,
    const std::vector<std::vector<NodeId>>& groups,
    const DenseSubgraphOptions& options = {});

}  // namespace aida::graph

#endif  // AIDA_GRAPH_DENSE_SUBGRAPH_H_
