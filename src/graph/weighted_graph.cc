#include "graph/weighted_graph.h"

#include "util/check.h"

namespace aida::graph {

WeightedGraph::WeightedGraph(size_t node_count) : adjacency_(node_count) {}

void WeightedGraph::AddEdge(NodeId u, NodeId v, double weight) {
  AIDA_DCHECK(u < adjacency_.size() && v < adjacency_.size());
  AIDA_DCHECK(u != v);
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  ++edge_count_;
}

const std::vector<Edge>& WeightedGraph::Neighbors(NodeId u) const {
  AIDA_DCHECK(u < adjacency_.size());
  return adjacency_[u];
}

double WeightedGraph::WeightedDegree(NodeId u) const {
  double total = 0.0;
  for (const Edge& e : Neighbors(u)) total += e.weight;
  return total;
}

void WeightedGraph::ScaleAllEdges(double factor) {
  for (auto& edges : adjacency_) {
    for (Edge& e : edges) e.weight *= factor;
  }
}

}  // namespace aida::graph
