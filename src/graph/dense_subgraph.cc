#include "graph/dense_subgraph.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace aida::graph {

namespace {

// Objective of the current subgraph: minimum weighted degree among alive
// removable nodes divided by their count (paper: "A graph with fewer nodes
// is preferred, so the minimum weighted degree is divided by the number of
// nodes in the graph").
double Objective(const std::vector<double>& degree,
                 const std::vector<bool>& alive,
                 const std::vector<bool>& removable, size_t alive_removable) {
  if (alive_removable == 0) return 0.0;
  double min_degree = std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < degree.size(); ++u) {
    if (alive[u] && removable[u]) min_degree = std::min(min_degree, degree[u]);
  }
  return min_degree / static_cast<double>(alive_removable);
}

}  // namespace

DenseSubgraphResult ConstrainedDenseSubgraph(
    const WeightedGraph& graph, const std::vector<bool>& removable,
    const std::vector<std::vector<NodeId>>& groups) {
  const size_t n = graph.node_count();
  AIDA_CHECK(removable.size() == n,
             "removable mask (%zu) must match node count (%zu)",
             removable.size(), n);

  std::vector<bool> alive(n, true);
  std::vector<double> degree(n, 0.0);
  for (NodeId u = 0; u < n; ++u) degree[u] = graph.WeightedDegree(u);

  // Group bookkeeping: how many alive members each group has, and which
  // groups each node belongs to.
  std::vector<size_t> group_alive(groups.size(), 0);
  std::vector<std::vector<uint32_t>> node_groups(n);
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (NodeId u : groups[g]) {
      AIDA_CHECK(u < n && removable[u],
                 "min-degree heap returned node %u that is not removable", u);
      ++group_alive[g];
      node_groups[u].push_back(g);
    }
  }

  size_t alive_removable = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (removable[u]) ++alive_removable;
  }

  DenseSubgraphResult result;
  result.alive = alive;
  result.objective =
      Objective(degree, alive, removable, alive_removable);

  auto is_taboo = [&](NodeId u) {
    for (uint32_t g : node_groups[u]) {
      if (group_alive[g] <= 1) return true;
    }
    return false;
  };

  for (;;) {
    // Find the non-taboo alive removable node of minimum weighted degree.
    NodeId victim = static_cast<NodeId>(n);
    double min_degree = std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < n; ++u) {
      if (!alive[u] || !removable[u] || is_taboo(u)) continue;
      if (degree[u] < min_degree) {
        min_degree = degree[u];
        victim = u;
      }
    }
    if (victim == static_cast<NodeId>(n)) break;  // all remaining are taboo

    alive[victim] = false;
    --alive_removable;
    for (uint32_t g : node_groups[victim]) --group_alive[g];
    for (const Edge& e : graph.Neighbors(victim)) {
      if (alive[e.to]) degree[e.to] -= e.weight;
    }
    ++result.iterations;

    double objective =
        Objective(degree, alive, removable, alive_removable);
    if (objective > result.objective) {
      result.objective = objective;
      result.alive = alive;
    }
  }
  return result;
}

}  // namespace aida::graph
