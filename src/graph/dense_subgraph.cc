#include "graph/dense_subgraph.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "task/scheduler.h"
#include "util/check.h"

namespace aida::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Chunked first-strict-min scan over [0, n): returns the (degree,
/// node) pair the serial left-to-right `degree[u] < min` loop would
/// find. `eligible(u)` filters candidates; `degree` is read-only during
/// the scan. With `chunks` == 1 this IS the serial loop; with more, each
/// chunk scans its contiguous range and the chunk results are reduced
/// left to right with the same strict less-than, so ties still resolve
/// to the lowest node id — the victim sequence (and therefore every
/// byte of the result) is independent of the chunking.
/// `chunk_best` is caller-owned scratch for the per-chunk results,
/// hoisted out so the peel loop (two scans per removed node) reuses one
/// buffer instead of allocating per scan — the alloc probe flagged the
/// old local vector as steady-state churn on the request path.
template <typename Eligible>
std::pair<double, NodeId> MinDegreeScan(
    size_t n, size_t chunks, task::Scheduler* scheduler,
    const std::vector<double>& degree, const Eligible& eligible,
    DenseSubgraphResult* accounting,
    std::vector<std::pair<double, NodeId>>& chunk_best) {
  auto scan_range = [&](size_t begin, size_t end) -> std::pair<double, NodeId> {
    double min_degree = kInf;
    NodeId arg = static_cast<NodeId>(n);
    for (size_t u = begin; u < end; ++u) {
      if (!eligible(static_cast<NodeId>(u))) continue;
      if (degree[u] < min_degree) {
        min_degree = degree[u];
        arg = static_cast<NodeId>(u);
      }
    }
    return {min_degree, arg};
  };
  if (chunks <= 1 || n < 2 * chunks) {
    return scan_range(0, n);
  }
  chunk_best.assign(chunks, {kInf, static_cast<NodeId>(n)});
  task::TaskGroup group(scheduler, /*cancel=*/nullptr);
  const size_t base = n / chunks;
  const size_t remainder = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < remainder ? 1 : 0);
    group.Run([c, begin, end, &chunk_best, &scan_range] {
      chunk_best[c] = scan_range(begin, end);
    });
    begin = end;
  }
  group.Wait();
  if (accounting != nullptr) {
    const task::TaskGroup::Stats& stats = group.stats();
    accounting->parallel_tasks += stats.spawned + stats.inline_executed;
    accounting->parallel_steals += stats.stolen;
  }
  std::pair<double, NodeId> best = {kInf, static_cast<NodeId>(n)};
  for (const auto& candidate : chunk_best) {
    if (candidate.first < best.first) best = candidate;
  }
  return best;
}

}  // namespace

DenseSubgraphResult ConstrainedDenseSubgraph(
    const WeightedGraph& graph, const std::vector<bool>& removable,
    const std::vector<std::vector<NodeId>>& groups,
    const DenseSubgraphOptions& options) {
  const size_t n = graph.node_count();
  AIDA_CHECK(removable.size() == n,
             "removable mask (%zu) must match node count (%zu)",
             removable.size(), n);

  std::vector<bool> alive(n, true);
  std::vector<double> degree(n, 0.0);
  for (NodeId u = 0; u < n; ++u) degree[u] = graph.WeightedDegree(u);

  // Group bookkeeping: how many alive members each group has, and which
  // groups each node belongs to.
  std::vector<size_t> group_alive(groups.size(), 0);
  std::vector<std::vector<uint32_t>> node_groups(n);
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (NodeId u : groups[g]) {
      AIDA_CHECK(u < n && removable[u],
                 "min-degree heap returned node %u that is not removable", u);
      ++group_alive[g];
      node_groups[u].push_back(g);
    }
  }

  size_t alive_removable = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (removable[u]) ++alive_removable;
  }

  // Per-iteration node scans fork only above the size gate: each scan is
  // O(n), so tasks must amortize their spawn cost.
  const size_t scan_chunks =
      options.scheduler != nullptr && options.max_tasks > 1 &&
              n >= options.min_parallel_nodes
          ? std::min(options.max_tasks, n)
          : 1;

  DenseSubgraphResult result;
  /// Reused across every MinDegreeScan of the peel loop; sized once.
  std::vector<std::pair<double, NodeId>> scan_scratch;
  scan_scratch.reserve(scan_chunks);

  // Objective of the current subgraph: minimum weighted degree among
  // alive removable nodes divided by their count (paper: "A graph with
  // fewer nodes is preferred, so the minimum weighted degree is divided
  // by the number of nodes in the graph").
  auto objective_now = [&]() {
    if (alive_removable == 0) return 0.0;
    const double min_degree =
        MinDegreeScan(n, scan_chunks, options.scheduler, degree,
                      [&](NodeId u) { return alive[u] && removable[u]; },
                      &result, scan_scratch)
            .first;
    return min_degree / static_cast<double>(alive_removable);
  };

  result.alive = alive;
  result.objective = objective_now();

  auto is_taboo = [&](NodeId u) {
    for (uint32_t g : node_groups[u]) {
      if (group_alive[g] <= 1) return true;
    }
    return false;
  };

  for (;;) {
    // Cancellation is observed inside the solve phase, once per peel
    // iteration: a partial peel is useless, so abort and let the caller
    // degrade to local-only results.
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      result.aborted = true;
      return result;
    }
    // Find the non-taboo alive removable node of minimum weighted degree.
    const NodeId victim =
        MinDegreeScan(n, scan_chunks, options.scheduler, degree,
                      [&](NodeId u) {
                        return alive[u] && removable[u] && !is_taboo(u);
                      },
                      &result, scan_scratch)
            .second;
    if (victim == static_cast<NodeId>(n)) break;  // all remaining are taboo

    alive[victim] = false;
    --alive_removable;
    for (uint32_t g : node_groups[victim]) --group_alive[g];
    for (const Edge& e : graph.Neighbors(victim)) {
      if (alive[e.to]) degree[e.to] -= e.weight;
    }
    ++result.iterations;

    const double objective = objective_now();
    if (objective > result.objective) {
      result.objective = objective;
      result.alive = alive;
    }
  }
  return result;
}

}  // namespace aida::graph
