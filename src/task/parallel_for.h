#ifndef AIDA_TASK_PARALLEL_FOR_H_
#define AIDA_TASK_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/cancellation.h"

namespace aida::task {

class Scheduler;

/// Outcome of one ParallelChunks region, for per-call statistics.
struct ParallelForStats {
  /// Chunk bodies executed (spawned tasks plus inline chunks). 0 when
  /// the region ran the single-chunk serial path.
  uint64_t tasks = 0;
  /// Chunks executed by a slot other than the spawner's.
  uint64_t stolen = 0;
  /// The region observed a tripped CancellationToken: some chunks were
  /// skipped or cut short, outputs are partial and must be discarded.
  bool cancelled = false;

  ParallelForStats& operator+=(const ParallelForStats& other) {
    tasks += other.tasks;
    stolen += other.stolen;
    cancelled = cancelled || other.cancelled;
    return *this;
  }
};

/// Runs body(begin, end) over [0, count) split into at most `max_tasks`
/// contiguous chunks, forked through `scheduler` and joined before
/// returning. Falls back to one inline body(0, count) call when
/// `scheduler` is null, `max_tasks` <= 1, or count <= 1 — the serial and
/// parallel paths execute the same body code over the same index ranges.
///
/// Determinism contract: chunk boundaries depend only on (count,
/// max_tasks); bodies must write only to disjoint, index-addressed
/// outputs and must not accumulate across chunk boundaries. Any
/// reduction happens in the caller afterwards, in index order — so a
/// parallel region is byte-identical to its serial equivalent (no FP
/// reassociation, no order-dependent tie-breaks).
///
/// Cancellation: checked before each chunk spawn; bodies poll the token
/// at their own finer granularity. A cancelled region returns
/// stats.cancelled = true and the caller discards the partial outputs.
///
/// Exceptions thrown by a body propagate out (first one wins) after all
/// chunks finished.
ParallelForStats ParallelChunks(
    Scheduler* scheduler, size_t count, size_t max_tasks,
    const util::CancellationToken* cancel,
    const std::function<void(size_t, size_t)>& body);

}  // namespace aida::task

#endif  // AIDA_TASK_PARALLEL_FOR_H_
