#include "task/scheduler.h"

#include <chrono>
#include <utility>

#include "util/check.h"
#include "util/worker_pool.h"

namespace aida::task {

namespace {

/// Slot binding of the current thread: set by WorkerLoop for scheduler
/// workers and by TaskGroup for external threads that claimed a
/// participant slot, so nested TaskGroups on the same thread share one
/// deque instead of claiming a slot each.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local uint32_t tls_slot_index = 0xffffffffu;

}  // namespace

// ---------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(const SchedulerOptions& options) {
  num_workers_ = options.num_threads;
  if (num_workers_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_workers_ = hw == 0 ? 1 : hw;
  }
  node_pool_capacity_ = options.deque_capacity;
  const size_t total = num_workers_ + options.max_participants;
  slots_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    slots_.push_back(std::make_unique<Slot>(options.deque_capacity));
  }
  borrow_pool_ = options.borrow_pool;
  if (borrow_pool_ != nullptr) {
    {
      util::MutexLock lock(&inject_mutex_);
      loops_live_ = num_workers_;
    }
    for (size_t i = 0; i < num_workers_; ++i) {
      borrow_pool_->Submit([this, i] {
        WorkerLoop(static_cast<uint32_t>(i));
        util::MutexLock lock(&inject_mutex_);
        --loops_live_;
        if (loops_live_ == 0) loops_done_.NotifyAll();
      });
    }
  } else {
    threads_.reserve(num_workers_);
    for (size_t i = 0; i < num_workers_; ++i) {
      threads_.emplace_back(
          [this, i] { WorkerLoop(static_cast<uint32_t>(i)); });
    }
  }
}

Scheduler::~Scheduler() {
  // Contract: every TaskGroup joined before its scheduler dies, so no
  // task can still be queued or running.
  AIDA_DCHECK(outstanding_.load(std::memory_order_acquire) == 0,
              "TaskGroups must not outlive their Scheduler");
  {
    util::MutexLock lock(&inject_mutex_);
    stopping_ = true;
    work_ready_.NotifyAll();
  }
  for (std::thread& thread : threads_) thread.join();
  if (borrow_pool_ != nullptr) {
    util::MutexLock lock(&inject_mutex_);
    while (loops_live_ > 0) loops_done_.Wait(inject_mutex_);
  }
  // All executors are gone and outstanding_ was zero, so every pooled
  // node's callable has already been destroyed — plain deletes remain.
  for (std::unique_ptr<Slot>& slot : slots_) {
    internal::TaskNode* node =
        slot->free_nodes.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      internal::TaskNode* next = node->next_free;
      delete node;
      node = next;
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats stats;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    stats.tasks_executed += slot->executed.load(std::memory_order_relaxed);
    stats.tasks_stolen += slot->stolen.load(std::memory_order_relaxed);
  }
  stats.overflow_enqueued = overflow_enqueued_.load(std::memory_order_relaxed);
  return stats;
}

internal::TaskNode* Scheduler::AcquireNode(uint32_t slot_index) {
  Slot& slot = *slots_[slot_index];
  internal::TaskNode* head = slot.free_nodes.load(std::memory_order_acquire);
  while (head != nullptr &&
         !slot.free_nodes.compare_exchange_weak(head, head->next_free,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
  }
  if (head != nullptr) {
    slot.free_count.fetch_sub(1, std::memory_order_relaxed);
    head->next_free = nullptr;
    return head;
  }
  return new internal::TaskNode;
}

void Scheduler::RecycleNode(internal::TaskNode* node) {
  Slot& slot = *slots_[node->origin_slot];
  // Approximate cap: concurrent recyclers may overshoot by a node or
  // two, which only means a marginally larger pool, never unbounded
  // growth.
  if (slot.free_count.load(std::memory_order_relaxed) >=
      node_pool_capacity_) {
    delete node;
    return;
  }
  slot.free_count.fetch_add(1, std::memory_order_relaxed);
  node->invoke = nullptr;
  node->destroy = nullptr;
  node->group = nullptr;
  internal::TaskNode* head = slot.free_nodes.load(std::memory_order_relaxed);
  do {
    node->next_free = head;
  } while (!slot.free_nodes.compare_exchange_weak(head, node,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed));
}

void Scheduler::Enqueue(internal::TaskNode* node, Slot* slot) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  // seq_cst pairs with the sleeper's seq_cst re-check in WorkerLoop
  // (Dekker-style: either the worker sees the new task, or we see the
  // worker's sleeper count and notify it).
  queued_.fetch_add(1, std::memory_order_seq_cst);
  const bool pushed = slot != nullptr && slot->deque.TryPush(node);
  if (!pushed) {
    overflow_enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!pushed || sleepers_approx_.load(std::memory_order_seq_cst) > 0) {
    util::MutexLock lock(&inject_mutex_);
    if (!pushed) {
      injection_.push_back(node);
      injection_size_.store(injection_.size(), std::memory_order_relaxed);
    }
    if (sleepers_ > 0) work_ready_.NotifyOne();
  }
}

internal::TaskNode* Scheduler::TryAcquireWork(uint32_t thief_index) {
  const size_t n = slots_.size();
  for (size_t k = 1; k <= n; ++k) {
    const size_t victim = (static_cast<size_t>(thief_index) + k) % n;
    if (victim == thief_index) continue;
    internal::TaskNode* node = slots_[victim]->deque.TrySteal();
    if (node != nullptr) {
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return node;
    }
  }
  if (injection_size_.load(std::memory_order_relaxed) > 0) {
    util::MutexLock lock(&inject_mutex_);
    if (!injection_.empty()) {
      internal::TaskNode* node = injection_.front();
      injection_.pop_front();
      injection_size_.store(injection_.size(), std::memory_order_relaxed);
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return node;
    }
  }
  return nullptr;
}

void Scheduler::Execute(internal::TaskNode* node, uint32_t executor_index) {
  std::exception_ptr error;
  try {
    node->invoke(node);  // destroys the callable even on throw
  } catch (...) {
    error = std::current_exception();
  }
  const bool stolen = executor_index != node->origin_slot;
  if (executor_index != kNoSlot) {
    Slot& slot = *slots_[executor_index];
    slot.executed.fetch_add(1, std::memory_order_relaxed);
    if (stolen) slot.stolen.fetch_add(1, std::memory_order_relaxed);
  }
  TaskGroup* group = node->group;
  RecycleNode(node);
  outstanding_.fetch_sub(1, std::memory_order_release);
  // Last touch of the group: its Wait() cannot return before this call
  // released the group mutex (pending_ only reaches 0 in here).
  group->OnTaskDone(stolen, std::move(error));
}

uint32_t Scheduler::ClaimParticipantSlot() {
  for (size_t i = num_workers_; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      return static_cast<uint32_t>(i);
    }
  }
  return kNoSlot;
}

void Scheduler::ReleaseParticipantSlot(uint32_t index) {
  AIDA_DCHECK(index != kNoSlot && index >= num_workers_);
  slots_[index]->claimed.store(false, std::memory_order_release);
}

void Scheduler::WorkerLoop(uint32_t index) {
  tls_scheduler = this;
  tls_slot_index = index;
  Slot* slot = slots_[index].get();
  for (;;) {
    internal::TaskNode* node = slot->deque.TryPop();
    if (node != nullptr) {
      queued_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      node = TryAcquireWork(index);
    }
    if (node != nullptr) {
      Execute(node, index);
      continue;
    }
    bool should_exit = false;
    {
      util::MutexLock lock(&inject_mutex_);
      if (injection_.empty()) {
        if (stopping_) {
          should_exit = true;
        } else {
          ++sleepers_;
          sleepers_approx_.fetch_add(1, std::memory_order_seq_cst);
          // Re-check after announcing the sleep (Dekker pairing with
          // Enqueue): a task published in the gap is seen here, so no
          // spawn can be stranded for a full park timeout. The timeout
          // itself is only a backstop against lost wakeups.
          if (queued_.load(std::memory_order_seq_cst) == 0) {
            work_ready_.WaitFor(inject_mutex_, std::chrono::milliseconds(20));
          }
          sleepers_approx_.fetch_sub(1, std::memory_order_seq_cst);
          --sleepers_;
        }
      }
      // Injection non-empty: fall through, the next TryAcquireWork run
      // (or a steal) picks it up.
    }
    if (should_exit) break;
  }
  tls_scheduler = nullptr;
  tls_slot_index = kNoSlot;
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup(Scheduler* scheduler,
                     const util::CancellationToken* cancel)
    : scheduler_(scheduler), cancel_(cancel) {
  if (scheduler_ == nullptr) return;  // serial mode: everything inline
  if (tls_scheduler == scheduler_ && tls_slot_index != Scheduler::kNoSlot) {
    // Nested group (scheduler worker or a thread that already holds a
    // participant slot): share the thread's slot.
    slot_index_ = tls_slot_index;
    slot_ = scheduler_->slots_[slot_index_].get();
  } else {
    slot_index_ = scheduler_->ClaimParticipantSlot();
    if (slot_index_ != Scheduler::kNoSlot) {
      slot_ = scheduler_->slots_[slot_index_].get();
      owns_slot_ = true;
      prev_tls_scheduler_ = tls_scheduler;
      prev_tls_slot_index_ = tls_slot_index;
      tls_scheduler = scheduler_;
      tls_slot_index = slot_index_;
    }
    // All participant slots taken: stay slotless and run bodies inline —
    // graceful degradation under scheduler saturation.
  }
}

TaskGroup::~TaskGroup() {
  if (!waited_) Join();  // never leak running tasks; drops any exception
  if (owns_slot_) {
    tls_scheduler = prev_tls_scheduler_;
    tls_slot_index = prev_tls_slot_index_;
    scheduler_->ReleaseParticipantSlot(slot_index_);
  }
}

bool TaskGroup::BeginInline() {
  {
    util::MutexLock lock(&mutex_);
    if (error_) return false;
  }
  ++stats_.inline_executed;
  return true;
}

void TaskGroup::CaptureError(std::exception_ptr error) {
  util::MutexLock lock(&mutex_);
  if (!error_) error_ = std::move(error);
}

void TaskGroup::SpawnNode(internal::TaskNode* node) {
  bool drop = false;
  {
    util::MutexLock lock(&mutex_);
    if (error_) {
      drop = true;  // fail fast once a body threw
    } else {
      ++pending_;
    }
  }
  if (drop) {
    node->destroy(node);
    scheduler_->RecycleNode(node);
    return;
  }
  ++stats_.spawned;
  scheduler_->Enqueue(node, slot_);
}

void TaskGroup::Wait() {
  AIDA_CHECK(!waited_, "TaskGroup::Wait called twice");
  waited_ = true;
  Join();
  std::exception_ptr error;
  {
    util::MutexLock lock(&mutex_);
    error = error_;
    stats_.stolen = stolen_count_;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) cancelled_seen_ = true;
  if (error) std::rethrow_exception(error);
}

bool TaskGroup::cancelled() const {
  return cancelled_seen_ || (cancel_ != nullptr && cancel_->cancelled());
}

void TaskGroup::Join() {
  if (scheduler_ == nullptr) return;
  for (;;) {
    internal::TaskNode* node =
        slot_ != nullptr ? slot_->deque.TryPop() : nullptr;
    if (node != nullptr) {
      scheduler_->queued_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      {
        util::MutexLock lock(&mutex_);
        if (pending_ == 0) break;
      }
      // Our remaining tasks are running elsewhere (or sit in the
      // injection queue): help global progress instead of blocking —
      // stolen foreign tasks may transitively unblock ours.
      node = scheduler_->TryAcquireWork(slot_index_);
    }
    if (node != nullptr) {
      scheduler_->Execute(node, slot_index_);
      continue;
    }
    util::MutexLock lock(&mutex_);
    if (pending_ == 0) break;
    // Bounded park: completions notify under mutex_, the timeout only
    // re-arms the steal loop (new stealable work does not notify us).
    done_.WaitFor(mutex_, std::chrono::microseconds(500));
    if (pending_ == 0) break;
  }
}

void TaskGroup::OnTaskDone(bool stolen, std::exception_ptr error) {
  util::MutexLock lock(&mutex_);
  if (stolen) ++stolen_count_;
  if (error && !error_) error_ = std::move(error);
  AIDA_DCHECK(pending_ > 0);
  if (--pending_ == 0) done_.NotifyAll();
}

}  // namespace aida::task
