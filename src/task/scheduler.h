#ifndef AIDA_TASK_SCHEDULER_H_
#define AIDA_TASK_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "task/work_stealing_deque.h"
#include "util/cacheline.h"
#include "util/cancellation.h"
#include "util/check.h"
#include "util/function_effects.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aida::util {
class WorkerPool;
}  // namespace aida::util

namespace aida::task {

class Scheduler;
class TaskGroup;

namespace internal {

/// Callables whose state fits this many bytes are stored inside the
/// TaskNode itself; larger ones fall back to one boxed heap allocation.
/// 64 bytes covers every fork-join lambda in the tree (ParallelChunks
/// chunks capture two indices and a reference) with room to spare.
inline constexpr size_t kInlineTaskBytes = 64;

/// One spawned task. Obtained by TaskGroup::Run from the origin slot's
/// free list (allocating only when the list is empty), consumed
/// (executed and recycled) by exactly one thread: the owner popping its
/// deque, a worker or waiter stealing it, or whoever drains the
/// injection queue.
///
/// The callable lives in `storage` — NOT in a std::function — so a warm
/// steady-state spawn touches the allocator zero times: the old
/// `new TaskNode{std::function...}` pattern cost two heap round-trips
/// per task (node + function target), which the alloc probe flagged as
/// the dominant churn of parallel disambiguation
/// (TaskGroupAllocTest.WarmForkJoinDoesNotAllocate pins the fix).
struct TaskNode {
  /// Invokes the stored callable and destroys it (even on throw).
  void (*invoke)(TaskNode* node) = nullptr;
  /// Destroys the stored callable WITHOUT running it — the fail-fast
  /// drop path when a sibling task already threw.
  void (*destroy)(TaskNode* node) = nullptr;
  TaskGroup* group = nullptr;
  /// Slot the task was pushed from; an executor with a different slot
  /// index counts the run as a steal. Also selects the free list the
  /// node returns to.
  uint32_t origin_slot = 0;
  /// Free-list link, owned by the origin slot's recycle stack.
  TaskNode* next_free = nullptr;
  alignas(std::max_align_t) unsigned char storage[kInlineTaskBytes];

  /// Moves `fn` into the node. Must be balanced by exactly one invoke()
  /// or destroy() call before the node is recycled or reinstalled.
  template <typename Fn>
  void Install(Fn&& fn) {
    using Callable = std::decay_t<Fn>;
    if constexpr (sizeof(Callable) <= kInlineTaskBytes &&
                  alignof(Callable) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Callable>) {
      ::new (static_cast<void*>(storage)) Callable(std::forward<Fn>(fn));
      invoke = [](TaskNode* node) {
        Callable* callable =
            std::launder(reinterpret_cast<Callable*>(node->storage));
        // Move to the stack first so the callable's storage is released
        // even when the body throws (the node recycles either way).
        Callable local(std::move(*callable));
        callable->~Callable();
        local();
      };
      destroy = [](TaskNode* node) {
        std::launder(reinterpret_cast<Callable*>(node->storage))->~Callable();
      };
    } else {
      // Oversized or throwing-move callable: box it. One allocation per
      // spawn, same as the old std::function path — acceptable because
      // no hot-path lambda takes this branch (static capture sizes are
      // all well under kInlineTaskBytes).
      Callable* boxed = new Callable(std::forward<Fn>(fn));
      ::new (static_cast<void*>(storage)) Callable*(boxed);
      invoke = [](TaskNode* node) {
        Callable* boxed =
            *std::launder(reinterpret_cast<Callable**>(node->storage));
        struct Deleter {
          Callable* boxed;
          ~Deleter() { delete boxed; }
        } deleter{boxed};
        (*boxed)();
      };
      destroy = [](TaskNode* node) {
        delete *std::launder(reinterpret_cast<Callable**>(node->storage));
      };
    }
  }
};

}  // namespace internal

/// Configuration of a work-stealing scheduler.
struct SchedulerOptions {
  /// Worker threads executing tasks. 0 selects the hardware concurrency
  /// (at least 1). These are in addition to external threads that join in
  /// as fork-join waiters.
  size_t num_threads = 0;
  /// When set, the scheduler borrows `num_threads` long-running loops
  /// from this pool instead of owning threads (the pool must have spare
  /// threads beyond its other long-running loops, and must outlive the
  /// scheduler). When null, dedicated std::threads are created.
  util::WorkerPool* borrow_pool = nullptr;
  /// Per-slot deque ring capacity (rounded up to a power of two). A full
  /// deque spills to the shared injection queue, so this bounds memory,
  /// not task count.
  size_t deque_capacity = 256;
  /// Slots claimable by external fork-join callers (e.g. serving workers
  /// running a parallel disambiguation). A TaskGroup that finds no free
  /// slot degrades to inline execution instead of failing.
  size_t max_participants = 32;
};

/// Point-in-time counters across all slots.
struct SchedulerStats {
  uint64_t tasks_executed = 0;
  uint64_t tasks_stolen = 0;    // executed on a slot != origin slot
  uint64_t overflow_enqueued = 0;  // pushes that spilled to injection
};

/// Work-stealing task scheduler: one bounded Chase-Lev-style deque per
/// slot (worker threads plus claimable participant slots for external
/// fork-join callers), backed by a mutex-guarded shared injection queue
/// that absorbs deque overflow. Workers pop their own deque LIFO, then
/// steal FIFO from the other slots, then drain injection, then park on a
/// waiter-counted condition variable.
///
/// Intended use is intra-request fork-join via TaskGroup (below): the
/// request thread claims a participant slot, spawns tasks into it, and
/// helps execute while waiting, so a single scheduler serves concurrent
/// requests without per-request thread creation.
///
/// Thread-safe. Lock order: inject_mutex_ holds rank
/// lock_rank::kTaskScheduler and is never held while executing a task;
/// TaskGroup::mutex_ (rank kTaskGroup) is a leaf. Destruction requires
/// all TaskGroups to be gone (checked); workers then drain and join.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  size_t num_threads() const { return num_workers_; }

  SchedulerStats stats() const;

 private:
  friend class TaskGroup;

  struct alignas(util::kCacheLineSize) Slot {
    explicit Slot(size_t capacity) : deque(capacity) {}
    WorkStealingDeque<internal::TaskNode> deque;
    /// Participant slots: claimed by one TaskGroup at a time.
    std::atomic<bool> claimed{false};
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> stolen{0};
    /// Recycled TaskNodes, as a Treiber stack. Multi-producer (any
    /// executor pushes a finished node back to its origin slot),
    /// single-consumer (only the thread bound to this slot pops, in
    /// TaskGroup::Run) — the single consumer is what makes the naive
    /// CAS pop ABA-safe: no other thread ever removes the head, so the
    /// head pointer cannot be recycled under a pop in progress.
    std::atomic<internal::TaskNode*> free_nodes{nullptr};
    /// Approximate size of free_nodes, bounding pooled memory.
    std::atomic<size_t> free_count{0};
  };

  /// Pops a recycled node from `slot_index`'s free list, allocating only
  /// when the list is empty (cold: first requests after start or a
  /// burst deeper than any before). Caller must be the thread bound to
  /// the slot.
  internal::TaskNode* AcquireNode(uint32_t slot_index);

  /// Returns an executed (or dropped) node — callable already destroyed
  /// — to its origin slot's free list; frees it instead once the pool
  /// holds `deque_capacity` nodes.
  void RecycleNode(internal::TaskNode* node);

  /// Publishes `node`: preferred slot's deque first, injection queue on
  /// overflow; wakes a sleeping worker either way. `node->group->pending_`
  /// must already account for it.
  void Enqueue(internal::TaskNode* node, Slot* slot)
      AIDA_EXCLUDES(inject_mutex_);

  /// Steals one task for `thief_index` (scans the other slots round-robin,
  /// then the injection queue). Null when nothing was found.
  internal::TaskNode* TryAcquireWork(uint32_t thief_index)
      AIDA_EXCLUDES(inject_mutex_);

  /// Runs `node` on behalf of slot `executor_index` (kNoSlot for a
  /// slotless inline waiter), records slot + group accounting, deletes
  /// the node. Never called with any scheduler or group lock held.
  void Execute(internal::TaskNode* node, uint32_t executor_index);

  /// Claims a free participant slot; returns kNoSlot when all are taken.
  uint32_t ClaimParticipantSlot();
  void ReleaseParticipantSlot(uint32_t index);

  void WorkerLoop(uint32_t index) AIDA_EXCLUDES(inject_mutex_);

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  size_t num_workers_ = 0;
  /// Per-slot free-list cap (the construction-time deque capacity).
  size_t node_pool_capacity_ = 0;
  /// Fixed at construction: [0, num_workers_) worker slots, the rest
  /// participant slots. unique_ptr keeps Slot addresses stable.
  std::vector<std::unique_ptr<Slot>> slots_;

  util::Mutex inject_mutex_{util::lock_rank::kTaskScheduler};
  util::CondVar work_ready_;
  std::deque<internal::TaskNode*> injection_ AIDA_GUARDED_BY(inject_mutex_);
  size_t sleepers_ AIDA_GUARDED_BY(inject_mutex_) = 0;
  bool stopping_ AIDA_GUARDED_BY(inject_mutex_) = false;
  /// Borrowed-pool mode: loops still running inside the pool; the
  /// destructor waits for this to reach zero.
  size_t loops_live_ AIDA_GUARDED_BY(inject_mutex_) = 0;
  util::CondVar loops_done_;

  /// Mirror of injection_.size() so idle probes skip the lock.
  std::atomic<size_t> injection_size_{0};
  /// Tasks published but not yet acquired by any executor. seq_cst
  /// Dekker pairing with sleepers_approx_ prevents a spawn from being
  /// stranded while a worker commits to sleeping.
  std::atomic<size_t> queued_{0};
  /// Mirror of sleepers_ readable without the lock (see Enqueue).
  std::atomic<size_t> sleepers_approx_{0};
  /// Live TaskNodes (enqueued, not yet executed); must be 0 at destruction.
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<uint64_t> overflow_enqueued_{0};

  util::WorkerPool* borrow_pool_ = nullptr;
  std::vector<std::thread> threads_;
};

/// Fork-join handle: spawn with Run, join with Wait. The constructor
/// binds the group to a slot — the calling scheduler worker's own slot
/// for nested groups, otherwise a claimed participant slot (released
/// again at destruction), or no slot at all (inline execution) when the
/// scheduler is saturated or null.
///
/// Wait() participates: it pops the group's own deque, then steals any
/// runnable task (including other groups' — helping guarantees progress),
/// and only parks when nothing is runnable. The first exception thrown by
/// a task is captured and rethrown from Wait() after all tasks finished.
///
/// Cancellation is observed at spawn boundaries: once the token trips,
/// Run() stops launching (tasks already spawned still run to completion),
/// so a cancelled fork-join region drains promptly and cancelled()
/// reports that outputs are partial. Bodies poll the same token at finer
/// granularity themselves.
///
/// Not thread-safe: one thread constructs, Runs, Waits, destroys. Tasks
/// may themselves create nested TaskGroups.
class TaskGroup {
 public:
  struct Stats {
    uint64_t spawned = 0;          // tasks handed to the scheduler
    uint64_t inline_executed = 0;  // bodies run inline (no slot / serial)
    uint64_t stolen = 0;           // spawned tasks executed by another slot
  };

  explicit TaskGroup(Scheduler* scheduler,
                     const util::CancellationToken* cancel = nullptr);
  /// Joins outstanding tasks (swallowing any unretrieved exception) if
  /// Wait() was not called.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` (any void() callable). Runs it inline when the group is
  /// slotless; skips it entirely when the cancellation token tripped or
  /// a previous task already failed. Steady-state spawns are
  /// allocation-free: the callable moves into a recycled TaskNode's
  /// inline storage (see internal::TaskNode) as long as its captures fit
  /// internal::kInlineTaskBytes.
  template <typename Fn>
  void Run(Fn&& fn) {
    AIDA_DCHECK(!waited_, "TaskGroup::Run after Wait");
    if (cancel_ != nullptr && cancel_->cancelled()) {
      // Observed cancellation at the spawn boundary: stop launching work.
      cancelled_seen_ = true;
      return;
    }
    if (slot_ == nullptr) {
      if (!BeginInline()) return;  // fail fast once a body threw
      try {
        fn();
      } catch (...) {
        CaptureError(std::current_exception());
      }
      return;
    }
    internal::TaskNode* node = scheduler_->AcquireNode(slot_index_);
    node->Install(std::forward<Fn>(fn));
    node->group = this;
    node->origin_slot = slot_index_;
    SpawnNode(node);
  }

  /// Blocks until every spawned task finished, executing and stealing
  /// work while it waits. Rethrows the first captured task exception.
  /// May be called once; Run() after Wait() is a contract violation.
  void Wait();

  /// True once the token tripped before or during spawning — outputs of
  /// this region are partial and must be discarded by the caller.
  bool cancelled() const;

  /// Spawn/steal accounting; stable after Wait().
  const Stats& stats() const { return stats_; }

 private:
  friend class Scheduler;

  /// Called by the executor after a task body returned or threw. The
  /// group outlives every call: Wait() only returns once pending_ hit 0
  /// under mutex_, which cannot happen before the last OnTaskDone
  /// released it.
  void OnTaskDone(bool stolen, std::exception_ptr error)
      AIDA_EXCLUDES(mutex_);

  /// Wait() body without the rethrow, for the destructor path.
  void Join();

  /// Inline-execution bookkeeping for slotless groups: returns false
  /// (skipping the body) once a previous body threw.
  bool BeginInline() AIDA_EXCLUDES(mutex_);
  /// Records the first exception thrown by an inline body.
  void CaptureError(std::exception_ptr error) AIDA_EXCLUDES(mutex_);
  /// Publishes an installed node to the scheduler (or drops it, callable
  /// destroyed but unrun, when a sibling already failed).
  void SpawnNode(internal::TaskNode* node) AIDA_EXCLUDES(mutex_);

  Scheduler* const scheduler_;
  const util::CancellationToken* const cancel_;
  Scheduler::Slot* slot_ = nullptr;
  uint32_t slot_index_ = Scheduler::kNoSlot;
  bool owns_slot_ = false;
  /// Saved thread-slot binding, restored when an owned slot is released.
  Scheduler* prev_tls_scheduler_ = nullptr;
  uint32_t prev_tls_slot_index_ = Scheduler::kNoSlot;
  bool waited_ = false;
  bool cancelled_seen_ = false;
  Stats stats_;

  util::Mutex mutex_{util::lock_rank::kTaskGroup};
  util::CondVar done_;
  uint64_t pending_ AIDA_GUARDED_BY(mutex_) = 0;
  uint64_t stolen_count_ AIDA_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ AIDA_GUARDED_BY(mutex_);
};

}  // namespace aida::task

#endif  // AIDA_TASK_SCHEDULER_H_
