#ifndef AIDA_TASK_WORK_STEALING_DEQUE_H_
#define AIDA_TASK_WORK_STEALING_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cacheline.h"
#include "util/check.h"
#include "util/function_effects.h"

namespace aida::task {

/// Bounded single-owner work-stealing deque in the style of Chase-Lev:
/// the owner pushes and pops at the bottom (LIFO, keeping its working set
/// hot), thieves take from the top (FIFO, stealing the oldest — and for
/// fork-join trees usually the largest — task). The ring never grows;
/// when it is full, TryPush fails and the scheduler spills to its shared
/// injection queue instead, which bounds memory without losing tasks.
///
/// Memory ordering uses the sequentially-consistent formulation of the
/// algorithm (seq_cst on the top/bottom races in TryPop/TrySteal) rather
/// than standalone fences: ThreadSanitizer does not model
/// std::atomic_thread_fence, so the fence-based variant reports false
/// races, while this spelling is both provably correct and TSan-clean.
/// On x86 the cost difference is one locked instruction in TryPop.
///
/// Stores raw pointers; ownership is transferred to whichever consumer
/// (owner pop or thief steal) wins the element — exactly one does.
template <typename T>
class WorkStealingDeque {
 public:
  /// `capacity` is rounded up to the next power of two, minimum 2.
  explicit WorkStealingDeque(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<std::atomic<T*>>(cap);
    mask_ = cap - 1;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. False when the ring is full (caller spills elsewhere).
  /// AIDA_NONBLOCKING: pure atomics over a preallocated ring — the whole
  /// point of the bounded deque is that the owner's fast path cannot
  /// touch the allocator or a lock (the spill on false is the caller's
  /// audited cold branch).
  bool TryPush(T* item) AIDA_NONBLOCKING {
    AIDA_DCHECK(item != nullptr);
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    // A stale (small) t only under-reports free space: we may spill a
    // push that would have fit, never overwrite an unstolen slot.
    if (b - t >= static_cast<int64_t>(mask_ + 1)) return false;
    slots_[static_cast<size_t>(b) & mask_].store(item,
                                                 std::memory_order_relaxed);
    // Publishes the slot write to thieves that acquire-load bottom_.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. Null when empty. LIFO end.
  T* TryPop() AIDA_NONBLOCKING {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst store: totally ordered against TrySteal's top/bottom loads,
    // standing in for the owner-side fence of the classic algorithm.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = slots_[static_cast<size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Null when empty or when the steal lost a race (callers
  /// treat both as "try another victim"). FIFO end.
  T* TrySteal() AIDA_NONBLOCKING {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    T* item =
        slots_[static_cast<size_t>(t) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Racy size estimate for victim-selection heuristics only.
  size_t ApproxSize() const AIDA_NONBLOCKING {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<std::atomic<T*>> slots_;
  size_t mask_ = 0;
  /// Thieves advance top_; the owner advances bottom_. Separate lines so
  /// steals do not bounce the owner's push/pop line.
  alignas(util::kCacheLineSize) std::atomic<int64_t> top_{0};
  alignas(util::kCacheLineSize) std::atomic<int64_t> bottom_{0};
};

}  // namespace aida::task

#endif  // AIDA_TASK_WORK_STEALING_DEQUE_H_
