#include "task/parallel_for.h"

#include <algorithm>

#include "task/scheduler.h"

namespace aida::task {

ParallelForStats ParallelChunks(
    Scheduler* scheduler, size_t count, size_t max_tasks,
    const util::CancellationToken* cancel,
    const std::function<void(size_t, size_t)>& body) {
  ParallelForStats stats;
  if (count == 0) {
    stats.cancelled = cancel != nullptr && cancel->cancelled();
    return stats;
  }
  if (scheduler == nullptr || max_tasks <= 1 || count <= 1) {
    if (cancel != nullptr && cancel->cancelled()) {
      stats.cancelled = true;
      return stats;
    }
    body(0, count);
    stats.cancelled = cancel != nullptr && cancel->cancelled();
    return stats;
  }

  const size_t chunks = std::min(max_tasks, count);
  const size_t base = count / chunks;
  const size_t remainder = count % chunks;
  TaskGroup group(scheduler, cancel);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < remainder ? 1 : 0);
    group.Run([begin, end, &body] { body(begin, end); });
    begin = end;
  }
  group.Wait();  // rethrows the first body exception

  const TaskGroup::Stats& group_stats = group.stats();
  stats.tasks = group_stats.spawned + group_stats.inline_executed;
  stats.stolen = group_stats.stolen;
  stats.cancelled = group.cancelled();
  return stats;
}

}  // namespace aida::task
