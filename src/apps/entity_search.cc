#include "apps/entity_search.h"

#include <algorithm>
#include <cmath>

#include "text/stopwords.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::apps {

EntitySearch::EntitySearch(const kb::KnowledgeBase* kb) : kb_(kb) {
  AIDA_CHECK(kb_ != nullptr);
}

void EntitySearch::AddPosting(PostingList& list, uint32_t doc) {
  if (!list.empty() && list.back().doc == doc) {
    ++list.back().count;
  } else {
    list.push_back({doc, 1});
  }
}

size_t EntitySearch::IndexDocument(const corpus::Document& doc,
                                   const std::vector<kb::EntityId>& entities) {
  AIDA_CHECK(entities.size() == doc.mentions.size());
  uint32_t doc_id = static_cast<uint32_t>(days_.size());
  days_.push_back(doc.day);

  const text::StopwordList& stopwords = text::DefaultStopwords();
  for (const std::string& token : doc.tokens) {
    if (token.size() <= 1 || stopwords.Contains(token)) continue;
    AddPosting(words_[util::ToLower(token)], doc_id);
  }
  for (kb::EntityId e : entities) {
    if (e == kb::kNoEntity) continue;
    AddPosting(entities_[e], doc_id);
    for (kb::TypeId t : kb_->entities().Get(e).types) {
      for (kb::TypeId ancestor : kb_->taxonomy().AncestorsInclusive(t)) {
        AddPosting(categories_[ancestor], doc_id);
      }
    }
  }
  return doc_id;
}

void EntitySearch::Accumulate(const PostingList& list, double idf_boost,
                              size_t total_docs,
                              std::unordered_map<uint32_t, double>& scores) {
  if (list.empty()) return;
  double idf = std::log2(static_cast<double>(total_docs + 1) /
                         static_cast<double>(list.size()));
  for (const Posting& p : list) {
    scores[p.doc] +=
        idf_boost * idf * (1.0 + std::log2(1.0 + p.count));
  }
}

std::vector<EntitySearch::Suggestion> EntitySearch::Suggest(
    std::string_view prefix, size_t top_k) const {
  if (!name_index_built_) {
    for (const std::string& name : kb_->dictionary().AllNames()) {
      auto candidates = kb_->dictionary().Lookup(name);
      if (candidates.empty()) continue;
      Suggestion suggestion;
      suggestion.name = name;
      suggestion.entity = candidates.front().entity;
      suggestion.anchor_count = candidates.front().anchor_count;
      name_index_.emplace_back(util::ToLower(name), std::move(suggestion));
    }
    std::sort(name_index_.begin(), name_index_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    name_index_built_ = true;
  }

  std::string key = util::ToLower(prefix);
  auto begin = std::lower_bound(
      name_index_.begin(), name_index_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  std::vector<Suggestion> matches;
  for (auto it = begin; it != name_index_.end(); ++it) {
    if (it->first.compare(0, key.size(), key) != 0) break;
    matches.push_back(it->second);
  }
  std::sort(matches.begin(), matches.end(),
            [](const Suggestion& a, const Suggestion& b) {
              if (a.anchor_count != b.anchor_count) {
                return a.anchor_count > b.anchor_count;
              }
              return a.name < b.name;
            });
  if (matches.size() > top_k) matches.resize(top_k);
  return matches;
}

std::vector<EntitySearch::Hit> EntitySearch::Search(const Query& query,
                                                    size_t top_k) const {
  std::unordered_map<uint32_t, double> scores;
  const size_t n = days_.size();
  for (const std::string& term : query.terms) {
    auto it = words_.find(util::ToLower(term));
    if (it != words_.end()) Accumulate(it->second, 1.0, n, scores);
  }
  for (kb::EntityId e : query.entities) {
    auto it = entities_.find(e);
    // Entity matches are the core signal; boost them over plain words.
    if (it != entities_.end()) Accumulate(it->second, 2.0, n, scores);
  }
  for (kb::TypeId t : query.categories) {
    auto it = categories_.find(t);
    if (it != categories_.end()) Accumulate(it->second, 1.5, n, scores);
  }

  std::vector<Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    if (days_[doc] < query.first_day || days_[doc] > query.last_day) continue;
    hits.push_back({doc, score});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_index < b.doc_index;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace aida::apps
