#ifndef AIDA_APPS_ENTITY_SEARCH_H_
#define AIDA_APPS_ENTITY_SEARCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/document.h"
#include "kb/knowledge_base.h"

namespace aida::apps {

/// STICS-style semantic search over an entity-annotated document stream
/// (Section 6.1: "searching for strings, things, and cats"). Documents are
/// indexed on three levels:
///
///  * strings — plain words;
///  * things  — canonical entities produced by NED, so a query for one
///    entity finds documents regardless of which surface name they used;
///  * cats    — taxonomy types, expanded through the type hierarchy, so a
///    query for "person" matches documents mentioning any person entity.
///
/// Queries combine all three plus a publication-day range.
class EntitySearch {
 public:
  struct Query {
    std::vector<std::string> terms;
    std::vector<kb::EntityId> entities;
    std::vector<kb::TypeId> categories;
    int64_t first_day = INT64_MIN;
    int64_t last_day = INT64_MAX;
  };

  struct Hit {
    size_t doc_index = 0;
    double score = 0.0;
  };

  /// `kb` is not owned and must outlive the index.
  explicit EntitySearch(const kb::KnowledgeBase* kb);

  /// Indexes a document under its (disambiguated) entity annotations;
  /// `entities[i]` is the entity of mention i (kb::kNoEntity entries are
  /// skipped). Returns the document's index.
  size_t IndexDocument(const corpus::Document& doc,
                       const std::vector<kb::EntityId>& entities);

  /// Top-k documents matching the query, scored by a tf-idf style sum over
  /// term/entity/category matches.
  std::vector<Hit> Search(const Query& query, size_t top_k) const;

  /// Entity-name auto-completion (the STICS query suggestion box): all
  /// dictionary names starting with `prefix` (case-insensitive), each
  /// with its most popular entity, ranked by anchor count. The name index
  /// is built lazily on first use.
  struct Suggestion {
    std::string name;
    kb::EntityId entity = kb::kNoEntity;
    uint64_t anchor_count = 0;
  };
  std::vector<Suggestion> Suggest(std::string_view prefix,
                                  size_t top_k) const;

  size_t document_count() const { return days_.size(); }

 private:
  struct Posting {
    uint32_t doc = 0;
    uint32_t count = 0;
  };
  using PostingList = std::vector<Posting>;

  void AddPosting(PostingList& list, uint32_t doc);
  static void Accumulate(const PostingList& list, double idf_boost,
                         size_t total_docs,
                         std::unordered_map<uint32_t, double>& scores);

  const kb::KnowledgeBase* kb_;
  std::unordered_map<std::string, PostingList> words_;
  std::unordered_map<kb::EntityId, PostingList> entities_;
  std::unordered_map<kb::TypeId, PostingList> categories_;
  std::vector<int64_t> days_;
  // Lazily built, sorted (lowercased name, suggestion) index.
  mutable std::vector<std::pair<std::string, Suggestion>> name_index_;
  mutable bool name_index_built_ = false;
};

}  // namespace aida::apps

#endif  // AIDA_APPS_ENTITY_SEARCH_H_
