#include "apps/serving.h"

#include <utility>
#include <vector>

namespace aida::apps {

StreamIngestReport IngestCorpus(serve::NedService& service,
                                const corpus::Corpus& corpus,
                                EntitySearch* search,
                                NewsAnalytics* analytics,
                                serve::RequestOptions options) {
  std::vector<core::DisambiguationProblem> problems;
  problems.reserve(corpus.size());
  for (const corpus::Document& doc : corpus) {
    core::DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    problems.push_back(std::move(problem));
  }

  std::vector<serve::ServeResult> results =
      service.DisambiguateAll(problems, options);

  StreamIngestReport report;
  report.documents = corpus.size();
  for (size_t d = 0; d < results.size(); ++d) {
    const serve::ServeResult& result = results[d];
    if (!result.status.ok()) {
      switch (result.status.code()) {
        case util::StatusCode::kDeadlineExceeded:
          ++report.deadline_expired;
          break;
        case util::StatusCode::kInternal:
          ++report.failed;
          break;
        default:  // kResourceExhausted / kCancelled
          ++report.shed;
          break;
      }
      continue;
    }
    report.ned_stats += result.result.stats;
    std::vector<kb::EntityId> entities;
    entities.reserve(result.result.mentions.size());
    for (const core::MentionResult& m : result.result.mentions) {
      entities.push_back(m.entity);
    }
    if (search != nullptr) search->IndexDocument(corpus[d], entities);
    if (analytics != nullptr) analytics->AddDocument(corpus[d].day, entities);
    ++report.indexed;
    ++report.indexed_by_generation[result.generation];
  }
  return report;
}

}  // namespace aida::apps
