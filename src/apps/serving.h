#ifndef AIDA_APPS_SERVING_H_
#define AIDA_APPS_SERVING_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "apps/entity_search.h"
#include "apps/news_analytics.h"
#include "corpus/document.h"
#include "serve/ned_service.h"

namespace aida::apps {

/// Outcome of streaming a corpus through a NedService into the chapter-6
/// applications. Documents whose request did not complete are simply not
/// indexed — the application-level face of load shedding.
struct StreamIngestReport {
  size_t documents = 0;         // submitted
  size_t indexed = 0;           // completed and added to the index(es)
  size_t deadline_expired = 0;  // expired in queue or mid-flight
  size_t shed = 0;              // rejected at admission or by shutdown
  size_t failed = 0;            // the wrapped system threw
  /// NED efficiency counters of the completed requests only.
  core::DisambiguationStats ned_stats;
  /// Indexed documents per KB snapshot generation. A hot reload during
  /// ingest shows up as two entries; callers that must re-index after a
  /// KB swap can detect the mix here instead of comparing annotations.
  std::map<uint64_t, size_t> indexed_by_generation;
};

/// Streams `corpus` through the serving layer and feeds each completed
/// annotation into `search` and/or `analytics` (either may be null).
/// This is how the STICS-style search and the news-analytics dashboards
/// consume NED in the online architecture: they hold a service handle
/// instead of running the disambiguator inline, so index building rides
/// the same worker pool, admission control, and deadlines as interactive
/// traffic. Blocks until every document resolved; uses the service's
/// closed-loop batch path, so it applies backpressure instead of
/// shedding its own submissions (deadlines still apply via `options`).
StreamIngestReport IngestCorpus(serve::NedService& service,
                                const corpus::Corpus& corpus,
                                EntitySearch* search,
                                NewsAnalytics* analytics,
                                serve::RequestOptions options = {});

}  // namespace aida::apps

#endif  // AIDA_APPS_SERVING_H_
