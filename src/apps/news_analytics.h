#ifndef AIDA_APPS_NEWS_ANALYTICS_H_
#define AIDA_APPS_NEWS_ANALYTICS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"

namespace aida::apps {

/// Entity-level analytics over a disambiguated news stream (Section 6.2):
/// per-day entity frequencies, co-occurrence statistics, and trending
/// detection (entities whose current frequency spikes over their baseline).
class NewsAnalytics {
 public:
  /// Records one document: its publication day and the distinct entities
  /// it mentions (already disambiguated).
  void AddDocument(int64_t day, const std::vector<kb::EntityId>& entities);

  /// Documents mentioning `entity` per day over [first_day, last_day].
  std::vector<uint32_t> FrequencyTimeline(kb::EntityId entity,
                                          int64_t first_day,
                                          int64_t last_day) const;

  /// Entities most frequently co-mentioned with `entity`.
  std::vector<std::pair<kb::EntityId, uint32_t>> TopCooccurring(
      kb::EntityId entity, size_t top_k) const;

  /// Documents co-mentioning `a` and `b` per day over
  /// [first_day, last_day] — the relationship-over-time view of the
  /// news-analytics use cases (Section 6.2.3).
  std::vector<uint32_t> CooccurrenceTimeline(kb::EntityId a, kb::EntityId b,
                                             int64_t first_day,
                                             int64_t last_day) const;

  /// Entities whose frequency in [day - window + 1, day] most exceeds
  /// their average frequency before that window (ratio with add-one
  /// smoothing), with at least `min_count` current mentions.
  std::vector<std::pair<kb::EntityId, double>> TrendingEntities(
      int64_t day, int64_t window, size_t top_k,
      uint32_t min_count = 3) const;

  size_t document_count() const { return total_documents_; }

 private:
  // entity -> day -> document count.
  std::unordered_map<kb::EntityId, std::unordered_map<int64_t, uint32_t>>
      daily_;
  // unordered entity pair key -> co-mention count.
  std::unordered_map<uint64_t, uint32_t> cooccurrence_;
  // unordered entity pair key -> day -> co-mention count.
  std::unordered_map<uint64_t, std::unordered_map<int64_t, uint32_t>>
      daily_pairs_;
  int64_t first_seen_day_ = 0;
  bool any_documents_ = false;
  size_t total_documents_ = 0;
};

}  // namespace aida::apps

#endif  // AIDA_APPS_NEWS_ANALYTICS_H_
