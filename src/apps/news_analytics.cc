#include "apps/news_analytics.h"

#include <algorithm>

namespace aida::apps {

namespace {

uint64_t PairKey(kb::EntityId a, kb::EntityId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

void NewsAnalytics::AddDocument(int64_t day,
                                const std::vector<kb::EntityId>& entities) {
  // Distinct entities only.
  std::vector<kb::EntityId> distinct;
  for (kb::EntityId e : entities) {
    if (e == kb::kNoEntity) continue;
    if (std::find(distinct.begin(), distinct.end(), e) == distinct.end()) {
      distinct.push_back(e);
    }
  }
  for (size_t i = 0; i < distinct.size(); ++i) {
    ++daily_[distinct[i]][day];
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      uint64_t key = PairKey(distinct[i], distinct[j]);
      ++cooccurrence_[key];
      ++daily_pairs_[key][day];
    }
  }
  if (!any_documents_ || day < first_seen_day_) first_seen_day_ = day;
  any_documents_ = true;
  ++total_documents_;
}

std::vector<uint32_t> NewsAnalytics::FrequencyTimeline(
    kb::EntityId entity, int64_t first_day, int64_t last_day) const {
  std::vector<uint32_t> timeline;
  if (last_day < first_day) return timeline;
  timeline.assign(static_cast<size_t>(last_day - first_day + 1), 0);
  auto it = daily_.find(entity);
  if (it == daily_.end()) return timeline;
  for (const auto& [day, count] : it->second) {
    if (day < first_day || day > last_day) continue;
    timeline[static_cast<size_t>(day - first_day)] = count;
  }
  return timeline;
}

std::vector<std::pair<kb::EntityId, uint32_t>> NewsAnalytics::TopCooccurring(
    kb::EntityId entity, size_t top_k) const {
  std::vector<std::pair<kb::EntityId, uint32_t>> pairs;
  for (const auto& [key, count] : cooccurrence_) {
    kb::EntityId a = static_cast<kb::EntityId>(key >> 32);
    kb::EntityId b = static_cast<kb::EntityId>(key & 0xFFFFFFFFu);
    if (a == entity) {
      pairs.emplace_back(b, count);
    } else if (b == entity) {
      pairs.emplace_back(a, count);
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (pairs.size() > top_k) pairs.resize(top_k);
  return pairs;
}

std::vector<uint32_t> NewsAnalytics::CooccurrenceTimeline(
    kb::EntityId a, kb::EntityId b, int64_t first_day,
    int64_t last_day) const {
  std::vector<uint32_t> timeline;
  if (last_day < first_day) return timeline;
  timeline.assign(static_cast<size_t>(last_day - first_day + 1), 0);
  auto it = daily_pairs_.find(PairKey(a, b));
  if (it == daily_pairs_.end()) return timeline;
  for (const auto& [day, count] : it->second) {
    if (day < first_day || day > last_day) continue;
    timeline[static_cast<size_t>(day - first_day)] = count;
  }
  return timeline;
}

std::vector<std::pair<kb::EntityId, double>> NewsAnalytics::TrendingEntities(
    int64_t day, int64_t window, size_t top_k, uint32_t min_count) const {
  std::vector<std::pair<kb::EntityId, double>> trending;
  if (!any_documents_ || window <= 0) return trending;
  for (const auto& [entity, counts] : daily_) {
    uint32_t current = 0;
    uint32_t baseline = 0;
    for (const auto& [d, count] : counts) {
      if (d > day) continue;
      if (d > day - window) {
        current += count;
      } else {
        baseline += count;
      }
    }
    if (current < min_count) continue;
    int64_t baseline_days =
        std::max<int64_t>(1, day - window + 1 - first_seen_day_);
    double baseline_rate =
        static_cast<double>(baseline) / static_cast<double>(baseline_days);
    double current_rate =
        static_cast<double>(current) / static_cast<double>(window);
    trending.emplace_back(entity,
                          (current_rate + 1.0) / (baseline_rate + 1.0));
  }
  std::sort(trending.begin(), trending.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first < y.first;
            });
  if (trending.size() > top_k) trending.resize(top_k);
  return trending;
}

}  // namespace aida::apps
