#include "ee/ee_discovery.h"

#include <algorithm>

#include "util/status.h"
#include "util/string_util.h"

namespace aida::ee {

EmergingEntityDiscoverer::EmergingEntityDiscoverer(
    const core::CandidateModelStore* models, const core::NedSystem* ned,
    const corpus::Corpus* stream, EeDiscoveryOptions options)
    : models_(models),
      ned_(ned),
      stream_(stream),
      options_(options),
      harvester_(KeyphraseHarvester::Options{
          options.harvest_sentence_window}) {
  AIDA_CHECK(models_ != nullptr && ned_ != nullptr && stream_ != nullptr);
  vocab_ = std::make_unique<core::ExtendedVocabulary>(
      &models_->knowledge_base().keyphrases());
  builder_ = std::make_unique<EmergingEntityModelBuilder>(
      models_, vocab_.get(), options_.model);
}

std::vector<const corpus::Document*> EmergingEntityDiscoverer::Chunk(
    int64_t first, int64_t last, const corpus::Document* exclude) const {
  std::vector<const corpus::Document*> docs;
  for (const corpus::Document& doc : *stream_) {
    if (&doc == exclude) continue;
    if (doc.day >= first && doc.day <= last) docs.push_back(&doc);
  }
  return docs;
}

std::shared_ptr<const core::CandidateModel>
EmergingEntityDiscoverer::ModelFor(kb::EntityId entity) const {
  auto it = extended_models_.find(entity);
  if (it != extended_models_.end()) return it->second;
  return models_->ModelFor(entity);
}

void EmergingEntityDiscoverer::HarvestExistingEntities(int64_t first_day,
                                                       int64_t last_day) {
  std::vector<const corpus::Document*> docs =
      Chunk(first_day, last_day, nullptr);
  if (docs.empty()) return;

  // Disambiguate each harvest document with the base NED and keep only
  // assignments whose normalized-score confidence clears the bar; at 95%
  // confidence nearly all of them are correct (Table 5.1), so little noise
  // enters the entity models.
  std::vector<std::vector<std::pair<size_t, kb::EntityId>>> assignments(
      docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    const corpus::Document& doc = *docs[d];
    core::DisambiguationProblem problem;
    problem.tokens = &doc.tokens;
    for (const corpus::GoldMention& gm : doc.mentions) {
      core::ProblemMention pm;
      pm.surface = gm.surface;
      pm.begin_token = gm.begin_token;
      pm.end_token = gm.end_token;
      problem.mentions.push_back(std::move(pm));
    }
    core::DisambiguationResult result = ned_->Disambiguate(problem, {});
    std::vector<double> confidence =
        ConfidenceEstimator::NormalizedScores(result);
    for (size_t m = 0; m < result.mentions.size(); ++m) {
      if (result.mentions[m].entity == kb::kNoEntity) continue;
      if (confidence[m] < options_.existing_confidence) continue;
      assignments[d].emplace_back(m, result.mentions[m].entity);
    }
  }

  KeyphraseHarvester narrow_harvester(
      KeyphraseHarvester::Options{options_.existing_sentence_window});
  for (auto& [entity, counts] :
       narrow_harvester.HarvestForEntities(docs, assignments)) {
    std::shared_ptr<const core::CandidateModel> base = ModelFor(entity);
    extended_models_[entity] =
        builder_->ExtendModel(*base, counts, docs.size());
  }
  // Extended models change candidate features; cached placeholders built
  // against the old models stay valid (the difference is taken per call).
}

std::shared_ptr<const core::CandidateModel>
EmergingEntityDiscoverer::PlaceholderModel(const std::string& name,
                                           int64_t day) {
  std::string key = util::StrFormat("%s@%lld", name.c_str(),
                                    static_cast<long long>(day));
  auto it = placeholder_cache_.find(key);
  if (it != placeholder_cache_.end()) return it->second;

  std::vector<const corpus::Document*> chunk =
      Chunk(day - options_.harvest_days, day, nullptr);
  HarvestedCounts harvested = harvester_.HarvestForName(chunk, name);

  std::vector<core::Candidate> kb_candidates =
      core::LookupCandidates(*models_, name);
  std::shared_ptr<const core::CandidateModel> model =
      builder_->BuildPlaceholder(name, harvested, kb_candidates,
                                 chunk.size());
  placeholder_cache_.emplace(std::move(key), model);
  return model;
}

core::DisambiguationResult EmergingEntityDiscoverer::Discover(
    const corpus::Document& doc) {
  // Resolve candidates with (possibly harvest-extended) models.
  core::DisambiguationProblem problem;
  problem.tokens = &doc.tokens;
  core::DisambiguateOptions ned_options;
  ned_options.vocab = vocab_.get();
  for (const corpus::GoldMention& gm : doc.mentions) {
    core::ProblemMention pm;
    pm.surface = gm.surface;
    pm.begin_token = gm.begin_token;
    pm.end_token = gm.end_token;
    pm.candidates_resolved = true;
    for (const kb::NameCandidate& nc :
         models_->knowledge_base().dictionary().Lookup(gm.surface)) {
      core::Candidate c;
      c.entity = nc.entity;
      c.prior = nc.prior;
      c.model = ModelFor(nc.entity);
      pm.candidates.push_back(std::move(c));
    }
    problem.mentions.push_back(std::move(pm));
  }

  // ---- Optional first stage: confidence thresholding ----------------------
  std::vector<int> fixed_state(problem.mentions.size(), 0);  // 0 free,
                                                             // 1 EE, 2 pinned
  if (options_.lower_threshold > 0.0 || options_.upper_threshold < 1.0) {
    core::DisambiguationResult initial =
        ned_->Disambiguate(problem, ned_options);
    ConfidenceEstimator estimator(models_, ned_, options_.confidence);
    std::vector<double> conf = estimator.Conf(problem, initial, ned_options);
    for (size_t m = 0; m < problem.mentions.size(); ++m) {
      if (problem.mentions[m].candidates.empty()) continue;
      if (conf[m] <= options_.lower_threshold) {
        fixed_state[m] = 1;
      } else if (conf[m] >= options_.upper_threshold &&
                 initial.mentions[m].entity != kb::kNoEntity) {
        fixed_state[m] = 2;
        // Pin: reduce the candidate list to the initial entity.
        auto& cands = problem.mentions[m].candidates;
        for (const core::Candidate& c : cands) {
          if (c.entity == initial.mentions[m].entity) {
            core::Candidate pinned = c;
            cands.assign(1, pinned);
            break;
          }
        }
      }
    }
  }

  // ---- Placeholder injection -----------------------------------------------
  for (size_t m = 0; m < problem.mentions.size(); ++m) {
    if (fixed_state[m] == 2) continue;
    core::ProblemMention& pm = problem.mentions[m];
    core::Candidate placeholder;
    placeholder.entity = kb::kNoEntity;
    placeholder.is_placeholder = true;
    placeholder.prior = 0.0;
    placeholder.weight_scale = options_.gamma;
    placeholder.model = PlaceholderModel(pm.surface, doc.day);
    if (fixed_state[m] == 1) {
      // Thresholded EE: only the placeholder remains.
      pm.candidates.assign(1, placeholder);
    } else {
      pm.candidates.push_back(std::move(placeholder));
    }
  }

  return ned_->Disambiguate(problem, ned_options);
}

core::DisambiguationResult ApplyEeThreshold(
    const core::DisambiguationResult& result,
    const std::vector<double>& confidences, double threshold) {
  AIDA_CHECK(result.mentions.size() == confidences.size());
  core::DisambiguationResult out = result;
  for (size_t m = 0; m < out.mentions.size(); ++m) {
    if (confidences[m] < threshold) {
      out.mentions[m].entity = kb::kNoEntity;
      out.mentions[m].chose_placeholder = false;
    }
  }
  return out;
}

}  // namespace aida::ee
