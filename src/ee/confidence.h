#ifndef AIDA_EE_CONFIDENCE_H_
#define AIDA_EE_CONFIDENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ned_system.h"

namespace aida::ee {

/// Tuning of the confidence estimators (Section 5.4).
struct ConfidenceOptions {
  /// Perturbation rounds (the paper uses 500; fewer already stabilize on
  /// our corpora and keep experiments fast).
  size_t rounds = 60;
  /// Fraction of mentions dropped (mention perturbation) or force-mapped
  /// to an alternate entity (entity perturbation) per round.
  double perturb_fraction = 0.25;
  /// CONF combination weights (Section 5.7.1: 0.5 / 0.5 of normalized
  /// weighted-degree score and entity-perturbation stability).
  double norm_weight = 0.5;
  double perturb_weight = 0.5;
  uint64_t seed = 0xC0FFEE;
};

/// Estimates per-mention disambiguation confidence for a black-box NED
/// system, via score normalization and input perturbation.
class ConfidenceEstimator {
 public:
  /// Neither pointer is owned; both must outlive the estimator.
  ConfidenceEstimator(const core::CandidateModelStore* models,
                      const core::NedSystem* ned, ConfidenceOptions options);

  /// Normalized-score confidence (Section 5.4.1): the chosen candidate's
  /// share of the total per-mention score mass.
  static std::vector<double> NormalizedScores(
      const core::DisambiguationResult& result);

  /// Mention-perturbation confidence (Section 5.4.2): stability of each
  /// mention's entity when random subsets of the other mentions are
  /// removed from the input. `options` (vocabulary, cancellation) is
  /// forwarded to every perturbed rerun of the underlying NED system.
  std::vector<double> MentionPerturbation(
      const core::DisambiguationProblem& problem,
      const core::DisambiguationResult& base,
      const core::DisambiguateOptions& options = {}) const;

  /// Entity-perturbation confidence (Section 5.4.3): stability of each
  /// unperturbed mention when random other mentions are force-mapped to
  /// alternate (likely wrong) candidates.
  std::vector<double> EntityPerturbation(
      const core::DisambiguationProblem& problem,
      const core::DisambiguationResult& base,
      const core::DisambiguateOptions& options = {}) const;

  /// The combined CONF estimator: norm_weight * NormalizedScores +
  /// perturb_weight * EntityPerturbation.
  std::vector<double> Conf(const core::DisambiguationProblem& problem,
                           const core::DisambiguationResult& base,
                           const core::DisambiguateOptions& options = {}) const;

 private:
  /// Returns `problem` with every mention's candidates resolved (so that
  /// perturbed reruns share one candidate space).
  core::DisambiguationProblem ResolveProblem(
      const core::DisambiguationProblem& problem) const;

  const core::CandidateModelStore* models_;
  const core::NedSystem* ned_;
  ConfidenceOptions options_;
};

}  // namespace aida::ee

#endif  // AIDA_EE_CONFIDENCE_H_
