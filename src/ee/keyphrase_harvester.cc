#include "ee/keyphrase_harvester.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "text/sentence_splitter.h"
#include "util/string_util.h"

namespace aida::ee {

namespace {

// Converts the corpus's pre-tokenized word list into a TokenSequence for
// the POS tagger (synthetic offsets; only text/case/punct flags matter).
text::TokenSequence ToTokens(const std::vector<std::string>& words) {
  text::TokenSequence tokens;
  tokens.reserve(words.size());
  size_t offset = 0;
  for (const std::string& w : words) {
    text::Token t;
    t.text = w;
    t.begin = offset;
    t.end = offset + w.size();
    offset = t.end + 1;
    t.capitalized =
        !w.empty() && std::isupper(static_cast<unsigned char>(w[0])) != 0;
    t.sentence_final_punct =
        w.size() == 1 && (w[0] == '.' || w[0] == '!' || w[0] == '?');
    tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace

bool SurfaceMatchesName(std::string_view surface, std::string_view name) {
  if (name.size() <= 3) return surface == name;
  return util::ToUpper(surface) == util::ToUpper(name);
}

KeyphraseHarvester::KeyphraseHarvester() : KeyphraseHarvester(Options()) {}

KeyphraseHarvester::KeyphraseHarvester(Options options) : options_(options) {}

std::vector<std::string> KeyphraseHarvester::WindowPhrases(
    const corpus::Document& doc, size_t mention_index) const {
  const corpus::GoldMention& mention = doc.mentions[mention_index];
  text::TokenSequence tokens = ToTokens(doc.tokens);
  text::SentenceSplitter splitter;
  std::vector<text::SentenceSpan> sentences = splitter.Split(tokens);
  if (sentences.empty()) return {};

  size_t sentence = text::SentenceSplitter::SentenceOf(
      sentences, mention.begin_token);
  size_t first = sentence >= options_.sentence_window
                     ? sentence - options_.sentence_window
                     : 0;
  size_t last = std::min(sentences.size() - 1,
                         sentence + options_.sentence_window);
  size_t window_begin = sentences[first].begin;
  size_t window_end = sentences[last].end;

  text::TokenSequence window(tokens.begin() + window_begin,
                             tokens.begin() + window_end);
  std::vector<nlp::PosTag> tags = tagger_.Tag(window);
  std::vector<std::string> phrases;
  std::string mention_lower = util::ToLower(mention.surface);
  for (const nlp::ExtractedPhrase& p : extractor_.Extract(window, tags)) {
    // The name itself is not a descriptive phrase.
    if (p.text == mention_lower) continue;
    phrases.push_back(p.text);
  }
  return phrases;
}

HarvestedCounts KeyphraseHarvester::HarvestForName(
    const std::vector<const corpus::Document*>& docs,
    std::string_view name) const {
  HarvestedCounts counts;
  for (const corpus::Document* doc : docs) {
    bool contributed = false;
    for (size_t i = 0; i < doc->mentions.size(); ++i) {
      if (!SurfaceMatchesName(doc->mentions[i].surface, name)) continue;
      ++counts.occurrences;
      contributed = true;
      // Count each distinct phrase once per occurrence window.
      std::unordered_set<std::string> seen;
      for (std::string& phrase : WindowPhrases(*doc, i)) {
        if (seen.insert(phrase).second) ++counts.phrase_counts[phrase];
      }
    }
    if (contributed) ++counts.documents;
  }
  return counts;
}

std::unordered_map<kb::EntityId, HarvestedCounts>
KeyphraseHarvester::HarvestForEntities(
    const std::vector<const corpus::Document*>& docs,
    const std::vector<std::vector<std::pair<size_t, kb::EntityId>>>&
        assignments) const {
  std::unordered_map<kb::EntityId, HarvestedCounts> result;
  for (size_t d = 0; d < docs.size(); ++d) {
    std::unordered_set<kb::EntityId> in_doc;
    for (const auto& [mention_index, entity] : assignments[d]) {
      HarvestedCounts& counts = result[entity];
      ++counts.occurrences;
      if (in_doc.insert(entity).second) ++counts.documents;
      std::unordered_set<std::string> seen;
      for (std::string& phrase : WindowPhrases(*docs[d], mention_index)) {
        if (seen.insert(phrase).second) ++counts.phrase_counts[phrase];
      }
    }
  }
  return result;
}

}  // namespace aida::ee
