#ifndef AIDA_EE_EMERGING_ENTITY_MODEL_H_
#define AIDA_EE_EMERGING_ENTITY_MODEL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/candidates.h"
#include "ee/keyphrase_harvester.h"

namespace aida::ee {

/// Tuning of emerging-entity model construction (Sections 5.5.2, 5.6).
struct EeModelOptions {
  /// Collection-size balance alpha between KB counts and news counts;
  /// 0 selects the automatic ratio (KB entities / chunk documents).
  double collection_balance = 0.0;
  /// Cap on phrases kept per model, best-weighted first (the paper caps
  /// at 3000 to balance popular against long-tail entities).
  size_t max_phrases = 3000;
  /// Scale of EE phrase MI weights relative to typical KB mu weights, so
  /// KORE treats placeholder phrases on a comparable footing.
  double phrase_weight_scale = 0.05;
  /// IDF assigned to harvested words unknown to the KB vocabulary.
  double new_word_idf = 10.0;
};

/// Builds keyphrase models for emerging-entity placeholders (Algorithm 2)
/// and keyphrase extensions for existing entities (Section 5.5.1).
class EmergingEntityModelBuilder {
 public:
  /// `models` and `vocab` are not owned; `vocab` is extended in place with
  /// harvested out-of-KB words.
  EmergingEntityModelBuilder(const core::CandidateModelStore* models,
                             core::ExtendedVocabulary* vocab,
                             EeModelOptions options);

  /// Algorithm 2: constructs the placeholder model of `name` by
  /// subtracting the (balance-adjusted) keyphrase counts of the in-KB
  /// candidates from the global name model harvested from the news chunk.
  /// `chunk_docs` is the size of the chunk the counts came from.
  std::shared_ptr<const core::CandidateModel> BuildPlaceholder(
      std::string_view name, const HarvestedCounts& harvested,
      const std::vector<core::Candidate>& kb_candidates,
      size_t chunk_docs) const;

  /// Extends an existing entity's model with harvested phrases (keyphrase
  /// enrichment from high-confidence disambiguations). The base model is
  /// not modified; a combined copy is returned.
  std::shared_ptr<const core::CandidateModel> ExtendModel(
      const core::CandidateModel& base, const HarvestedCounts& harvested,
      size_t chunk_docs) const;

 private:
  /// Converts harvested (phrase text, weight) pairs into CandidatePhrases,
  /// interning words into the extended vocabulary.
  std::vector<core::CandidatePhrase> ToPhrases(
      const std::vector<std::pair<std::string, double>>& weighted) const;

  const core::CandidateModelStore* models_;
  core::ExtendedVocabulary* vocab_;
  EeModelOptions options_;
};

}  // namespace aida::ee

#endif  // AIDA_EE_EMERGING_ENTITY_MODEL_H_
