#ifndef AIDA_EE_EE_DISCOVERY_H_
#define AIDA_EE_EE_DISCOVERY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ned_system.h"
#include "corpus/document.h"
#include "ee/confidence.h"
#include "ee/emerging_entity_model.h"
#include "ee/keyphrase_harvester.h"

namespace aida::ee {

/// Tuning of Algorithm 3 and the news-stream machinery of Section 5.6.
struct EeDiscoveryOptions {
  /// First-stage thresholds t_l / t_u: confidence <= t_l labels a mention
  /// EE outright, >= t_u pins the initial entity. The defaults (0, 1)
  /// disable the first stage, so only the placeholder competes.
  double lower_threshold = 0.0;
  double upper_threshold = 1.0;
  /// Days of the stream harvested for placeholder keyphrases
  /// (Figure 5.4 sweeps this).
  int64_t harvest_days = 2;
  /// Sentences harvested around each occurrence. Short news sentences make
  /// tight windows preferable: wide windows absorb the context of
  /// co-mentioned names into the placeholder model.
  size_t harvest_sentence_window = 1;
  /// Gamma: weight of placeholder evidence against in-KB entity evidence.
  double gamma = 0.05;
  /// Whether to enrich in-KB entity models from confident disambiguations
  /// of earlier stream days (Section 5.5.1).
  bool harvest_existing = true;
  double existing_confidence = 0.95;
  int64_t existing_harvest_days = 30;
  /// Window for existing-entity harvesting. 0 = the mention's own
  /// sentence only: wider windows let phrases of co-mentioned (possibly
  /// emerging) entities leak into in-KB models, suppressing EE recall.
  size_t existing_sentence_window = 0;
  EeModelOptions model;
  ConfidenceOptions confidence;
};

/// Discovers emerging entities over a dated news stream by making the
/// out-of-KB entity an explicit candidate (chapter 5): for each ambiguous
/// mention, a placeholder candidate is injected whose keyphrase model is
/// the model difference between the name's global news model and the
/// in-KB candidates' models; the black-box NED then decides.
class EmergingEntityDiscoverer {
 public:
  /// None of the pointers are owned; `ned` must accept pre-resolved
  /// candidates and placeholder models (AIDA does). `stream` supplies the
  /// dated documents used for harvesting.
  EmergingEntityDiscoverer(const core::CandidateModelStore* models,
                           const core::NedSystem* ned,
                           const corpus::Corpus* stream,
                           EeDiscoveryOptions options);

  /// Enriches in-KB entity models from confident disambiguations in the
  /// stream days [first_day, last_day]. Optional; call before Discover.
  void HarvestExistingEntities(int64_t first_day, int64_t last_day);

  /// Runs NED-EE on one document (Algorithm 3): first-stage thresholding
  /// (when enabled), placeholder injection, second NED pass. The returned
  /// result marks EE decisions via MentionResult::chose_placeholder /
  /// entity == kb::kNoEntity.
  core::DisambiguationResult Discover(const corpus::Document& doc);

  /// The extended vocabulary accumulated by harvesting (exposed so
  /// callers can reuse it for custom problems).
  const core::ExtendedVocabulary& vocab() const { return *vocab_; }

  /// Placeholder model for `name` as of day `day` (cached); exposed for
  /// tests and analysis tooling.
  std::shared_ptr<const core::CandidateModel> PlaceholderModel(
      const std::string& name, int64_t day);

 private:
  /// Stream documents with day in [first, last], excluding `exclude`.
  std::vector<const corpus::Document*> Chunk(int64_t first, int64_t last,
                                             const corpus::Document* exclude)
      const;

  /// Model for an in-KB entity, harvest-extended when available.
  std::shared_ptr<const core::CandidateModel> ModelFor(
      kb::EntityId entity) const;

  const core::CandidateModelStore* models_;
  const core::NedSystem* ned_;
  const corpus::Corpus* stream_;
  EeDiscoveryOptions options_;
  KeyphraseHarvester harvester_;
  std::unique_ptr<core::ExtendedVocabulary> vocab_;
  std::unique_ptr<EmergingEntityModelBuilder> builder_;
  // (name, day) -> cached placeholder model.
  std::unordered_map<std::string,
                     std::shared_ptr<const core::CandidateModel>>
      placeholder_cache_;
  // Harvest-extended models for in-KB entities.
  std::unordered_map<kb::EntityId,
                     std::shared_ptr<const core::CandidateModel>>
      extended_models_;
};

/// Threshold-based EE labeling used by the baselines of Table 5.3: any
/// mention whose confidence falls below `threshold` is relabeled EE
/// (entity cleared). Returns the modified copy.
core::DisambiguationResult ApplyEeThreshold(
    const core::DisambiguationResult& result,
    const std::vector<double>& confidences, double threshold);

}  // namespace aida::ee

#endif  // AIDA_EE_EE_DISCOVERY_H_
