#include "ee/confidence.h"

#include <algorithm>

#include "util/rng.h"
#include "util/status.h"

namespace aida::ee {

ConfidenceEstimator::ConfidenceEstimator(
    const core::CandidateModelStore* models, const core::NedSystem* ned,
    ConfidenceOptions options)
    : models_(models), ned_(ned), options_(options) {
  AIDA_CHECK(models_ != nullptr && ned_ != nullptr);
}

std::vector<double> ConfidenceEstimator::NormalizedScores(
    const core::DisambiguationResult& result) {
  std::vector<double> confidence;
  confidence.reserve(result.mentions.size());
  for (const core::MentionResult& m : result.mentions) {
    double total = 0.0;
    double chosen = 0.0;
    for (size_t c = 0; c < m.candidate_scores.size(); ++c) {
      double s = std::max(0.0, m.candidate_scores[c]);
      total += s;
      bool is_chosen = m.chose_placeholder
                           ? m.candidate_is_placeholder[c]
                           : (!m.candidate_is_placeholder[c] &&
                              m.candidate_entities[c] == m.entity);
      if (is_chosen) chosen = s;
    }
    confidence.push_back(total > 0.0 ? chosen / total : 0.0);
  }
  return confidence;
}

core::DisambiguationProblem ConfidenceEstimator::ResolveProblem(
    const core::DisambiguationProblem& problem) const {
  core::DisambiguationProblem resolved = problem;
  for (core::ProblemMention& mention : resolved.mentions) {
    if (mention.candidates_resolved) continue;
    mention.candidates = core::LookupCandidates(*models_, mention.surface);
    mention.candidates_resolved = true;
  }
  return resolved;
}

std::vector<double> ConfidenceEstimator::MentionPerturbation(
    const core::DisambiguationProblem& problem,
    const core::DisambiguationResult& base,
    const core::DisambiguateOptions& options) const {
  const size_t n = problem.mentions.size();
  std::vector<double> stable(n, 0.0);
  std::vector<double> present(n, 0.0);
  core::DisambiguationProblem resolved = ResolveProblem(problem);
  util::Rng rng(options_.seed);

  for (size_t round = 0; round < options_.rounds; ++round) {
    // Random subset R of mentions is kept this round.
    core::DisambiguationProblem sub;
    sub.tokens = resolved.tokens;
    std::vector<size_t> kept;
    for (size_t m = 0; m < n; ++m) {
      if (rng.Bernoulli(options_.perturb_fraction)) continue;  // dropped
      kept.push_back(m);
      sub.mentions.push_back(resolved.mentions[m]);
    }
    if (kept.empty()) continue;
    core::DisambiguationResult result = ned_->Disambiguate(sub, options);
    for (size_t i = 0; i < kept.size(); ++i) {
      size_t m = kept[i];
      present[m] += 1.0;
      if (result.mentions[i].entity == base.mentions[m].entity &&
          result.mentions[i].chose_placeholder ==
              base.mentions[m].chose_placeholder) {
        stable[m] += 1.0;
      }
    }
  }

  std::vector<double> confidence(n, 0.0);
  for (size_t m = 0; m < n; ++m) {
    confidence[m] = present[m] > 0.0 ? stable[m] / present[m] : 0.0;
  }
  return confidence;
}

std::vector<double> ConfidenceEstimator::EntityPerturbation(
    const core::DisambiguationProblem& problem,
    const core::DisambiguationResult& base,
    const core::DisambiguateOptions& options) const {
  const size_t n = problem.mentions.size();
  std::vector<double> stable(n, 0.0);
  std::vector<double> present(n, 0.0);
  core::DisambiguationProblem resolved = ResolveProblem(problem);
  util::Rng rng(options_.seed ^ 0xE17171);

  for (size_t round = 0; round < options_.rounds; ++round) {
    core::DisambiguationProblem sub;
    sub.tokens = resolved.tokens;
    sub.mentions = resolved.mentions;
    std::vector<bool> perturbed(n, false);
    for (size_t m = 0; m < n; ++m) {
      const auto& cands = resolved.mentions[m].candidates;
      if (cands.size() < 2) continue;
      if (!rng.Bernoulli(options_.perturb_fraction)) continue;
      // Force-map to an alternate candidate, chosen in proportion to the
      // base scores of the alternatives.
      size_t chosen_index = cands.size();
      const core::MentionResult& bm = base.mentions[m];
      std::vector<double> weights(cands.size(), 0.0);
      for (size_t c = 0; c < cands.size(); ++c) {
        bool is_chosen = bm.chose_placeholder
                             ? cands[c].is_placeholder
                             : (!cands[c].is_placeholder &&
                                cands[c].entity == bm.entity);
        if (is_chosen) {
          chosen_index = c;
          continue;
        }
        double s = c < bm.candidate_scores.size()
                       ? std::max(0.0, bm.candidate_scores[c])
                       : 0.0;
        weights[c] = s + 1e-6;
      }
      if (chosen_index < cands.size()) weights[chosen_index] = 0.0;
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) continue;
      size_t alt = rng.Categorical(weights);
      core::ProblemMention& pm = sub.mentions[m];
      core::Candidate forced = cands[alt];
      pm.candidates.assign(1, forced);
      pm.candidates_resolved = true;
      perturbed[m] = true;
    }
    core::DisambiguationResult result = ned_->Disambiguate(sub, options);
    for (size_t m = 0; m < n; ++m) {
      if (perturbed[m]) continue;
      present[m] += 1.0;
      if (result.mentions[m].entity == base.mentions[m].entity &&
          result.mentions[m].chose_placeholder ==
              base.mentions[m].chose_placeholder) {
        stable[m] += 1.0;
      }
    }
  }

  std::vector<double> confidence(n, 0.0);
  for (size_t m = 0; m < n; ++m) {
    confidence[m] = present[m] > 0.0 ? stable[m] / present[m] : 0.0;
  }
  return confidence;
}

std::vector<double> ConfidenceEstimator::Conf(
    const core::DisambiguationProblem& problem,
    const core::DisambiguationResult& base,
    const core::DisambiguateOptions& options) const {
  std::vector<double> norm = NormalizedScores(base);
  std::vector<double> perturb = EntityPerturbation(problem, base, options);
  AIDA_CHECK(norm.size() == perturb.size());
  std::vector<double> conf(norm.size(), 0.0);
  for (size_t m = 0; m < norm.size(); ++m) {
    conf[m] =
        options_.norm_weight * norm[m] + options_.perturb_weight * perturb[m];
  }
  return conf;
}

}  // namespace aida::ee
