#include "ee/ee_clustering.h"

#include <algorithm>
#include <unordered_map>

#include "ee/keyphrase_harvester.h"
#include "kore/kore_relatedness.h"

namespace aida::ee {

EeClusterer::EeClusterer() : EeClusterer(Options()) {}

EeClusterer::EeClusterer(Options options) : options_(options) {}

std::vector<std::vector<size_t>> EeClusterer::Cluster(
    const std::vector<EeMention>& mentions) const {
  std::vector<std::vector<size_t>> clusters;
  // Per cluster: running centroid model.
  std::vector<std::shared_ptr<core::CandidateModel>> centroids;

  for (size_t i = 0; i < mentions.size(); ++i) {
    const EeMention& mention = mentions[i];
    int best_cluster = -1;
    double best_rel = options_.min_relatedness;
    for (size_t c = 0; c < clusters.size(); ++c) {
      // Names must match under the dictionary rules.
      const EeMention& representative = mentions[clusters[c].front()];
      if (!SurfaceMatchesName(mention.surface, representative.surface)) {
        continue;
      }
      if (mention.model->phrases.empty() ||
          centroids[c]->phrases.empty()) {
        continue;
      }
      double rel = kore::KoreRelatedness::RelatednessOfModels(
          *mention.model, *centroids[c]);
      if (rel >= best_rel) {
        best_rel = rel;
        best_cluster = static_cast<int>(c);
      }
    }
    if (best_cluster >= 0) {
      clusters[static_cast<size_t>(best_cluster)].push_back(i);
      // Update the centroid with the new member's phrases.
      std::vector<size_t> merged_members =
          clusters[static_cast<size_t>(best_cluster)];
      centroids[static_cast<size_t>(best_cluster)] =
          MergeModels(mentions, merged_members);
    } else {
      clusters.push_back({i});
      centroids.push_back(
          std::make_shared<core::CandidateModel>(*mention.model));
    }
  }
  return clusters;
}

std::shared_ptr<core::CandidateModel> EeClusterer::MergeModels(
    const std::vector<EeMention>& mentions,
    const std::vector<size_t>& cluster) {
  auto merged = std::make_shared<core::CandidateModel>();
  merged->entity = kb::kNoEntity;
  // Key phrases by their word-id sequence; weights accumulate.
  std::unordered_map<std::string, size_t> index;
  for (size_t member : cluster) {
    for (const core::CandidatePhrase& phrase :
         mentions[member].model->phrases) {
      std::string key;
      key.reserve(phrase.words.size() * 4);
      for (kb::WordId w : phrase.words) {
        key.append(reinterpret_cast<const char*>(&w), sizeof(w));
      }
      auto [it, inserted] = index.emplace(key, merged->phrases.size());
      if (inserted) {
        merged->phrases.push_back(phrase);
      } else {
        merged->phrases[it->second].phrase_weight += phrase.phrase_weight;
      }
    }
  }
  for (const core::CandidatePhrase& phrase : merged->phrases) {
    merged->total_phrase_weight += phrase.phrase_weight;
  }
  return merged;
}

}  // namespace aida::ee
