#include "ee/emerging_entity_model.h"

#include <algorithm>
#include <unordered_set>

#include "util/status.h"
#include "util/string_util.h"

namespace aida::ee {

EmergingEntityModelBuilder::EmergingEntityModelBuilder(
    const core::CandidateModelStore* models, core::ExtendedVocabulary* vocab,
    EeModelOptions options)
    : models_(models), vocab_(vocab), options_(options) {
  AIDA_CHECK(models_ != nullptr && vocab_ != nullptr);
}

std::vector<core::CandidatePhrase> EmergingEntityModelBuilder::ToPhrases(
    const std::vector<std::pair<std::string, double>>& weighted) const {
  std::vector<core::CandidatePhrase> phrases;
  phrases.reserve(weighted.size());
  for (const auto& [text, weight] : weighted) {
    core::CandidatePhrase phrase;
    for (const std::string& token : util::Split(text, ' ')) {
      kb::WordId w = vocab_->GetOrIntern(token, options_.new_word_idf);
      phrase.words.push_back(w);
      double idf = vocab_->Idf(w);
      phrase.word_idf.push_back(idf);
      // Placeholders have no in-KB NPMI statistics; IDF stands in (the
      // cover score of Eq. 3.4 only uses relative in-phrase weights).
      phrase.word_npmi.push_back(idf);
    }
    phrase.phrase_weight = weight;
    phrases.push_back(std::move(phrase));
  }
  return phrases;
}

std::shared_ptr<const core::CandidateModel>
EmergingEntityModelBuilder::BuildPlaceholder(
    std::string_view name, const HarvestedCounts& harvested,
    const std::vector<core::Candidate>& kb_candidates,
    size_t chunk_docs) const {
  const kb::KnowledgeBase& kb = models_->knowledge_base();
  const kb::KeyphraseStore& store = kb.keyphrases();

  // Balance alpha between the KB "collection" (entities) and the news
  // chunk (documents).
  double alpha = options_.collection_balance;
  if (alpha <= 0.0) {
    alpha = static_cast<double>(kb.entity_count()) /
            static_cast<double>(std::max<size_t>(1, chunk_docs));
  }

  // Aggregate the in-KB candidates' keyphrase counts by phrase text, and
  // their keyword vocabulary, once.
  std::unordered_map<std::string, double> kb_counts;
  std::unordered_set<kb::WordId> kb_words;
  for (const core::Candidate& cand : kb_candidates) {
    if (cand.is_placeholder || cand.entity == kb::kNoEntity) continue;
    for (kb::PhraseId p : store.EntityPhrases(cand.entity)) {
      kb_counts[store.PhraseText(p)] +=
          static_cast<double>(store.EntityPhraseCount(cand.entity, p));
    }
    for (kb::WordId w : store.EntityWords(cand.entity)) {
      kb_words.insert(w);
    }
  }

  // Model difference: global name counts minus in-KB candidate counts,
  // balanced by alpha for the differing collection sizes. Harvested
  // phrases rarely match KB phrase text verbatim (news paraphrases), so
  // in addition to the exact-count subtraction, each phrase is discounted
  // by how much of its IDF mass the candidates' keyword vocabulary
  // already covers — a soft, word-level model difference.
  std::vector<std::pair<std::string, double>> weighted;
  double max_weight = 0.0;
  for (const auto& [text, count] : harvested.phrase_counts) {
    auto it = kb_counts.find(text);
    double in_kb = it == kb_counts.end() ? 0.0 : it->second;

    double covered_mass = 0.0;
    double total_mass = 0.0;
    for (const std::string& token : util::Split(text, ' ')) {
      kb::WordId w = store.FindWord(token);
      double idf = w == kb::kNoWord ? options_.new_word_idf
                                    : std::max(0.5, store.WordIdf(w));
      total_mass += idf;
      if (w != kb::kNoWord && kb_words.count(w) > 0) covered_mass += idf;
    }
    double novelty =
        total_mass > 0.0 ? 1.0 - covered_mass / total_mass : 0.0;

    double adjusted =
        novelty * (alpha * static_cast<double>(count)) - in_kb;
    if (adjusted <= 0.0) continue;
    weighted.emplace_back(text, adjusted);
    max_weight = std::max(max_weight, adjusted);
  }

  // Normalize into the mu weight range and keep the strongest phrases.
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (weighted.size() > options_.max_phrases) {
    weighted.resize(options_.max_phrases);
  }
  if (max_weight > 0.0) {
    for (auto& [text, weight] : weighted) {
      weight = options_.phrase_weight_scale * weight / max_weight;
    }
  }

  auto model = std::make_shared<core::CandidateModel>();
  model->entity = kb::kNoEntity;
  model->phrases = ToPhrases(weighted);
  for (const core::CandidatePhrase& p : model->phrases) {
    model->total_phrase_weight += p.phrase_weight;
  }
  (void)name;
  return model;
}

std::shared_ptr<const core::CandidateModel>
EmergingEntityModelBuilder::ExtendModel(const core::CandidateModel& base,
                                        const HarvestedCounts& harvested,
                                        size_t chunk_docs) const {
  (void)chunk_docs;
  auto model = std::make_shared<core::CandidateModel>(base);

  // Convert harvested counts into phrases on the mu weight scale; phrases
  // already present in the base model are skipped (their KB statistics are
  // more reliable than chunk counts).
  std::vector<std::pair<std::string, double>> weighted;
  double max_count = 0.0;
  for (const auto& [text, count] : harvested.phrase_counts) {
    max_count = std::max(max_count, static_cast<double>(count));
  }
  if (max_count <= 0.0) return model;

  const kb::KeyphraseStore& store = models_->knowledge_base().keyphrases();
  std::unordered_set<std::string> base_texts;
  if (base.entity != kb::kNoEntity) {
    for (kb::PhraseId p : store.EntityPhrases(base.entity)) {
      base_texts.insert(store.PhraseText(p));
    }
  }
  for (const auto& [text, count] : harvested.phrase_counts) {
    if (base_texts.count(text) > 0) continue;
    weighted.emplace_back(text, options_.phrase_weight_scale *
                                    static_cast<double>(count) / max_count);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  size_t budget = options_.max_phrases > model->phrases.size()
                      ? options_.max_phrases - model->phrases.size()
                      : 0;
  if (weighted.size() > budget) weighted.resize(budget);

  for (core::CandidatePhrase& phrase : ToPhrases(weighted)) {
    model->total_phrase_weight += phrase.phrase_weight;
    model->phrases.push_back(std::move(phrase));
  }
  return model;
}

}  // namespace aida::ee
