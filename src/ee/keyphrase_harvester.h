#ifndef AIDA_EE_KEYPHRASE_HARVESTER_H_
#define AIDA_EE_KEYPHRASE_HARVESTER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "corpus/document.h"
#include "nlp/keyphrase_extractor.h"
#include "nlp/pos_tagger.h"

namespace aida::ee {

/// Phrase co-occurrence statistics harvested for one name or entity.
struct HarvestedCounts {
  /// phrase text -> number of occurrences it co-occurred with.
  std::unordered_map<std::string, uint32_t> phrase_counts;
  /// Number of name/entity occurrences observed.
  uint32_t occurrences = 0;
  /// Documents contributing at least one occurrence.
  size_t documents = 0;
};

/// Harvests descriptive keyphrases from sentence windows around mention
/// occurrences in a document stream (Section 5.5.1): part-of-speech
/// tagging, then the noun-group patterns of Appendix A.
class KeyphraseHarvester {
 public:
  struct Options {
    /// Sentences taken before and after the mention's sentence.
    size_t sentence_window = 5;
  };

  KeyphraseHarvester();
  explicit KeyphraseHarvester(Options options);

  /// Phrases co-occurring with any mention of `name` across `docs`
  /// (matching is case-insensitive for names longer than 3 characters,
  /// mirroring the dictionary rules).
  HarvestedCounts HarvestForName(
      const std::vector<const corpus::Document*>& docs,
      std::string_view name) const;

  /// Phrases co-occurring with specific mentions, grouped by the entity
  /// each mention was (confidently) disambiguated to. `assignments[d]`
  /// lists (mention index, entity) pairs for docs[d].
  std::unordered_map<kb::EntityId, HarvestedCounts> HarvestForEntities(
      const std::vector<const corpus::Document*>& docs,
      const std::vector<std::vector<std::pair<size_t, kb::EntityId>>>&
          assignments) const;

  /// Phrases found in one window around mention `mention_index` of `doc`.
  std::vector<std::string> WindowPhrases(const corpus::Document& doc,
                                         size_t mention_index) const;

 private:
  Options options_;
  nlp::PosTagger tagger_;
  nlp::KeyphraseExtractor extractor_;
};

/// True if mention surface `surface` matches `name` under the dictionary
/// matching rules (exact for <= 3 chars, case-insensitive otherwise).
bool SurfaceMatchesName(std::string_view surface, std::string_view name);

}  // namespace aida::ee

#endif  // AIDA_EE_KEYPHRASE_HARVESTER_H_
