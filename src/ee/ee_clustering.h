#ifndef AIDA_EE_EE_CLUSTERING_H_
#define AIDA_EE_EE_CLUSTERING_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/candidates.h"

namespace aida::ee {

/// One emerging-entity mention occurrence, with the contextual keyphrase
/// model harvested around it.
struct EeMention {
  /// Document and mention indices in the caller's corpus (opaque here).
  size_t doc_index = 0;
  size_t mention_index = 0;
  std::string surface;
  /// Local keyphrase model of the occurrence (never null).
  std::shared_ptr<const core::CandidateModel> model;
};

/// Groups emerging-entity mentions that refer to the same (still
/// unregistered) entity — the KB-maintenance step of Section 5.6: "the
/// mentions that are mapped to the same EE can be grouped together, and
/// this group is added — together with its keyphrase representation — to
/// the KB". Two mentions join a cluster when their names match (under the
/// dictionary rules) and their keyphrase models overlap; different
/// entities sharing a name (Prism the program vs "Prism" the album) stay
/// apart through their disjoint keyphrases.
class EeClusterer {
 public:
  struct Options {
    /// Minimum KORE relatedness between a mention's model and a cluster's
    /// centroid model for the mention to join.
    double min_relatedness = 0.005;
  };

  EeClusterer();
  explicit EeClusterer(Options options);

  /// Greedy single-pass clustering; returns per-cluster lists of indices
  /// into `mentions`. Mentions with empty models form singleton clusters.
  std::vector<std::vector<size_t>> Cluster(
      const std::vector<EeMention>& mentions) const;

  /// Merges the models of a cluster into one (phrase union, weights
  /// summed) — the representation under which the group would be added to
  /// the knowledge base.
  static std::shared_ptr<core::CandidateModel> MergeModels(
      const std::vector<EeMention>& mentions,
      const std::vector<size_t>& cluster);

 private:
  Options options_;
};

}  // namespace aida::ee

#endif  // AIDA_EE_EE_CLUSTERING_H_
