#ifndef AIDA_CORPUS_CORPUS_IO_H_
#define AIDA_CORPUS_CORPUS_IO_H_

#include <string>
#include <string_view>

#include "corpus/document.h"
#include "util/status.h"

namespace aida::corpus {

/// Serializes a gold-annotated corpus into a line-based text format —
/// publishing annotated corpora was one of the paper's contributions
/// (the CoNLL-YAGO and AIDA-EE datasets), and this is the equivalent
/// artifact for the synthetic corpora. Format, one record per document:
///
///   #DOC doc_17 4 12          (id, day, topic)
///   #TOKENS
///   The Page concert was ...  (space-joined; tokens contain no spaces)
///   #MENTIONS
///   1 2 314 - Page            (begin, end, entity|-, emerging|-, surface)
///   #END
std::string SerializeCorpus(const Corpus& corpus);

/// Parses the format produced by SerializeCorpus. Fails cleanly on
/// malformed records (wrong field counts, spans out of range).
util::StatusOr<Corpus> DeserializeCorpus(std::string_view data);

/// Convenience file wrappers.
util::Status SaveCorpus(const Corpus& corpus, const std::string& path);
util::StatusOr<Corpus> LoadCorpus(const std::string& path);

}  // namespace aida::corpus

#endif  // AIDA_CORPUS_CORPUS_IO_H_
