#include "corpus/corpus_io.h"

#include <cinttypes>
#include <cstdlib>

#include "util/serialize.h"
#include "util/string_util.h"

namespace aida::corpus {

namespace {

constexpr const char* kNone = "-";

std::string FormatId(uint32_t id) {
  return id == 0xFFFFFFFFu ? std::string(kNone) : std::to_string(id);
}

util::StatusOr<uint32_t> ParseId(const std::string& field,
                                 uint32_t sentinel) {
  if (field == kNone) return sentinel;
  char* end = nullptr;
  unsigned long value = std::strtoul(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("bad id field: " + field);
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

std::string SerializeCorpus(const Corpus& corpus) {
  std::string out;
  for (const Document& doc : corpus) {
    out += util::StrFormat("#DOC %s %lld %u\n", doc.id.c_str(),
                           static_cast<long long>(doc.day), doc.topic);
    out += "#TOKENS\n";
    out += util::Join(doc.tokens, " ");
    out += "\n#MENTIONS\n";
    for (const GoldMention& m : doc.mentions) {
      out += util::StrFormat(
          "%zu %zu %s %s %s\n", m.begin_token, m.end_token,
          FormatId(m.gold_entity).c_str(), FormatId(m.gold_emerging).c_str(),
          m.surface.c_str());
    }
    out += "#END\n";
  }
  return out;
}

util::StatusOr<Corpus> DeserializeCorpus(std::string_view data) {
  Corpus corpus;
  std::vector<std::string> lines = util::Split(std::string(data), '\n');
  size_t i = 0;
  while (i < lines.size()) {
    const std::string& header = lines[i];
    if (header.rfind("#DOC ", 0) != 0) {
      return util::Status::InvalidArgument("expected #DOC at line " +
                                           std::to_string(i + 1));
    }
    std::vector<std::string> fields = util::Split(header.substr(5), ' ');
    if (fields.size() != 3) {
      return util::Status::InvalidArgument("bad #DOC header: " + header);
    }
    Document doc;
    doc.id = fields[0];
    doc.day = std::strtoll(fields[1].c_str(), nullptr, 10);
    doc.topic = static_cast<uint32_t>(
        std::strtoul(fields[2].c_str(), nullptr, 10));
    ++i;

    if (i >= lines.size() || lines[i] != "#TOKENS") {
      return util::Status::InvalidArgument("expected #TOKENS");
    }
    ++i;
    if (i >= lines.size()) {
      return util::Status::InvalidArgument("missing token line");
    }
    doc.tokens = util::Split(lines[i], ' ');
    ++i;

    if (i >= lines.size() || lines[i] != "#MENTIONS") {
      return util::Status::InvalidArgument("expected #MENTIONS");
    }
    ++i;
    while (i < lines.size() && lines[i] != "#END") {
      std::vector<std::string> parts = util::Split(lines[i], ' ');
      if (parts.size() < 5) {
        return util::Status::InvalidArgument("bad mention line: " +
                                             lines[i]);
      }
      GoldMention mention;
      mention.begin_token = std::strtoul(parts[0].c_str(), nullptr, 10);
      mention.end_token = std::strtoul(parts[1].c_str(), nullptr, 10);
      util::StatusOr<uint32_t> entity = ParseId(parts[2], kb::kNoEntity);
      if (!entity.ok()) return entity.status();
      mention.gold_entity = *entity;
      util::StatusOr<uint32_t> emerging = ParseId(parts[3], kNoEmerging);
      if (!emerging.ok()) return emerging.status();
      mention.gold_emerging = *emerging;
      std::vector<std::string> surface(parts.begin() + 4, parts.end());
      mention.surface = util::Join(surface, " ");
      if (mention.begin_token >= mention.end_token ||
          mention.end_token > doc.tokens.size()) {
        return util::Status::InvalidArgument("mention span out of range");
      }
      doc.mentions.push_back(std::move(mention));
      ++i;
    }
    if (i >= lines.size()) {
      return util::Status::InvalidArgument("missing #END");
    }
    ++i;  // consume #END
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

util::Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  return util::WriteFile(path, SerializeCorpus(corpus));
}

util::StatusOr<Corpus> LoadCorpus(const std::string& path) {
  util::StatusOr<std::string> data = util::ReadFile(path);
  if (!data.ok()) return data.status();
  return DeserializeCorpus(*data);
}

}  // namespace aida::corpus
