#include "corpus/corpus_io.h"

#include <cinttypes>
#include <cstdlib>

#include "util/serialize.h"
#include "util/string_util.h"

namespace aida::corpus {

namespace {

constexpr const char* kNone = "-";

std::string FormatId(uint32_t id) {
  return id == 0xFFFFFFFFu ? std::string(kNone) : std::to_string(id);
}

util::StatusOr<uint32_t> ParseId(const std::string& field,
                                 uint32_t sentinel) {
  if (field == kNone) return sentinel;
  char* end = nullptr;
  unsigned long value = std::strtoul(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("bad id field: " + field);
  }
  return static_cast<uint32_t>(value);
}

// Checked replacements for the bare strtol-and-hope parses: every numeric
// field of this format is untrusted, so a non-numeric field is a parse
// error, not a silent zero.
util::StatusOr<long long> ParseI64(const std::string& field) {
  char* end = nullptr;
  long long value = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("bad integer field: " + field);
  }
  return value;
}

util::StatusOr<unsigned long long> ParseU64(const std::string& field) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("bad count field: " + field);
  }
  return value;
}

}  // namespace

std::string SerializeCorpus(const Corpus& corpus) {
  std::string out;
  for (const Document& doc : corpus) {
    out += util::StrFormat("#DOC %s %lld %u\n", doc.id.c_str(),
                           static_cast<long long>(doc.day), doc.topic);
    out += "#TOKENS\n";
    out += util::Join(doc.tokens, " ");
    out += "\n#MENTIONS\n";
    for (const GoldMention& m : doc.mentions) {
      out += util::StrFormat(
          "%zu %zu %s %s %s\n", m.begin_token, m.end_token,
          FormatId(m.gold_entity).c_str(), FormatId(m.gold_emerging).c_str(),
          m.surface.c_str());
    }
    out += "#END\n";
  }
  return out;
}

util::StatusOr<Corpus> DeserializeCorpus(std::string_view data) {
  Corpus corpus;
  std::vector<std::string> lines = util::Split(std::string(data), '\n');
  size_t i = 0;
  while (i < lines.size()) {
    const std::string& header = lines[i];
    if (header.rfind("#DOC ", 0) != 0) {
      return util::Status::InvalidArgument("expected #DOC at line " +
                                           std::to_string(i + 1));
    }
    std::vector<std::string> fields = util::Split(header.substr(5), ' ');
    if (fields.size() != 3) {
      return util::Status::InvalidArgument("bad #DOC header: " + header);
    }
    Document doc;
    doc.id = fields[0];
    util::StatusOr<long long> day = ParseI64(fields[1]);
    if (!day.ok()) return day.status();
    doc.day = *day;
    util::StatusOr<unsigned long long> topic = ParseU64(fields[2]);
    if (!topic.ok()) return topic.status();
    doc.topic = static_cast<uint32_t>(*topic);
    ++i;

    if (i >= lines.size() || lines[i] != "#TOKENS") {
      return util::Status::InvalidArgument("expected #TOKENS");
    }
    ++i;
    if (i >= lines.size()) {
      return util::Status::InvalidArgument("missing token line");
    }
    // A document with no tokens serializes as a blank line, which the
    // line-splitter drops — so the next line is already #MENTIONS. Treat
    // that as an empty token list instead of misparsing the section marker
    // as text (which broke serialize→parse round-tripping).
    if (lines[i] == "#MENTIONS") {
      doc.tokens.clear();
    } else {
      doc.tokens = util::Split(lines[i], ' ');
      ++i;
    }

    if (i >= lines.size() || lines[i] != "#MENTIONS") {
      return util::Status::InvalidArgument("expected #MENTIONS");
    }
    ++i;
    while (i < lines.size() && lines[i] != "#END") {
      std::vector<std::string> parts = util::Split(lines[i], ' ');
      if (parts.size() < 5) {
        return util::Status::InvalidArgument("bad mention line: " +
                                             lines[i]);
      }
      GoldMention mention;
      util::StatusOr<unsigned long long> begin = ParseU64(parts[0]);
      if (!begin.ok()) return begin.status();
      mention.begin_token = static_cast<size_t>(*begin);
      util::StatusOr<unsigned long long> end = ParseU64(parts[1]);
      if (!end.ok()) return end.status();
      mention.end_token = static_cast<size_t>(*end);
      util::StatusOr<uint32_t> entity = ParseId(parts[2], kb::kNoEntity);
      if (!entity.ok()) return entity.status();
      mention.gold_entity = *entity;
      util::StatusOr<uint32_t> emerging = ParseId(parts[3], kNoEmerging);
      if (!emerging.ok()) return emerging.status();
      mention.gold_emerging = *emerging;
      std::vector<std::string> surface(parts.begin() + 4, parts.end());
      mention.surface = util::Join(surface, " ");
      if (mention.begin_token >= mention.end_token ||
          mention.end_token > doc.tokens.size()) {
        return util::Status::InvalidArgument("mention span out of range");
      }
      doc.mentions.push_back(std::move(mention));
      ++i;
    }
    if (i >= lines.size()) {
      return util::Status::InvalidArgument("missing #END");
    }
    ++i;  // consume #END
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

util::Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  return util::WriteFile(path, SerializeCorpus(corpus));
}

util::StatusOr<Corpus> LoadCorpus(const std::string& path) {
  util::StatusOr<std::string> data = util::ReadFile(path);
  if (!data.ok()) return data.status();
  return DeserializeCorpus(*data);
}

}  // namespace aida::corpus
