#ifndef AIDA_CORPUS_DOCUMENT_H_
#define AIDA_CORPUS_DOCUMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kb/entity.h"

namespace aida::corpus {

/// Identifier of an emerging (out-of-KB) entity in the generator's hidden
/// world; used only by ground truth and evaluation, never by NED methods.
using EmergingId = uint32_t;
inline constexpr EmergingId kNoEmerging = 0xFFFFFFFFu;

/// A gold-annotated mention: a token span plus the correct entity. When
/// the correct entity is not in the knowledge base, `gold_entity` is
/// kb::kNoEntity and `gold_emerging` identifies the hidden emerging entity
/// (so EE experiments can check that co-referring EE mentions cluster).
struct GoldMention {
  std::string surface;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
  kb::EntityId gold_entity = kb::kNoEntity;
  EmergingId gold_emerging = kNoEmerging;

  bool out_of_kb() const { return gold_entity == kb::kNoEntity; }
};

/// A tokenized document with gold annotations. Documents carry a day
/// number so the emerging-entity experiments can select news chunks by
/// recency (Section 5.5.2).
struct Document {
  std::string id;
  std::vector<std::string> tokens;
  std::vector<GoldMention> mentions;
  /// Publication day (days since an arbitrary epoch).
  int64_t day = 0;
  /// Generative primary topic; diagnostics only.
  uint32_t topic = 0;
};

using Corpus = std::vector<Document>;

}  // namespace aida::corpus

#endif  // AIDA_CORPUS_DOCUMENT_H_
