#include "kore/kore_lsh.h"

#include <algorithm>

#include "util/status.h"

namespace aida::kore {

KoreLshRelatedness::KoreLshRelatedness(const kb::KeyphraseStore* store,
                                       hashing::TwoStageConfig config,
                                       std::string name)
    : hasher_(*store, config), name_(std::move(name)) {}

std::vector<std::pair<uint32_t, uint32_t>> KoreLshRelatedness::FilterPairs(
    const std::vector<const core::Candidate*>& candidates) const {
  // Split candidates into hashable in-KB entities and placeholders.
  std::vector<kb::EntityId> kb_entities;
  std::vector<uint32_t> kb_index;  // position in `candidates`
  std::vector<uint32_t> placeholders;
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    const core::Candidate* c = candidates[i];
    if (c->is_placeholder || c->entity == kb::kNoEntity) {
      placeholders.push_back(i);
    } else {
      kb_entities.push_back(c->entity);
      kb_index.push_back(i);
    }
  }

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& [a, b] : hasher_.GroupEntities(kb_entities)) {
    pairs.emplace_back(kb_index[a], kb_index[b]);
  }
  // Placeholders are rare and always compared exactly.
  for (uint32_t p : placeholders) {
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (i == p) continue;
      pairs.emplace_back(std::min(i, p), std::max(i, p));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace aida::kore
