#ifndef AIDA_KORE_KEYTERM_COSINE_H_
#define AIDA_KORE_KEYTERM_COSINE_H_

#include <string>

#include "core/relatedness.h"

namespace aida::kore {

/// Keyterm cosine relatedness (Section 4.3.2): entities as weighted
/// keyterm vectors compared by cosine similarity. Two variants:
///
///  * kKeyword (KWCS): vectors over single keywords; keyword weights take
///    the originating phrases' MI weights into account (word IDF times the
///    mean MI weight of the phrases containing the word).
///  * kKeyphrase (KPCS): vectors over whole phrases with MI weights;
///    phrases only match exactly.
///
/// Both are link-independent, so they apply to placeholder candidates.
class KeytermCosineRelatedness : public core::RelatednessMeasure {
 public:
  enum class Mode { kKeyword, kKeyphrase };

  explicit KeytermCosineRelatedness(Mode mode);

  std::string name() const override {
    return mode_ == Mode::kKeyword ? "kwcs" : "kpcs";
  }
  double Relatedness(const core::Candidate& a,
                     const core::Candidate& b) const override;

  /// Model-level computation (shared with tests).
  double RelatednessOfModels(const core::CandidateModel& a,
                             const core::CandidateModel& b) const;

 private:
  Mode mode_;
};

}  // namespace aida::kore

#endif  // AIDA_KORE_KEYTERM_COSINE_H_
