#include "kore/kore_relatedness.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace aida::kore {

namespace {

// Per-entity inverted index from word id to the phrases containing it,
// used to visit only phrase pairs with at least one shared word.
struct PhraseIndex {
  // word -> indices of phrases containing the word.
  std::unordered_map<kb::WordId, std::vector<uint32_t>> by_word;
  // word -> the entity-side IDF weight of the word.
  std::unordered_map<kb::WordId, double> word_weight;
};

PhraseIndex BuildIndex(const core::CandidateModel& model) {
  PhraseIndex index;
  for (uint32_t p = 0; p < model.phrases.size(); ++p) {
    const core::CandidatePhrase& phrase = model.phrases[p];
    for (size_t i = 0; i < phrase.words.size(); ++i) {
      index.by_word[phrase.words[i]].push_back(p);
      index.word_weight[phrase.words[i]] = phrase.word_idf[i];
    }
  }
  return index;
}

// True if `words[index]` already occurred at an earlier position; phrases
// are treated as word SETS, so duplicates within a phrase count once —
// this keeps the overlap symmetric.
bool IsDuplicateWord(const std::vector<kb::WordId>& words, size_t index) {
  for (size_t i = 0; i < index; ++i) {
    if (words[i] == words[index]) return true;
  }
  return false;
}

// Weighted-Jaccard phrase overlap (Eq. 4.3) with IDF keyword weights.
double PhraseOverlap(const core::CandidatePhrase& p,
                     const core::CandidatePhrase& q) {
  double intersection = 0.0;
  double union_mass = 0.0;
  // Phrases are short (<= ~5 words); quadratic scan beats hashing here.
  for (size_t i = 0; i < p.words.size(); ++i) {
    if (IsDuplicateWord(p.words, i)) continue;
    bool shared = false;
    for (size_t j = 0; j < q.words.size(); ++j) {
      if (p.words[i] == q.words[j]) {
        intersection += std::min(p.word_idf[i], q.word_idf[j]);
        union_mass += std::max(p.word_idf[i], q.word_idf[j]);
        shared = true;
        break;
      }
    }
    if (!shared) union_mass += p.word_idf[i];
  }
  for (size_t j = 0; j < q.words.size(); ++j) {
    if (IsDuplicateWord(q.words, j)) continue;
    bool shared = false;
    for (size_t i = 0; i < p.words.size(); ++i) {
      if (p.words[i] == q.words[j]) {
        shared = true;
        break;
      }
    }
    if (!shared) union_mass += q.word_idf[j];
  }
  if (union_mass <= 0.0) return 0.0;
  return intersection / union_mass;
}

}  // namespace

double KoreRelatedness::Relatedness(const core::Candidate& a,
                                    const core::Candidate& b) const {
  CountComparison();
  return RelatednessOfModels(*a.model, *b.model);
}

double KoreRelatedness::RelatednessOfModels(const core::CandidateModel& a,
                                            const core::CandidateModel& b) {
  double denom = a.total_phrase_weight + b.total_phrase_weight;
  if (denom <= 0.0) return 0.0;

  // Visit only phrase pairs sharing at least one word: index the smaller
  // side, probe with the larger side's words.
  const core::CandidateModel& small =
      a.phrases.size() <= b.phrases.size() ? a : b;
  const core::CandidateModel& large =
      a.phrases.size() <= b.phrases.size() ? b : a;
  PhraseIndex index = BuildIndex(small);

  double numerator = 0.0;
  std::vector<uint32_t> touched;
  std::unordered_map<uint64_t, bool> visited;  // (large_p, small_p) pairs
  for (uint32_t lp = 0; lp < large.phrases.size(); ++lp) {
    const core::CandidatePhrase& phrase = large.phrases[lp];
    for (kb::WordId w : phrase.words) {
      auto it = index.by_word.find(w);
      if (it == index.by_word.end()) continue;
      for (uint32_t sp : it->second) {
        uint64_t key = (static_cast<uint64_t>(lp) << 32) | sp;
        auto [vit, inserted] = visited.emplace(key, true);
        if (!inserted) continue;
        double po = PhraseOverlap(phrase, small.phrases[sp]);
        if (po <= 0.0) continue;
        numerator += po * po *
                     std::min(phrase.phrase_weight,
                              small.phrases[sp].phrase_weight);
      }
    }
  }
  return numerator / denom;
}

}  // namespace aida::kore
