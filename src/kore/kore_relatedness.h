#ifndef AIDA_KORE_KORE_RELATEDNESS_H_
#define AIDA_KORE_KORE_RELATEDNESS_H_

#include <string>

#include "core/relatedness.h"

namespace aida::kore {

/// Keyphrase Overlap RElatedness (Section 4.3.3). Phrases match partially
/// through the weighted-Jaccard phrase overlap
///
///   PO(p,q) = sum_{w in p∩q} min(γe(w), γf(w))
///           / sum_{w in p∪q} max(γe(w), γf(w))              (Eq. 4.3)
///
/// with keyword IDF weights γ, aggregated over all phrase pairs with
/// phrase MI weights φ:
///
///   KORE(e,f) = sum_{p,q} PO(p,q)^2 · min(φe(p), φf(q))
///             / (sum_p φe(p) + sum_q φf(q))                  (Eq. 4.4)
///
/// KORE needs no link structure, so it scores long-tail and out-of-KB
/// placeholder candidates — the property chapter 5 builds on.
class KoreRelatedness : public core::RelatednessMeasure {
 public:
  KoreRelatedness() = default;

  std::string name() const override { return "kore"; }
  double Relatedness(const core::Candidate& a,
                     const core::Candidate& b) const override;

  /// Model-level computation (shared with tests and the LSH variants).
  static double RelatednessOfModels(const core::CandidateModel& a,
                                    const core::CandidateModel& b);
};

}  // namespace aida::kore

#endif  // AIDA_KORE_KORE_RELATEDNESS_H_
