#ifndef AIDA_KORE_KORE_LSH_H_
#define AIDA_KORE_KORE_LSH_H_

#include <string>
#include <utility>
#include <vector>

#include "hashing/two_stage_hasher.h"
#include "kore/kore_relatedness.h"

namespace aida::kore {

/// KORE accelerated by the two-stage hashing scheme (Section 4.4.2): exact
/// KORE values, but only for entity pairs that share at least one stage-two
/// LSH bucket; all other pairs are treated as unrelated. Two named
/// configurations mirror the paper: KORE-LSH-G (recall-oriented, 200x1
/// banding) and KORE-LSH-F (aggressively pruning, 1000x2 banding).
///
/// Placeholder candidates are not in the precomputed hash tables; pairs
/// involving a placeholder are always admitted, so NED-EE keeps working.
class KoreLshRelatedness : public KoreRelatedness {
 public:
  /// `store` must be finalized and outlive the measure.
  KoreLshRelatedness(const kb::KeyphraseStore* store,
                     hashing::TwoStageConfig config, std::string name);

  std::string name() const override { return name_; }
  bool has_pair_filter() const override { return true; }
  std::vector<std::pair<uint32_t, uint32_t>> FilterPairs(
      const std::vector<const core::Candidate*>& candidates) const override;

  /// Factory helpers with the paper's configurations.
  static KoreLshRelatedness Good(const kb::KeyphraseStore* store) {
    return KoreLshRelatedness(store, hashing::LshGoodConfig(), "kore-lsh-g");
  }
  static KoreLshRelatedness Fast(const kb::KeyphraseStore* store) {
    return KoreLshRelatedness(store, hashing::LshFastConfig(), "kore-lsh-f");
  }

 private:
  hashing::TwoStageHasher hasher_;
  std::string name_;
};

}  // namespace aida::kore

#endif  // AIDA_KORE_KORE_LSH_H_
