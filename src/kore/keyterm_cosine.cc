#include "kore/keyterm_cosine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "hashing/minhash.h"

namespace aida::kore {

namespace {

// Sparse keyword vector: word id -> weight.
std::unordered_map<kb::WordId, double> KeywordVector(
    const core::CandidateModel& model) {
  // Accumulate per-word IDF and mean MI weight of containing phrases.
  std::unordered_map<kb::WordId, double> mi_sum;
  std::unordered_map<kb::WordId, double> mi_count;
  std::unordered_map<kb::WordId, double> idf;
  for (const core::CandidatePhrase& phrase : model.phrases) {
    for (size_t i = 0; i < phrase.words.size(); ++i) {
      kb::WordId w = phrase.words[i];
      mi_sum[w] += phrase.phrase_weight;
      mi_count[w] += 1.0;
      idf[w] = phrase.word_idf[i];
    }
  }
  std::unordered_map<kb::WordId, double> vec;
  for (const auto& [w, sum] : mi_sum) {
    vec[w] = idf[w] * (sum / mi_count[w]);
  }
  return vec;
}

// Sparse phrase vector: order-insensitive phrase hash -> MI weight.
std::unordered_map<uint64_t, double> PhraseVector(
    const core::CandidateModel& model) {
  std::unordered_map<uint64_t, double> vec;
  for (const core::CandidatePhrase& phrase : model.phrases) {
    uint64_t key = 0x9E3779B97F4A7C15ULL;
    // Sum of per-word hashes: identical word multisets collide, which is
    // exactly the identity notion we want for exact phrase matching.
    for (kb::WordId w : phrase.words) {
      key += hashing::MixHash(w, 0x5BD1E995u);
    }
    vec[key] += phrase.phrase_weight;
  }
  return vec;
}

template <typename Key>
double Cosine(const std::unordered_map<Key, double>& a,
              const std::unordered_map<Key, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [key, weight] : small) {
    auto it = large.find(key);
    if (it != large.end()) dot += weight * it->second;
  }
  if (dot <= 0.0) return 0.0;
  double norm_a = 0.0;
  for (const auto& [key, weight] : a) norm_a += weight * weight;
  double norm_b = 0.0;
  for (const auto& [key, weight] : b) norm_b += weight * weight;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace

KeytermCosineRelatedness::KeytermCosineRelatedness(Mode mode) : mode_(mode) {}

double KeytermCosineRelatedness::Relatedness(const core::Candidate& a,
                                             const core::Candidate& b) const {
  CountComparison();
  return RelatednessOfModels(*a.model, *b.model);
}

double KeytermCosineRelatedness::RelatednessOfModels(
    const core::CandidateModel& a, const core::CandidateModel& b) const {
  if (mode_ == Mode::kKeyword) {
    return Cosine(KeywordVector(a), KeywordVector(b));
  }
  return Cosine(PhraseVector(a), PhraseVector(b));
}

}  // namespace aida::kore
