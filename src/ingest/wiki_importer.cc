#include "ingest/wiki_importer.h"

#include <algorithm>
#include <unordered_map>

#include "kb/kb_builder.h"
#include "nlp/keyphrase_extractor.h"
#include "nlp/pos_tagger.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace aida::ingest {

namespace {

// Replaces '_' with ' ' (wiki titles use underscores; surface text uses
// spaces).
std::string TitleToSurface(std::string_view title) {
  std::string surface(title);
  std::replace(surface.begin(), surface.end(), '_', ' ');
  return surface;
}

// Splits a "a | b | c" list line.
std::vector<std::string> SplitList(std::string_view line) {
  std::vector<std::string> items;
  for (const std::string& piece : util::Split(line, '|')) {
    std::string_view trimmed = util::Trim(piece);
    if (!trimmed.empty()) items.emplace_back(trimmed);
  }
  return items;
}

}  // namespace

WikiImporter::WikiImporter() : WikiImporter(Options()) {}

WikiImporter::WikiImporter(Options options) : options_(options) {}

util::StatusOr<WikiImporter::ParsedPage> WikiImporter::Parse(
    std::string_view page) const {
  ParsedPage parsed;
  bool saw_title = false;
  for (const std::string& raw_line : util::Split(std::string(page), '\n')) {
    std::string_view line = util::Trim(raw_line);
    if (line.empty()) continue;
    if (line.front() == '=' && line.back() == '=') {
      std::string_view title = util::Trim(line.substr(1, line.size() - 2));
      if (title.empty()) {
        return util::Status::InvalidArgument("empty page title");
      }
      parsed.title = std::string(title);
      saw_title = true;
      continue;
    }
    if (line.rfind("CATEGORY:", 0) == 0) {
      for (std::string& item : SplitList(line.substr(9))) {
        parsed.categories.push_back(std::move(item));
      }
      continue;
    }
    if (line.rfind("NAME:", 0) == 0) {
      for (std::string& item : SplitList(line.substr(5))) {
        parsed.extra_names.push_back(std::move(item));
      }
      continue;
    }
    if (line.rfind("REDIRECT-FROM:", 0) == 0) {
      for (std::string& item : SplitList(line.substr(14))) {
        parsed.redirects.push_back(std::move(item));
      }
      continue;
    }

    // Body line: extract [[Target]] / [[Target|anchor]] markup.
    std::string stripped;
    size_t pos = 0;
    while (pos < line.size()) {
      size_t open = line.find("[[", pos);
      if (open == std::string_view::npos) {
        stripped.append(line.substr(pos));
        break;
      }
      stripped.append(line.substr(pos, open - pos));
      size_t close = line.find("]]", open + 2);
      if (close == std::string_view::npos) {
        return util::Status::InvalidArgument("unterminated [[ link");
      }
      std::string_view inner = line.substr(open + 2, close - open - 2);
      size_t bar = inner.find('|');
      std::string target;
      std::string anchor;
      if (bar == std::string_view::npos) {
        target = std::string(util::Trim(inner));
        anchor = TitleToSurface(target);
      } else {
        target = std::string(util::Trim(inner.substr(0, bar)));
        anchor = std::string(util::Trim(inner.substr(bar + 1)));
      }
      if (target.empty()) {
        return util::Status::InvalidArgument("empty link target");
      }
      parsed.links.emplace_back(target, anchor);
      stripped.append(anchor);
      pos = close + 2;
    }
    parsed.body.append(stripped);
    parsed.body.push_back('\n');
  }
  if (!saw_title) {
    return util::Status::InvalidArgument("page without '= Title =' header");
  }
  return parsed;
}

util::Status WikiImporter::AddPage(std::string_view page) {
  util::StatusOr<ParsedPage> parsed = Parse(page);
  if (!parsed.ok()) return parsed.status();
  pages_.push_back(std::move(*parsed));
  ++page_count_;
  return util::Status::Ok();
}

std::unique_ptr<kb::KnowledgeBase> WikiImporter::Build() && {
  kb::KbBuilder builder;

  // ---- Pass 1: entities (pages first, then red-link targets) ---------------
  std::unordered_map<std::string, kb::EntityId> by_title;
  for (const ParsedPage& page : pages_) {
    if (by_title.count(page.title) == 0) {
      by_title.emplace(page.title, builder.AddEntity(page.title));
    }
  }
  for (const ParsedPage& page : pages_) {
    for (const auto& [target, anchor] : page.links) {
      if (by_title.count(target) == 0) {
        by_title.emplace(target, builder.AddEntity(target));
      }
    }
  }

  // ---- Taxonomy from categories ----------------------------------------------
  kb::TypeId root = builder.AddType("entity");
  // Seed the interning map with the root so a page declaring the literal
  // category "entity" maps onto it instead of tripping the taxonomy's
  // duplicate-name invariant — page text is untrusted input and must not
  // be able to reach an AIDA_CHECK.
  std::unordered_map<std::string, kb::TypeId> types{{"entity", root}};
  auto type_of = [&](const std::string& name) {
    auto [it, inserted] = types.emplace(name, kb::kNoType);
    if (inserted) it->second = builder.AddType(name, root);
    return it->second;
  };

  // ---- Pass 2: names, links, keyphrases ----------------------------------------
  nlp::PosTagger tagger;
  nlp::KeyphraseExtractor extractor;
  text::Tokenizer tokenizer;

  for (const ParsedPage& page : pages_) {
    kb::EntityId entity = by_title.at(page.title);

    // Dictionary names: the title surface, declared names, redirects.
    builder.AddName(TitleToSurface(page.title), entity,
                    options_.anchor_weight);
    for (const std::string& name : page.extra_names) {
      builder.AddName(name, entity, options_.anchor_weight);
    }
    for (const std::string& redirect : page.redirects) {
      builder.AddName(TitleToSurface(redirect), entity,
                      options_.anchor_weight);
    }

    // Categories: taxonomy assignment + keyphrases.
    for (const std::string& category : page.categories) {
      builder.AssignType(entity, type_of(category));
      builder.AddKeyphrase(entity, util::ToLower(category));
    }

    // Links: graph edges, target names from anchors, source keyphrases.
    for (const auto& [target, anchor] : page.links) {
      kb::EntityId target_entity = by_title.at(target);
      builder.AddLink(entity, target_entity);
      if (!anchor.empty()) {
        builder.AddName(anchor, target_entity, options_.anchor_weight);
        builder.AddKeyphrase(entity, util::ToLower(anchor));
      }
    }

    // Body noun groups.
    if (options_.extract_text_phrases && !page.body.empty()) {
      text::TokenSequence tokens = tokenizer.Tokenize(page.body);
      for (const nlp::ExtractedPhrase& phrase :
           extractor.Extract(tokens, tagger.Tag(tokens))) {
        builder.AddKeyphrase(entity, phrase.text);
      }
    }
  }
  return std::move(builder).Build();
}

std::string RenderWikiPage(
    const std::string& title, const std::vector<std::string>& categories,
    const std::vector<std::string>& names,
    const std::vector<std::pair<std::string, std::string>>& links,
    const std::string& body) {
  std::string page = "= " + title + " =\n";
  if (!categories.empty()) {
    page += "CATEGORY: " + util::Join(categories, " | ") + "\n";
  }
  if (!names.empty()) {
    page += "NAME: " + util::Join(names, " | ") + "\n";
  }
  page += body;
  if (!body.empty() && body.back() != '\n') page += "\n";
  for (const auto& [target, anchor] : links) {
    page += "Related to [[" + target +
            (anchor.empty() ? std::string("]]") : "|" + anchor + "]]") +
            " .\n";
  }
  return page;
}

}  // namespace aida::ingest
