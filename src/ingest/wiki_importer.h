#ifndef AIDA_INGEST_WIKI_IMPORTER_H_
#define AIDA_INGEST_WIKI_IMPORTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace aida::ingest {

/// Builds a knowledge base from a corpus of wiki-style article pages —
/// the extraction pipeline the paper runs over Wikipedia (Section 2.3.3):
/// every article becomes an entity; links, anchors, redirects and
/// categories become the dictionary, the link graph, the taxonomy and the
/// keyphrase sets.
///
/// Page format (one page per string):
///
///   = Jimmy_Page =
///   CATEGORY: person | musician
///   NAME: Page | Jimmy Page
///   REDIRECT-FROM: Jimmy_Patrick_Page
///   Jimmy Page is an english rock guitarist of [[Led_Zeppelin]] fame.
///   He played a [[Gibson_Les_Paul|gibson guitar]] on stage.
///
/// Extraction rules, mirroring Section 3.3 / 4.3:
///  * the page title is the canonical entity name; its space-separated
///    form and all NAME:/REDIRECT-FROM: lines enter the dictionary;
///  * [[Target]] and [[Target|anchor]] create links; the anchor text is
///    a dictionary name for the TARGET and a keyphrase of the SOURCE
///    ("link anchor texts" as keyphrase candidates);
///  * CATEGORY: lines become taxonomy types of the entity and keyphrases;
///  * noun groups of the body text (Appendix A patterns) become
///    keyphrases of the page's entity.
///
/// Pages may reference entities defined by later pages; unresolved link
/// targets become entities with no page of their own (as Wikipedia red
/// links would, except they are materialized so the graph stays closed).
class WikiImporter {
 public:
  struct Options {
    /// Extract body-text noun phrases as keyphrases (in addition to
    /// anchors and categories).
    bool extract_text_phrases = true;
    /// Anchor-count credited to each name observation.
    uint64_t anchor_weight = 1;
  };

  WikiImporter();
  explicit WikiImporter(Options options);

  /// Parses and accumulates one page. Returns an error for pages without
  /// a `= Title =` header or with malformed link markup.
  util::Status AddPage(std::string_view page);

  /// Number of pages accepted so far.
  size_t page_count() const { return page_count_; }

  /// Finalizes the knowledge base. The importer is consumed.
  std::unique_ptr<kb::KnowledgeBase> Build() &&;

 private:
  struct ParsedPage {
    std::string title;
    std::vector<std::string> categories;
    std::vector<std::string> extra_names;
    std::vector<std::string> redirects;
    // (target title, anchor text or empty).
    std::vector<std::pair<std::string, std::string>> links;
    std::string body;  // markup stripped
  };

  util::StatusOr<ParsedPage> Parse(std::string_view page) const;

  Options options_;
  size_t page_count_ = 0;
  std::vector<ParsedPage> pages_;
};

/// Renders a page in the importer's format (used by tests and by tooling
/// that exports a synthetic world as a readable corpus).
std::string RenderWikiPage(
    const std::string& title, const std::vector<std::string>& categories,
    const std::vector<std::string>& names,
    const std::vector<std::pair<std::string, std::string>>& links,
    const std::string& body);

}  // namespace aida::ingest

#endif  // AIDA_INGEST_WIKI_IMPORTER_H_
