#include "synth/world_generator.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "synth/word_forge.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::synth {

WorldGenerator::WorldGenerator(WorldConfig config)
    : config_(std::move(config)) {}

World WorldGenerator::Generate() {
  const WorldConfig& cfg = config_;
  AIDA_CHECK(cfg.num_topics > 0 && cfg.num_entities > 0);
  util::Rng rng(cfg.seed);
  WordForge forge(rng.Fork());

  World world;
  world.topic_vocab.resize(cfg.num_topics);
  world.topic_entities.resize(cfg.num_topics);
  world.entity_topic.resize(cfg.num_entities);
  world.entity_names.resize(cfg.num_entities);
  world.entity_phrases.resize(cfg.num_entities);

  // ---- Vocabulary ---------------------------------------------------------
  for (auto& vocab : world.topic_vocab) {
    vocab.reserve(cfg.topic_vocab_size);
    for (size_t i = 0; i < cfg.topic_vocab_size; ++i) {
      vocab.push_back(forge.MakeWord());
    }
  }
  world.generic_vocab.reserve(cfg.generic_vocab_size);
  for (size_t i = 0; i < cfg.generic_vocab_size; ++i) {
    world.generic_vocab.push_back(forge.MakeWord());
  }

  // Shared family names and given names; sharing is what creates ambiguity.
  std::vector<std::string> family_names;
  family_names.reserve(cfg.num_shared_names);
  for (size_t i = 0; i < cfg.num_shared_names; ++i) {
    family_names.push_back(forge.MakeName());
  }
  std::vector<std::string> given_names;
  const size_t num_given = std::max<size_t>(20, cfg.num_shared_names / 10);
  given_names.reserve(num_given);
  for (size_t i = 0; i < num_given; ++i) {
    given_names.push_back(forge.MakeName());
  }

  kb::KbBuilder builder;

  // ---- Taxonomy -----------------------------------------------------------
  kb::TypeId root = builder.AddType("entity");
  static const char* const kDomains[] = {"person", "organization",
                                         "location", "event", "work"};
  std::vector<kb::TypeId> domain_types;
  for (const char* d : kDomains) domain_types.push_back(builder.AddType(d, root));
  std::vector<kb::TypeId> topic_types;
  for (size_t t = 0; t < cfg.num_topics; ++t) {
    topic_types.push_back(
        builder.AddType(util::StrFormat("topic_%zu", t), root));
  }

  // ---- Entities: topic, popularity, names --------------------------------
  util::ZipfSampler popularity(cfg.num_entities, cfg.popularity_exponent);
  std::vector<double> anchor_counts(cfg.num_entities);
  const double pmf0 = popularity.Pmf(0);
  for (size_t i = 0; i < cfg.num_entities; ++i) {
    anchor_counts[i] =
        std::max(3.0, cfg.max_anchor_count * popularity.Pmf(i) / pmf0);
  }

  for (size_t i = 0; i < cfg.num_entities; ++i) {
    uint32_t topic = static_cast<uint32_t>(rng.UniformInt(cfg.num_topics));
    world.entity_topic[i] = topic;

    // Family names are drawn either from a topic-local slice of the pool
    // (same-topic collisions) or globally (cross-topic collisions).
    size_t family_index;
    if (rng.Bernoulli(cfg.topic_local_name_fraction)) {
      size_t slice = std::max<size_t>(2, family_names.size() / cfg.num_topics);
      size_t offset = (topic * slice) % family_names.size();
      family_index = (offset + rng.UniformInt(slice)) % family_names.size();
    } else {
      family_index = rng.UniformInt(family_names.size());
    }
    const std::string& family = family_names[family_index];
    const std::string& given = given_names[rng.UniformInt(given_names.size())];
    std::string canonical = util::StrFormat("%s_%s_%zu", given.c_str(),
                                            family.c_str(), i);
    kb::EntityId e = builder.AddEntity(canonical);
    AIDA_CHECK(e == i);
    world.topic_entities[topic].push_back(e);

    uint64_t anchors = static_cast<uint64_t>(anchor_counts[i]);
    std::vector<std::string>& names = world.entity_names[i];
    // The ambiguous family name is the dominant surface form.
    names.push_back(family);
    builder.AddName(family, e, std::max<uint64_t>(1, anchors * 6 / 10));
    // Full name: much less ambiguous.
    std::string full = given + " " + family;
    names.push_back(full);
    builder.AddName(full, e, std::max<uint64_t>(1, anchors * 3 / 10));
    // Occasionally an extra shared alias (redirect/disambiguation noise).
    if (rng.Bernoulli(cfg.extra_name_prob * 0.25)) {
      const std::string& alias =
          family_names[rng.UniformInt(family_names.size())];
      names.push_back(alias);
      builder.AddName(alias, e, std::max<uint64_t>(1, anchors / 10));
    }

    builder.AssignType(e, domain_types[i % std::size(kDomains)]);
    builder.AssignType(e, topic_types[topic]);
  }

  // Sort topic members by descending popularity (== ascending id, since
  // anchor counts decay with id).
  for (auto& members : world.topic_entities) {
    std::sort(members.begin(), members.end());
  }

  // ---- Links --------------------------------------------------------------
  // Out-links go mostly to same-topic entities, proportional to target
  // popularity; in-link counts therefore track popularity, making the long
  // tail link-poor while still keyphrase-rich.
  std::vector<std::vector<kb::EntityId>> out_links(cfg.num_entities);
  std::vector<util::ZipfSampler> topic_zipf;
  topic_zipf.reserve(cfg.num_topics);
  for (size_t t = 0; t < cfg.num_topics; ++t) {
    topic_zipf.emplace_back(std::max<size_t>(1, world.topic_entities[t].size()),
                            0.9);
  }
  for (size_t i = 0; i < cfg.num_entities; ++i) {
    double pop_percentile =
        1.0 - static_cast<double>(i) / static_cast<double>(cfg.num_entities);
    size_t degree =
        cfg.min_out_links +
        static_cast<size_t>((cfg.max_out_links - cfg.min_out_links) *
                            pop_percentile * rng.UniformDouble());
    for (size_t k = 0; k < degree; ++k) {
      uint32_t topic = world.entity_topic[i];
      if (rng.Bernoulli(cfg.cross_topic_link_prob)) {
        topic = static_cast<uint32_t>(rng.UniformInt(cfg.num_topics));
      }
      const auto& members = world.topic_entities[topic];
      if (members.empty()) continue;
      kb::EntityId target = members[topic_zipf[topic].Sample(rng)];
      if (target == i) continue;
      // The association always exists (and will surface in keyphrases);
      // the page link is only materialized with popularity-dependent
      // coverage, mirroring Wikipedia's link sparsity on the long tail.
      out_links[i].push_back(target);
      double target_percentile = 1.0 - static_cast<double>(target) /
                                           static_cast<double>(
                                               cfg.num_entities);
      double keep = cfg.min_link_coverage +
                    (1.0 - cfg.min_link_coverage) *
                        std::pow(target_percentile,
                                 cfg.link_coverage_exponent);
      if (rng.Bernoulli(keep)) {
        builder.AddLink(static_cast<kb::EntityId>(i), target);
      }
    }
  }

  // ---- Keyphrases ----------------------------------------------------------
  // Signature words are entity-specific; topic words are shared within a
  // topic; link-target names and relational phrases (containing a linked
  // partner's signature word) tie related entities' phrase sets together —
  // the association signal KORE exploits where link counts are too sparse
  // for Milne-Witten.
  std::vector<std::vector<std::string>> signatures(cfg.num_entities);
  for (size_t i = 0; i < cfg.num_entities; ++i) {
    for (size_t s = 0; s < cfg.signature_words; ++s) {
      signatures[i].push_back(forge.MakeWord());
    }
  }
  for (size_t i = 0; i < cfg.num_entities; ++i) {
    uint32_t topic = world.entity_topic[i];
    const auto& tvocab = world.topic_vocab[topic];
    const std::vector<std::string>& signature = signatures[i];

    double pop_percentile =
        1.0 - static_cast<double>(i) / static_cast<double>(cfg.num_entities);
    size_t num_phrases =
        cfg.base_keyphrases +
        static_cast<size_t>(cfg.max_bonus_keyphrases * pop_percentile *
                            rng.UniformDouble());

    std::vector<std::string>& phrases = world.entity_phrases[i];
    for (size_t p = 0; p < num_phrases; ++p) {
      std::vector<std::string> words;
      if (rng.Bernoulli(cfg.signature_phrase_fraction)) {
        words.push_back(signature[rng.UniformInt(signature.size())]);
        size_t extra = rng.UniformInt(3);  // 0..2 topic words
        for (size_t w = 0; w < extra; ++w) {
          words.push_back(tvocab[rng.UniformInt(tvocab.size())]);
        }
      } else {
        size_t len = 1 + rng.UniformInt(3);  // 1..3 topic words
        for (size_t w = 0; w < len; ++w) {
          words.push_back(tvocab[rng.UniformInt(tvocab.size())]);
        }
        if (rng.Bernoulli(0.15)) {
          words.push_back(
              world.generic_vocab[rng.UniformInt(world.generic_vocab.size())]);
        }
      }
      std::string text = util::Join(words, " ");
      phrases.push_back(text);
      builder.AddKeyphrase(static_cast<kb::EntityId>(i), text,
                           1 + static_cast<uint32_t>(rng.UniformInt(4)));
    }
    // Link-anchor style phrases: names of out-link targets, plus
    // relational phrases combining a partner signature word with an own
    // signature word ("jimmy page signature model" style associations).
    size_t anchor_phrases = std::min<size_t>(out_links[i].size(), 12);
    for (size_t k = 0; k < anchor_phrases; ++k) {
      kb::EntityId target = out_links[i][k];
      const std::string& target_name = world.entity_names[target].front();
      phrases.push_back(target_name);
      builder.AddKeyphrase(static_cast<kb::EntityId>(i),
                           util::ToLower(target_name));
      int relational_count = rng.Bernoulli(0.8) ? 3 : 2;
      for (int rc = 0; rc < relational_count; ++rc) {
        if (signatures[target].empty()) break;
        const std::string& partner_word =
            signatures[target][rng.UniformInt(signatures[target].size())];
        // Half the relational phrases carry the partner's signature word
        // alone (maximal overlap with the partner's own phrases), half
        // pair it with an own signature word.
        std::string relational =
            rng.Bernoulli(0.5)
                ? partner_word
                : partner_word + " " +
                      signature[rng.UniformInt(signature.size())];
        phrases.push_back(relational);
        builder.AddKeyphrase(static_cast<kb::EntityId>(i), relational);
      }
    }
  }

  // ---- Emerging entities (hidden from the KB) ------------------------------
  world.emerging.reserve(cfg.num_emerging);
  for (size_t k = 0; k < cfg.num_emerging; ++k) {
    EmergingEntity ee;
    ee.id = static_cast<uint32_t>(k);
    ee.topic = static_cast<uint32_t>(rng.UniformInt(cfg.num_topics));
    // Most emerging entities collide with an existing shared name — the
    // hard case the paper targets; the rest carry brand-new names.
    if (rng.Bernoulli(0.75)) {
      ee.name = family_names[rng.UniformInt(family_names.size())];
    } else {
      ee.name = forge.MakeName();
    }
    const auto& tvocab = world.topic_vocab[ee.topic];
    std::vector<std::string> signature;
    for (size_t s = 0; s < cfg.signature_words; ++s) {
      signature.push_back(forge.MakeWord());
    }
    size_t num_phrases = cfg.base_keyphrases;
    for (size_t p = 0; p < num_phrases; ++p) {
      std::vector<std::string> words;
      if (rng.Bernoulli(0.6)) {
        words.push_back(signature[rng.UniformInt(signature.size())]);
        size_t extra = rng.UniformInt(3);
        for (size_t w = 0; w < extra; ++w) {
          words.push_back(tvocab[rng.UniformInt(tvocab.size())]);
        }
      } else {
        size_t len = 1 + rng.UniformInt(3);
        for (size_t w = 0; w < len; ++w) {
          words.push_back(tvocab[rng.UniformInt(tvocab.size())]);
        }
      }
      ee.keyphrases.push_back(util::Join(words, " "));
    }
    world.emerging.push_back(std::move(ee));
  }

  world.entity_associations = std::move(out_links);
  world.knowledge_base = std::move(builder).Build();
  return world;
}

}  // namespace aida::synth
