#include "synth/relatedness_gold.h"

#include <algorithm>
#include <cmath>

#include "kb/kb_builder.h"
#include "synth/word_forge.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::synth {

namespace {

struct DomainSpec {
  const char* name;
  size_t num_seeds;
  /// Typical in-link count of seeds in this domain; link-poor domains are
  /// where keyphrase-based measures must carry the signal.
  size_t seed_inlinks;
  size_t candidate_inlinks;
};

// Mirrors the paper's domain mix (Table 4.2): two link-rich domains, one
// medium, two link-poor.
constexpr DomainSpec kDomains[] = {
    {"it_companies", 5, 320, 120},
    {"hollywood_celebrities", 5, 260, 90},
    {"television_series", 5, 60, 24},
    {"video_games", 5, 14, 5},
    {"chuck_norris", 1, 10, 4},
};

}  // namespace

RelatednessGold GenerateRelatednessGold(const RelatednessGoldConfig& config) {
  util::Rng rng(config.seed);
  WordForge forge(rng.Fork());
  kb::KbBuilder builder;
  RelatednessGold gold;

  // Global and per-domain vocabulary pools.
  std::vector<std::string> global_vocab;
  for (size_t i = 0; i < 800; ++i) global_vocab.push_back(forge.MakeWord());

  // Background entities provide df statistics and donate in-links.
  std::vector<kb::EntityId> background;
  for (size_t i = 0; i < config.background_entities; ++i) {
    kb::EntityId e = builder.AddEntity(util::StrFormat("bg_%zu", i));
    builder.AddName(forge.MakeName(), e, 5);
    for (int p = 0; p < 8; ++p) {
      std::string phrase = global_vocab[rng.UniformInt(global_vocab.size())];
      if (rng.Bernoulli(0.5)) {
        phrase += ' ';
        phrase += global_vocab[rng.UniformInt(global_vocab.size())];
      }
      builder.AddKeyphrase(e, phrase);
    }
    background.push_back(e);
  }
  // A pool of linker entities used purely as in-link sources. Links are
  // sampled from the pool, so unrelated entities still share occasional
  // incidental in-links -- the background noise real link graphs have.
  std::vector<kb::EntityId> linkers;
  for (size_t i = 0; i < 3000; ++i) {
    linkers.push_back(builder.AddEntity(util::StrFormat("linker_%zu", i)));
  }
  auto random_linker = [&]() -> kb::EntityId {
    return linkers[rng.UniformInt(linkers.size())];
  };

  for (const DomainSpec& domain : kDomains) {
    std::vector<std::string> domain_vocab;
    for (size_t i = 0; i < 150; ++i) domain_vocab.push_back(forge.MakeWord());

    for (size_t s = 0; s < domain.num_seeds; ++s) {
      // ---- Seed entity ----------------------------------------------------
      kb::EntityId seed = builder.AddEntity(
          util::StrFormat("%s_seed_%zu", domain.name, s));
      builder.AddName(forge.MakeName(), seed, 100);

      // The seed's phrase pool: signature + domain words.
      std::vector<std::string> seed_pool;
      std::vector<std::string> signature;
      for (int i = 0; i < 10; ++i) signature.push_back(forge.MakeWord());
      for (int p = 0; p < 40; ++p) {
        std::vector<std::string> words;
        if (rng.Bernoulli(0.5)) {
          words.push_back(signature[rng.UniformInt(signature.size())]);
        }
        size_t extra = 1 + rng.UniformInt(2);
        for (size_t w = 0; w < extra; ++w) {
          words.push_back(domain_vocab[rng.UniformInt(domain_vocab.size())]);
        }
        seed_pool.push_back(util::Join(words, " "));
      }
      for (int p = 0; p < 30; ++p) {
        builder.AddKeyphrase(seed, seed_pool[rng.UniformInt(seed_pool.size())]);
      }

      // Seed in-links: dedicated linker entities (shared ones are added
      // with candidates below, proportional to planted relatedness).
      std::vector<kb::EntityId> seed_linkers;
      size_t own_links =
          domain.seed_inlinks / 2 + rng.UniformInt(domain.seed_inlinks / 2 + 1);
      for (size_t l = 0; l < own_links; ++l) {
        kb::EntityId linker = random_linker();
        builder.AddLink(linker, seed);
        seed_linkers.push_back(linker);
      }

      // ---- Ranked candidates ----------------------------------------------
      RelatednessSeed entry;
      entry.domain = domain.name;
      entry.seed = seed;
      const size_t k = config.candidates_per_seed;
      for (size_t r = 0; r < k; ++r) {
        // Planted relatedness decays with rank. Keyphrase overlap tracks
        // it with moderate noise (humans agree imperfectly); the link
        // structure is a much noisier proxy of true relatedness — pages
        // link for many editorial reasons — which is what limits MW.
        double f = static_cast<double>(k - r) / static_cast<double>(k + 1);
        double f_noisy =
            std::clamp(f + 0.10 * rng.Gaussian(), 0.0, 1.0);
        // Sparse link neighbourhoods are dominated by editorial accident:
        // the fewer links an entity has, the less its overlap reflects
        // true relatedness.
        double link_sigma =
            0.18 + 2.0 / static_cast<double>(domain.candidate_inlinks);
        double f_link =
            std::clamp(f + link_sigma * rng.Gaussian(), 0.0, 1.0);

        kb::EntityId cand = builder.AddEntity(
            util::StrFormat("%s_seed_%zu_cand_%zu", domain.name, s, r));
        builder.AddName(forge.MakeName(), cand, 20);

        // Keyphrases: fraction f from the seed's pool, rest domain/global.
        const int num_phrases = 25;
        for (int p = 0; p < num_phrases; ++p) {
          if (rng.Bernoulli(f_noisy)) {
            builder.AddKeyphrase(
                cand, seed_pool[rng.UniformInt(seed_pool.size())]);
          } else if (rng.Bernoulli(0.6)) {
            builder.AddKeyphrase(
                cand, domain_vocab[rng.UniformInt(domain_vocab.size())]);
          } else {
            builder.AddKeyphrase(
                cand, global_vocab[rng.UniformInt(global_vocab.size())]);
          }
        }

        // Links: shared in-links with the seed proportional to f, drawn
        // from the seed's linkers; plus candidate-only links. In link-poor
        // domains the shared counts are tiny, so MW has little resolution.
        size_t shared = static_cast<size_t>(
            std::round(f_link * static_cast<double>(
                                    std::min(domain.candidate_inlinks,
                                             seed_linkers.size()))));
        for (size_t l = 0; l < shared; ++l) {
          builder.AddLink(seed_linkers[rng.UniformInt(seed_linkers.size())],
                          cand);
        }
        size_t own = domain.candidate_inlinks -
                     std::min(domain.candidate_inlinks, shared);
        for (size_t l = 0; l < own; ++l) {
          builder.AddLink(random_linker(), cand);
        }

        entry.ranked_candidates.push_back(cand);
      }
      gold.seeds.push_back(std::move(entry));
      gold.seed_inlinks.push_back(own_links);
    }
  }

  gold.knowledge_base = std::move(builder).Build();
  return gold;
}

}  // namespace aida::synth
