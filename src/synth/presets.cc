#include "synth/presets.h"

namespace aida::synth {

CorpusPreset ConllPreset() {
  CorpusPreset preset;
  preset.name = "conll-like";
  preset.world.seed = 1101;
  preset.world.num_topics = 40;
  preset.world.num_entities = 4000;
  preset.world.num_emerging = 120;  // ~20% of mentions resolve out-of-KB
  preset.world.num_shared_names = 1100;
  preset.corpus.seed = 1102;
  preset.corpus.num_documents = 1393;
  preset.corpus.doc_tokens = 216;
  preset.corpus.entities_per_doc = 14;
  preset.corpus.mention_repeat = 1.6;
  preset.corpus.homogeneous_prob = 0.65;
  preset.corpus.popularity_bias = 1.2;
  preset.corpus.linked_entity_prob = 0.6;
  preset.corpus.coherence_trap_prob = 0.5;
  preset.corpus.ambiguous_name_prob = 0.75;
  preset.corpus.emerging_mention_prob = 0.22;
  // Realistic difficulty: sparse and noisy mention contexts.
  preset.corpus.context_phrases_per_mention = 2;
  preset.corpus.sparse_context_prob = 0.45;
  preset.corpus.topical_context_prob = 0.5;
  preset.corpus.confusion_prob = 0.22;
  preset.corpus.context_word_drop_prob = 0.35;
  return preset;
}

CorpusPreset Kore50Preset() {
  CorpusPreset preset;
  preset.name = "kore50-like";
  preset.world.seed = 5001;
  preset.world.num_topics = 25;
  preset.world.num_entities = 3000;
  // High ambiguity: few shared names across many entities; collisions are
  // mostly cross-topic (first names collide across all walks of life).
  preset.world.num_shared_names = 220;
  preset.world.topic_local_name_fraction = 0.1;
  preset.corpus.seed = 5002;
  preset.corpus.num_documents = 50;
  preset.corpus.doc_tokens = 24;
  preset.corpus.entities_per_doc = 3;
  preset.corpus.mention_repeat = 1.0;
  preset.corpus.homogeneous_prob = 1.0;
  // Long-tail bias: nearly uniform over the topic's entities, and the
  // co-mentioned entities are specifically related ("Cash performed
  // Jackson"), so fine-grained coherence is the only reliable clue.
  preset.corpus.popularity_bias = 0.15;
  preset.corpus.linked_entity_prob = 0.9;
  // First-name-only style: always the ambiguous short name.
  preset.corpus.ambiguous_name_prob = 1.0;
  preset.corpus.context_phrases_per_mention = 1;
  preset.corpus.sparse_context_prob = 0.5;
  preset.corpus.topical_context_prob = 0.3;
  return preset;
}

CorpusPreset WpPreset() {
  CorpusPreset preset;
  preset.name = "wp-like";
  preset.world.seed = 7001;
  preset.world.num_topics = 12;  // "heavy metal musical groups" style slice
  preset.world.num_entities = 2500;
  preset.world.num_shared_names = 500;
  // Niche domains ("heavy metal musical groups") are extremely link-poor
  // even among related entities, while their articles are dominated by
  // entity-specific phrases (members, albums, venues).
  preset.world.min_link_coverage = 0.04;
  preset.world.link_coverage_exponent = 4.5;
  preset.world.signature_phrase_fraction = 0.75;
  preset.world.topic_vocab_size = 400;
  preset.corpus.seed = 7002;
  preset.corpus.num_documents = 400;
  preset.corpus.doc_tokens = 52;
  preset.corpus.entities_per_doc = 5;
  preset.corpus.mention_repeat = 1.0;
  preset.corpus.homogeneous_prob = 0.95;
  preset.corpus.popularity_bias = 0.15;
  preset.corpus.linked_entity_prob = 0.8;
  // "Family name only" stress test (Section 4.6.1); context is sparse, so
  // joint coherence has to carry much of the decision.
  preset.corpus.ambiguous_name_prob = 1.0;
  preset.corpus.context_phrases_per_mention = 1;
  preset.corpus.sparse_context_prob = 0.55;
  preset.corpus.topical_context_prob = 0.3;
  return preset;
}

CorpusPreset GigawordEePreset() {
  CorpusPreset preset;
  preset.name = "gigaword-ee-like";
  preset.world.seed = 9001;
  preset.world.num_topics = 30;
  preset.world.num_entities = 3000;
  preset.world.num_emerging = 80;
  preset.world.num_shared_names = 700;
  preset.corpus.seed = 9002;
  // A month-long stream; the EE experiments slice out test days and use
  // preceding days for keyphrase harvesting.
  preset.corpus.num_documents = 2400;
  preset.corpus.doc_tokens = 260;
  preset.corpus.entities_per_doc = 12;
  preset.corpus.mention_repeat = 1.8;
  preset.corpus.homogeneous_prob = 0.85;
  preset.corpus.popularity_bias = 0.7;
  preset.corpus.ambiguous_name_prob = 0.85;
  preset.corpus.emerging_mention_prob = 0.16;
  preset.corpus.first_day = 0;
  preset.corpus.last_day = 30;
  return preset;
}

}  // namespace aida::synth
