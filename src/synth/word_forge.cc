#include "synth/word_forge.h"

#include <cctype>
#include <iterator>

#include "util/string_util.h"

namespace aida::synth {

std::string WordForge::MakeWord() {
  static const char* const kOnsets[] = {
      "b", "br", "c",  "cl", "d", "dr", "f",  "g",  "gr", "h",
      "j", "k",  "l",  "m",  "n", "p",  "pr", "r",  "s",  "st",
      "t", "tr", "v",  "w",  "z", "sh", "ch", "th", "pl", "sl"};
  static const char* const kVowels[] = {"a",  "e",  "i",  "o",
                                        "u",  "ai", "ea", "ou"};
  static const char* const kCodas[] = {"",  "n", "r",  "s",  "l",
                                       "t", "m", "k",  "nd", "st"};
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string word;
    int syllables = 2 + static_cast<int>(rng_.UniformInt(2));
    for (int s = 0; s < syllables; ++s) {
      word += kOnsets[rng_.UniformInt(std::size(kOnsets))];
      word += kVowels[rng_.UniformInt(std::size(kVowels))];
      if (s + 1 == syllables) word += kCodas[rng_.UniformInt(std::size(kCodas))];
    }
    if (used_.insert(word).second) return word;
  }
  std::string word = util::StrFormat("word%zu", used_.size());
  used_.insert(word);
  return word;
}

std::string WordForge::MakeName() {
  std::string word = MakeWord();
  word[0] =
      static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
  return word;
}

}  // namespace aida::synth
