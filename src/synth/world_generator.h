#ifndef AIDA_SYNTH_WORLD_GENERATOR_H_
#define AIDA_SYNTH_WORLD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"
#include "util/rng.h"

namespace aida::synth {

/// Parameters of the synthetic knowledge-base world. The generator plants
/// the statistical structure the paper's experiments depend on: Zipfian
/// entity popularity, ambiguous names shared across (and within) topics,
/// topic-clustered keyphrases, popularity-proportional in-links (so the
/// long tail is link-poor but keyphrase-rich), and a held-out pool of
/// emerging entities that share names with in-KB entities.
struct WorldConfig {
  uint64_t seed = 42;
  /// Number of topical clusters; documents are mostly single-topic.
  size_t num_topics = 40;
  /// Entities registered in the knowledge base.
  size_t num_entities = 4000;
  /// Hidden emerging entities, not added to the KB but known to the
  /// corpus generator and the ground truth.
  size_t num_emerging = 0;
  /// Size of the shared family-name pool; smaller => more ambiguity.
  size_t num_shared_names = 1200;
  /// Zipf exponent of entity popularity.
  double popularity_exponent = 1.05;
  /// Anchor-count scale of the most popular entity.
  double max_anchor_count = 50000;
  /// Topic-specific context vocabulary size per topic.
  size_t topic_vocab_size = 220;
  /// Generic (topic-neutral) vocabulary size.
  size_t generic_vocab_size = 1500;
  /// Keyphrases per entity: base plus a popularity-driven bonus
  /// (popular entities accumulate more keyphrases, Section 3.6.3).
  size_t base_keyphrases = 12;
  size_t max_bonus_keyphrases = 40;
  /// Entity-specific signature words per entity; these make keyphrases
  /// discriminative among same-topic entities.
  size_t signature_words = 6;
  /// Fraction of an entity's keyphrases containing a signature word.
  double signature_phrase_fraction = 0.6;
  /// Out-links per entity: floor plus popularity-driven count; targets are
  /// drawn mostly from the same topic, proportional to popularity.
  size_t min_out_links = 3;
  size_t max_out_links = 40;
  /// Probability an out-link crosses into a random other topic.
  double cross_topic_link_prob = 0.15;
  /// Link-graph coverage: an association between two entities is only
  /// materialized as a page link with probability
  /// min_link_coverage + (1 - min_link_coverage) * percentile^link_coverage_exponent
  /// of the target's popularity percentile. Keyphrases always reflect the
  /// association — Wikipedia's text mentions related entities long before
  /// anyone links their articles, which is why the link-based MW measure
  /// starves on the long tail while KORE does not (Section 4.1).
  double min_link_coverage = 0.08;
  double link_coverage_exponent = 3.0;
  /// Probability that an additional (non-canonical-derived) shared name is
  /// attached to an entity; drives name ambiguity.
  double extra_name_prob = 0.9;
  /// Fraction of entities whose family name comes from a topic-local slice
  /// of the name pool: same-topic name collisions are the cases topical
  /// context cannot resolve and entity-specific evidence must.
  double topic_local_name_fraction = 0.4;
};

/// Hidden description of an emerging entity (ground truth only).
struct EmergingEntity {
  uint32_t id = 0;
  std::string name;  // ambiguous surface name (often also names KB entities)
  uint32_t topic = 0;
  /// Keyphrases (space-separated word strings) characterizing the entity;
  /// used by the corpus generator to write documents about it.
  std::vector<std::string> keyphrases;
};

/// Everything the corpus generator needs to know about the hidden world:
/// the KB plus generation-side metadata (topics, per-entity vocabulary,
/// emerging entities).
struct World {
  std::unique_ptr<kb::KnowledgeBase> knowledge_base;

  /// Per entity: generative topic.
  std::vector<uint32_t> entity_topic;
  /// Per entity: surface names usable in documents (first = most common).
  std::vector<std::vector<std::string>> entity_names;
  /// Per entity: the keyphrases as plain strings (for text generation).
  std::vector<std::vector<std::string>> entity_phrases;
  /// Per topic: list of member entities, sorted by descending popularity.
  std::vector<std::vector<kb::EntityId>> topic_entities;
  /// Per entity: associated (related) entities. A superset of the
  /// materialized link graph — associations surface in text and
  /// keyphrases even when no page link exists.
  std::vector<std::vector<kb::EntityId>> entity_associations;
  /// Per topic: topical filler vocabulary.
  std::vector<std::vector<std::string>> topic_vocab;
  /// Generic filler vocabulary.
  std::vector<std::string> generic_vocab;
  /// Hidden emerging entities.
  std::vector<EmergingEntity> emerging;

  size_t num_topics() const { return topic_entities.size(); }
};

/// Generates a `World` from a `WorldConfig`, deterministically per seed.
class WorldGenerator {
 public:
  explicit WorldGenerator(WorldConfig config);

  /// Builds the world; call once.
  World Generate();

 private:
  WorldConfig config_;
};

}  // namespace aida::synth

#endif  // AIDA_SYNTH_WORLD_GENERATOR_H_
