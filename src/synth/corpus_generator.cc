#include "synth/corpus_generator.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "util/status.h"
#include "util/string_util.h"

namespace aida::synth {

namespace {

const char* const kStopwords[] = {"the", "a",  "of",   "in",   "and",
                                  "to",  "on", "with", "from", "for",
                                  "at",  "by", "was",  "is",   "has"};

// One planned mention occurrence inside a document.
struct PlannedMention {
  kb::EntityId entity = kb::kNoEntity;      // kNoEntity => emerging
  corpus::EmergingId emerging = corpus::kNoEmerging;
  std::string name;
  const std::vector<std::string>* phrases = nullptr;  // context source
  /// Coherence trap: ambiguous name, guaranteed clean context.
  bool trap = false;
};

}  // namespace

CorpusGenerator::CorpusGenerator(const World* world, CorpusConfig config)
    : world_(world), config_(std::move(config)) {
  AIDA_CHECK(world_ != nullptr);
}

corpus::Document CorpusGenerator::GenerateDocument(
    const std::vector<kb::EntityId>& entities,
    const std::vector<uint32_t>& emerging_ids, uint32_t primary_topic,
    int64_t day, util::Rng& rng,
    const std::vector<kb::EntityId>* trap_entities) const {
  const CorpusConfig& cfg = config_;
  corpus::Document doc;
  doc.topic = primary_topic;
  doc.day = day;

  auto is_trap = [&](kb::EntityId e) {
    return trap_entities != nullptr &&
           std::find(trap_entities->begin(), trap_entities->end(), e) !=
               trap_entities->end();
  };

  // Plan mention occurrences: each document entity appears one or more
  // times, under an ambiguous family name or the fuller form.
  std::vector<PlannedMention> plan;
  double repeat_p = 1.0 / std::max(1.0, cfg.mention_repeat);
  for (kb::EntityId e : entities) {
    int occurrences = 1 + rng.Geometric(repeat_p, 3);
    const auto& names = world_->entity_names[e];
    for (int k = 0; k < occurrences; ++k) {
      PlannedMention m;
      m.entity = e;
      m.trap = is_trap(e);
      if (m.trap || names.size() < 2 ||
          rng.Bernoulli(cfg.ambiguous_name_prob)) {
        m.name = names.front();  // the ambiguous family name
      } else {
        m.name = names[1];  // the fuller, mostly unambiguous form
      }
      m.phrases = &world_->entity_phrases[e];
      plan.push_back(std::move(m));
    }
  }
  for (uint32_t ee_id : emerging_ids) {
    const EmergingEntity& ee = world_->emerging[ee_id];
    int occurrences = 1 + rng.Geometric(repeat_p, 3);
    for (int k = 0; k < occurrences; ++k) {
      PlannedMention m;
      m.emerging = ee_id;
      m.name = ee.name;
      m.phrases = &ee.keyphrases;
      plan.push_back(std::move(m));
    }
  }
  rng.Shuffle(plan);

  const auto& topic_vocab = world_->topic_vocab[primary_topic];
  auto filler_word = [&]() -> std::string {
    if (rng.Bernoulli(cfg.stopword_prob)) {
      return kStopwords[rng.UniformInt(std::size(kStopwords))];
    }
    if (rng.Bernoulli(cfg.topical_filler_prob)) {
      return topic_vocab[rng.UniformInt(topic_vocab.size())];
    }
    return world_->generic_vocab[rng.UniformInt(
        world_->generic_vocab.size())];
  };

  auto append_filler = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) doc.tokens.push_back(filler_word());
  };

  // Emit one sentence per planned mention: filler, the mention, a few of
  // the entity's keyphrases as context (sometimes partially), filler, ".".
  for (const PlannedMention& m : plan) {
    append_filler(2 + rng.UniformInt(4));

    corpus::GoldMention gold;
    gold.surface = m.name;
    gold.begin_token = doc.tokens.size();
    for (const std::string& tok : util::Split(m.name, ' ')) {
      doc.tokens.push_back(tok);
    }
    gold.end_token = doc.tokens.size();
    gold.gold_entity = m.entity;
    gold.gold_emerging = m.emerging;
    doc.mentions.push_back(gold);

    bool emit_context =
        m.trap || !rng.Bernoulli(cfg.sparse_context_prob);
    if (emit_context && m.phrases != nullptr && !m.phrases->empty()) {
      size_t num_ctx = 1 + rng.UniformInt(cfg.context_phrases_per_mention);
      if (m.trap) num_ctx = std::max<size_t>(num_ctx, 2);
      for (size_t c = 0; c < num_ctx; ++c) {
        const std::vector<std::string>* source = m.phrases;
        if (!m.trap && rng.Bernoulli(cfg.confusion_prob)) {
          // Misleading context: a keyphrase of another entity that shares
          // the mention's surface name.
          auto candidates =
              world_->knowledge_base->dictionary().Lookup(m.name);
          std::vector<kb::EntityId> others;
          for (const kb::NameCandidate& nc : candidates) {
            if (nc.entity != m.entity) others.push_back(nc.entity);
          }
          if (!others.empty()) {
            kb::EntityId other = others[rng.UniformInt(others.size())];
            source = &world_->entity_phrases[other];
          }
        } else if (!m.trap && rng.Bernoulli(cfg.topical_context_prob)) {
          // Topic-level context only: emit 1-2 topical filler words that
          // match every same-topic candidate equally.
          size_t count = 1 + rng.UniformInt(2);
          for (size_t w = 0; w < count; ++w) {
            doc.tokens.push_back(
                topic_vocab[rng.UniformInt(topic_vocab.size())]);
          }
          continue;
        }
        if (source->empty()) continue;
        const std::string& phrase =
            (*source)[rng.UniformInt(source->size())];
        std::vector<std::string> words = util::Split(phrase, ' ');
        // Drop words occasionally so only partial phrase matches exist in
        // the text (exercises the cover-based scoring, Eq. 3.4).
        for (const std::string& w : words) {
          if (words.size() > 1 &&
              rng.Bernoulli(cfg.context_word_drop_prob)) {
            continue;
          }
          doc.tokens.push_back(util::ToLower(w));
        }
        if (c + 1 < num_ctx) doc.tokens.push_back(",");
      }
    }
    append_filler(1 + rng.UniformInt(3));
    doc.tokens.push_back(".");
  }

  // Pad with filler sentences to the target length.
  while (doc.tokens.size() < cfg.doc_tokens) {
    append_filler(6 + rng.UniformInt(8));
    doc.tokens.push_back(".");
  }
  return doc;
}

corpus::Corpus CorpusGenerator::Generate() {
  const CorpusConfig& cfg = config_;
  util::Rng rng(cfg.seed ^ 0x5EED5EEDULL);

  // Per-topic emerging entity lists.
  std::vector<std::vector<uint32_t>> topic_emerging(world_->num_topics());
  for (const EmergingEntity& ee : world_->emerging) {
    topic_emerging[ee.topic].push_back(ee.id);
  }

  // Popularity-biased per-topic samplers (members are sorted by
  // descending popularity).
  std::vector<util::ZipfSampler> topic_sampler;
  topic_sampler.reserve(world_->num_topics());
  for (size_t t = 0; t < world_->num_topics(); ++t) {
    topic_sampler.emplace_back(
        std::max<size_t>(1, world_->topic_entities[t].size()),
        cfg.popularity_bias);
  }

  // Name -> holders index for coherence traps.
  std::unordered_map<std::string, std::vector<kb::EntityId>> name_holders;
  if (cfg.coherence_trap_prob > 0.0) {
    for (kb::EntityId e = 0; e < world_->entity_names.size(); ++e) {
      name_holders[world_->entity_names[e].front()].push_back(e);
    }
  }

  corpus::Corpus docs;
  docs.reserve(cfg.num_documents);
  for (size_t d = 0; d < cfg.num_documents; ++d) {
    uint32_t primary =
        static_cast<uint32_t>(rng.UniformInt(world_->num_topics()));
    bool homogeneous = rng.Bernoulli(cfg.homogeneous_prob);
    uint32_t secondary =
        homogeneous ? primary
                    : static_cast<uint32_t>(rng.UniformInt(world_->num_topics()));

    std::vector<kb::EntityId> entities;
    std::vector<uint32_t> emerging_ids;
    size_t attempts = 0;
    while (entities.size() + emerging_ids.size() < cfg.entities_per_doc &&
           attempts++ < cfg.entities_per_doc * 10) {
      uint32_t topic = rng.Bernoulli(0.7) ? primary : secondary;
      if (cfg.emerging_mention_prob > 0 &&
          !topic_emerging[topic].empty() &&
          rng.Bernoulli(cfg.emerging_mention_prob)) {
        uint32_t ee = topic_emerging[topic][rng.UniformInt(
            topic_emerging[topic].size())];
        if (std::find(emerging_ids.begin(), emerging_ids.end(), ee) ==
            emerging_ids.end()) {
          emerging_ids.push_back(ee);
        }
        continue;
      }
      kb::EntityId e = kb::kNoEntity;
      if (!entities.empty() && rng.Bernoulli(cfg.linked_entity_prob)) {
        // Association-coherent selection: stories co-mention related
        // entities whether or not their pages are mutually linked.
        kb::EntityId base = entities[rng.UniformInt(entities.size())];
        const auto& related = world_->entity_associations[base];
        if (!related.empty()) e = related[rng.UniformInt(related.size())];
      }
      if (e == kb::kNoEntity) {
        const auto& members = world_->topic_entities[topic];
        if (members.empty()) continue;
        e = members[topic_sampler[topic].Sample(rng)];
      }
      if (std::find(entities.begin(), entities.end(), e) == entities.end()) {
        entities.push_back(e);
      }
    }

    // Coherence trap: a popular out-of-topic entity whose family name is
    // also held by an entity of the document's primary topic.
    std::vector<kb::EntityId> traps;
    if (cfg.coherence_trap_prob > 0.0 &&
        rng.Bernoulli(cfg.coherence_trap_prob)) {
      for (int attempt = 0; attempt < 30; ++attempt) {
        kb::EntityId trap = static_cast<kb::EntityId>(rng.UniformInt(
            std::max<size_t>(1, world_->entity_names.size() / 4)));
        if (world_->entity_topic[trap] == primary) continue;
        const auto& holders =
            name_holders[world_->entity_names[trap].front()];
        bool collides = false;
        for (kb::EntityId holder : holders) {
          if (holder != trap && world_->entity_topic[holder] == primary) {
            collides = true;
            break;
          }
        }
        if (!collides) continue;
        if (std::find(entities.begin(), entities.end(), trap) ==
            entities.end()) {
          entities.push_back(trap);
          traps.push_back(trap);
        }
        break;
      }
    }

    int64_t day = cfg.first_day;
    if (cfg.last_day > cfg.first_day) {
      day = rng.UniformRange(cfg.first_day, cfg.last_day);
    }
    corpus::Document doc =
        GenerateDocument(entities, emerging_ids, primary, day, rng, &traps);
    doc.id = util::StrFormat("doc_%zu", d);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace aida::synth
