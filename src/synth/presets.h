#ifndef AIDA_SYNTH_PRESETS_H_
#define AIDA_SYNTH_PRESETS_H_

#include <string>

#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

namespace aida::synth {

/// A named (world, corpus) configuration pair mirroring one of the paper's
/// evaluation corpora.
struct CorpusPreset {
  std::string name;
  WorldConfig world;
  CorpusConfig corpus;
};

/// CoNLL-YAGO-like news-wire corpus (Table 3.1): 1,393 documents of ~216
/// words with ~25 mentions each, mostly topic-homogeneous, ~20% of
/// mentions out-of-KB.
CorpusPreset ConllPreset();

/// KORE50-like stress corpus (Section 4.6.1): very short documents, dense
/// highly ambiguous mentions, strong long-tail bias.
CorpusPreset Kore50Preset();

/// WP-like corpus (Section 4.6.1): mid-length sentences about one domain,
/// family-name-only mentions of long-tail entities.
CorpusPreset WpPreset();

/// GigaWord-EE-like news stream (Section 5.7.2): dated documents over a
/// month, a pool of hidden emerging entities sharing names with in-KB
/// entities.
CorpusPreset GigawordEePreset();

}  // namespace aida::synth

#endif  // AIDA_SYNTH_PRESETS_H_
