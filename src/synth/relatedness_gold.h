#ifndef AIDA_SYNTH_RELATEDNESS_GOLD_H_
#define AIDA_SYNTH_RELATEDNESS_GOLD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace aida::synth {

/// One seed entity with its gold-ranked related candidates, mirroring the
/// crowdsourced dataset of Section 4.5.1 (21 seeds x 20 candidates from
/// IT companies / celebrities / TV series / video games / Chuck Norris).
struct RelatednessSeed {
  std::string domain;
  kb::EntityId seed = kb::kNoEntity;
  /// Candidates ordered most-related first; the rank is the ground truth
  /// the generator planted (controlled keyphrase/link overlap that decays
  /// with rank), standing in for the human pairwise judgments.
  std::vector<kb::EntityId> ranked_candidates;
};

/// The generated benchmark: a dedicated knowledge base plus the gold
/// rankings. Domains differ in link richness so the link-poor regime the
/// paper highlights (entities with few in-links) is represented.
struct RelatednessGold {
  std::unique_ptr<kb::KnowledgeBase> knowledge_base;
  std::vector<RelatednessSeed> seeds;
  /// In-link count of each seed (for the <=N-links breakdowns).
  std::vector<size_t> seed_inlinks;
};

/// Config for the relatedness benchmark generator.
struct RelatednessGoldConfig {
  uint64_t seed = 4242;
  size_t candidates_per_seed = 20;
  /// Background entities that provide realistic df statistics and link
  /// noise without being judged.
  size_t background_entities = 800;
};

/// Generates the benchmark deterministically.
RelatednessGold GenerateRelatednessGold(const RelatednessGoldConfig& config);

}  // namespace aida::synth

#endif  // AIDA_SYNTH_RELATEDNESS_GOLD_H_
