#ifndef AIDA_SYNTH_CORPUS_GENERATOR_H_
#define AIDA_SYNTH_CORPUS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "corpus/document.h"
#include "synth/world_generator.h"
#include "util/rng.h"

namespace aida::synth {

/// Parameters of a generated annotated corpus. Presets in presets.h mirror
/// the paper's evaluation corpora (CoNLL-like, KORE50-like, WP-like,
/// GigaWord-EE-like).
struct CorpusConfig {
  uint64_t seed = 7;
  size_t num_documents = 200;
  /// Target document length in tokens (mention tokens included).
  size_t doc_tokens = 216;
  /// Distinct entities mentioned per document.
  size_t entities_per_doc = 12;
  /// Average repeat mentions of a document entity.
  double mention_repeat = 1.5;
  /// Probability that a document is thematically homogeneous (all entities
  /// from the primary topic). Heterogeneous documents mix in a second
  /// topic, the case where coherence misleads (Section 3.5).
  double homogeneous_prob = 0.8;
  /// Exponent biasing in-document entity choice toward popular entities;
  /// lower values surface more long-tail entities.
  double popularity_bias = 0.8;
  /// Probability that the next document entity is drawn from the out-links
  /// of an already selected one (link-coherent stories, where graph
  /// coherence genuinely helps).
  double linked_entity_prob = 0.0;
  /// Probability that a document receives a "coherence trap": a popular
  /// entity from ANOTHER topic whose name collides with an entity of the
  /// document's topic. Graph coherence pulls such mentions toward the
  /// topically coherent impostor; the coherence robustness test
  /// (Section 3.5.2) is what rescues them.
  double coherence_trap_prob = 0.0;
  /// Fraction of mentions that use the ambiguous family name (the rest use
  /// the unambiguous full name).
  double ambiguous_name_prob = 0.75;
  /// Fraction of entity mentions referring to hidden emerging entities.
  double emerging_mention_prob = 0.0;
  /// Per mention: number of context keyphrases of the entity woven into
  /// surrounding text.
  size_t context_phrases_per_mention = 3;
  /// Probability that a context phrase is replaced by plain topical words
  /// (evidence that matches every same-topic candidate equally).
  double topical_context_prob = 0.0;
  /// Probability that a context phrase is borrowed from a DIFFERENT entity
  /// sharing the mention's name — misleading context, the hard case where
  /// local similarity errs and priors/coherence must compensate.
  double confusion_prob = 0.0;
  /// Probability of dropping each word of a multi-word context phrase
  /// (creates partial matches for the cover scoring of Eq. 3.4).
  double context_word_drop_prob = 0.2;
  /// Probability of each filler token being topical (vs generic).
  double topical_filler_prob = 0.35;
  /// Probability of each filler token being a stopword.
  double stopword_prob = 0.25;
  /// Document days are drawn uniformly from [first_day, last_day].
  int64_t first_day = 0;
  int64_t last_day = 0;
  /// If true, context keyphrases for a mention can be dropped, yielding
  /// low-context (harder) mentions.
  double sparse_context_prob = 0.1;
};

/// Generates annotated documents from a hidden `World`.
class CorpusGenerator {
 public:
  /// `world` must outlive the generator.
  CorpusGenerator(const World* world, CorpusConfig config);

  /// Generates the corpus; deterministic per (world seed, corpus seed).
  corpus::Corpus Generate();

  /// Generates a single document about the given entities (helper for
  /// focused tests). Emerging entities are referenced by
  /// `emerging_ids` and annotated as out-of-KB. Entities listed in
  /// `trap_entities` (may be null) are always mentioned under their
  /// ambiguous family name with full own-entity context — the coherence
  /// traps of Section 3.5.
  corpus::Document GenerateDocument(
      const std::vector<kb::EntityId>& entities,
      const std::vector<uint32_t>& emerging_ids, uint32_t primary_topic,
      int64_t day, util::Rng& rng,
      const std::vector<kb::EntityId>* trap_entities = nullptr) const;

 private:
  const World* world_;
  CorpusConfig config_;
};

}  // namespace aida::synth

#endif  // AIDA_SYNTH_CORPUS_GENERATOR_H_
