#ifndef AIDA_SYNTH_WORD_FORGE_H_
#define AIDA_SYNTH_WORD_FORGE_H_

#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace aida::synth {

/// Deterministic pseudo-word synthesis: pronounceable lowercase words built
/// from syllables. Words are globally unique within one forge (a numeric
/// suffix is appended on collision), so vocabularies generated from a
/// single forge never alias.
class WordForge {
 public:
  explicit WordForge(util::Rng rng) : rng_(rng) {}

  /// A fresh lowercase word.
  std::string MakeWord();

  /// A fresh capitalized name.
  std::string MakeName();

 private:
  util::Rng rng_;
  std::unordered_set<std::string> used_;
};

}  // namespace aida::synth

#endif  // AIDA_SYNTH_WORD_FORGE_H_
