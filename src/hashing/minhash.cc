#include "hashing/minhash.h"

#include <limits>

#include "util/check.h"

namespace aida::hashing {

uint64_t MixHash(uint64_t x, uint64_t seed) {
  uint64_t z = x + seed + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  AIDA_CHECK(num_hashes > 0, "MinHasher needs at least one hash function");
  seeds_.reserve(num_hashes);
  uint64_t s = seed;
  for (size_t i = 0; i < num_hashes; ++i) {
    s = MixHash(s, 0xD1B54A32D192ED03ULL + i);
    seeds_.push_back(s);
  }
}

std::vector<uint64_t> MinHasher::Sketch(
    const std::vector<uint32_t>& items) const {
  std::vector<uint64_t> sketch(seeds_.size(),
                               std::numeric_limits<uint64_t>::max());
  for (uint32_t item : items) {
    for (size_t i = 0; i < seeds_.size(); ++i) {
      uint64_t h = MixHash(item, seeds_[i]);
      if (h < sketch[i]) sketch[i] = h;
    }
  }
  return sketch;
}

double EstimateJaccard(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  AIDA_CHECK(a.size() == b.size() && !a.empty(),
             "sketches must be equal-length and non-empty: %zu vs %zu",
             a.size(), b.size());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace aida::hashing
