#include "hashing/two_stage_hasher.h"

#include <algorithm>

#include "hashing/lsh_index.h"
#include "hashing/minhash.h"
#include "util/check.h"

namespace aida::hashing {

TwoStageConfig LshGoodConfig() {
  TwoStageConfig config;
  config.entity_bands = 200;
  config.entity_rows = 1;
  return config;
}

TwoStageConfig LshFastConfig() {
  TwoStageConfig config;
  config.entity_bands = 1000;
  config.entity_rows = 2;
  return config;
}

TwoStageHasher::TwoStageHasher(const kb::KeyphraseStore& store,
                               TwoStageConfig config)
    : config_(config) {
  AIDA_CHECK(store.finalized(),
             "two-stage hashing needs a finalized KeyphraseStore");
  // Stage one: sketch and band every phrase once.
  MinHasher phrase_hasher(config_.phrase_hashes, config_.seed);
  LshIndex phrase_bander(config_.phrase_bands, config_.phrase_rows);
  std::vector<std::vector<uint32_t>> phrase_buckets(store.phrase_count());
  std::vector<uint32_t> word_items;
  for (kb::PhraseId p = 0; p < store.phrase_count(); ++p) {
    word_items.assign(store.PhraseWords(p).begin(),
                      store.PhraseWords(p).end());
    std::vector<uint64_t> sketch = phrase_hasher.Sketch(word_items);
    for (uint64_t key : phrase_bander.BucketKeys(sketch)) {
      phrase_buckets[p].push_back(static_cast<uint32_t>(key));
    }
  }

  // Entity representation: the union of its phrases' bucket ids.
  entity_buckets_.resize(store.collection_size());
  for (kb::EntityId e = 0; e < store.collection_size(); ++e) {
    std::vector<uint32_t>& buckets = entity_buckets_[e];
    for (kb::PhraseId p : store.EntityPhrases(e)) {
      buckets.insert(buckets.end(), phrase_buckets[p].begin(),
                     phrase_buckets[p].end());
    }
    std::sort(buckets.begin(), buckets.end());
    buckets.erase(std::unique(buckets.begin(), buckets.end()), buckets.end());
  }
}

const std::vector<uint32_t>& TwoStageHasher::EntityBuckets(
    kb::EntityId entity) const {
  static const std::vector<uint32_t>& empty = *new std::vector<uint32_t>();
  if (entity >= entity_buckets_.size()) return empty;
  return entity_buckets_[entity];
}

std::vector<std::pair<uint32_t, uint32_t>> TwoStageHasher::GroupEntities(
    const std::vector<kb::EntityId>& entities) const {
  // Stage two: sketch the phrase-bucket sets of the query entities and
  // band them; built per query because the entity set is query-specific.
  MinHasher entity_hasher(config_.entity_bands * config_.entity_rows,
                          config_.seed ^ 0xABCDEF1234567890ULL);
  LshIndex entity_bander(config_.entity_bands, config_.entity_rows);
  for (uint32_t i = 0; i < entities.size(); ++i) {
    const std::vector<uint32_t>& buckets = EntityBuckets(entities[i]);
    if (buckets.empty()) continue;  // no phrases -> unrelated to everything
    entity_bander.Insert(i, entity_hasher.Sketch(buckets));
  }
  return entity_bander.CandidatePairs();
}

}  // namespace aida::hashing
