#include "hashing/lsh_index.h"

#include <algorithm>

#include "hashing/minhash.h"
#include "util/check.h"

namespace aida::hashing {

LshIndex::LshIndex(size_t bands, size_t rows_per_band)
    : bands_(bands), rows_per_band_(rows_per_band) {
  AIDA_CHECK(bands > 0 && rows_per_band > 0,
             "LSH geometry must be positive: %zu bands x %zu rows", bands,
             rows_per_band);
}

std::vector<uint64_t> LshIndex::BucketKeys(
    const std::vector<uint64_t>& sketch) const {
  AIDA_CHECK(sketch.size() >= bands_ * rows_per_band_,
             "sketch of %zu hashes too short for %zu x %zu banding",
             sketch.size(), bands_, rows_per_band_);
  std::vector<uint64_t> keys;
  keys.reserve(bands_);
  for (size_t b = 0; b < bands_; ++b) {
    // Order-insensitive combination by summation, then mixed with the band
    // index so equal sums in different bands do not collide.
    uint64_t sum = 0;
    for (size_t r = 0; r < rows_per_band_; ++r) {
      sum += sketch[b * rows_per_band_ + r];
    }
    keys.push_back(MixHash(sum, 0xC2B2AE3D27D4EB4FULL + b));
  }
  return keys;
}

void LshIndex::Insert(uint32_t item, const std::vector<uint64_t>& sketch) {
  for (uint64_t key : BucketKeys(sketch)) {
    buckets_[key].push_back(item);
  }
}

std::vector<std::pair<uint32_t, uint32_t>> LshIndex::CandidatePairs() const {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& [key, items] : buckets_) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        uint32_t a = items[i];
        uint32_t b = items[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        pairs.emplace_back(a, b);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace aida::hashing
