#ifndef AIDA_HASHING_TWO_STAGE_HASHER_H_
#define AIDA_HASHING_TWO_STAGE_HASHER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kb/keyphrase_store.h"

namespace aida::hashing {

/// Configuration of the two-stage hashing scheme (Section 4.4.2).
struct TwoStageConfig {
  /// Stage one: min-hash samples per keyphrase and LSH banding that groups
  /// near-duplicate phrases. Paper: 4 samples, 2 bands of 2.
  size_t phrase_hashes = 4;
  size_t phrase_bands = 2;
  size_t phrase_rows = 2;
  /// Stage two: banding over phrase-bucket-id sketches of entities.
  /// KORE-LSH-G uses 200 bands of 1 (recall-oriented); KORE-LSH-F uses
  /// 1000 bands of 2 (precision-oriented, prunes more pairs).
  size_t entity_bands = 200;
  size_t entity_rows = 1;
  uint64_t seed = 0x514E434F44455221ULL;
};

/// Returns the paper's KORE-LSH-G configuration.
TwoStageConfig LshGoodConfig();
/// Returns the paper's KORE-LSH-F configuration.
TwoStageConfig LshFastConfig();

/// Pre-clusters entities by keyphrase overlap so that expensive pairwise
/// relatedness is only computed within clusters:
///
///  stage 1 (precomputed once per KB, linear): every keyphrase is min-hash
///  sketched over its words and banded; each phrase maps to a small set of
///  phrase-bucket ids, so near-duplicate phrases share buckets and partial
///  phrase matches survive the set representation;
///
///  stage 2 (per query): each input entity is represented by the set of its
///  phrase-bucket ids, min-hash sketched, and banded again; only entities
///  sharing an entity bucket are compared exactly.
class TwoStageHasher {
 public:
  /// Precomputes stage one over all phrases in `store` (must be finalized).
  TwoStageHasher(const kb::KeyphraseStore& store, TwoStageConfig config);

  /// Phrase-bucket ids (sorted, unique) representing `entity`.
  const std::vector<uint32_t>& EntityBuckets(kb::EntityId entity) const;

  /// Returns index pairs (into `entities`) that share at least one stage-two
  /// bucket; only these pairs need exact relatedness computation.
  std::vector<std::pair<uint32_t, uint32_t>> GroupEntities(
      const std::vector<kb::EntityId>& entities) const;

  const TwoStageConfig& config() const { return config_; }

 private:
  TwoStageConfig config_;
  // Per entity: sorted unique phrase-bucket ids.
  std::vector<std::vector<uint32_t>> entity_buckets_;
};

}  // namespace aida::hashing

#endif  // AIDA_HASHING_TWO_STAGE_HASHER_H_
