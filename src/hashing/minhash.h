#ifndef AIDA_HASHING_MINHASH_H_
#define AIDA_HASHING_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aida::hashing {

/// Stateless 64-bit mixing hash of `x` under `seed` (SplitMix64 finalizer).
uint64_t MixHash(uint64_t x, uint64_t seed);

/// Computes min-hash sketches: for each of `num_hashes` seeded hash
/// functions, the minimum hash value over the item set. Equal Jaccard
/// similarity between sets equals the probability of per-position sketch
/// agreement (Broder 1998), which stage one of the KORE hashing scheme
/// exploits (Section 4.4.2).
class MinHasher {
 public:
  /// Creates `num_hashes` hash functions derived from `seed`.
  MinHasher(size_t num_hashes, uint64_t seed);

  /// Sketches a set of 32-bit item ids. Empty input yields a sketch of
  /// sentinel values (all-max), which never collides with real sketches.
  std::vector<uint64_t> Sketch(const std::vector<uint32_t>& items) const;

  size_t num_hashes() const { return seeds_.size(); }

 private:
  std::vector<uint64_t> seeds_;
};

/// Estimates Jaccard similarity from two sketches of equal length as the
/// fraction of agreeing positions.
double EstimateJaccard(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b);

}  // namespace aida::hashing

#endif  // AIDA_HASHING_MINHASH_H_
