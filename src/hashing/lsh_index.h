#ifndef AIDA_HASHING_LSH_INDEX_H_
#define AIDA_HASHING_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aida::hashing {

/// Banded locality-sensitive hashing over min-hash sketches. Sketches are
/// partitioned into `bands` bands of `rows_per_band` values; the values in
/// a band are combined order-insensitively by summation (as the paper
/// does), and items landing in the same (band, combined value) bucket
/// become comparison candidates.
class LshIndex {
 public:
  LshIndex(size_t bands, size_t rows_per_band);

  /// Inserts `item` with its `sketch`; the sketch must have at least
  /// bands * rows_per_band entries.
  void Insert(uint32_t item, const std::vector<uint64_t>& sketch);

  /// All unordered item pairs that share at least one bucket, deduplicated
  /// and sorted. Complexity is linear in total bucket sizes (quadratic only
  /// within individual buckets).
  std::vector<std::pair<uint32_t, uint32_t>> CandidatePairs() const;

  /// Number of non-empty buckets.
  size_t BucketCount() const { return buckets_.size(); }

  size_t bands() const { return bands_; }
  size_t rows_per_band() const { return rows_per_band_; }

  /// Computes the bucket keys (one per band) for a sketch without
  /// inserting. Used by callers that only need bucket identities
  /// (stage one of the two-stage scheme).
  std::vector<uint64_t> BucketKeys(const std::vector<uint64_t>& sketch) const;

 private:
  size_t bands_;
  size_t rows_per_band_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace aida::hashing

#endif  // AIDA_HASHING_LSH_INDEX_H_
