#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/context_similarity.h"
#include "core/robustness.h"
#include "util/status.h"

namespace aida::core {

namespace {

// Resolves candidates for all mentions (dictionary lookup unless supplied).
void ResolveCandidates(const CandidateModelStore& models,
                       const DisambiguationProblem& problem,
                       std::vector<std::vector<Candidate>>& owned,
                       std::vector<const std::vector<Candidate>*>& out) {
  const size_t n = problem.mentions.size();
  owned.resize(n);
  out.resize(n);
  for (size_t m = 0; m < n; ++m) {
    if (problem.mentions[m].candidates_resolved) {
      out[m] = &problem.mentions[m].candidates;
    } else {
      owned[m] = LookupCandidates(models, problem.mentions[m].surface);
      out[m] = &owned[m];
    }
  }
}

void FillMentionResult(const std::vector<Candidate>& cands, int32_t chosen,
                       const std::vector<double>& scores,
                       MentionResult& out) {
  out.candidate_scores = scores;
  for (const Candidate& cand : cands) {
    out.candidate_entities.push_back(cand.entity);
    out.candidate_is_placeholder.push_back(cand.is_placeholder);
  }
  if (chosen >= 0) {
    const Candidate& cand = cands[static_cast<size_t>(chosen)];
    out.entity = cand.is_placeholder ? kb::kNoEntity : cand.entity;
    out.chose_placeholder = cand.is_placeholder;
    out.score = scores[static_cast<size_t>(chosen)];
  }
}

// Token-cosine local similarity used by the Kulkarni baseline: dot product
// of the document's word multiset with the entity's IDF-weighted keywords,
// normalized by the entity's keyword mass.
double TokenCosine(const DocumentContext& context, size_t mention_begin,
                   size_t mention_end, const CandidateModel& model) {
  double dot = 0.0;
  double entity_mass = 1e-9;
  std::unordered_set<kb::WordId> seen;
  for (const CandidatePhrase& phrase : model.phrases) {
    for (size_t i = 0; i < phrase.words.size(); ++i) {
      if (!seen.insert(phrase.words[i]).second) continue;
      double idf = phrase.word_idf[i];
      entity_mass += idf * idf;
      size_t occurrences = 0;
      for (size_t pos : context.Positions(phrase.words[i])) {
        if (pos >= mention_begin && pos < mention_end) continue;
        ++occurrences;
      }
      dot += static_cast<double>(occurrences) * idf;
    }
  }
  return dot / std::sqrt(entity_mass);
}

}  // namespace

// ---- PriorBaseline ----------------------------------------------------------

PriorBaseline::PriorBaseline(const CandidateModelStore* models)
    : models_(models) {
  AIDA_CHECK(models_ != nullptr);
}

DisambiguationResult PriorBaseline::Disambiguate(
    const DisambiguationProblem& problem,
    const DisambiguateOptions& /*options*/) const {
  std::vector<std::vector<Candidate>> owned;
  std::vector<const std::vector<Candidate>*> candidates;
  ResolveCandidates(*models_, problem, owned, candidates);

  DisambiguationResult result;
  result.mentions.resize(problem.mentions.size());
  for (size_t m = 0; m < problem.mentions.size(); ++m) {
    const std::vector<Candidate>& cands = *candidates[m];
    if (cands.empty()) continue;
    std::vector<double> scores;
    scores.reserve(cands.size());
    for (const Candidate& cand : cands) scores.push_back(cand.prior);
    FillMentionResult(cands,
                      static_cast<int32_t>(robustness::ArgMax(scores)),
                      scores, result.mentions[m]);
  }
  return result;
}

// ---- CucerzanBaseline --------------------------------------------------------

CucerzanBaseline::CucerzanBaseline(const CandidateModelStore* models)
    : models_(models) {
  AIDA_CHECK(models_ != nullptr);
}

DisambiguationResult CucerzanBaseline::Disambiguate(
    const DisambiguationProblem& problem,
    const DisambiguateOptions& options) const {
  AIDA_CHECK(problem.tokens != nullptr);
  const kb::KnowledgeBase& kb = models_->knowledge_base();
  std::vector<std::vector<Candidate>> owned;
  std::vector<const std::vector<Candidate>*> candidates;
  ResolveCandidates(*models_, problem, owned, candidates);

  ExtendedVocabulary plain_vocab(&kb.keyphrases());
  const ExtendedVocabulary& vocab =
      options.vocab != nullptr ? *options.vocab : plain_vocab;
  DocumentContext context(*problem.tokens, vocab);
  ContextSimilarity similarity(ContextSimilarity::WordWeight::kIdf);

  // Document-level category vector: counts of each type over all
  // candidates of all mentions (the "context expansion" idea).
  std::unordered_map<kb::TypeId, double> doc_types;
  for (const auto* cands : candidates) {
    for (const Candidate& cand : *cands) {
      if (cand.is_placeholder || cand.entity == kb::kNoEntity) continue;
      for (kb::TypeId t : kb.entities().Get(cand.entity).types) {
        doc_types[t] += 1.0;
      }
    }
  }

  DisambiguationResult result;
  result.mentions.resize(problem.mentions.size());
  for (size_t m = 0; m < problem.mentions.size(); ++m) {
    const ProblemMention& mention = problem.mentions[m];
    const std::vector<Candidate>& cands = *candidates[m];
    if (cands.empty()) continue;
    std::vector<double> scores(cands.size(), 0.0);
    double max_sim = 1e-9;
    std::vector<double> sims(cands.size(), 0.0);
    std::vector<double> types(cands.size(), 0.0);
    double max_type = 1e-9;
    for (size_t c = 0; c < cands.size(); ++c) {
      sims[c] = similarity.Score(context, mention.begin_token,
                                 mention.end_token, *cands[c].model);
      max_sim = std::max(max_sim, sims[c]);
      if (!cands[c].is_placeholder && cands[c].entity != kb::kNoEntity) {
        for (kb::TypeId t : kb.entities().Get(cands[c].entity).types) {
          auto it = doc_types.find(t);
          if (it == doc_types.end()) continue;
          // Subtract the candidate's own contribution.
          types[c] += it->second - 1.0;
        }
      }
      max_type = std::max(max_type, types[c]);
    }
    for (size_t c = 0; c < cands.size(); ++c) {
      scores[c] = sims[c] / max_sim + types[c] / max_type;
    }
    FillMentionResult(cands,
                      static_cast<int32_t>(robustness::ArgMax(scores)),
                      scores, result.mentions[m]);
  }
  return result;
}

// ---- KulkarniBaseline --------------------------------------------------------

KulkarniBaseline::KulkarniBaseline(const CandidateModelStore* models,
                                   const RelatednessMeasure* relatedness,
                                   Mode mode)
    : models_(models), relatedness_(relatedness), mode_(mode) {
  AIDA_CHECK(models_ != nullptr);
  AIDA_CHECK(mode_ != Mode::kCollective || relatedness_ != nullptr);
}

std::string KulkarniBaseline::name() const {
  switch (mode_) {
    case Mode::kSimilarity:
      return "kul-s";
    case Mode::kSimilarityPrior:
      return "kul-sp";
    case Mode::kCollective:
      return "kul-ci";
  }
  return "kul";
}

DisambiguationResult KulkarniBaseline::Disambiguate(
    const DisambiguationProblem& problem,
    const DisambiguateOptions& options) const {
  AIDA_CHECK(problem.tokens != nullptr);
  const kb::KnowledgeBase& kb = models_->knowledge_base();
  std::vector<std::vector<Candidate>> owned;
  std::vector<const std::vector<Candidate>*> candidates;
  ResolveCandidates(*models_, problem, owned, candidates);

  ExtendedVocabulary plain_vocab(&kb.keyphrases());
  const ExtendedVocabulary& vocab =
      options.vocab != nullptr ? *options.vocab : plain_vocab;
  DocumentContext context(*problem.tokens, vocab);

  const size_t num_mentions = problem.mentions.size();
  std::vector<std::vector<double>> local(num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    const ProblemMention& mention = problem.mentions[m];
    const std::vector<Candidate>& cands = *candidates[m];
    std::vector<double> sims(cands.size(), 0.0);
    double max_sim = 1e-9;
    for (size_t c = 0; c < cands.size(); ++c) {
      sims[c] = TokenCosine(context, mention.begin_token, mention.end_token,
                            *cands[c].model);
      max_sim = std::max(max_sim, sims[c]);
    }
    local[m].resize(cands.size());
    for (size_t c = 0; c < cands.size(); ++c) {
      double sim = sims[c] / max_sim;
      local[m][c] = mode_ == Mode::kSimilarity
                        ? sim
                        : 0.5 * sim + 0.5 * cands[c].prior;
    }
  }

  // Initial (and for non-collective modes, final) assignment.
  std::vector<int32_t> chosen(num_mentions, -1);
  for (size_t m = 0; m < num_mentions; ++m) {
    if (!candidates[m]->empty()) {
      chosen[m] = static_cast<int32_t>(robustness::ArgMax(local[m]));
    }
  }

  DisambiguationStats stats;
  if (mode_ == Mode::kCollective) {
    // Hill climbing on sum(local) + sum(pairwise coherence), the practical
    // surrogate of Kulkarni et al.'s relaxed ILP / hill-climbing variants.
    const double coherence_weight = 0.5;
    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 10) {
      improved = false;
      for (size_t m = 0; m < num_mentions; ++m) {
        const std::vector<Candidate>& cands = *candidates[m];
        if (cands.size() < 2) continue;
        double best_score = -1e18;
        int32_t best_c = chosen[m];
        for (size_t c = 0; c < cands.size(); ++c) {
          double score = local[m][c];
          for (size_t other = 0; other < num_mentions; ++other) {
            if (other == m || chosen[other] < 0) continue;
            const Candidate& oc =
                (*candidates[other])[static_cast<size_t>(chosen[other])];
            bool cache_hit = false;
            score += coherence_weight *
                     relatedness_->RelatednessTracked(cands[c], oc,
                                                      &cache_hit);
            if (cache_hit) {
              ++stats.relatedness_cache_hits;
            } else {
              ++stats.relatedness_computations;
            }
          }
          if (score > best_score) {
            best_score = score;
            best_c = static_cast<int32_t>(c);
          }
        }
        if (best_c != chosen[m]) {
          chosen[m] = best_c;
          improved = true;
        }
      }
    }
  }

  DisambiguationResult result;
  result.stats = stats;
  result.mentions.resize(num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    const std::vector<Candidate>& cands = *candidates[m];
    if (cands.empty()) continue;
    FillMentionResult(cands, chosen[m], local[m], result.mentions[m]);
  }
  return result;
}

// ---- TagMeBaseline -------------------------------------------------------------

TagMeBaseline::TagMeBaseline(const CandidateModelStore* models,
                             const RelatednessMeasure* relatedness)
    : models_(models), relatedness_(relatedness) {
  AIDA_CHECK(models_ != nullptr && relatedness_ != nullptr);
}

DisambiguationResult TagMeBaseline::Disambiguate(
    const DisambiguationProblem& problem,
    const DisambiguateOptions& /*options*/) const {
  std::vector<std::vector<Candidate>> owned;
  std::vector<const std::vector<Candidate>*> candidates;
  ResolveCandidates(*models_, problem, owned, candidates);
  const size_t num_mentions = problem.mentions.size();

  DisambiguationResult result;
  result.mentions.resize(num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    const std::vector<Candidate>& cands = *candidates[m];
    if (cands.empty()) continue;
    std::vector<double> scores(cands.size(), 0.0);
    for (size_t c = 0; c < cands.size(); ++c) {
      // Vote mass from all other mentions' candidates, each weighted by
      // the voter's own prior and averaged per mention.
      double votes = 0.0;
      size_t voters = 0;
      for (size_t other = 0; other < num_mentions; ++other) {
        if (other == m || candidates[other]->empty()) continue;
        double mention_vote = 0.0;
        for (const Candidate& voter : *candidates[other]) {
          bool cache_hit = false;
          mention_vote += voter.prior * relatedness_->RelatednessTracked(
                                            cands[c], voter, &cache_hit);
          if (cache_hit) {
            ++result.stats.relatedness_cache_hits;
          } else {
            ++result.stats.relatedness_computations;
          }
        }
        votes += mention_vote /
                 static_cast<double>(candidates[other]->size());
        ++voters;
      }
      double vote_avg =
          voters > 0 ? votes / static_cast<double>(voters) : 0.0;
      scores[c] = 0.5 * vote_avg + 0.5 * cands[c].prior;
    }
    FillMentionResult(cands,
                      static_cast<int32_t>(robustness::ArgMax(scores)),
                      scores, result.mentions[m]);
  }
  return result;
}

}  // namespace aida::core
