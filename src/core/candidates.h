#ifndef AIDA_CORE_CANDIDATES_H_
#define AIDA_CORE_CANDIDATES_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/lifetime.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aida::core {

/// One weighted keyphrase of a candidate entity, with per-word weights.
/// Word ids live in the KB keyphrase vocabulary, possibly extended by
/// out-of-KB words (emerging-entity models harvest new words).
struct CandidatePhrase {
  std::vector<kb::WordId> words;
  /// Phrase-level MI weight (mu, Eq. 4.1).
  double phrase_weight = 0.0;
  /// Entity-specific keyword NPMI weights (Eq. 3.1), parallel to `words`.
  std::vector<double> word_npmi;
  /// Collection-wide keyword IDF weights (Eq. 3.5), parallel to `words`.
  std::vector<double> word_idf;
};

/// The feature view of one disambiguation candidate: its weighted
/// keyphrases. Emerging-entity placeholders are CandidateModels too — that
/// is the point of the NED-EE design (Section 5.5.2): once a placeholder
/// has a keyphrase model, the NED machinery treats it like any entity.
struct CandidateModel {
  /// kb::kNoEntity for out-of-KB placeholder models.
  kb::EntityId entity = kb::kNoEntity;
  std::vector<CandidatePhrase> phrases;
  /// Sum of phrase weights (the KORE denominator contribution).
  double total_phrase_weight = 0.0;
};

/// One entry of a mention's candidate list.
struct Candidate {
  kb::EntityId entity = kb::kNoEntity;
  /// P(entity | name) from anchor statistics; 0 for placeholders unless a
  /// caller supplies one.
  double prior = 0.0;
  /// Never null.
  std::shared_ptr<const CandidateModel> model;
  /// True for an emerging-entity placeholder injected by NED-EE.
  bool is_placeholder = false;
  /// Multiplier applied to this candidate's similarity and relatedness
  /// contributions — the gamma balance between news-harvested placeholder
  /// models and Wikipedia-derived entity models (Section 5.6).
  double weight_scale = 1.0;
};

/// Builds and caches `CandidateModel`s for in-KB entities from the
/// knowledge base's keyphrase store. Thread-safe: concurrent ModelFor
/// calls are serialized on an internal mutex (model construction is cheap
/// relative to disambiguation).
class CandidateModelStore {
 public:
  /// `kb` must outlive the store.
  explicit CandidateModelStore(const kb::KnowledgeBase* kb);

  /// Returns the (cached) model of `entity`.
  std::shared_ptr<const CandidateModel> ModelFor(kb::EntityId entity) const
      AIDA_EXCLUDES(mutex_);

  const kb::KnowledgeBase& knowledge_base() const { return *kb_; }

 private:
  const kb::KnowledgeBase* kb_;
  mutable util::Mutex mutex_{util::lock_rank::kCandidateStore};
  mutable std::unordered_map<kb::EntityId, std::shared_ptr<const CandidateModel>>
      cache_ AIDA_GUARDED_BY(mutex_);
};

/// Looks up the dictionary candidates of a mention surface string and
/// attaches models; the returned list is ordered by descending prior.
std::vector<Candidate> LookupCandidates(const CandidateModelStore& store,
                                        std::string_view mention_surface);

/// Word-id interner that extends the KB vocabulary with out-of-KB words.
/// Extension ids start at `store->word_count()` and carry caller-provided
/// IDF weights (harvested from the document collection).
class ExtendedVocabulary {
 public:
  /// `store` must be finalized and outlive the vocabulary.
  explicit ExtendedVocabulary(const kb::KeyphraseStore* store);

  /// Finds an existing (KB or extension) word id; kb::kNoWord if unknown.
  kb::WordId Find(std::string_view word) const;

  /// Finds or interns; new words get `default_idf` until SetIdf is called.
  kb::WordId GetOrIntern(std::string_view word, double default_idf = 8.0);

  /// Overrides the IDF of an extension word (no-op for KB words, whose IDF
  /// is owned by the store).
  void SetIdf(kb::WordId word, double idf);

  /// IDF of any known word id.
  double Idf(kb::WordId word) const;

  /// Surface text of any known word id (KB or extension). The view
  /// aliases either this vocabulary's extension pool or the underlying
  /// (possibly mmap-backed) keyphrase store, so it must not outlive the
  /// KB snapshot pin.
  std::string_view Text(kb::WordId word) const AIDA_LIFETIME_BOUND;

  size_t size() const;
  const kb::KeyphraseStore& store() const { return *store_; }

 private:
  const kb::KeyphraseStore* store_;
  std::unordered_map<std::string, kb::WordId> extra_ids_;
  std::vector<double> extra_idf_;
  std::vector<std::string> extra_text_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_CANDIDATES_H_
