#include "core/mention_expansion.h"

#include <algorithm>

#include "util/status.h"
#include "util/string_util.h"

namespace aida::core {

namespace {

// True if `shorter` is a token-level prefix or suffix of `longer`.
bool IsTokenAffix(const std::vector<std::string>& shorter,
                  const std::vector<std::string>& longer) {
  if (shorter.size() >= longer.size()) return false;
  bool prefix = true;
  for (size_t i = 0; i < shorter.size(); ++i) {
    prefix &= (shorter[i] == longer[i]);
  }
  if (prefix) return true;
  size_t offset = longer.size() - shorter.size();
  for (size_t i = 0; i < shorter.size(); ++i) {
    if (shorter[i] != longer[offset + i]) return false;
  }
  return true;
}

}  // namespace

MentionExpander::MentionExpander(const CandidateModelStore* models)
    : models_(models) {
  AIDA_CHECK(models_ != nullptr);
}

std::string MentionExpander::FindExpansion(
    const std::string& mention,
    const std::vector<std::string>& surfaces) const {
  const kb::Dictionary& dictionary = models_->knowledge_base().dictionary();
  std::vector<std::string> mention_tokens = util::Split(mention, ' ');
  std::string best;
  size_t best_tokens = mention_tokens.size();
  for (const std::string& surface : surfaces) {
    if (surface == mention) continue;
    std::vector<std::string> tokens = util::Split(surface, ' ');
    if (tokens.size() <= best_tokens) continue;
    if (!IsTokenAffix(mention_tokens, tokens)) continue;
    if (!dictionary.Contains(surface)) continue;
    best = surface;
    best_tokens = tokens.size();
  }
  return best;
}

DisambiguationProblem MentionExpander::Expand(
    const DisambiguationProblem& problem) const {
  std::vector<std::string> surfaces;
  surfaces.reserve(problem.mentions.size());
  for (const ProblemMention& mention : problem.mentions) {
    surfaces.push_back(mention.surface);
  }

  DisambiguationProblem expanded = problem;
  for (ProblemMention& mention : expanded.mentions) {
    if (mention.candidates_resolved) continue;
    std::string expansion = FindExpansion(mention.surface, surfaces);
    if (expansion.empty()) continue;
    // Resolve through the longer surface; the span in the text stays the
    // short form's.
    mention.candidates = LookupCandidates(*models_, expansion);
    if (!mention.candidates.empty()) {
      mention.candidates_resolved = true;
    }
  }
  return expanded;
}

}  // namespace aida::core
