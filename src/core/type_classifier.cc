#include "core/type_classifier.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace aida::core {

TypeClassifier::TypeClassifier(const kb::KnowledgeBase* kb,
                               const std::vector<kb::TypeId>& types)
    : kb_(kb) {
  AIDA_CHECK(kb_ != nullptr);
  const kb::KeyphraseStore& store = kb_->keyphrases();

  for (kb::TypeId type : types) {
    Centroid centroid;
    centroid.type = type;
    // Aggregate IDF-weighted keyword mass over entities of the type
    // (including subtypes). Collected as (word, idf) pairs and merged
    // after a sort so the accumulation order — and therefore every
    // floating-point sum below — is a pure function of the KB content.
    std::vector<std::pair<kb::WordId, double>> mass;
    for (kb::EntityId e = 0; e < kb_->entity_count(); ++e) {
      bool has_type = false;
      for (kb::TypeId t : kb_->entities().Get(e).types) {
        if (kb_->taxonomy().IsSubtypeOf(t, type)) {
          has_type = true;
          break;
        }
      }
      if (!has_type) continue;
      for (kb::WordId w : store.EntityWords(e)) {
        mass.emplace_back(w, store.WordIdf(w));
      }
    }
    // Entity ids ascend and EntityWords is sorted per entity, so a
    // stable sort by word id keeps equal-word contributions in entity
    // order; the merged sums are deterministic.
    std::stable_sort(mass.begin(), mass.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [word, idf] : mass) {
      if (centroid.weights.empty() || centroid.weights.back().first != word) {
        centroid.weights.emplace_back(word, 0.0);
      }
      centroid.weights.back().second += idf;
    }
    // L1-normalize so types with many member entities don't dominate.
    double total = 0.0;
    for (const auto& [word, weight] : centroid.weights) total += weight;
    if (total > 0.0) {
      for (auto& [word, weight] : centroid.weights) weight /= total;
    }
    centroids_.push_back(std::move(centroid));
  }
}

double TypeClassifier::CentroidWeight(const Centroid& centroid,
                                      kb::WordId word) {
  auto it = std::lower_bound(
      centroid.weights.begin(), centroid.weights.end(), word,
      [](const auto& row, kb::WordId w) { return row.first < w; });
  return it == centroid.weights.end() || it->first != word ? 0.0 : it->second;
}

std::vector<TypeClassifier::Prediction> TypeClassifier::Classify(
    const DocumentContext& context, size_t mention_begin,
    size_t mention_end) const {
  // Context words weighted by proximity to the mention.
  std::vector<std::pair<kb::WordId, double>> weighted_context;
  double mention_center =
      (static_cast<double>(mention_begin) +
       static_cast<double>(mention_end)) /
      2.0;
  for (const auto& [word, count] : context.WordCounts()) {
    double weight = 0.0;
    for (size_t pos : context.Positions(word)) {
      if (pos >= mention_begin && pos < mention_end) continue;
      double distance =
          std::abs(static_cast<double>(pos) - mention_center);
      weight += 1.0 / (1.0 + distance / 10.0);
    }
    if (weight > 0.0) weighted_context.emplace_back(word, weight);
    (void)count;
  }

  std::vector<Prediction> predictions;
  for (const Centroid& centroid : centroids_) {
    double score = 0.0;
    for (const auto& [word, weight] : weighted_context) {
      score += weight * CentroidWeight(centroid, word);
    }
    if (score > 0.0) predictions.push_back({centroid.type, score});
  }
  std::sort(predictions.begin(), predictions.end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.type < b.type;
            });
  return predictions;
}

}  // namespace aida::core
