#include "core/context_similarity.h"

#include <algorithm>
#include <limits>

#include "text/stopwords.h"
#include "util/string_util.h"

namespace aida::core {

DocumentContext::DocumentContext(const std::vector<std::string>& tokens,
                                 const ExtendedVocabulary& vocab)
    : token_count_(tokens.size()) {
  const text::StopwordList& stopwords = text::DefaultStopwords();
  // (word, position) occurrences in document order.
  std::vector<std::pair<kb::WordId, size_t>> occurrences;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.size() <= 1 || stopwords.Contains(token)) continue;
    kb::WordId w = vocab.Find(util::ToLower(token));
    if (w == kb::kNoWord) continue;
    occurrences.emplace_back(w, i);
  }
  // Group into per-word position lists, sorted by word id. Sorting by
  // (word, position) keeps each word's positions in ascending document
  // order; (word, position) pairs are unique, so the order is total.
  std::sort(occurrences.begin(), occurrences.end());
  for (const auto& [word, pos] : occurrences) {
    if (positions_.empty() || positions_.back().first != word) {
      positions_.emplace_back(word, std::vector<size_t>());
    }
    positions_.back().second.push_back(pos);
  }
}

std::vector<std::pair<kb::WordId, size_t>> DocumentContext::WordCounts()
    const {
  std::vector<std::pair<kb::WordId, size_t>> counts;
  counts.reserve(positions_.size());
  for (const auto& [word, positions] : positions_) {
    counts.emplace_back(word, positions.size());
  }
  return counts;
}

const std::vector<size_t>& DocumentContext::Positions(kb::WordId word) const {
  static const std::vector<size_t>& empty = *new std::vector<size_t>();
  auto it = std::lower_bound(
      positions_.begin(), positions_.end(), word,
      [](const auto& row, kb::WordId w) { return row.first < w; });
  return it == positions_.end() || it->first != word ? empty : it->second;
}

ContextSimilarity::ContextSimilarity(WordWeight weight_mode)
    : weight_mode_(weight_mode) {}

double ContextSimilarity::Score(const DocumentContext& context,
                                size_t mention_begin, size_t mention_end,
                                const CandidateModel& model) const {
  double total = 0.0;
  // Scratch buffers hoisted out of the phrase loop.
  std::vector<std::pair<size_t, uint32_t>> occurrences;  // (pos, word slot)
  std::vector<uint32_t> window_counts;

  for (const CandidatePhrase& phrase : model.phrases) {
    const size_t len = phrase.words.size();
    if (len == 0) continue;

    // Word weights and total phrase weight mass.
    double phrase_word_mass = 0.0;
    for (size_t i = 0; i < len; ++i) {
      phrase_word_mass += weight_mode_ == WordWeight::kNpmi
                              ? phrase.word_npmi[i]
                              : phrase.word_idf[i];
    }
    if (phrase_word_mass <= 0.0) continue;

    // Occurrences of the phrase's words in the document, outside the
    // mention span. Duplicate words in a phrase share one slot.
    occurrences.clear();
    uint32_t present_slots = 0;
    double matched_mass = 0.0;
    for (size_t i = 0; i < len; ++i) {
      // Skip duplicate words (count each distinct word once).
      bool duplicate = false;
      for (size_t j = 0; j < i; ++j) {
        if (phrase.words[j] == phrase.words[i]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bool found = false;
      for (size_t pos : context.Positions(phrase.words[i])) {
        if (pos >= mention_begin && pos < mention_end) continue;
        occurrences.emplace_back(pos, present_slots);
        found = true;
      }
      if (found) {
        ++present_slots;
        matched_mass += weight_mode_ == WordWeight::kNpmi
                            ? phrase.word_npmi[i]
                            : phrase.word_idf[i];
      }
    }
    if (present_slots == 0) continue;

    // Shortest window containing all `present_slots` distinct words
    // (the maximal number of phrase words co-locatable in the text).
    std::sort(occurrences.begin(), occurrences.end());
    window_counts.assign(present_slots, 0);
    uint32_t distinct_in_window = 0;
    size_t best_window = std::numeric_limits<size_t>::max();
    size_t left = 0;
    for (size_t right = 0; right < occurrences.size(); ++right) {
      if (window_counts[occurrences[right].second]++ == 0) {
        ++distinct_in_window;
      }
      while (distinct_in_window == present_slots) {
        size_t window =
            occurrences[right].first - occurrences[left].first + 1;
        best_window = std::min(best_window, window);
        if (--window_counts[occurrences[left].second] == 0) {
          --distinct_in_window;
        }
        ++left;
      }
    }
    if (best_window == std::numeric_limits<size_t>::max()) continue;

    double z = static_cast<double>(present_slots) /
               static_cast<double>(best_window);
    double fraction = matched_mass / phrase_word_mass;
    total += z * fraction * fraction;
  }
  return total;
}

}  // namespace aida::core
