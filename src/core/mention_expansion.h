#ifndef AIDA_CORE_MENTION_EXPANSION_H_
#define AIDA_CORE_MENTION_EXPANSION_H_

#include <string>
#include <vector>

#include "core/ned_system.h"

namespace aida::core {

/// Within-document name coreference for named mentions (the slice of
/// coreference resolution that NED subsumes, Section 2.4.3): a short
/// mention whose tokens are a prefix or suffix of a longer mention in the
/// same document almost always co-refers with it — "Page" after
/// "Jimmy Page", "Zeppelin" after "Led Zeppelin". The expander resolves
/// such short mentions through the longer (far less ambiguous) surface
/// form, which shrinks their candidate space before disambiguation.
class MentionExpander {
 public:
  /// `models` is not owned and must outlive the expander.
  explicit MentionExpander(const CandidateModelStore* models);

  /// Returns a copy of `problem` in which expandable mentions carry the
  /// candidates of their longest expansion (surface spans unchanged).
  /// Mentions with pre-resolved candidates are left untouched.
  DisambiguationProblem Expand(const DisambiguationProblem& problem) const;

  /// The longest surface among `surfaces` that expands `mention` (token
  /// prefix or suffix, and known to the dictionary); empty if none.
  std::string FindExpansion(const std::string& mention,
                            const std::vector<std::string>& surfaces) const;

 private:
  const CandidateModelStore* models_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_MENTION_EXPANSION_H_
