#ifndef AIDA_CORE_RELATEDNESS_H_
#define AIDA_CORE_RELATEDNESS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "util/function_effects.h"

namespace aida::core {

/// Pair-wise semantic relatedness between candidate entities — the
/// coherence signal of joint disambiguation (Section 3.3.5). Implementations
/// include the link-based Milne-Witten measure (core), and the keyphrase-
/// based KWCS / KPCS / KORE family (kore module), which also works for
/// out-of-KB placeholder candidates.
class RelatednessMeasure {
 public:
  RelatednessMeasure() = default;
  // Copyable despite the atomic comparison counter (the counter value is
  // carried over); needed so concrete measures remain value types.
  RelatednessMeasure(const RelatednessMeasure& other)
      : comparisons_(other.comparisons()) {}
  RelatednessMeasure& operator=(const RelatednessMeasure& other) {
    if (this != &other) {
      comparisons_.store(other.comparisons(), std::memory_order_relaxed);
    }
    return *this;
  }
  virtual ~RelatednessMeasure() = default;

  virtual std::string name() const = 0;

  /// Relatedness in [0, 1]; must be symmetric.
  virtual double Relatedness(const Candidate& a, const Candidate& b) const = 0;

  /// Like Relatedness(), but additionally reports whether the value was
  /// served from a memoization layer rather than evaluated. Only caching
  /// decorators (CachedRelatednessMeasure) ever report true; the default
  /// forwards to Relatedness(). Callers that keep per-call statistics
  /// (the graph builder, the weighted-degree scorer) use this entry point
  /// so hits and real evaluations are attributed to the right call even
  /// when the measure is shared across threads.
  virtual double RelatednessTracked(const Candidate& a, const Candidate& b,
                                    bool* cache_hit) const {
    if (cache_hit != nullptr) *cache_hit = false;
    return Relatedness(a, b);
  }

  /// True if the measure pre-filters candidate pairs (LSH variants).
  virtual bool has_pair_filter() const { return false; }

  /// Returns index pairs (into `candidates`) worth computing; pairs not
  /// returned are assumed unrelated. Only called when has_pair_filter().
  virtual std::vector<std::pair<uint32_t, uint32_t>> FilterPairs(
      const std::vector<const Candidate*>& candidates) const {
    (void)candidates;
    return {};
  }

  /// Number of Relatedness() evaluations since construction or the last
  /// reset; the efficiency experiments (Table 4.4) report this.
  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  /// Zeroes the comparison counter. Must NOT be called while a batch run
  /// (BatchDisambiguator::Run) using this measure is in flight: concurrent
  /// Disambiguate calls would lose counts nondeterministically. Reset
  /// between runs, or prefer the per-call DisambiguationStats, which need
  /// no reset at all.
  void ResetComparisons() const {
    comparisons_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Implementations call this once per Relatedness() evaluation.
  void CountComparison() const AIDA_NONBLOCKING {
    comparisons_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<uint64_t> comparisons_{0};
};

/// Wikipedia-link based relatedness of Milne & Witten (Eq. 3.7):
///
///   MW(e,f) = 1 - (log max(|Ie|,|If|) - log |Ie ∩ If|)
///                 / (log N - log min(|Ie|,|If|))
///
/// clipped at 0; placeholders and link-less entities score 0 against
/// everything — the limitation KORE removes.
class MilneWittenRelatedness : public RelatednessMeasure {
 public:
  /// `kb` must outlive the measure.
  explicit MilneWittenRelatedness(const kb::KnowledgeBase* kb);

  std::string name() const override { return "mw"; }
  double Relatedness(const Candidate& a, const Candidate& b) const override;

  /// Id-based form used by tests and by callers without Candidate wrappers.
  /// AIDA_NONBLOCKING: the concrete scoring kernel — in-link counts plus
  /// pure float math — is where the effect discipline binds; the virtual
  /// Relatedness interface above stays unannotated because user measures
  /// may legitimately block.
  double RelatednessById(kb::EntityId a, kb::EntityId b) const
      AIDA_NONBLOCKING;

 private:
  const kb::KnowledgeBase* kb_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_RELATEDNESS_H_
