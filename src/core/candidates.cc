#include "core/candidates.h"

#include "util/status.h"

namespace aida::core {

CandidateModelStore::CandidateModelStore(const kb::KnowledgeBase* kb)
    : kb_(kb) {
  AIDA_CHECK(kb_ != nullptr);
}

std::shared_ptr<const CandidateModel> CandidateModelStore::ModelFor(
    kb::EntityId entity) const {
  util::MutexLock lock(&mutex_);
  auto it = cache_.find(entity);
  if (it != cache_.end()) return it->second;

  const kb::KeyphraseStore& store = kb_->keyphrases();
  auto model = std::make_shared<CandidateModel>();
  model->entity = entity;
  const std::span<const kb::PhraseId> phrases = store.EntityPhrases(entity);
  model->phrases.reserve(phrases.size());
  for (kb::PhraseId p : phrases) {
    CandidatePhrase phrase;
    const std::span<const kb::WordId> words = store.PhraseWords(p);
    phrase.words.assign(words.begin(), words.end());
    phrase.phrase_weight = store.PhraseMi(entity, p);
    phrase.word_npmi.reserve(phrase.words.size());
    phrase.word_idf.reserve(phrase.words.size());
    for (kb::WordId w : phrase.words) {
      phrase.word_npmi.push_back(store.KeywordNpmi(entity, w));
      phrase.word_idf.push_back(store.WordIdf(w));
    }
    model->total_phrase_weight += phrase.phrase_weight;
    model->phrases.push_back(std::move(phrase));
  }
  cache_.emplace(entity, model);
  return model;
}

std::vector<Candidate> LookupCandidates(const CandidateModelStore& store,
                                        std::string_view mention_surface) {
  std::vector<Candidate> candidates;
  for (const kb::NameCandidate& nc :
       store.knowledge_base().dictionary().Lookup(mention_surface)) {
    Candidate c;
    c.entity = nc.entity;
    c.prior = nc.prior;
    c.model = store.ModelFor(nc.entity);
    candidates.push_back(std::move(c));
  }
  return candidates;
}

ExtendedVocabulary::ExtendedVocabulary(const kb::KeyphraseStore* store)
    : store_(store) {
  AIDA_CHECK(store_ != nullptr && store_->finalized());
}

kb::WordId ExtendedVocabulary::Find(std::string_view word) const {
  kb::WordId w = store_->FindWord(word);
  if (w != kb::kNoWord) return w;
  auto it = extra_ids_.find(std::string(word));
  return it == extra_ids_.end() ? kb::kNoWord : it->second;
}

kb::WordId ExtendedVocabulary::GetOrIntern(std::string_view word,
                                           double default_idf) {
  kb::WordId w = store_->FindWord(word);
  if (w != kb::kNoWord) return w;
  auto [it, inserted] = extra_ids_.emplace(
      std::string(word),
      static_cast<kb::WordId>(store_->word_count() + extra_idf_.size()));
  if (inserted) {
    extra_idf_.push_back(default_idf);
    extra_text_.emplace_back(word);
  }
  return it->second;
}

void ExtendedVocabulary::SetIdf(kb::WordId word, double idf) {
  if (word < store_->word_count()) return;
  size_t index = word - store_->word_count();
  AIDA_CHECK(index < extra_idf_.size());
  extra_idf_[index] = idf;
}

double ExtendedVocabulary::Idf(kb::WordId word) const {
  if (word < store_->word_count()) return store_->WordIdf(word);
  size_t index = word - store_->word_count();
  AIDA_CHECK(index < extra_idf_.size());
  return extra_idf_[index];
}

std::string_view ExtendedVocabulary::Text(kb::WordId word) const {
  if (word < store_->word_count()) return store_->WordText(word);
  size_t index = word - store_->word_count();
  AIDA_CHECK(index < extra_text_.size());
  return extra_text_[index];
}

size_t ExtendedVocabulary::size() const {
  return store_->word_count() + extra_idf_.size();
}

}  // namespace aida::core
