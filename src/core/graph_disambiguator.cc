#include "core/graph_disambiguator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "graph/dense_subgraph.h"
#include "graph/shortest_paths.h"
#include "task/parallel_for.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace aida::core {

namespace {

// Distance charged for unreachable nodes in the pre-pruning phase.
constexpr double kUnreachablePenalty = 1e6;

uint64_t EdgeKey(graph::NodeId u, graph::NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

GraphSolution SolveMentionEntityGraph(
    const MentionEntityGraph& meg, const GraphDisambiguatorOptions& options,
    const GraphSolveContext& context) {
  const size_t num_mentions = meg.num_mentions;
  const size_t num_entities = meg.entity_node_count();
  const graph::WeightedGraph& full = *meg.graph;
  const util::CancellationToken* cancel = context.cancel;

  GraphSolution solution;
  solution.chosen_candidate.assign(num_mentions, -1);

  std::vector<size_t> active_mentions;
  for (size_t m = 0; m < num_mentions; ++m) {
    if (!meg.mention_candidate_nodes[m].empty()) active_mentions.push_back(m);
  }
  const size_t mentions_with_candidates = active_mentions.size();
  if (mentions_with_candidates == 0) return solution;

  // ---- Pre-pruning phase ---------------------------------------------------
  // Keep the entity nodes closest to the mention set, measured by the sum
  // of squared shortest-path distances; always retain each mention's
  // heaviest candidate so every mention stays coverable. One Dijkstra per
  // mention — independent work, so each runs as its own task writing its
  // own squared-distance vector; the vectors are folded serially in
  // mention order, keeping the FP accumulation order of the serial loop.
  std::vector<bool> keep_entity(num_entities, true);
  const size_t budget =
      options.entities_per_mention_budget * mentions_with_candidates;
  if (num_entities > budget) {
    std::vector<std::vector<double>> squared(mentions_with_candidates);
    util::Stopwatch prune_watch;
    const task::ParallelForStats prune_stats = task::ParallelChunks(
        context.scheduler, mentions_with_candidates, context.max_tasks, cancel,
        [&](size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            if (cancel != nullptr && cancel->cancelled()) return;
            std::vector<double> dist = graph::ShortestPathDistances(
                full, static_cast<graph::NodeId>(active_mentions[k]),
                graph::InverseSimilarityCost);
            std::vector<double>& out = squared[k];
            out.resize(num_entities);
            for (size_t e = 0; e < num_entities; ++e) {
              double d = dist[meg.EntityNodeId(e)];
              if (!std::isfinite(d)) d = kUnreachablePenalty;
              out[e] = d * d;
            }
          }
        });
    if (context.scheduler != nullptr && context.max_tasks > 1) {
      solution.parallel_seconds += prune_watch.ElapsedSeconds();
      solution.parallel_tasks += prune_stats.tasks;
      solution.parallel_steals += prune_stats.stolen;
    }
    if (prune_stats.cancelled || (cancel != nullptr && cancel->cancelled())) {
      solution.aborted = true;
      return solution;
    }
    std::vector<double> distance_sum(num_entities, 0.0);
    for (size_t k = 0; k < mentions_with_candidates; ++k) {
      const std::vector<double>& out = squared[k];
      for (size_t e = 0; e < num_entities; ++e) distance_sum[e] += out[e];
    }
    std::vector<size_t> order(num_entities);
    for (size_t e = 0; e < num_entities; ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return distance_sum[a] < distance_sum[b];
    });
    keep_entity.assign(num_entities, false);
    for (size_t i = 0; i < budget && i < order.size(); ++i) {
      keep_entity[order[i]] = true;
    }
    // Coverage repair: each mention keeps its best mention-entity edge.
    for (size_t m = 0; m < num_mentions; ++m) {
      const auto& nodes = meg.mention_candidate_nodes[m];
      if (nodes.empty()) continue;
      bool covered = false;
      for (graph::NodeId node : nodes) {
        if (keep_entity[meg.EntityIndexOf(node)]) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      double best_w = -1.0;
      graph::NodeId best_node = nodes.front();
      for (const graph::Edge& e :
           full.Neighbors(static_cast<graph::NodeId>(m))) {
        if (e.weight > best_w) {
          best_w = e.weight;
          best_node = e.to;
        }
      }
      keep_entity[meg.EntityIndexOf(best_node)] = true;
    }
  }

  // ---- Induced subgraph over kept nodes ------------------------------------
  std::vector<graph::NodeId> old_to_new(num_mentions + num_entities,
                                        std::numeric_limits<uint32_t>::max());
  size_t next_id = 0;
  for (size_t m = 0; m < num_mentions; ++m) {
    old_to_new[m] = static_cast<graph::NodeId>(next_id++);
  }
  for (size_t e = 0; e < num_entities; ++e) {
    if (keep_entity[e]) {
      old_to_new[meg.EntityNodeId(e)] = static_cast<graph::NodeId>(next_id++);
    }
  }
  graph::WeightedGraph pruned(next_id);
  std::unordered_map<uint64_t, double> edge_weight;
  for (graph::NodeId u = 0; u < full.node_count(); ++u) {
    if (old_to_new[u] == std::numeric_limits<uint32_t>::max()) continue;
    for (const graph::Edge& e : full.Neighbors(u)) {
      if (e.to <= u) continue;  // visit each undirected edge once
      if (old_to_new[e.to] == std::numeric_limits<uint32_t>::max()) continue;
      pruned.AddEdge(old_to_new[u], old_to_new[e.to], e.weight);
      edge_weight[EdgeKey(old_to_new[u], old_to_new[e.to])] = e.weight;
    }
  }

  std::vector<bool> removable(next_id, false);
  for (size_t node = num_mentions; node < next_id; ++node) {
    removable[node] = true;
  }
  // Groups: per mention with candidates, the kept candidate nodes.
  std::vector<std::vector<graph::NodeId>> groups;
  // For mapping back: per mention, (new node id, candidate index).
  std::vector<std::vector<std::pair<graph::NodeId, uint32_t>>> mention_nodes(
      num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    const auto& nodes = meg.mention_candidate_nodes[m];
    std::vector<graph::NodeId> group;
    for (uint32_t c = 0; c < nodes.size(); ++c) {
      size_t e = meg.EntityIndexOf(nodes[c]);
      if (!keep_entity[e]) continue;
      graph::NodeId new_node = old_to_new[nodes[c]];
      group.push_back(new_node);
      mention_nodes[m].emplace_back(new_node, c);
    }
    if (!group.empty()) groups.push_back(std::move(group));
  }

  // ---- Main greedy loop -----------------------------------------------------
  graph::DenseSubgraphOptions dense_options;
  dense_options.scheduler = context.scheduler;
  dense_options.max_tasks = context.max_tasks;
  dense_options.min_parallel_nodes = context.min_parallel_nodes;
  dense_options.cancel = cancel;
  graph::DenseSubgraphResult dense =
      graph::ConstrainedDenseSubgraph(pruned, removable, groups, dense_options);
  solution.objective = dense.objective;
  solution.iterations += dense.iterations;
  solution.parallel_tasks += dense.parallel_tasks;
  solution.parallel_steals += dense.parallel_steals;
  if (dense.aborted) {
    solution.aborted = true;
    return solution;
  }

  // ---- Post-processing: resolve remaining per-mention choices ---------------
  // Alive candidates per mention.
  std::vector<std::vector<std::pair<graph::NodeId, uint32_t>>> alive(
      num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    for (const auto& [node, c] : mention_nodes[m]) {
      if (dense.alive[node]) alive[m].emplace_back(node, c);
    }
    // The greedy loop guarantees one candidate per non-empty group; fall
    // back to all kept candidates if anything went sideways.
    if (alive[m].empty()) alive[m] = mention_nodes[m];
  }

  auto me_weight = [&](size_t m, graph::NodeId node) {
    auto it = edge_weight.find(
        EdgeKey(static_cast<graph::NodeId>(m), node));
    return it == edge_weight.end() ? 0.0 : it->second;
  };
  auto ee_weight = [&](graph::NodeId a, graph::NodeId b) {
    if (a == b) return 0.0;
    auto it = edge_weight.find(EdgeKey(a, b));
    return it == edge_weight.end() ? 0.0 : it->second;
  };

  std::vector<size_t> active;  // mentions that have alive candidates
  uint64_t combinations = 1;
  bool overflow = false;
  for (size_t m = 0; m < num_mentions; ++m) {
    if (alive[m].empty()) continue;
    active.push_back(m);
    if (combinations > options.max_exhaustive_combinations) {
      overflow = true;
    } else {
      combinations *= alive[m].size();
      if (combinations > options.max_exhaustive_combinations) overflow = true;
    }
  }

  std::vector<uint32_t> pick(active.size(), 0);  // index into alive[m]
  std::vector<uint32_t> best_pick = pick;
  double best_total = -std::numeric_limits<double>::infinity();

  auto total_weight = [&](const std::vector<uint32_t>& p) {
    double total = 0.0;
    for (size_t i = 0; i < active.size(); ++i) {
      graph::NodeId ni = alive[active[i]][p[i]].first;
      total += me_weight(active[i], ni);
      for (size_t j = i + 1; j < active.size(); ++j) {
        total += ee_weight(ni, alive[active[j]][p[j]].first);
      }
    }
    return total;
  };

  if (!overflow) {
    // Exhaustive enumeration with incremental scoring. Cancellation is
    // polled every 256 evaluated leaves so a slow enumeration cannot
    // outlive its request deadline.
    std::vector<uint32_t> current(active.size(), 0);
    bool dfs_aborted = false;
    std::function<void(size_t, double)> dfs = [&](size_t depth, double acc) {
      if (dfs_aborted) return;
      if (depth == active.size()) {
        ++solution.iterations;
        if ((solution.iterations & 0xFF) == 0 && cancel != nullptr &&
            cancel->cancelled()) {
          dfs_aborted = true;
          return;
        }
        if (acc > best_total) {
          best_total = acc;
          best_pick = current;
        }
        return;
      }
      for (uint32_t c = 0; c < alive[active[depth]].size(); ++c) {
        current[depth] = c;
        graph::NodeId node = alive[active[depth]][c].first;
        double add = me_weight(active[depth], node);
        for (size_t j = 0; j < depth; ++j) {
          add += ee_weight(node, alive[active[j]][current[j]].first);
        }
        dfs(depth + 1, acc + add);
        if (dfs_aborted) return;
      }
    };
    dfs(0, 0.0);
    if (dfs_aborted) {
      solution.aborted = true;
      return solution;
    }
  } else {
    // Randomized local search: start from the heaviest candidates, then
    // propose single-mention swaps with probability proportional to the
    // candidates' weighted degrees.
    util::Rng rng(options.seed);
    for (size_t i = 0; i < active.size(); ++i) {
      double best_deg = -1.0;
      for (uint32_t c = 0; c < alive[active[i]].size(); ++c) {
        double deg = pruned.WeightedDegree(alive[active[i]][c].first);
        if (deg > best_deg) {
          best_deg = deg;
          pick[i] = c;
        }
      }
    }
    best_pick = pick;
    best_total = total_weight(pick);
    double current_total = best_total;
    std::vector<double> degrees;
    for (size_t iter = 0; iter < options.local_search_iterations; ++iter) {
      if ((iter & 0x3F) == 0 && cancel != nullptr && cancel->cancelled()) {
        solution.aborted = true;
        return solution;
      }
      ++solution.iterations;
      size_t i = rng.UniformInt(active.size());
      const auto& cands = alive[active[i]];
      if (cands.size() < 2) continue;
      degrees.clear();
      for (const auto& [node, c] : cands) {
        degrees.push_back(pruned.WeightedDegree(node) + 1e-9);
      }
      uint32_t proposal = static_cast<uint32_t>(rng.Categorical(degrees));
      if (proposal == pick[i]) continue;
      // Incremental delta.
      graph::NodeId old_node = cands[pick[i]].first;
      graph::NodeId new_node = cands[proposal].first;
      double delta = me_weight(active[i], new_node) -
                     me_weight(active[i], old_node);
      for (size_t j = 0; j < active.size(); ++j) {
        if (j == i) continue;
        graph::NodeId other = alive[active[j]][pick[j]].first;
        delta += ee_weight(new_node, other) - ee_weight(old_node, other);
      }
      if (delta > 0) {
        pick[i] = proposal;
        current_total += delta;
        if (current_total > best_total) {
          best_total = current_total;
          best_pick = pick;
        }
      }
    }
  }

  solution.total_weight = best_total;
  for (size_t i = 0; i < active.size(); ++i) {
    solution.chosen_candidate[active[i]] =
        static_cast<int32_t>(alive[active[i]][best_pick[i]].second);
  }
  return solution;
}

}  // namespace aida::core
