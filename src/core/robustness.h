#ifndef AIDA_CORE_ROBUSTNESS_H_
#define AIDA_CORE_ROBUSTNESS_H_

#include <cstddef>
#include <vector>

namespace aida::core {

/// The self-adapting robustness tests of Section 3.5, applied per mention
/// before the graph algorithm runs.
namespace robustness {

/// Normalizes `scores` into a distribution (sums to 1); an all-zero input
/// yields the uniform distribution.
std::vector<double> ToDistribution(const std::vector<double>& scores);

/// Prior robustness test (Section 3.5.1): the popularity prior is only
/// combined into the mention-entity weight when the best candidate's prior
/// is at least `rho` — "we never rely solely on the prior".
bool PriorTestPasses(const std::vector<double>& priors, double rho);

/// Coherence robustness test (Section 3.5.2): L1 distance between the
/// prior distribution and the similarity distribution over the mention's
/// candidates, in [0, 2]. When it does NOT exceed `lambda`, prior and
/// similarity agree, coherence is risky, and the mention is fixed to its
/// locally best candidate before the graph algorithm.
double PriorSimilarityL1(const std::vector<double>& priors,
                         const std::vector<double>& sim_distribution);

/// Index of the maximum element (first on ties); requires non-empty input.
size_t ArgMax(const std::vector<double>& values);

}  // namespace robustness
}  // namespace aida::core

#endif  // AIDA_CORE_ROBUSTNESS_H_
