#ifndef AIDA_CORE_GRAPH_DISAMBIGUATOR_H_
#define AIDA_CORE_GRAPH_DISAMBIGUATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/mention_entity_graph.h"
#include "util/cancellation.h"

namespace aida::task {
class Scheduler;
}  // namespace aida::task

namespace aida::core {

/// Tuning of Algorithm 1 (Section 3.4.2).
struct GraphDisambiguatorOptions {
  /// Pre-pruning keeps this many entity nodes per mention (paper: 5x).
  size_t entities_per_mention_budget = 5;
  /// Exhaustive post-processing is used when the product of remaining
  /// per-mention candidate counts stays below this bound.
  uint64_t max_exhaustive_combinations = 1 << 16;
  /// Iterations of the randomized local search fallback.
  size_t local_search_iterations = 2000;
  uint64_t seed = 0xA1DA;
};

/// Per-call execution context of one solve: cooperative cancellation
/// (polled inside the solver's iteration loops — pre-pruning, greedy
/// peel, exhaustive enumeration, local search — not just at phase
/// boundaries) and optional task parallelism.
struct GraphSolveContext {
  /// Polled every few iterations; a tripped token aborts the solve
  /// (GraphSolution::aborted). Not owned.
  const util::CancellationToken* cancel = nullptr;
  /// Fork per-mention pre-prune Dijkstras and the peel loop's per-node
  /// scans across this scheduler (null = serial).
  task::Scheduler* scheduler = nullptr;
  /// Maximum tasks per parallel region (<= 1 = serial).
  size_t max_tasks = 1;
  /// Size gate for the peel loop's per-iteration node scans (see
  /// graph::DenseSubgraphOptions::min_parallel_nodes).
  size_t min_parallel_nodes = 2048;
};

/// Output of the graph solver: per mention the index of the winning
/// candidate (into the mention's candidate list), or -1 for mentions with
/// no candidates.
struct GraphSolution {
  std::vector<int32_t> chosen_candidate;
  /// Best objective value seen by the greedy phase.
  double objective = 0.0;
  /// Total edge weight of the final configuration.
  double total_weight = 0.0;
  /// Solver work performed: greedy peel steps plus post-processing
  /// assignments (exhaustive) or proposals (local search) evaluated.
  uint64_t iterations = 0;
  /// True when the solve observed a tripped CancellationToken and bailed
  /// out: the solution is partial and must be discarded (the caller
  /// degrades to local-only results).
  bool aborted = false;
  /// Task accounting of the parallel regions (0 when serial).
  uint64_t parallel_tasks = 0;
  uint64_t parallel_steals = 0;
  /// Wall clock of the parallel pre-pruning region, seconds.
  double parallel_seconds = 0.0;
};

/// Runs Algorithm 1 on a built mention-entity graph: pre-prunes distant
/// entity nodes by summed squared shortest-path distance to the mentions,
/// greedily peels minimum-weighted-degree entities (keeping one candidate
/// per mention), then resolves remaining choices exhaustively or by
/// randomized local search.
///
/// With a scheduler in `context`, the per-mention pre-prune Dijkstras run
/// as parallel tasks (each writing its own squared-distance vector,
/// folded serially in mention order) and the peel loop's per-iteration
/// node scans are chunked — both byte-identical to the serial path. The
/// exhaustive/local-search post-processing stays serial: it is bounded
/// work, and the local search is an inherently sequential RNG chain.
GraphSolution SolveMentionEntityGraph(
    const MentionEntityGraph& meg, const GraphDisambiguatorOptions& options,
    const GraphSolveContext& context = {});

}  // namespace aida::core

#endif  // AIDA_CORE_GRAPH_DISAMBIGUATOR_H_
