#ifndef AIDA_CORE_GRAPH_DISAMBIGUATOR_H_
#define AIDA_CORE_GRAPH_DISAMBIGUATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/mention_entity_graph.h"

namespace aida::core {

/// Tuning of Algorithm 1 (Section 3.4.2).
struct GraphDisambiguatorOptions {
  /// Pre-pruning keeps this many entity nodes per mention (paper: 5x).
  size_t entities_per_mention_budget = 5;
  /// Exhaustive post-processing is used when the product of remaining
  /// per-mention candidate counts stays below this bound.
  uint64_t max_exhaustive_combinations = 1 << 16;
  /// Iterations of the randomized local search fallback.
  size_t local_search_iterations = 2000;
  uint64_t seed = 0xA1DA;
};

/// Output of the graph solver: per mention the index of the winning
/// candidate (into the mention's candidate list), or -1 for mentions with
/// no candidates.
struct GraphSolution {
  std::vector<int32_t> chosen_candidate;
  /// Best objective value seen by the greedy phase.
  double objective = 0.0;
  /// Total edge weight of the final configuration.
  double total_weight = 0.0;
  /// Solver work performed: greedy peel steps plus post-processing
  /// assignments (exhaustive) or proposals (local search) evaluated.
  uint64_t iterations = 0;
};

/// Runs Algorithm 1 on a built mention-entity graph: pre-prunes distant
/// entity nodes by summed squared shortest-path distance to the mentions,
/// greedily peels minimum-weighted-degree entities (keeping one candidate
/// per mention), then resolves remaining choices exhaustively or by
/// randomized local search.
GraphSolution SolveMentionEntityGraph(const MentionEntityGraph& meg,
                                      const GraphDisambiguatorOptions& options);

}  // namespace aida::core

#endif  // AIDA_CORE_GRAPH_DISAMBIGUATOR_H_
