#include "core/batch.h"

#include <algorithm>
#include <thread>

#include "util/status.h"

namespace aida::core {

BatchDisambiguator::BatchDisambiguator(const NedSystem* system,
                                       BatchOptions options)
    : system_(system), pool_(options.num_threads) {
  AIDA_CHECK(system_ != nullptr);
}

std::vector<DisambiguationResult> BatchDisambiguator::Run(
    const std::vector<DisambiguationProblem>& problems) const {
  std::vector<DisambiguationResult> results(problems.size());
  if (problems.empty()) return results;
  // Dynamic dispatch, exception capture/join/rethrow, and the thread cap
  // at min(num_threads, problems) all live in the pool now; each index
  // writes only its own slot, so no synchronization beyond the pool's.
  pool_.ParallelFor(problems.size(), [&](size_t index) {
    results[index] = system_->Disambiguate(problems[index], {});
  });
  return results;
}

DisambiguationStats AggregateStats(
    const std::vector<DisambiguationResult>& results) {
  DisambiguationStats total;
  for (const DisambiguationResult& result : results) {
    // Shed or cancelled calls carry default-initialized or partial stats;
    // summing those would understate per-document phase averages and mix
    // aborted phase times into completed-work totals.
    if (result.cancelled) continue;
    total += result.stats;
  }
  return total;
}

}  // namespace aida::core
