#include "core/batch.h"

#include <atomic>
#include <exception>
#include <thread>

#include "util/status.h"

namespace aida::core {

BatchDisambiguator::BatchDisambiguator(const NedSystem* system,
                                       BatchOptions options)
    : system_(system), num_threads_(options.num_threads) {
  AIDA_CHECK(system_ != nullptr);
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<DisambiguationResult> BatchDisambiguator::Run(
    const std::vector<DisambiguationProblem>& problems) const {
  std::vector<DisambiguationResult> results(problems.size());
  if (problems.empty()) return results;

  const size_t workers = std::min(num_threads_, problems.size());
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  // One slot per worker: an exception escaping a worker thread would call
  // std::terminate, so each worker captures its first exception instead;
  // the dispatch loop then drains, all threads join, and the first
  // captured exception is rethrown on the calling thread.
  std::vector<std::exception_ptr> errors(workers);
  auto worker = [&](size_t slot) {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= problems.size()) return;
      try {
        results[index] = system_->Disambiguate(problems[index]);
      } catch (...) {
        errors[slot] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t t = 0; t < workers; ++t) threads.emplace_back(worker, t);
    for (std::thread& thread : threads) thread.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

DisambiguationStats AggregateStats(
    const std::vector<DisambiguationResult>& results) {
  DisambiguationStats total;
  for (const DisambiguationResult& result : results) total += result.stats;
  return total;
}

}  // namespace aida::core
