#include "core/batch.h"

#include <atomic>
#include <thread>

#include "util/status.h"

namespace aida::core {

BatchDisambiguator::BatchDisambiguator(const NedSystem* system,
                                       BatchOptions options)
    : system_(system), num_threads_(options.num_threads) {
  AIDA_CHECK(system_ != nullptr);
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<DisambiguationResult> BatchDisambiguator::Run(
    const std::vector<DisambiguationProblem>& problems) const {
  std::vector<DisambiguationResult> results(problems.size());
  if (problems.empty()) return results;

  const size_t workers = std::min(num_threads_, problems.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= problems.size()) return;
      results[index] = system_->Disambiguate(problems[index]);
    }
  };

  if (workers <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return results;
}

}  // namespace aida::core
