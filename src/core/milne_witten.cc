#include <algorithm>
#include <cmath>

#include "core/relatedness.h"
#include "util/status.h"

namespace aida::core {

MilneWittenRelatedness::MilneWittenRelatedness(const kb::KnowledgeBase* kb)
    : kb_(kb) {
  AIDA_CHECK(kb_ != nullptr);
}

double MilneWittenRelatedness::Relatedness(const Candidate& a,
                                           const Candidate& b) const {
  CountComparison();
  if (a.is_placeholder || b.is_placeholder) return 0.0;
  return RelatednessById(a.entity, b.entity);
}

double MilneWittenRelatedness::RelatednessById(
    kb::EntityId a, kb::EntityId b) const AIDA_NONBLOCKING {
  if (a == kb::kNoEntity || b == kb::kNoEntity) return 0.0;
  if (a == b) return 1.0;
  const kb::LinkGraph& links = kb_->links();
  const double size_a = static_cast<double>(links.InLinkCount(a));
  const double size_b = static_cast<double>(links.InLinkCount(b));
  if (size_a == 0.0 || size_b == 0.0) return 0.0;
  const double shared = static_cast<double>(links.SharedInLinkCount(a, b));
  if (shared == 0.0) return 0.0;
  const double n = static_cast<double>(kb_->entity_count());
  // The denominator vanishes when min(|Ia|,|Ib|) == N (an entity linked by
  // every page), which would yield NaN or +/-inf. Such an entity shares
  // its whole in-link set with anything, so the distance collapses to
  // whether the larger set is fully shared too.
  AIDA_EFFECT_ESCAPE_BEGIN(
      "libm log is lock- and allocation-free but opaque to the effect "
      "analysis")
  const double denominator =
      std::log(n) - std::log(std::min(size_a, size_b));
  if (denominator <= 0.0) {
    return shared >= std::max(size_a, size_b) ? 1.0 : 0.0;
  }
  const double value =
      1.0 - (std::log(std::max(size_a, size_b)) - std::log(shared)) /
                denominator;
  AIDA_EFFECT_ESCAPE_END
  return std::clamp(value, 0.0, 1.0);
}

}  // namespace aida::core
