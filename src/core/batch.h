#ifndef AIDA_CORE_BATCH_H_
#define AIDA_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/ned_system.h"
#include "util/worker_pool.h"

namespace aida::core {

/// Options for parallel batch disambiguation.
struct BatchOptions {
  /// Worker threads; 0 selects the hardware concurrency.
  size_t num_threads = 0;
};

/// Runs a NED system over many documents in parallel — the
/// high-throughput mode the paper motivates for corpus-scale annotation
/// ("NED on an entire corpus, e.g. one day's social-media postings",
/// Section 4.4.1). Requires the underlying system's const Disambiguate
/// to be thread-safe (Aida and all shipped baselines are).
///
/// The worker threads live in a persistent util::WorkerPool created at
/// construction, so repeated Run calls reuse them instead of paying
/// thread create/join per call. For a latency-oriented online interface
/// over the same pool idea (queueing, deadlines, admission control), see
/// serve::NedService.
///
/// To share relatedness work across the documents of one run, wrap the
/// system's RelatednessMeasure in a CachedRelatednessMeasure backed by a
/// RelatednessCache before constructing the system; every worker then
/// reuses pairs computed by any other worker.
class BatchDisambiguator {
 public:
  /// `system` is not owned and must outlive the batch runner.
  BatchDisambiguator(const NedSystem* system, BatchOptions options = {});

  /// Disambiguates every problem; results are parallel to the input.
  /// Problems are dispatched dynamically, so skewed document sizes
  /// balance across workers. If a worker's Disambiguate throws, dispatch
  /// of further problems stops, in-flight documents finish, and the first
  /// captured exception is rethrown on the calling thread (the library
  /// itself never throws, but wrapped user systems may).
  std::vector<DisambiguationResult> Run(
      const std::vector<DisambiguationProblem>& problems) const;

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  const NedSystem* system_;
  // ParallelFor pushes call-local runner tasks, hence mutable; Run stays
  // const and safe to call concurrently, as before the pool refactor.
  // All locking lives in the pool's annotated util::Mutex state, so the
  // batch runner itself carries no capability of its own to annotate.
  mutable util::WorkerPool pool_;
};

/// Sums the per-call stats of a batch run into one total (relatedness
/// evaluations, cache hits, phase times). Counter sums are exact under
/// parallel runs because each call owns its stats. Results flagged
/// `cancelled` — requests a serving layer shed before they ran, or calls
/// that bailed out on a tripped CancellationToken with partial phase
/// times — are skipped so they cannot distort the totals of completed
/// work.
DisambiguationStats AggregateStats(
    const std::vector<DisambiguationResult>& results);

}  // namespace aida::core

#endif  // AIDA_CORE_BATCH_H_
