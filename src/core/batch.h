#ifndef AIDA_CORE_BATCH_H_
#define AIDA_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/ned_system.h"

namespace aida::core {

/// Options for parallel batch disambiguation.
struct BatchOptions {
  /// Worker threads; 0 selects the hardware concurrency.
  size_t num_threads = 0;
};

/// Runs a NED system over many documents in parallel — the
/// high-throughput mode the paper motivates for corpus-scale annotation
/// ("NED on an entire corpus, e.g. one day's social-media postings",
/// Section 4.4.1). Requires the underlying system's const Disambiguate
/// to be thread-safe (Aida and all shipped baselines are).
///
/// To share relatedness work across the documents of one run, wrap the
/// system's RelatednessMeasure in a CachedRelatednessMeasure backed by a
/// RelatednessCache before constructing the system; every worker then
/// reuses pairs computed by any other worker.
class BatchDisambiguator {
 public:
  /// `system` is not owned and must outlive the batch runner.
  BatchDisambiguator(const NedSystem* system, BatchOptions options = {});

  /// Disambiguates every problem; results are parallel to the input.
  /// Problems are dispatched dynamically, so skewed document sizes
  /// balance across workers. If a worker's Disambiguate throws, dispatch
  /// of further problems stops, all threads are joined, and the first
  /// captured exception is rethrown on the calling thread (the library
  /// itself never throws, but wrapped user systems may).
  std::vector<DisambiguationResult> Run(
      const std::vector<DisambiguationProblem>& problems) const;

  size_t num_threads() const { return num_threads_; }

 private:
  const NedSystem* system_;
  size_t num_threads_;
};

/// Sums the per-call stats of a batch run into one total (relatedness
/// evaluations, cache hits, phase times). Counter sums are exact under
/// parallel runs because each call owns its stats.
DisambiguationStats AggregateStats(
    const std::vector<DisambiguationResult>& results);

}  // namespace aida::core

#endif  // AIDA_CORE_BATCH_H_
