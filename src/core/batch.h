#ifndef AIDA_CORE_BATCH_H_
#define AIDA_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/ned_system.h"

namespace aida::core {

/// Options for parallel batch disambiguation.
struct BatchOptions {
  /// Worker threads; 0 selects the hardware concurrency.
  size_t num_threads = 0;
};

/// Runs a NED system over many documents in parallel — the
/// high-throughput mode the paper motivates for corpus-scale annotation
/// ("NED on an entire corpus, e.g. one day's social-media postings",
/// Section 4.4.1). Requires the underlying system's const Disambiguate
/// to be thread-safe (Aida and all shipped baselines are).
class BatchDisambiguator {
 public:
  /// `system` is not owned and must outlive the batch runner.
  BatchDisambiguator(const NedSystem* system, BatchOptions options = {});

  /// Disambiguates every problem; results are parallel to the input.
  /// Problems are dispatched dynamically, so skewed document sizes
  /// balance across workers.
  std::vector<DisambiguationResult> Run(
      const std::vector<DisambiguationProblem>& problems) const;

  size_t num_threads() const { return num_threads_; }

 private:
  const NedSystem* system_;
  size_t num_threads_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_BATCH_H_
