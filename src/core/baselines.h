#ifndef AIDA_CORE_BASELINES_H_
#define AIDA_CORE_BASELINES_H_

#include <string>

#include "core/ned_system.h"
#include "core/relatedness.h"

namespace aida::core {

/// Most-frequent-sense baseline: every mention gets its highest-prior
/// candidate (the "prior" row of Table 3.2).
class PriorBaseline : public NedSystem {
 public:
  explicit PriorBaseline(const CandidateModelStore* models);

  DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const override;
  std::string name() const override { return "prior"; }

 private:
  const CandidateModelStore* models_;
};

/// Re-implementation of Cucerzan (2007): mentions are disambiguated one by
/// one against a document-level context vector that aggregates the keyword
/// and category features of ALL candidates of all mentions — simulated
/// joint disambiguation without knowing the correct entities yet.
class CucerzanBaseline : public NedSystem {
 public:
  explicit CucerzanBaseline(const CandidateModelStore* models);

  DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const override;
  std::string name() const override { return "cucerzan"; }

 private:
  const CandidateModelStore* models_;
};

/// Re-implementation of Kulkarni et al. (2009): a token-cosine local
/// similarity, optionally mixed with the prior, optionally optimized
/// jointly with Milne-Witten pairwise coherence. The collective mode uses
/// hill climbing, the paper's practical stand-in for the relaxed ILP.
class KulkarniBaseline : public NedSystem {
 public:
  enum class Mode {
    kSimilarity,       // "Kul s"
    kSimilarityPrior,  // "Kul sp"
    kCollective,       // "Kul CI"
  };

  /// `relatedness` is only used in collective mode (may be null otherwise).
  KulkarniBaseline(const CandidateModelStore* models,
                   const RelatednessMeasure* relatedness, Mode mode);

  DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const override;
  std::string name() const override;

 private:
  const CandidateModelStore* models_;
  const RelatednessMeasure* relatedness_;
  Mode mode_;
};

/// Re-implementation of TagMe (Ferragina & Scaiella 2012): a lightweight
/// voting scheme for short, mention-dense texts. Every candidate of every
/// OTHER mention votes for a candidate with its relatedness weighted by
/// its own prior; the final score mixes the vote mass with the
/// candidate's prior. No context similarity at all — the configuration
/// the paper describes as fast but restricted to short inputs.
class TagMeBaseline : public NedSystem {
 public:
  /// `relatedness` is not owned and must outlive the system.
  TagMeBaseline(const CandidateModelStore* models,
                const RelatednessMeasure* relatedness);

  DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const override;
  std::string name() const override { return "tagme"; }

 private:
  const CandidateModelStore* models_;
  const RelatednessMeasure* relatedness_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_BASELINES_H_
