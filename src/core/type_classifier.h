#ifndef AIDA_CORE_TYPE_CLASSIFIER_H_
#define AIDA_CORE_TYPE_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/context_similarity.h"

namespace aida::core {

/// Named entity classification (Section 2.4.4): predicts the semantic
/// type of a mention from its context, without committing to a concrete
/// entity. Useful to type emerging entities whose name is new to the
/// knowledge base ("Edward Snowden" -> person) before they can be linked.
///
/// The classifier is a centroid model: for every type, the IDF-weighted
/// keyword distribution aggregated over the KB entities carrying the type;
/// a mention's context is scored against each centroid by weighted
/// overlap.
class TypeClassifier {
 public:
  struct Prediction {
    kb::TypeId type = kb::kNoType;
    double score = 0.0;
  };

  /// Builds centroids over the given `types` (e.g. the coarse domain
  /// types). `kb` is not owned and must outlive the classifier.
  TypeClassifier(const kb::KnowledgeBase* kb,
                 const std::vector<kb::TypeId>& types);

  /// Ranks the candidate types for the mention at
  /// [mention_begin, mention_end) in `context`, best first. Types with no
  /// overlap at all are omitted.
  std::vector<Prediction> Classify(const DocumentContext& context,
                                   size_t mention_begin,
                                   size_t mention_end) const;

  size_t type_count() const { return centroids_.size(); }

 private:
  struct Centroid {
    kb::TypeId type = kb::kNoType;
    /// (word, normalized weight) sorted by word id, probed by binary
    /// search. A sorted array instead of a hash map so the L1
    /// normalization and scoring sums fold in a deterministic order —
    /// hash-iteration order would make centroid weights (and thus
    /// prediction scores) bitwise platform-dependent.
    std::vector<std::pair<kb::WordId, double>> weights;
  };

  /// Weight of `word` in the centroid; 0 when absent.
  static double CentroidWeight(const Centroid& centroid, kb::WordId word);

  const kb::KnowledgeBase* kb_;
  std::vector<Centroid> centroids_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_TYPE_CLASSIFIER_H_
