#ifndef AIDA_CORE_TYPE_CLASSIFIER_H_
#define AIDA_CORE_TYPE_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/candidates.h"
#include "core/context_similarity.h"

namespace aida::core {

/// Named entity classification (Section 2.4.4): predicts the semantic
/// type of a mention from its context, without committing to a concrete
/// entity. Useful to type emerging entities whose name is new to the
/// knowledge base ("Edward Snowden" -> person) before they can be linked.
///
/// The classifier is a centroid model: for every type, the IDF-weighted
/// keyword distribution aggregated over the KB entities carrying the type;
/// a mention's context is scored against each centroid by weighted
/// overlap.
class TypeClassifier {
 public:
  struct Prediction {
    kb::TypeId type = kb::kNoType;
    double score = 0.0;
  };

  /// Builds centroids over the given `types` (e.g. the coarse domain
  /// types). `kb` is not owned and must outlive the classifier.
  TypeClassifier(const kb::KnowledgeBase* kb,
                 const std::vector<kb::TypeId>& types);

  /// Ranks the candidate types for the mention at
  /// [mention_begin, mention_end) in `context`, best first. Types with no
  /// overlap at all are omitted.
  std::vector<Prediction> Classify(const DocumentContext& context,
                                   size_t mention_begin,
                                   size_t mention_end) const;

  size_t type_count() const { return centroids_.size(); }

 private:
  struct Centroid {
    kb::TypeId type = kb::kNoType;
    // word -> normalized weight.
    std::unordered_map<kb::WordId, double> weights;
  };

  const kb::KnowledgeBase* kb_;
  std::vector<Centroid> centroids_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_TYPE_CLASSIFIER_H_
