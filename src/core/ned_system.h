#ifndef AIDA_CORE_NED_SYSTEM_H_
#define AIDA_CORE_NED_SYSTEM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "util/cancellation.h"

namespace aida::task {
class Scheduler;
}  // namespace aida::task

namespace aida::core {

/// Cooperative cancellation handle for one disambiguation call — now
/// shared with the task engine, so the class itself lives in
/// util/cancellation.h. NED systems poll cancelled() between AND inside
/// their phases (candidate/local features, batched relatedness, solver
/// iterations) and bail out early with whatever they have — the
/// mechanism behind per-request deadlines in serve::NedService. Checking
/// is cooperative: a system that ignores the token simply runs to
/// completion, and the serving layer still enforces the deadline on the
/// result's status.
using CancellationToken = util::CancellationToken;

/// One mention to disambiguate. When `candidates` is empty and
/// `candidates_resolved` is false, the NED system performs the dictionary
/// lookup itself; callers (the emerging-entity pipeline, the perturbation
/// confidence estimators) may instead pre-resolve and edit the candidate
/// space, e.g. to inject placeholder candidates or force-fix an entity.
struct ProblemMention {
  std::string surface;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
  std::vector<Candidate> candidates;
  bool candidates_resolved = false;
};

/// A disambiguation task: a tokenized document plus its mentions. The
/// problem describes only the INPUT TEXT; per-call execution knobs
/// (vocabulary override, cancellation) live in DisambiguateOptions so the
/// problem struct stops accreting optional non-owning pointers.
struct DisambiguationProblem {
  /// Not owned; must outlive the call.
  const std::vector<std::string>* tokens = nullptr;
  std::vector<ProblemMention> mentions;
};

/// Intra-request parallelism for one Disambiguate call. When enabled(),
/// Aida forks its per-mention local scoring, the deduplicated
/// entity-pair relatedness batch, and the solver's per-iteration node
/// scans into at most `max_tasks` tasks on `scheduler`, joining before
/// each reduction — results stay byte-identical to the serial path
/// (deterministic chunk boundaries, reductions in index order, no FP
/// reassociation). The admission decision (which requests get tasks at
/// all) belongs to the serving layer; the thresholds here keep tiny
/// phases serial even inside an admitted request.
struct ParallelismOptions {
  /// Not owned; must outlive the call. Null disables parallelism.
  task::Scheduler* scheduler = nullptr;
  /// Upper bound on concurrent tasks per parallel region (1 = serial).
  size_t max_tasks = 1;
  /// Minimum mentions before the per-mention local phase forks.
  size_t min_parallel_mentions = 2;
  /// Minimum deduplicated entity pairs before the relatedness batch
  /// forks.
  size_t min_batch_pairs = 64;
  /// Minimum graph nodes before the solver's per-iteration scans fork.
  size_t min_parallel_nodes = 2048;

  bool enabled() const { return scheduler != nullptr && max_tasks > 1; }
};

/// Per-call execution options for NedSystem::Disambiguate. Everything is
/// optional and non-owning; all pointees must outlive the call. New knobs
/// (score calibration, per-call budgets, tracing hooks) belong here, not
/// in DisambiguationProblem.
struct DisambiguateOptions {
  /// Extended vocabulary (KB words plus harvested out-of-KB words). When
  /// null, systems fall back to the plain KB vocabulary. Needed whenever
  /// candidate models reference extension word ids.
  const ExtendedVocabulary* vocab = nullptr;
  /// Cooperative-cancellation token. Aida polls it between phases and
  /// inside the batched-relatedness and solver loops, degrading to
  /// local-only results when it trips; see
  /// DisambiguationResult::cancelled.
  const CancellationToken* cancel = nullptr;
  /// Intra-request task parallelism (defaults to serial).
  ParallelismOptions parallel;
};

/// Per-mention output.
struct MentionResult {
  /// Chosen entity; kb::kNoEntity when the mention has no candidates or a
  /// placeholder was chosen.
  kb::EntityId entity = kb::kNoEntity;
  /// True when an emerging-entity placeholder won.
  bool chose_placeholder = false;
  /// Final score of the chosen candidate (weighted-degree scale).
  double score = 0.0;
  /// Full per-candidate scoring on the same scale, for confidence
  /// normalization (Section 5.4.1). Parallel arrays.
  std::vector<kb::EntityId> candidate_entities;
  std::vector<double> candidate_scores;
  std::vector<bool> candidate_is_placeholder;
};

/// Per-call efficiency counters of one Disambiguate invocation — the
/// quantities the efficiency experiments (Table 4.4) report. Returned by
/// value inside DisambiguationResult so concurrent calls (e.g. from
/// BatchDisambiguator workers sharing one NedSystem) never race on shared
/// mutable state; sum them with operator+= for batch-level totals.
struct DisambiguationStats {
  /// Evaluations of the underlying RelatednessMeasure performed on behalf
  /// of this call (cache misses, when a cache is in play).
  uint64_t relatedness_computations = 0;
  /// Pair values served from a shared RelatednessCache instead.
  uint64_t relatedness_cache_hits = 0;
  /// Graph-solver work: greedy peel steps plus post-processing
  /// (exhaustive assignments or local-search proposals) evaluated.
  uint64_t graph_iterations = 0;
  /// Tasks spawned into the work-stealing scheduler on behalf of this
  /// call (0 on the serial path).
  uint64_t parallel_tasks = 0;
  /// Of those, tasks executed by a thread other than the spawner.
  uint64_t parallel_steals = 0;
  /// Per-phase wall clock, seconds. Phases that did not run stay 0.
  double local_seconds = 0.0;        // candidate lookup + local features
  double graph_build_seconds = 0.0;  // mention-entity graph construction
  double graph_solve_seconds = 0.0;  // Algorithm 1 + post-processing
  double total_seconds = 0.0;
  /// Wall clock spent inside the parallel (forked) regions of each
  /// phase — subsets of the corresponding *_seconds above. Zero when the
  /// phase ran serially.
  double local_parallel_seconds = 0.0;
  double graph_build_parallel_seconds = 0.0;
  double graph_solve_parallel_seconds = 0.0;

  double RelatednessCacheHitRate() const {
    const uint64_t lookups = relatedness_computations + relatedness_cache_hits;
    return lookups == 0 ? 0.0 : static_cast<double>(relatedness_cache_hits) /
                                    static_cast<double>(lookups);
  }

  DisambiguationStats& operator+=(const DisambiguationStats& other) {
    relatedness_computations += other.relatedness_computations;
    relatedness_cache_hits += other.relatedness_cache_hits;
    graph_iterations += other.graph_iterations;
    parallel_tasks += other.parallel_tasks;
    parallel_steals += other.parallel_steals;
    local_seconds += other.local_seconds;
    graph_build_seconds += other.graph_build_seconds;
    graph_solve_seconds += other.graph_solve_seconds;
    total_seconds += other.total_seconds;
    local_parallel_seconds += other.local_parallel_seconds;
    graph_build_parallel_seconds += other.graph_build_parallel_seconds;
    graph_solve_parallel_seconds += other.graph_solve_parallel_seconds;
    return *this;
  }
};

/// Output of one NED run, parallel to the problem's mentions.
struct DisambiguationResult {
  std::vector<MentionResult> mentions;
  /// Efficiency counters of the call that produced this result.
  DisambiguationStats stats;
  /// True when the call observed its CancellationToken tripped (deadline
  /// or explicit Cancel) and returned early, or when a serving layer shed
  /// the request before it ran. Mentions and stats may be partial —
  /// AggregateStats skips such results so shed requests cannot dilute
  /// phase-time totals.
  bool cancelled = false;
};

/// Abstract joint named-entity disambiguation system. AIDA and all
/// baselines implement this; the NED-EE machinery of chapter 5 treats any
/// implementation as a black box.
class NedSystem {
 public:
  virtual ~NedSystem() = default;

  /// Disambiguates all mentions of `problem` jointly, honouring the
  /// per-call `options` (vocabulary override, cooperative cancellation).
  /// Callers without special needs pass `{}`; the former single-argument
  /// back-compat overload has been removed.
  virtual DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const = 0;

  /// Human-readable system name for reports.
  virtual std::string name() const = 0;
};

}  // namespace aida::core

#endif  // AIDA_CORE_NED_SYSTEM_H_
