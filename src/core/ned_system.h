#ifndef AIDA_CORE_NED_SYSTEM_H_
#define AIDA_CORE_NED_SYSTEM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/candidates.h"

namespace aida::core {

/// One mention to disambiguate. When `candidates` is empty and
/// `candidates_resolved` is false, the NED system performs the dictionary
/// lookup itself; callers (the emerging-entity pipeline, the perturbation
/// confidence estimators) may instead pre-resolve and edit the candidate
/// space, e.g. to inject placeholder candidates or force-fix an entity.
struct ProblemMention {
  std::string surface;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
  std::vector<Candidate> candidates;
  bool candidates_resolved = false;
};

/// A disambiguation task: a tokenized document plus its mentions.
struct DisambiguationProblem {
  /// Not owned; must outlive the call.
  const std::vector<std::string>* tokens = nullptr;
  std::vector<ProblemMention> mentions;
  /// Optional extended vocabulary (KB words plus harvested out-of-KB
  /// words). When null, systems fall back to the plain KB vocabulary.
  /// Needed whenever candidate models reference extension word ids.
  const ExtendedVocabulary* vocab = nullptr;
};

/// Per-mention output.
struct MentionResult {
  /// Chosen entity; kb::kNoEntity when the mention has no candidates or a
  /// placeholder was chosen.
  kb::EntityId entity = kb::kNoEntity;
  /// True when an emerging-entity placeholder won.
  bool chose_placeholder = false;
  /// Final score of the chosen candidate (weighted-degree scale).
  double score = 0.0;
  /// Full per-candidate scoring on the same scale, for confidence
  /// normalization (Section 5.4.1). Parallel arrays.
  std::vector<kb::EntityId> candidate_entities;
  std::vector<double> candidate_scores;
  std::vector<bool> candidate_is_placeholder;
};

/// Output of one NED run, parallel to the problem's mentions.
struct DisambiguationResult {
  std::vector<MentionResult> mentions;
};

/// Abstract joint named-entity disambiguation system. AIDA and all
/// baselines implement this; the NED-EE machinery of chapter 5 treats any
/// implementation as a black box.
class NedSystem {
 public:
  virtual ~NedSystem() = default;

  /// Disambiguates all mentions of `problem` jointly.
  virtual DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem) const = 0;

  /// Human-readable system name for reports.
  virtual std::string name() const = 0;
};

}  // namespace aida::core

#endif  // AIDA_CORE_NED_SYSTEM_H_
