#include "core/relatedness_cache.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <thread>

#include "util/status.h"

namespace aida::core {

namespace {

// Slots linearly probed (with wrap-around) from a key's home slot before
// an eviction is forced. Bounds both probe cost and eviction scan cost.
constexpr size_t kProbeWindow = 8;

// Sentinel for an empty slot. Unreachable as a real key: it would require
// both entity ids to be kNoEntity, which the decorator never caches.
constexpr uint64_t kEmptyKey = std::numeric_limits<uint64_t>::max();

uint64_t PairKey(kb::EntityId a, kb::EntityId b) {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  return (lo << 32) | hi;
}

// splitmix64 finalizer: spreads the structured pair key over all 64 bits
// so shard selection (low bits), home slot (high bits) and the L1 index
// decorrelate.
uint64_t MixKey(uint64_t key) {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

size_t RoundUpPowerOfTwo(size_t value) {
  size_t result = 1;
  while (result < value) result <<= 1;
  return result;
}

// ---- Per-thread L1 front ----------------------------------------------
//
// One direct-mapped block per thread (~8 KB), shared across cache
// instances over the thread's lifetime and re-tagged whenever the thread
// switches caches or the owning cache is cleared. The tag is the cache's
// process-unique instance id plus its clear epoch: ids are never reused
// (unlike addresses), so a block can never leak values from a destroyed
// cache into a new one that happens to live at the same address.
//
// Correctness does not depend on eviction coherence with the shards: a
// cached value is a pure function of the entity-id pair for the cache's
// lifetime, so an L1 entry that outlives its shard copy still serves the
// right value. Clear() advances the epoch; each thread notices on its
// next access and resets its block lazily.

constexpr size_t kL1Slots = 512;  // 512 * 16 B = 8 KB per thread

struct L1Entry {
  uint64_t key;
  double value;
};

struct L1Block {
  uint64_t owner = 0;  // RelatednessCache instance id, 0 = untagged
  uint64_t epoch = 0;  // owner's clear epoch at the last reset
  L1Entry entries[kL1Slots];
};

L1Block& ThisThreadL1() AIDA_NONBLOCKING {
  AIDA_EFFECT_ESCAPE_BEGIN(
      "thread_local init guard: pays once per thread lifetime; every "
      "later access is a plain TLS load")
  static thread_local L1Block block;
  AIDA_EFFECT_ESCAPE_END
  return block;
}

// Ensures `block` is tagged for (owner, epoch), resetting it when the
// thread last used a different cache or a pre-Clear() view of this one.
// Returns true when the existing contents are valid.
bool RetagL1(L1Block& block, uint64_t owner, uint64_t epoch) {
  if (block.owner == owner && block.epoch == epoch) return true;
  block.owner = owner;
  block.epoch = epoch;
  for (L1Entry& entry : block.entries) entry.key = kEmptyKey;
  return false;
}

std::atomic<uint64_t> next_instance_id{1};

}  // namespace

RelatednessCache::RelatednessCache(RelatednessCacheOptions options)
    : l1_enabled_(options.enable_thread_local_l1),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  size_t requested_shards = options.num_shards;
  if (requested_shards == 0) {
    // Auto-size to the machine: enough stripes that even a pool of one
    // worker per core keeps the expected lock collision rate low.
    const size_t cores = std::max(1u, std::thread::hardware_concurrency());
    requested_shards = std::max<size_t>(64, 4 * cores);
  }
  const size_t num_shards = RoundUpPowerOfTwo(requested_shards);
  slots_per_shard_ = RoundUpPowerOfTwo(std::max(
      kProbeWindow, (std::max<size_t>(1, options.capacity) + num_shards - 1) /
                        num_shards));
  shards_ = std::vector<Shard>(num_shards);
  for (Shard& shard : shards_) {
    shard.slots.assign(slots_per_shard_, Slot{kEmptyKey, 0.0, 0});
  }
}

RelatednessCache::~RelatednessCache() = default;

const RelatednessCache::Shard& RelatednessCache::ShardFor(uint64_t key) const {
  return shards_[MixKey(key) & (shards_.size() - 1)];
}

RelatednessCache::StatStripe& RelatednessCache::StripeForThisThread() const
    AIDA_NONBLOCKING {
  // Hash the thread id once per thread; all of a thread's counter bumps
  // then land on one cache-line-aligned block.
  AIDA_EFFECT_ESCAPE_BEGIN(
      "thread_local init guard + one-time thread-id hash: pays once per "
      "thread lifetime; every later access is a plain TLS load")
  static thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  AIDA_EFFECT_ESCAPE_END
  return stripes_[stripe & (kStatStripes - 1)];
}

bool RelatednessCache::Lookup(kb::EntityId a, kb::EntityId b,
                              double* value) const AIDA_NONBLOCKING {
  AIDA_DCHECK(value != nullptr);
  const uint64_t key = PairKey(a, b);
  const uint64_t hash = MixKey(key);
  StatStripe& stripe = StripeForThisThread();

  L1Block* l1 = nullptr;
  if (l1_enabled_) {
    l1 = &ThisThreadL1();
    if (RetagL1(*l1, instance_id_,
                clear_epoch_.load(std::memory_order_acquire))) {
      const L1Entry& entry = l1->entries[hash & (kL1Slots - 1)];
      if (entry.key == key) {
        *value = entry.value;
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  const Shard& shard = ShardFor(key);
  const size_t mask = slots_per_shard_ - 1;
  const size_t home = (hash >> 32) & mask;
  AIDA_EFFECT_ESCAPE_BEGIN(
      "shard mutex: bounded O(kProbeWindow) critical section over "
      "preallocated slots, no allocation, no nested wait; contention is "
      "diluted over >= max(64, 4x cores) shards")
  {
    util::MutexLock lock(&shard.mutex);
    for (size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(home + p) & mask];
      if (slot.key == key) {
        slot.stamp = ++shard.tick;
        *value = slot.value;
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        if (l1 != nullptr) {
          l1->entries[hash & (kL1Slots - 1)] = L1Entry{key, slot.value};
        }
        return true;
      }
    }
  }
  AIDA_EFFECT_ESCAPE_END
  stripe.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void RelatednessCache::Insert(kb::EntityId a, kb::EntityId b,
                              double value) AIDA_NONBLOCKING {
  const uint64_t key = PairKey(a, b);
  const uint64_t hash = MixKey(key);
  const Shard& shard = ShardFor(key);
  const size_t mask = slots_per_shard_ - 1;
  const size_t home = (hash >> 32) & mask;
  bool evicted = false;
  bool fresh = false;
  AIDA_EFFECT_ESCAPE_BEGIN(
      "shard mutex: bounded O(kProbeWindow) probe + in-place eviction "
      "over preallocated slots — Insert never allocates")
  {
    util::MutexLock lock(&shard.mutex);
    Slot* target = nullptr;
    Slot* stalest = nullptr;
    for (size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(home + p) & mask];
      if (slot.key == key) {  // concurrent insert of the same pair
        target = &slot;
        break;
      }
      if (slot.key == kEmptyKey) {
        if (target == nullptr) {
          target = &slot;
          fresh = true;
        }
        continue;
      }
      if (stalest == nullptr || slot.stamp < stalest->stamp) stalest = &slot;
    }
    if (target == nullptr) {
      target = stalest;  // full window: evict the least-recently-touched
      evicted = true;
    }
    if (fresh) ++shard.live;
    target->key = key;
    target->value = value;
    target->stamp = ++shard.tick;
  }
  AIDA_EFFECT_ESCAPE_END
  StatStripe& stripe = StripeForThisThread();
  stripe.inserts.fetch_add(1, std::memory_order_relaxed);
  if (evicted) stripe.evictions.fetch_add(1, std::memory_order_relaxed);
  if (l1_enabled_) {
    // Inserts follow a same-thread Lookup miss, so the block is usually
    // tagged already; retag defensively for direct Insert callers.
    L1Block& l1 = ThisThreadL1();
    RetagL1(l1, instance_id_, clear_epoch_.load(std::memory_order_acquire));
    l1.entries[hash & (kL1Slots - 1)] = L1Entry{key, value};
  }
}

RelatednessCacheStats RelatednessCache::Snapshot() const {
  RelatednessCacheStats stats;
  for (const StatStripe& stripe : stripes_) {
    stats.hits += stripe.hits.load(std::memory_order_relaxed);
    stats.misses += stripe.misses.load(std::memory_order_relaxed);
    stats.inserts += stripe.inserts.load(std::memory_order_relaxed);
    stats.evictions += stripe.evictions.load(std::memory_order_relaxed);
  }
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mutex);
    stats.entries += shard.live;
  }
  return stats;
}

void RelatednessCache::Clear() {
  // Bump the epoch FIRST: a thread that still sees pre-Clear L1 contents
  // after this line can only serve values the measure would recompute
  // identically, and its next access observes the new epoch and resets.
  clear_epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mutex);
    shard.slots.assign(slots_per_shard_, Slot{kEmptyKey, 0.0, 0});
    shard.tick = 0;
    shard.live = 0;
  }
  for (StatStripe& stripe : stripes_) {
    stripe.hits.store(0, std::memory_order_relaxed);
    stripe.misses.store(0, std::memory_order_relaxed);
    stripe.inserts.store(0, std::memory_order_relaxed);
    stripe.evictions.store(0, std::memory_order_relaxed);
  }
}

CachedRelatednessMeasure::CachedRelatednessMeasure(
    const RelatednessMeasure* base, RelatednessCache* cache)
    : base_(base), cache_(cache) {
  AIDA_CHECK(base_ != nullptr && cache_ != nullptr);
}

std::string CachedRelatednessMeasure::name() const {
  return base_->name() + "+cache";
}

double CachedRelatednessMeasure::Relatedness(const Candidate& a,
                                             const Candidate& b) const {
  return RelatednessTracked(a, b, nullptr);
}

double CachedRelatednessMeasure::RelatednessTracked(const Candidate& a,
                                                    const Candidate& b,
                                                    bool* cache_hit) const {
  const bool cacheable = !a.is_placeholder && !b.is_placeholder &&
                         a.entity != kb::kNoEntity &&
                         b.entity != kb::kNoEntity;
  if (!cacheable) {
    if (cache_hit != nullptr) *cache_hit = false;
    CountComparison();
    return base_->Relatedness(a, b);
  }
  double value = 0.0;
  if (cache_->Lookup(a.entity, b.entity, &value)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return value;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  CountComparison();
  value = base_->Relatedness(a, b);
  cache_->Insert(a.entity, b.entity, value);
  return value;
}

}  // namespace aida::core
