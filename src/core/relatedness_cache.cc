#include "core/relatedness_cache.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace aida::core {

namespace {

// Slots linearly probed (with wrap-around) from a key's home slot before
// an eviction is forced. Bounds both probe cost and eviction scan cost.
constexpr size_t kProbeWindow = 8;

// Sentinel for an empty slot. Unreachable as a real key: it would require
// both entity ids to be kNoEntity, which the decorator never caches.
constexpr uint64_t kEmptyKey = std::numeric_limits<uint64_t>::max();

uint64_t PairKey(kb::EntityId a, kb::EntityId b) {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  return (lo << 32) | hi;
}

// splitmix64 finalizer: spreads the structured pair key over all 64 bits
// so shard selection (low bits) and home slot (high bits) decorrelate.
uint64_t MixKey(uint64_t key) {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

size_t RoundUpPowerOfTwo(size_t value) {
  size_t result = 1;
  while (result < value) result <<= 1;
  return result;
}

}  // namespace

RelatednessCache::RelatednessCache(RelatednessCacheOptions options) {
  const size_t num_shards = RoundUpPowerOfTwo(std::max<size_t>(1, options.num_shards));
  slots_per_shard_ = RoundUpPowerOfTwo(std::max(
      kProbeWindow, (std::max<size_t>(1, options.capacity) + num_shards - 1) /
                        num_shards));
  shards_ = std::vector<Shard>(num_shards);
  for (Shard& shard : shards_) {
    shard.slots.assign(slots_per_shard_, Slot{kEmptyKey, 0.0, 0});
  }
}

const RelatednessCache::Shard& RelatednessCache::ShardFor(uint64_t key) const {
  return shards_[MixKey(key) & (shards_.size() - 1)];
}

bool RelatednessCache::Lookup(kb::EntityId a, kb::EntityId b,
                              double* value) const {
  AIDA_DCHECK(value != nullptr);
  const uint64_t key = PairKey(a, b);
  const uint64_t hash = MixKey(key);
  const Shard& shard = ShardFor(key);
  const size_t mask = slots_per_shard_ - 1;
  const size_t home = (hash >> 32) & mask;
  {
    util::MutexLock lock(&shard.mutex);
    for (size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(home + p) & mask];
      if (slot.key == key) {
        slot.stamp = ++shard.tick;
        *value = slot.value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void RelatednessCache::Insert(kb::EntityId a, kb::EntityId b, double value) {
  const uint64_t key = PairKey(a, b);
  const uint64_t hash = MixKey(key);
  const Shard& shard = ShardFor(key);
  const size_t mask = slots_per_shard_ - 1;
  const size_t home = (hash >> 32) & mask;
  bool evicted = false;
  bool fresh = false;
  {
    util::MutexLock lock(&shard.mutex);
    Slot* target = nullptr;
    Slot* stalest = nullptr;
    for (size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(home + p) & mask];
      if (slot.key == key) {  // concurrent insert of the same pair
        target = &slot;
        break;
      }
      if (slot.key == kEmptyKey) {
        if (target == nullptr) {
          target = &slot;
          fresh = true;
        }
        continue;
      }
      if (stalest == nullptr || slot.stamp < stalest->stamp) stalest = &slot;
    }
    if (target == nullptr) {
      target = stalest;  // full window: evict the least-recently-touched
      evicted = true;
    }
    if (fresh) ++shard.live;
    target->key = key;
    target->value = value;
    target->stamp = ++shard.tick;
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
}

RelatednessCacheStats RelatednessCache::Snapshot() const {
  RelatednessCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mutex);
    stats.entries += shard.live;
  }
  return stats;
}

void RelatednessCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mutex);
    shard.slots.assign(slots_per_shard_, Slot{kEmptyKey, 0.0, 0});
    shard.tick = 0;
    shard.live = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

CachedRelatednessMeasure::CachedRelatednessMeasure(
    const RelatednessMeasure* base, RelatednessCache* cache)
    : base_(base), cache_(cache) {
  AIDA_CHECK(base_ != nullptr && cache_ != nullptr);
}

std::string CachedRelatednessMeasure::name() const {
  return base_->name() + "+cache";
}

double CachedRelatednessMeasure::Relatedness(const Candidate& a,
                                             const Candidate& b) const {
  return RelatednessTracked(a, b, nullptr);
}

double CachedRelatednessMeasure::RelatednessTracked(const Candidate& a,
                                                    const Candidate& b,
                                                    bool* cache_hit) const {
  const bool cacheable = !a.is_placeholder && !b.is_placeholder &&
                         a.entity != kb::kNoEntity &&
                         b.entity != kb::kNoEntity;
  if (!cacheable) {
    if (cache_hit != nullptr) *cache_hit = false;
    CountComparison();
    return base_->Relatedness(a, b);
  }
  double value = 0.0;
  if (cache_->Lookup(a.entity, b.entity, &value)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return value;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  CountComparison();
  value = base_->Relatedness(a, b);
  cache_->Insert(a.entity, b.entity, value);
  return value;
}

}  // namespace aida::core
