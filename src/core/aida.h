#ifndef AIDA_CORE_AIDA_H_
#define AIDA_CORE_AIDA_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/context_similarity.h"
#include "core/graph_disambiguator.h"
#include "core/ned_system.h"
#include "core/relatedness.h"

namespace aida::core {

/// Configuration of the AIDA disambiguator. The defaults are the values
/// tuned in Section 3.6.1 (rho = 0.9, lambda = 0.9, prior/sim mix
/// 0.566/0.434, gamma split 0.6/0.4, graph budget 5x mentions). Feature
/// switches reproduce the ablation rows of Table 3.2:
///
///   sim-k               : use_prior=false, use_coherence=false
///   prior sim-k         : use_prior=true, use_prior_test=false, no coherence
///   r-prior sim-k       : use_prior=true, use_prior_test=true, no coherence
///   r-prior sim-k coh   : + use_coherence=true, use_coherence_test=false
///   r-prior sim-k r-coh : + use_coherence_test=true  (full AIDA)
struct AidaOptions {
  bool use_prior = true;
  bool use_prior_test = true;
  /// rho: minimum best-candidate prior for the prior to be trusted.
  double prior_threshold = 0.9;
  bool use_coherence = true;
  bool use_coherence_test = true;
  /// lambda: when the prior/similarity L1 distance does not exceed this,
  /// the mention is fixed to its local best before the graph runs.
  double coherence_threshold = 0.9;
  /// Mixing weights inside mention-entity edges when the prior test passes.
  double prior_weight = 0.566;
  double sim_weight = 0.434;
  /// Edge-mass split between mention-entity and entity-entity edges.
  double me_scale = 0.5;
  double ee_scale = 0.5;
  ContextSimilarity::WordWeight word_weight =
      ContextSimilarity::WordWeight::kNpmi;
  GraphDisambiguatorOptions graph;
};

/// The AIDA joint disambiguator (chapter 3): popularity prior, keyphrase
/// cover similarity, and graph coherence with robustness tests, solved by
/// the greedy dense-subgraph algorithm.
class Aida : public NedSystem {
 public:
  /// `models` and `relatedness` are not owned and must outlive the system.
  Aida(const CandidateModelStore* models,
       const RelatednessMeasure* relatedness, AidaOptions options);

  DisambiguationResult Disambiguate(
      const DisambiguationProblem& problem,
      const DisambiguateOptions& options) const override;

  std::string name() const override;

  const AidaOptions& options() const { return options_; }

 private:
  const CandidateModelStore* models_;
  const RelatednessMeasure* relatedness_;
  AidaOptions options_;
  ContextSimilarity similarity_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_AIDA_H_
