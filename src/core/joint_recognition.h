#ifndef AIDA_CORE_JOINT_RECOGNITION_H_
#define AIDA_CORE_JOINT_RECOGNITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/ned_system.h"

namespace aida::core {

/// A recognized and disambiguated mention produced by joint inference.
struct RecognizedMention {
  std::string surface;
  size_t begin_token = 0;
  size_t end_token = 0;  // exclusive
  kb::EntityId entity = kb::kNoEntity;
  double score = 0.0;
};

/// Joint entity recognition and disambiguation — the outlook of
/// Section 7.2.1 ("recognition would provide multiple possible mention
/// boundaries, and the disambiguation chooses the spans"). Candidate
/// spans are generated liberally (every dictionary-known run of name-like
/// tokens, including overlapping alternatives like "Page" inside
/// "Jimmy Page"); all spans are disambiguated TOGETHER by the underlying
/// NED system, and a non-overlapping subset is selected by disambiguation
/// evidence — so the entity decision informs the boundary decision,
/// instead of recognize-then-disambiguate.
class JointRecognizer {
 public:
  struct Options {
    /// Longest candidate span in tokens.
    size_t max_span_tokens = 4;
    /// Spans whose winning candidate scores below this are dropped
    /// (recognition rejects the span).
    double min_score = 1e-6;
  };

  JointRecognizer(const CandidateModelStore* models, const NedSystem* ned);
  JointRecognizer(const CandidateModelStore* models, const NedSystem* ned,
                  Options options);

  /// Recognizes and disambiguates mentions of `tokens` jointly; the
  /// returned mentions are non-overlapping and ordered by position.
  std::vector<RecognizedMention> Annotate(
      const std::vector<std::string>& tokens) const;

 private:
  /// All dictionary-known candidate spans, including overlaps.
  std::vector<RecognizedMention> CandidateSpans(
      const std::vector<std::string>& tokens) const;

  const CandidateModelStore* models_;
  const NedSystem* ned_;
  Options options_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_JOINT_RECOGNITION_H_
