#include "core/mention_entity_graph.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "task/parallel_for.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace aida::core {

namespace {

struct PendingEdge {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  double weight = 0.0;
};

// Reusable per-thread build scratch. Graph construction runs per request
// on the serving hot path; allocating the dedup map and edge vectors
// fresh each time made every request a malloc storm that serialized
// workers on the allocator's shared arenas. Each worker thread instead
// reuses one scratch block sized by the largest document it has seen
// (clear() keeps capacity). Safe because a build never recurses and the
// scratch never escapes the call.
struct BuildScratch {
  std::unordered_map<kb::EntityId, size_t> entity_index;
  std::vector<PendingEdge> me_edges;
  std::vector<PendingEdge> ee_edges;
  std::vector<const Candidate*> all_candidates;
  /// Batched pair evaluation: qualifying entity-index pairs in
  /// enumeration order, with their computed values and cache-hit flags
  /// (parallel tasks write disjoint index ranges of values/hits).
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  std::vector<double> pair_values;
  std::vector<uint8_t> pair_hits;

  void Reset() {
    entity_index.clear();
    me_edges.clear();
    ee_edges.clear();
    all_candidates.clear();
    pairs.clear();
    pair_values.clear();
    pair_hits.clear();
  }
};

BuildScratch& ThisThreadScratch() {
  static thread_local BuildScratch scratch;
  return scratch;
}

}  // namespace

MentionEntityGraph BuildMentionEntityGraph(
    const GraphBuildInput& input, const RelatednessMeasure& relatedness,
    const GraphBuildContext& context) {
  MentionEntityGraph meg;
  meg.num_mentions = input.mentions.size();

  BuildScratch& scratch = ThisThreadScratch();
  scratch.Reset();

  // ---- Assign entity nodes (deduplicating in-KB entities) -----------------
  std::unordered_map<kb::EntityId, size_t>& entity_index =
      scratch.entity_index;
  meg.mention_candidate_nodes.resize(meg.num_mentions);
  for (uint32_t m = 0; m < input.mentions.size(); ++m) {
    const auto& entry = input.mentions[m];
    AIDA_CHECK(entry.candidates != nullptr);
    AIDA_CHECK(entry.me_weights.size() == entry.candidates->size());
    for (uint32_t c = 0; c < entry.candidates->size(); ++c) {
      const Candidate& cand = (*entry.candidates)[c];
      size_t index;
      if (!cand.is_placeholder) {
        auto [it, inserted] =
            entity_index.emplace(cand.entity, meg.entity_candidates.size());
        index = it->second;
        if (inserted) {
          meg.entity_candidates.push_back(&cand);
          meg.entity_sources.emplace_back();
        }
      } else {
        // Placeholders are mention-private nodes.
        index = meg.entity_candidates.size();
        meg.entity_candidates.push_back(&cand);
        meg.entity_sources.emplace_back();
      }
      meg.entity_sources[index].emplace_back(m, c);
      meg.mention_candidate_nodes[m].push_back(meg.EntityNodeId(index));
    }
  }

  const size_t total_nodes = meg.num_mentions + meg.entity_candidates.size();

  // ---- Collect mention-entity edges ---------------------------------------
  std::vector<PendingEdge>& me_edges = scratch.me_edges;
  double me_max = 0.0;
  for (uint32_t m = 0; m < input.mentions.size(); ++m) {
    const auto& entry = input.mentions[m];
    for (uint32_t c = 0; c < entry.candidates->size(); ++c) {
      double w = std::max(0.0, entry.me_weights[c]);
      me_edges.push_back({m, meg.mention_candidate_nodes[m][c], w});
      me_max = std::max(me_max, w);
    }
  }

  // ---- Collect entity-entity edges ----------------------------------------
  // Only pairs serving at least two distinct mentions matter: entities that
  // are exclusively candidates of the same single mention are mutually
  // exclusive anyway (Section 4.6.4).
  auto serves_two_mentions = [&](size_t i, size_t j) {
    const auto& si = meg.entity_sources[i];
    const auto& sj = meg.entity_sources[j];
    for (const auto& [mi, ci] : si) {
      for (const auto& [mj, cj] : sj) {
        if (mi != mj) return true;
      }
    }
    return false;
  };

  std::vector<PendingEdge>& ee_edges = scratch.ee_edges;
  double ee_max = 0.0;
  const size_t ec = meg.entity_candidates.size();

  // Stage 1 — collect the qualifying pair batch in enumeration order.
  // Entity nodes are deduplicated above, so every (i, j) occurs at most
  // once: the batch is the deduplicated set of relatedness evaluations
  // this document needs, and its order is identical on the serial and
  // parallel paths.
  std::vector<std::pair<uint32_t, uint32_t>>& pairs = scratch.pairs;
  auto collect = [&](size_t i, size_t j) {
    if (!serves_two_mentions(i, j)) return;
    pairs.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
  };
  if (relatedness.has_pair_filter()) {
    std::vector<const Candidate*>& all = scratch.all_candidates;
    all.assign(meg.entity_candidates.begin(), meg.entity_candidates.end());
    for (const auto& [i, j] : relatedness.FilterPairs(all)) {
      collect(i, j);
    }
  } else {
    for (size_t i = 0; i < ec; ++i) {
      for (size_t j = i + 1; j < ec; ++j) {
        collect(i, j);
      }
    }
  }

  // Stage 2 — evaluate the batch. Parallel chunks write disjoint slots
  // of pair_values/pair_hits; the RelatednessCache underneath keeps its
  // per-thread L1 and striped stat counters, so tasks do not contend.
  // The cancellation token is polled every few dozen pairs (satellite of
  // the phase-boundary checks in Aida::Disambiguate); a tripped token
  // abandons the batch and marks the graph aborted.
  std::vector<double>& pair_values = scratch.pair_values;
  std::vector<uint8_t>& pair_hits = scratch.pair_hits;
  pair_values.resize(pairs.size());
  pair_hits.assign(pairs.size(), 0);
  std::atomic<bool> abort_requested{false};
  const util::CancellationToken* cancel = context.cancel;
  auto evaluate = [&](size_t begin, size_t end) {
    constexpr size_t kCancelStride = 32;
    for (size_t k = begin; k < end; ++k) {
      if ((k - begin) % kCancelStride == 0 &&
          (abort_requested.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->cancelled()))) {
        abort_requested.store(true, std::memory_order_relaxed);
        return;
      }
      const auto [i, j] = pairs[k];
      bool cache_hit = false;
      double rel = relatedness.RelatednessTracked(
          *meg.entity_candidates[i], *meg.entity_candidates[j], &cache_hit);
      rel *= meg.entity_candidates[i]->weight_scale *
             meg.entity_candidates[j]->weight_scale;
      pair_values[k] = rel;
      pair_hits[k] = cache_hit ? 1 : 0;
    }
  };
  util::Stopwatch batch_watch;
  const size_t batch_tasks =
      pairs.size() >= context.min_batch_pairs ? context.max_tasks : 1;
  const task::ParallelForStats batch_stats = task::ParallelChunks(
      context.scheduler, pairs.size(), batch_tasks, cancel, evaluate);
  if (batch_tasks > 1) {
    meg.parallel_seconds = batch_watch.ElapsedSeconds();
    meg.parallel_tasks = batch_stats.tasks;
    meg.parallel_steals = batch_stats.stolen;
  }
  if (batch_stats.cancelled ||
      abort_requested.load(std::memory_order_relaxed)) {
    meg.aborted = true;
    return meg;  // partial; the caller discards it
  }

  // Stage 3 — fold edges and counters serially in pair order: identical
  // accumulation order to the serial path, so no FP reassociation.
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (pair_hits[k] != 0) {
      ++meg.relatedness_cache_hits;
    } else {
      ++meg.relatedness_computations;
    }
    const double rel = pair_values[k];
    if (rel <= 0.0) continue;
    ee_edges.push_back({meg.EntityNodeId(pairs[k].first),
                        meg.EntityNodeId(pairs[k].second), rel});
    ee_max = std::max(ee_max, rel);
  }

  // ---- Normalize, balance averages, apply the gamma split -----------------
  if (me_max > 0.0) {
    for (PendingEdge& e : me_edges) e.weight /= me_max;
  }
  if (ee_max > 0.0) {
    for (PendingEdge& e : ee_edges) e.weight /= ee_max;
  }
  double me_avg = 0.0;
  for (const PendingEdge& e : me_edges) me_avg += e.weight;
  if (!me_edges.empty()) me_avg /= static_cast<double>(me_edges.size());
  double ee_avg = 0.0;
  for (const PendingEdge& e : ee_edges) ee_avg += e.weight;
  if (!ee_edges.empty()) ee_avg /= static_cast<double>(ee_edges.size());
  double balance = (ee_avg > 0.0 && me_avg > 0.0) ? me_avg / ee_avg : 1.0;

  meg.graph = std::make_unique<graph::WeightedGraph>(total_nodes);
  for (const PendingEdge& e : me_edges) {
    meg.graph->AddEdge(e.u, e.v, e.weight * input.me_scale);
  }
  for (const PendingEdge& e : ee_edges) {
    meg.graph->AddEdge(e.u, e.v, e.weight * balance * input.ee_scale);
  }
  return meg;
}

}  // namespace aida::core
