#include "core/mention_entity_graph.h"

#include <algorithm>
#include <unordered_map>

#include "util/status.h"

namespace aida::core {

namespace {

struct PendingEdge {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  double weight = 0.0;
};

// Reusable per-thread build scratch. Graph construction runs per request
// on the serving hot path; allocating the dedup map and edge vectors
// fresh each time made every request a malloc storm that serialized
// workers on the allocator's shared arenas. Each worker thread instead
// reuses one scratch block sized by the largest document it has seen
// (clear() keeps capacity). Safe because a build never recurses and the
// scratch never escapes the call.
struct BuildScratch {
  std::unordered_map<kb::EntityId, size_t> entity_index;
  std::vector<PendingEdge> me_edges;
  std::vector<PendingEdge> ee_edges;
  std::vector<const Candidate*> all_candidates;

  void Reset() {
    entity_index.clear();
    me_edges.clear();
    ee_edges.clear();
    all_candidates.clear();
  }
};

BuildScratch& ThisThreadScratch() {
  static thread_local BuildScratch scratch;
  return scratch;
}

}  // namespace

MentionEntityGraph BuildMentionEntityGraph(
    const GraphBuildInput& input, const RelatednessMeasure& relatedness) {
  MentionEntityGraph meg;
  meg.num_mentions = input.mentions.size();

  BuildScratch& scratch = ThisThreadScratch();
  scratch.Reset();

  // ---- Assign entity nodes (deduplicating in-KB entities) -----------------
  std::unordered_map<kb::EntityId, size_t>& entity_index =
      scratch.entity_index;
  meg.mention_candidate_nodes.resize(meg.num_mentions);
  for (uint32_t m = 0; m < input.mentions.size(); ++m) {
    const auto& entry = input.mentions[m];
    AIDA_CHECK(entry.candidates != nullptr);
    AIDA_CHECK(entry.me_weights.size() == entry.candidates->size());
    for (uint32_t c = 0; c < entry.candidates->size(); ++c) {
      const Candidate& cand = (*entry.candidates)[c];
      size_t index;
      if (!cand.is_placeholder) {
        auto [it, inserted] =
            entity_index.emplace(cand.entity, meg.entity_candidates.size());
        index = it->second;
        if (inserted) {
          meg.entity_candidates.push_back(&cand);
          meg.entity_sources.emplace_back();
        }
      } else {
        // Placeholders are mention-private nodes.
        index = meg.entity_candidates.size();
        meg.entity_candidates.push_back(&cand);
        meg.entity_sources.emplace_back();
      }
      meg.entity_sources[index].emplace_back(m, c);
      meg.mention_candidate_nodes[m].push_back(meg.EntityNodeId(index));
    }
  }

  const size_t total_nodes = meg.num_mentions + meg.entity_candidates.size();

  // ---- Collect mention-entity edges ---------------------------------------
  std::vector<PendingEdge>& me_edges = scratch.me_edges;
  double me_max = 0.0;
  for (uint32_t m = 0; m < input.mentions.size(); ++m) {
    const auto& entry = input.mentions[m];
    for (uint32_t c = 0; c < entry.candidates->size(); ++c) {
      double w = std::max(0.0, entry.me_weights[c]);
      me_edges.push_back({m, meg.mention_candidate_nodes[m][c], w});
      me_max = std::max(me_max, w);
    }
  }

  // ---- Collect entity-entity edges ----------------------------------------
  // Only pairs serving at least two distinct mentions matter: entities that
  // are exclusively candidates of the same single mention are mutually
  // exclusive anyway (Section 4.6.4).
  auto serves_two_mentions = [&](size_t i, size_t j) {
    const auto& si = meg.entity_sources[i];
    const auto& sj = meg.entity_sources[j];
    for (const auto& [mi, ci] : si) {
      for (const auto& [mj, cj] : sj) {
        if (mi != mj) return true;
      }
    }
    return false;
  };

  std::vector<PendingEdge>& ee_edges = scratch.ee_edges;
  double ee_max = 0.0;
  const size_t ec = meg.entity_candidates.size();
  auto add_ee = [&](size_t i, size_t j) {
    if (!serves_two_mentions(i, j)) return;
    bool cache_hit = false;
    double rel = relatedness.RelatednessTracked(
        *meg.entity_candidates[i], *meg.entity_candidates[j], &cache_hit);
    rel *= meg.entity_candidates[i]->weight_scale *
           meg.entity_candidates[j]->weight_scale;
    if (cache_hit) {
      ++meg.relatedness_cache_hits;
    } else {
      ++meg.relatedness_computations;
    }
    if (rel <= 0.0) return;
    ee_edges.push_back(
        {meg.EntityNodeId(i), meg.EntityNodeId(j), rel});
    ee_max = std::max(ee_max, rel);
  };

  if (relatedness.has_pair_filter()) {
    std::vector<const Candidate*>& all = scratch.all_candidates;
    all.assign(meg.entity_candidates.begin(), meg.entity_candidates.end());
    for (const auto& [i, j] : relatedness.FilterPairs(all)) {
      add_ee(i, j);
    }
  } else {
    for (size_t i = 0; i < ec; ++i) {
      for (size_t j = i + 1; j < ec; ++j) {
        add_ee(i, j);
      }
    }
  }

  // ---- Normalize, balance averages, apply the gamma split -----------------
  if (me_max > 0.0) {
    for (PendingEdge& e : me_edges) e.weight /= me_max;
  }
  if (ee_max > 0.0) {
    for (PendingEdge& e : ee_edges) e.weight /= ee_max;
  }
  double me_avg = 0.0;
  for (const PendingEdge& e : me_edges) me_avg += e.weight;
  if (!me_edges.empty()) me_avg /= static_cast<double>(me_edges.size());
  double ee_avg = 0.0;
  for (const PendingEdge& e : ee_edges) ee_avg += e.weight;
  if (!ee_edges.empty()) ee_avg /= static_cast<double>(ee_edges.size());
  double balance = (ee_avg > 0.0 && me_avg > 0.0) ? me_avg / ee_avg : 1.0;

  meg.graph = std::make_unique<graph::WeightedGraph>(total_nodes);
  for (const PendingEdge& e : me_edges) {
    meg.graph->AddEdge(e.u, e.v, e.weight * input.me_scale);
  }
  for (const PendingEdge& e : ee_edges) {
    meg.graph->AddEdge(e.u, e.v, e.weight * balance * input.ee_scale);
  }
  return meg;
}

}  // namespace aida::core
