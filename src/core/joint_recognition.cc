#include "core/joint_recognition.h"

#include <algorithm>
#include <cctype>

#include "text/stopwords.h"
#include "util/status.h"
#include "util/string_util.h"

namespace aida::core {

namespace {

bool IsNameToken(const std::string& token) {
  if (token.empty()) return false;
  if (std::isupper(static_cast<unsigned char>(token.front())) &&
      !text::DefaultStopwords().Contains(token)) {
    return true;
  }
  return util::IsAllUpper(token) && token.size() >= 2;
}

std::string JoinSpan(const std::vector<std::string>& tokens, size_t begin,
                     size_t end) {
  std::string text;
  for (size_t i = begin; i < end; ++i) {
    if (!text.empty()) text += ' ';
    text += tokens[i];
  }
  return text;
}

}  // namespace

JointRecognizer::JointRecognizer(const CandidateModelStore* models,
                                 const NedSystem* ned)
    : JointRecognizer(models, ned, Options()) {}

JointRecognizer::JointRecognizer(const CandidateModelStore* models,
                                 const NedSystem* ned, Options options)
    : models_(models), ned_(ned), options_(options) {
  AIDA_CHECK(models_ != nullptr && ned_ != nullptr);
}

std::vector<RecognizedMention> JointRecognizer::CandidateSpans(
    const std::vector<std::string>& tokens) const {
  const kb::Dictionary& dictionary =
      models_->knowledge_base().dictionary();
  std::vector<RecognizedMention> spans;
  for (size_t begin = 0; begin < tokens.size(); ++begin) {
    if (!IsNameToken(tokens[begin])) continue;
    for (size_t end = begin + 1;
         end <= std::min(tokens.size(), begin + options_.max_span_tokens);
         ++end) {
      if (!IsNameToken(tokens[end - 1])) break;
      std::string surface = JoinSpan(tokens, begin, end);
      if (!dictionary.Contains(surface)) continue;
      RecognizedMention span;
      span.surface = std::move(surface);
      span.begin_token = begin;
      span.end_token = end;
      spans.push_back(std::move(span));
    }
  }
  return spans;
}

std::vector<RecognizedMention> JointRecognizer::Annotate(
    const std::vector<std::string>& tokens) const {
  std::vector<RecognizedMention> spans = CandidateSpans(tokens);
  if (spans.empty()) return spans;

  // Disambiguate ALL candidate spans together: overlapping alternatives
  // compete through their disambiguation evidence.
  DisambiguationProblem problem;
  problem.tokens = &tokens;
  for (const RecognizedMention& span : spans) {
    ProblemMention pm;
    pm.surface = span.surface;
    pm.begin_token = span.begin_token;
    pm.end_token = span.end_token;
    problem.mentions.push_back(std::move(pm));
  }
  DisambiguationResult result = ned_->Disambiguate(problem, {});
  for (size_t s = 0; s < spans.size(); ++s) {
    spans[s].entity = result.mentions[s].entity;
    spans[s].score = result.mentions[s].score;
  }

  // Greedy selection of non-overlapping spans: strongest disambiguation
  // evidence first, longer spans breaking ties ("Jimmy Page" beats the
  // embedded "Page" unless the short reading scores clearly higher).
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (spans[a].score != spans[b].score) {
      return spans[a].score > spans[b].score;
    }
    size_t len_a = spans[a].end_token - spans[a].begin_token;
    size_t len_b = spans[b].end_token - spans[b].begin_token;
    if (len_a != len_b) return len_a > len_b;
    return spans[a].begin_token < spans[b].begin_token;
  });

  std::vector<bool> taken(tokens.size(), false);
  std::vector<RecognizedMention> selected;
  for (size_t index : order) {
    const RecognizedMention& span = spans[index];
    if (span.entity == kb::kNoEntity || span.score < options_.min_score) {
      continue;
    }
    bool overlaps = false;
    for (size_t t = span.begin_token; t < span.end_token; ++t) {
      overlaps |= taken[t];
    }
    if (overlaps) continue;
    for (size_t t = span.begin_token; t < span.end_token; ++t) {
      taken[t] = true;
    }
    selected.push_back(span);
  }
  std::sort(selected.begin(), selected.end(),
            [](const RecognizedMention& a, const RecognizedMention& b) {
              return a.begin_token < b.begin_token;
            });
  return selected;
}

}  // namespace aida::core
