#include "core/robustness.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace aida::core::robustness {

std::vector<double> ToDistribution(const std::vector<double>& scores) {
  std::vector<double> dist(scores.size(), 0.0);
  if (scores.empty()) return dist;
  double total = 0.0;
  for (double s : scores) total += std::max(0.0, s);
  if (total <= 0.0) {
    double uniform = 1.0 / static_cast<double>(scores.size());
    std::fill(dist.begin(), dist.end(), uniform);
    return dist;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    dist[i] = std::max(0.0, scores[i]) / total;
  }
  return dist;
}

bool PriorTestPasses(const std::vector<double>& priors, double rho) {
  for (double p : priors) {
    if (p >= rho) return true;
  }
  return false;
}

double PriorSimilarityL1(const std::vector<double>& priors,
                         const std::vector<double>& sim_distribution) {
  AIDA_CHECK(priors.size() == sim_distribution.size());
  double l1 = 0.0;
  for (size_t i = 0; i < priors.size(); ++i) {
    l1 += std::abs(priors[i] - sim_distribution[i]);
  }
  return l1;
}

size_t ArgMax(const std::vector<double>& values) {
  AIDA_CHECK(!values.empty());
  return static_cast<size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace aida::core::robustness
