#ifndef AIDA_CORE_MENTION_ENTITY_GRAPH_H_
#define AIDA_CORE_MENTION_ENTITY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/relatedness.h"
#include "graph/weighted_graph.h"

namespace aida::core {

/// Input to graph construction: one entry per mention with its candidates
/// and the pre-combined mention-entity weights (prior/similarity blend
/// after the robustness tests).
struct GraphBuildInput {
  struct MentionEntry {
    /// Not owned.
    const std::vector<Candidate>* candidates = nullptr;
    /// Parallel to `candidates`, in [0, 1].
    std::vector<double> me_weights;
  };
  std::vector<MentionEntry> mentions;
  /// Balance of mention-entity vs entity-entity edge mass (the tuned
  /// gamma split of Section 3.6.1: 0.6 / 0.4).
  double me_scale = 0.6;
  double ee_scale = 0.4;
};

/// The combined graph of Section 3.4.1. Node layout: nodes
/// [0, num_mentions) are mention nodes; the rest are entity nodes. An
/// entity appearing in several mentions' candidate lists becomes a single
/// node; placeholder candidates are always mention-private nodes.
struct MentionEntityGraph {
  std::unique_ptr<graph::WeightedGraph> graph;
  size_t num_mentions = 0;
  /// Per entity node (indexed from 0): the (mention, candidate index)
  /// pairs it serves.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> entity_sources;
  /// Per entity node: a representative candidate (not owned).
  std::vector<const Candidate*> entity_candidates;
  /// Per mention: entity node ids (graph node ids), parallel to the
  /// mention's candidate list.
  std::vector<std::vector<graph::NodeId>> mention_candidate_nodes;
  /// Number of entity-entity relatedness evaluations performed (cache
  /// misses, when the measure is a CachedRelatednessMeasure).
  uint64_t relatedness_computations = 0;
  /// Entity-entity pair values served from a relatedness cache.
  uint64_t relatedness_cache_hits = 0;

  graph::NodeId EntityNodeId(size_t entity_index) const {
    return static_cast<graph::NodeId>(num_mentions + entity_index);
  }
  size_t EntityIndexOf(graph::NodeId node) const {
    return node - num_mentions;
  }
  size_t entity_node_count() const { return entity_candidates.size(); }
};

/// Builds the weighted mention-entity graph: mention-entity edges carry
/// the blended local weights, entity-entity edges carry `relatedness`
/// (restricted to the measure's pair filter when it has one, and to entity
/// pairs serving at least two distinct mentions). Both edge families are
/// normalized to [0,1], rescaled so their averages match (Section 3.4.1),
/// then split by me_scale / ee_scale.
MentionEntityGraph BuildMentionEntityGraph(
    const GraphBuildInput& input, const RelatednessMeasure& relatedness);

}  // namespace aida::core

#endif  // AIDA_CORE_MENTION_ENTITY_GRAPH_H_
