#ifndef AIDA_CORE_MENTION_ENTITY_GRAPH_H_
#define AIDA_CORE_MENTION_ENTITY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/relatedness.h"
#include "graph/weighted_graph.h"
#include "util/cancellation.h"

namespace aida::task {
class Scheduler;
}  // namespace aida::task

namespace aida::core {

/// Input to graph construction: one entry per mention with its candidates
/// and the pre-combined mention-entity weights (prior/similarity blend
/// after the robustness tests).
struct GraphBuildInput {
  struct MentionEntry {
    /// Not owned.
    const std::vector<Candidate>* candidates = nullptr;
    /// Parallel to `candidates`, in [0, 1].
    std::vector<double> me_weights;
  };
  std::vector<MentionEntry> mentions;
  /// Balance of mention-entity vs entity-entity edge mass (the tuned
  /// gamma split of Section 3.6.1: 0.6 / 0.4).
  double me_scale = 0.6;
  double ee_scale = 0.4;
};

/// The combined graph of Section 3.4.1. Node layout: nodes
/// [0, num_mentions) are mention nodes; the rest are entity nodes. An
/// entity appearing in several mentions' candidate lists becomes a single
/// node; placeholder candidates are always mention-private nodes.
struct MentionEntityGraph {
  std::unique_ptr<graph::WeightedGraph> graph;
  size_t num_mentions = 0;
  /// Per entity node (indexed from 0): the (mention, candidate index)
  /// pairs it serves.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> entity_sources;
  /// Per entity node: a representative candidate (not owned).
  std::vector<const Candidate*> entity_candidates;
  /// Per mention: entity node ids (graph node ids), parallel to the
  /// mention's candidate list.
  std::vector<std::vector<graph::NodeId>> mention_candidate_nodes;
  /// Number of entity-entity relatedness evaluations performed (cache
  /// misses, when the measure is a CachedRelatednessMeasure).
  uint64_t relatedness_computations = 0;
  /// Entity-entity pair values served from a relatedness cache.
  uint64_t relatedness_cache_hits = 0;
  /// True when the build observed its CancellationToken mid-batch and
  /// stopped: the graph is partial and must be discarded (the caller
  /// degrades to local-only results).
  bool aborted = false;
  /// Task accounting of the batched-relatedness region (0 when serial).
  uint64_t parallel_tasks = 0;
  uint64_t parallel_steals = 0;
  /// Wall clock of the batched pair-evaluation region, seconds.
  double parallel_seconds = 0.0;

  graph::NodeId EntityNodeId(size_t entity_index) const {
    return static_cast<graph::NodeId>(num_mentions + entity_index);
  }
  size_t EntityIndexOf(graph::NodeId node) const {
    return node - num_mentions;
  }
  size_t entity_node_count() const { return entity_candidates.size(); }
};

/// Per-call execution context of one graph build: cooperative
/// cancellation (polled inside the pair-evaluation batch, not just
/// between phases) and optional task parallelism for that batch.
struct GraphBuildContext {
  /// Polled every few dozen pair evaluations; a tripped token aborts the
  /// build (MentionEntityGraph::aborted). Not owned.
  const util::CancellationToken* cancel = nullptr;
  /// Fork the pair batch across this scheduler (null = serial).
  task::Scheduler* scheduler = nullptr;
  /// Maximum tasks for the pair batch (<= 1 = serial).
  size_t max_tasks = 1;
  /// Batches smaller than this stay serial even when a scheduler is set.
  size_t min_batch_pairs = 64;
};

/// Builds the weighted mention-entity graph: mention-entity edges carry
/// the blended local weights, entity-entity edges carry `relatedness`
/// (restricted to the measure's pair filter when it has one, and to entity
/// pairs serving at least two distinct mentions). Both edge families are
/// normalized to [0,1], rescaled so their averages match (Section 3.4.1),
/// then split by me_scale / ee_scale.
///
/// Relatedness is evaluated as one deduplicated batch: the qualifying
/// pair list is collected first (entity nodes are already deduplicated,
/// so each pair is evaluated exactly once per document), values are
/// computed — in parallel chunks when `context` enables it, preserving
/// the RelatednessCache's per-thread L1 and stat stripes — and edges are
/// folded serially in pair order, so the parallel build is byte-identical
/// to the serial one.
MentionEntityGraph BuildMentionEntityGraph(
    const GraphBuildInput& input, const RelatednessMeasure& relatedness,
    const GraphBuildContext& context = {});

}  // namespace aida::core

#endif  // AIDA_CORE_MENTION_ENTITY_GRAPH_H_
