#ifndef AIDA_CORE_CONTEXT_SIMILARITY_H_
#define AIDA_CORE_CONTEXT_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "util/lifetime.h"

namespace aida::core {

/// Word-position index of one document, used to score candidate keyphrases
/// against the text. Tokens are lowercased, stopwords dropped, and words
/// unknown to the vocabulary ignored.
///
/// The index is a word-id-sorted array probed by binary search, NOT a
/// hash map: consumers iterate it (WordCounts) and fold the results into
/// floating-point sums, so iteration order must be deterministic across
/// platforms and hash seeds (the parallel == serial byte-identical
/// contract, DESIGN.md §5e; enforced by the unordered-iteration lint in
/// tools/static_analysis/).
class DocumentContext {
 public:
  /// Builds the index over `tokens` using `vocab` for word ids.
  DocumentContext(const std::vector<std::string>& tokens,
                  const ExtendedVocabulary& vocab);

  /// Sorted positions of `word` in the document (empty if absent).
  const std::vector<size_t>& Positions(kb::WordId word) const
      AIDA_LIFETIME_BOUND;

  /// All distinct indexed words with their occurrence counts, in
  /// ascending word-id order. Used by consumers that iterate the context
  /// rather than probing it (e.g. the type classifier).
  std::vector<std::pair<kb::WordId, size_t>> WordCounts() const;

  size_t token_count() const { return token_count_; }

 private:
  size_t token_count_ = 0;
  /// (word, positions) rows sorted by word id; positions ascending.
  std::vector<std::pair<kb::WordId, std::vector<size_t>>> positions_;
};

/// Keyphrase-cover mention-entity similarity (Section 3.3.4). For each
/// candidate keyphrase, finds the shortest document window covering the
/// maximal number of the phrase's words (the phrase "cover"), and scores
/// partial matches superlinearly down-weighted:
///
///   score(q) = z * (sum_{w in cover} weight(w) / sum_{w in q} weight(w))^2
///   with z = (#matching words) / (cover length)                  (Eq. 3.4)
///
/// simscore(m, e) = sum over all keyphrases q of e (Eq. 3.6). Words inside
/// the mention span are excluded from matching ("all tokens ... except the
/// mention itself").
class ContextSimilarity {
 public:
  enum class WordWeight {
    /// Entity-specific NPMI weights (AIDA's choice for disambiguation).
    kNpmi,
    /// Collection-wide IDF weights.
    kIdf,
  };

  explicit ContextSimilarity(WordWeight weight_mode = WordWeight::kNpmi);

  /// Scores `model` against the document, ignoring token positions in
  /// [mention_begin, mention_end).
  double Score(const DocumentContext& context, size_t mention_begin,
               size_t mention_end, const CandidateModel& model) const;

 private:
  WordWeight weight_mode_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_CONTEXT_SIMILARITY_H_
