#include "core/aida.h"

#include <algorithm>
#include <cstdint>

#include "core/robustness.h"
#include "task/parallel_for.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace aida::core {

Aida::Aida(const CandidateModelStore* models,
           const RelatednessMeasure* relatedness, AidaOptions options)
    : models_(models),
      relatedness_(relatedness),
      options_(options),
      similarity_(options.word_weight) {
  AIDA_CHECK(models_ != nullptr);
  AIDA_CHECK(!options_.use_coherence || relatedness_ != nullptr);
}

std::string Aida::name() const {
  std::string n = "aida";
  if (options_.use_prior) {
    n += options_.use_prior_test ? "+r-prior" : "+prior";
  }
  n += "+sim-k";
  if (options_.use_coherence) {
    n += options_.use_coherence_test ? "+r-coh" : "+coh";
    if (relatedness_ != nullptr) n += "(" + relatedness_->name() + ")";
  }
  return n;
}

DisambiguationResult Aida::Disambiguate(
    const DisambiguationProblem& problem,
    const DisambiguateOptions& options) const {
  AIDA_CHECK(problem.tokens != nullptr);
  const kb::KnowledgeBase& kb = models_->knowledge_base();
  util::Stopwatch total_watch;
  util::Stopwatch phase_watch;

  ExtendedVocabulary plain_vocab(&kb.keyphrases());
  const ExtendedVocabulary& vocab =
      options.vocab != nullptr ? *options.vocab : plain_vocab;
  DocumentContext context(*problem.tokens, vocab);

  const size_t num_mentions = problem.mentions.size();
  DisambiguationResult result;
  result.mentions.resize(num_mentions);

  // Cooperative cancellation, checked between phases: a request whose
  // deadline already passed (e.g. while queued in serve::NedService) must
  // not pay for candidate lookups at all.
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    result.cancelled = true;
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  // ---- Candidate resolution and local features ------------------------------
  // Each mention's lookup and scoring is independent and writes only its
  // own slots (uint8_t instead of vector<bool> so parallel writes do not
  // share bit-packed words); with parallelism enabled the mentions run as
  // tasks, byte-identical to the serial loop.
  std::vector<std::vector<Candidate>> owned(num_mentions);
  std::vector<const std::vector<Candidate>*> candidates(num_mentions);
  std::vector<std::vector<double>> priors(num_mentions);
  std::vector<std::vector<double>> sims(num_mentions);
  std::vector<std::vector<double>> combined(num_mentions);
  std::vector<uint8_t> fixed(num_mentions, 0);
  std::vector<size_t> fixed_choice(num_mentions, 0);

  auto score_mention = [&](size_t m) {
    const ProblemMention& mention = problem.mentions[m];
    if (mention.candidates_resolved) {
      candidates[m] = &mention.candidates;
    } else {
      owned[m] = LookupCandidates(*models_, mention.surface);
      candidates[m] = &owned[m];
    }
    const std::vector<Candidate>& cands = *candidates[m];
    priors[m].reserve(cands.size());
    sims[m].reserve(cands.size());
    for (const Candidate& cand : cands) {
      AIDA_CHECK(cand.model != nullptr);
      priors[m].push_back(cand.prior);
      sims[m].push_back(cand.weight_scale *
                        similarity_.Score(context, mention.begin_token,
                                          mention.end_token, *cand.model));
    }
    if (cands.empty()) return;

    std::vector<double> sim_dist = robustness::ToDistribution(sims[m]);
    bool prior_ok =
        options_.use_prior &&
        (!options_.use_prior_test ||
         robustness::PriorTestPasses(priors[m], options_.prior_threshold));
    combined[m].resize(cands.size());
    for (size_t c = 0; c < cands.size(); ++c) {
      combined[m][c] = prior_ok ? options_.prior_weight * priors[m][c] +
                                      options_.sim_weight * sim_dist[c]
                                : sim_dist[c];
    }

    // Coherence robustness test: when prior and similarity agree, fix the
    // mention locally and keep it out of the joint optimization. A mention
    // without any similarity signal is never fixed — its uniform sim
    // distribution "agrees" with everything, but carries no evidence.
    if (options_.use_coherence && options_.use_coherence_test && prior_ok) {
      double sim_mass = 0.0;
      for (double s : sims[m]) sim_mass += s;
      std::vector<double> prior_dist = robustness::ToDistribution(priors[m]);
      double l1 = robustness::PriorSimilarityL1(prior_dist, sim_dist);
      // Fix when similarity evidence agrees with the dominant prior, or
      // when there is no similarity evidence to contradict it.
      if (sim_mass == 0.0 || l1 <= options_.coherence_threshold) {
        fixed[m] = 1;
        fixed_choice[m] = robustness::ArgMax(combined[m]);
      }
    }
  };

  const ParallelismOptions& par = options.parallel;
  const size_t local_tasks =
      par.enabled() && num_mentions >= par.min_parallel_mentions ? par.max_tasks
                                                                 : 1;
  util::Stopwatch local_parallel_watch;
  const task::ParallelForStats local_stats = task::ParallelChunks(
      par.scheduler, num_mentions, local_tasks, options.cancel,
      [&](size_t begin, size_t end) {
        for (size_t m = begin; m < end; ++m) {
          if (options.cancel != nullptr && options.cancel->cancelled()) return;
          score_mention(m);
        }
      });
  if (local_tasks > 1) {
    result.stats.local_parallel_seconds = local_parallel_watch.ElapsedSeconds();
    result.stats.parallel_tasks += local_stats.tasks;
    result.stats.parallel_steals += local_stats.stolen;
  }

  // ---- Local-only path -------------------------------------------------------
  auto fill_result = [&](size_t m, int32_t chosen,
                         const std::vector<double>& scores) {
    MentionResult& out = result.mentions[m];
    const std::vector<Candidate>& cands = *candidates[m];
    out.candidate_entities.reserve(cands.size());
    out.candidate_scores = scores;
    for (const Candidate& cand : cands) {
      out.candidate_entities.push_back(cand.entity);
      out.candidate_is_placeholder.push_back(cand.is_placeholder);
    }
    if (chosen >= 0) {
      const Candidate& cand = cands[static_cast<size_t>(chosen)];
      out.entity = cand.is_placeholder ? kb::kNoEntity : cand.entity;
      out.chose_placeholder = cand.is_placeholder;
      out.score = scores[static_cast<size_t>(chosen)];
    }
  };

  result.stats.local_seconds = phase_watch.ElapsedSeconds();

  auto fill_local_only = [&] {
    for (size_t m = 0; m < num_mentions; ++m) {
      if (candidates[m]->empty()) {
        fill_result(m, -1, {});
        continue;
      }
      // A mid-phase cancel can leave a mention unscored; give it zero
      // scores so the degraded result stays well-formed.
      if (combined[m].size() != candidates[m]->size()) {
        combined[m].assign(candidates[m]->size(), 0.0);
      }
      fill_result(m, static_cast<int32_t>(robustness::ArgMax(combined[m])),
                  combined[m]);
    }
    result.stats.total_seconds = total_watch.ElapsedSeconds();
  };

  // A token that tripped during the local phase skips everything
  // downstream and degrades to local-only choices.
  if (local_stats.cancelled) {
    fill_local_only();
    result.cancelled = true;
    return result;
  }

  if (!options_.use_coherence) {
    fill_local_only();
    return result;
  }

  if (options.cancel != nullptr && options.cancel->cancelled()) {
    fill_local_only();
    result.cancelled = true;
    return result;
  }

  // ---- Graph construction ----------------------------------------------------
  phase_watch.Reset();
  GraphBuildInput input;
  input.me_scale = options_.me_scale;
  input.ee_scale = options_.ee_scale;
  input.mentions.resize(num_mentions);
  std::vector<std::vector<Candidate>> graph_cands(num_mentions);
  std::vector<std::vector<uint32_t>> original_index(num_mentions);
  for (size_t m = 0; m < num_mentions; ++m) {
    const std::vector<Candidate>& cands = *candidates[m];
    if (fixed[m]) {
      graph_cands[m].push_back(cands[fixed_choice[m]]);
      original_index[m].push_back(static_cast<uint32_t>(fixed_choice[m]));
      input.mentions[m].me_weights.push_back(combined[m][fixed_choice[m]]);
    } else {
      for (uint32_t c = 0; c < cands.size(); ++c) {
        graph_cands[m].push_back(cands[c]);
        original_index[m].push_back(c);
        input.mentions[m].me_weights.push_back(combined[m][c]);
      }
    }
    input.mentions[m].candidates = &graph_cands[m];
  }

  GraphBuildContext build_context;
  build_context.cancel = options.cancel;
  if (par.enabled()) {
    build_context.scheduler = par.scheduler;
    build_context.max_tasks = par.max_tasks;
    build_context.min_batch_pairs = par.min_batch_pairs;
  }
  MentionEntityGraph meg =
      BuildMentionEntityGraph(input, *relatedness_, build_context);
  result.stats.relatedness_computations = meg.relatedness_computations;
  result.stats.relatedness_cache_hits = meg.relatedness_cache_hits;
  result.stats.graph_build_seconds = phase_watch.ElapsedSeconds();
  result.stats.graph_build_parallel_seconds = meg.parallel_seconds;
  result.stats.parallel_tasks += meg.parallel_tasks;
  result.stats.parallel_steals += meg.parallel_steals;

  // Deadline tripped while building the graph (the relatedness-dominated
  // phase, polled inside the batched pair evaluation): skip the solver
  // and the full candidate re-scoring.
  if (meg.aborted ||
      (options.cancel != nullptr && options.cancel->cancelled())) {
    fill_local_only();
    result.cancelled = true;
    return result;
  }

  phase_watch.Reset();
  GraphSolveContext solve_context;
  solve_context.cancel = options.cancel;
  if (par.enabled()) {
    solve_context.scheduler = par.scheduler;
    solve_context.max_tasks = par.max_tasks;
    solve_context.min_parallel_nodes = par.min_parallel_nodes;
  }
  GraphSolution sol =
      SolveMentionEntityGraph(meg, options_.graph, solve_context);
  result.stats.graph_iterations = sol.iterations;
  result.stats.graph_solve_seconds = phase_watch.ElapsedSeconds();
  result.stats.graph_solve_parallel_seconds = sol.parallel_seconds;
  result.stats.parallel_tasks += sol.parallel_tasks;
  result.stats.parallel_steals += sol.parallel_steals;

  // The solver polls the token inside its pre-prune, peel, and
  // post-processing loops; an aborted solution is partial and discarded.
  if (sol.aborted) {
    fill_local_only();
    result.cancelled = true;
    return result;
  }

  // ---- Map back and score all original candidates -----------------------------
  std::vector<const Candidate*> chosen(num_mentions, nullptr);
  std::vector<int32_t> chosen_original(num_mentions, -1);
  for (size_t m = 0; m < num_mentions; ++m) {
    if (sol.chosen_candidate[m] < 0) continue;
    uint32_t gi = static_cast<uint32_t>(sol.chosen_candidate[m]);
    chosen_original[m] = static_cast<int32_t>(original_index[m][gi]);
    chosen[m] = &graph_cands[m][gi];
  }

  // Weighted-degree style candidate scores: local weight plus coherence to
  // the entities chosen for the other mentions (used by the confidence
  // machinery of Section 5.4). Each mention's scores depend only on the
  // fixed `chosen` assignment, so mentions rescore as independent tasks
  // with per-mention relatedness counters, folded serially in mention
  // order afterwards.
  std::vector<std::vector<double>> rescored(num_mentions);
  std::vector<uint64_t> rescore_hits(num_mentions, 0);
  std::vector<uint64_t> rescore_misses(num_mentions, 0);
  const size_t rescore_tasks =
      par.enabled() && num_mentions >= par.min_parallel_mentions ? par.max_tasks
                                                                 : 1;
  const task::ParallelForStats rescore_stats = task::ParallelChunks(
      par.scheduler, num_mentions, rescore_tasks, options.cancel,
      [&](size_t begin, size_t end) {
        for (size_t m = begin; m < end; ++m) {
          if (options.cancel != nullptr && options.cancel->cancelled()) return;
          const std::vector<Candidate>& cands = *candidates[m];
          if (cands.empty()) continue;
          std::vector<double>& scores = rescored[m];
          scores.assign(cands.size(), 0.0);
          for (size_t c = 0; c < cands.size(); ++c) {
            double coherence = 0.0;
            for (size_t other = 0; other < num_mentions; ++other) {
              if (other == m || chosen[other] == nullptr) continue;
              bool cache_hit = false;
              coherence +=
                  cands[c].weight_scale * chosen[other]->weight_scale *
                  relatedness_->RelatednessTracked(cands[c], *chosen[other],
                                                   &cache_hit);
              if (cache_hit) {
                ++rescore_hits[m];
              } else {
                ++rescore_misses[m];
              }
            }
            scores[c] =
                options_.me_scale * combined[m][c] +
                options_.ee_scale * coherence /
                    std::max<double>(1.0, static_cast<double>(num_mentions));
          }
        }
      });
  if (rescore_tasks > 1) {
    result.stats.parallel_tasks += rescore_stats.tasks;
    result.stats.parallel_steals += rescore_stats.stolen;
  }
  if (rescore_stats.cancelled ||
      (options.cancel != nullptr && options.cancel->cancelled())) {
    fill_local_only();
    result.cancelled = true;
    return result;
  }
  for (size_t m = 0; m < num_mentions; ++m) {
    if (candidates[m]->empty()) {
      fill_result(m, -1, {});
      continue;
    }
    result.stats.relatedness_cache_hits += rescore_hits[m];
    result.stats.relatedness_computations += rescore_misses[m];
    fill_result(m, chosen_original[m], rescored[m]);
  }
  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace aida::core
