#ifndef AIDA_CORE_RELATEDNESS_CACHE_H_
#define AIDA_CORE_RELATEDNESS_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/relatedness.h"
#include "util/cacheline.h"
#include "util/function_effects.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aida::core {

/// Counter snapshot of a RelatednessCache. All counters are cumulative
/// since construction (or the last Clear()).
struct RelatednessCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Live entries at snapshot time (shared shards only; the per-thread L1
  /// fronts hold duplicates of shard entries, never unique values).
  uint64_t entries = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(lookups);
  }
};

struct RelatednessCacheOptions {
  /// Upper bound on cached pairs across all shards. Rounded so each shard
  /// holds a power-of-two slot count; a long batch can never grow the
  /// cache beyond this footprint (~16 bytes per slot).
  size_t capacity = size_t{1} << 20;
  /// Mutex stripes; rounded up to a power of two. 0 (the default) sizes
  /// the shard count to the machine — max(64, 4x hardware concurrency) —
  /// so adding workers keeps the expected load per shard lock constant
  /// instead of letting hot shards serialize a bigger pool.
  size_t num_shards = 0;
  /// Fronts the shared shards with a small direct-mapped per-thread L1
  /// (thread-local, ~8 KB per serving thread). An L1 hit costs a few
  /// loads and no lock at all — on skewed workloads, where a handful of
  /// hot entity pairs dominate, this is the difference between workers
  /// scaling and workers convoying on the hot pair's shard mutex. Safe
  /// because cached values are immutable for the cache's lifetime
  /// (deterministic measure, stable entity ids); Clear() invalidates
  /// every thread's L1 via a generation stamp.
  bool enable_thread_local_l1 = true;
};

/// Sharded, bounded, thread-safe memoization table for symmetric
/// entity-pair relatedness values — the cost driver of joint
/// disambiguation (Table 4.4). Keys are the unordered pair
/// (min(a,b), max(a,b)) of in-KB entity ids, so the symmetry contract of
/// RelatednessMeasure::Relatedness is baked into the key. Each shard is an
/// open-addressing table with a bounded linear-probe window; when the
/// window is full, the least-recently-touched entry in the window is
/// evicted (LRU-ish, O(window) and allocation-free), so a corpus-scale
/// batch cannot grow the cache without limit.
///
/// Contention design (the serving-layer scaling fix):
///  * each Shard is aligned to the destructive-interference size, so two
///    shards' mutexes and tick counters never share a cache line;
///  * the shard count scales with the machine's core count by default;
///  * hit/miss/insert statistics stripe over cache-line-aligned counter
///    blocks by thread (the old single hits_/misses_ atomics were a
///    per-evaluation all-core rendezvous);
///  * an optional per-thread L1 (see RelatednessCacheOptions) serves hot
///    pairs without touching any shared line at all.
class RelatednessCache {
 public:
  explicit RelatednessCache(RelatednessCacheOptions options = {});
  ~RelatednessCache();

  /// Returns true and sets `*value` when the pair is cached; refreshes the
  /// entry's recency stamp. Counts one hit or one miss.
  /// AIDA_NONBLOCKING: the L1 path is lock-free and allocation-free; the
  /// shard probe's O(kProbeWindow) critical section is the audited escape.
  bool Lookup(kb::EntityId a, kb::EntityId b,
              double* value) const AIDA_NONBLOCKING;

  /// Inserts (or refreshes) the pair, evicting the stalest entry of a full
  /// probe window. Concurrent inserts of the same pair are benign: the
  /// measure is deterministic, so both threads write the same value.
  /// AIDA_NONBLOCKING under the same audited-escape policy as Lookup —
  /// eviction reuses slots in place, so Insert never allocates.
  void Insert(kb::EntityId a, kb::EntityId b, double value) AIDA_NONBLOCKING;

  /// Cumulative counters plus the current live-entry count.
  RelatednessCacheStats Snapshot() const;

  /// Drops all entries and zeroes the counters. Entries held in
  /// per-thread L1 fronts are invalidated lazily on each thread's next
  /// lookup.
  void Clear();

  /// Total slot budget across shards (>= the requested capacity).
  size_t capacity() const { return shards_.size() * slots_per_shard_; }

  /// Shard count after rounding/auto-sizing (test & introspection hook).
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Slot {
    uint64_t key;
    double value;
    uint64_t stamp;  // shard tick at last touch; smallest == stalest
  };
  /// Aligned so that one worker hammering shard i never invalidates the
  /// line holding shard j's mutex state for a worker on another core.
  struct alignas(util::kCacheLineSize) Shard {
    mutable util::Mutex mutex{util::lock_rank::kRelatednessShard};
    mutable std::vector<Slot> slots AIDA_GUARDED_BY(mutex);
    mutable uint64_t tick AIDA_GUARDED_BY(mutex) = 0;
    mutable size_t live AIDA_GUARDED_BY(mutex) = 0;
  };
  /// Statistics stripe: each thread hashes to one block, so counter
  /// updates stay core-local instead of serializing on two global
  /// atomics. Snapshot() sums the stripes.
  struct alignas(util::kCacheLineSize) StatStripe {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> evictions{0};
  };
  static constexpr size_t kStatStripes = 8;

  const Shard& ShardFor(uint64_t key) const;
  StatStripe& StripeForThisThread() const AIDA_NONBLOCKING;

  size_t slots_per_shard_ = 0;
  bool l1_enabled_ = false;
  /// Process-unique id + clear generation: together they tag per-thread
  /// L1 blocks so a block never serves entries from a destroyed or
  /// cleared cache (ids are never reused, unlike addresses).
  uint64_t instance_id_ = 0;
  std::atomic<uint64_t> clear_epoch_{0};
  std::vector<Shard> shards_;
  mutable std::array<StatStripe, kStatStripes> stripes_;
};

/// Decorator that serves RelatednessMeasure values through a shared
/// RelatednessCache. Only pairs of in-KB, non-placeholder candidates are
/// cached: a placeholder's model is document-private, while an in-KB
/// entity id determines its candidate model for the lifetime of the
/// CandidateModelStore, which makes the entity-id pair a sound cache key.
/// Callers that substitute per-document models for in-KB entities must
/// not share one cache across those documents.
///
/// FilterPairs semantics are preserved: has_pair_filter() and
/// FilterPairs() delegate to the wrapped measure, so the LSH variants
/// prune exactly as before and the cache only memoizes the surviving
/// pairs. The decorator's own comparisons() counter counts only real
/// evaluations of the wrapped measure (misses), mirroring the base
/// counter's meaning.
class CachedRelatednessMeasure : public RelatednessMeasure {
 public:
  /// Neither pointer is owned; both must outlive the decorator.
  CachedRelatednessMeasure(const RelatednessMeasure* base,
                           RelatednessCache* cache);

  std::string name() const override;
  double Relatedness(const Candidate& a, const Candidate& b) const override;
  double RelatednessTracked(const Candidate& a, const Candidate& b,
                            bool* cache_hit) const override;
  bool has_pair_filter() const override { return base_->has_pair_filter(); }
  std::vector<std::pair<uint32_t, uint32_t>> FilterPairs(
      const std::vector<const Candidate*>& candidates) const override {
    return base_->FilterPairs(candidates);
  }

  const RelatednessMeasure& base() const { return *base_; }
  const RelatednessCache& cache() const { return *cache_; }

 private:
  const RelatednessMeasure* base_;
  RelatednessCache* cache_;
};

}  // namespace aida::core

#endif  // AIDA_CORE_RELATEDNESS_CACHE_H_
