#include "kb/type_taxonomy.h"

#include "util/check.h"

namespace aida::kb {

TypeId TypeTaxonomy::AddType(std::string name, TypeId parent) {
  AIDA_CHECK(by_name_.find(name) == by_name_.end(),
             "duplicate type name '%s'", name.c_str());
  AIDA_CHECK(parent == kNoType || parent < names_.size(),
             "parent type %u out of range (%zu types)", parent,
             names_.size());
  TypeId id = static_cast<TypeId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  parents_.push_back(parent);
  return id;
}

TypeId TypeTaxonomy::FindType(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoType : it->second;
}

const std::string& TypeTaxonomy::TypeName(TypeId t) const {
  AIDA_DCHECK(t < names_.size());
  return names_[t];
}

TypeId TypeTaxonomy::Parent(TypeId t) const {
  AIDA_DCHECK(t < parents_.size());
  return parents_[t];
}

std::vector<TypeId> TypeTaxonomy::AncestorsInclusive(TypeId t) const {
  std::vector<TypeId> chain;
  while (t != kNoType) {
    chain.push_back(t);
    t = parents_[t];
  }
  return chain;
}

bool TypeTaxonomy::IsSubtypeOf(TypeId descendant, TypeId ancestor) const {
  while (descendant != kNoType) {
    if (descendant == ancestor) return true;
    descendant = parents_[descendant];
  }
  return false;
}

}  // namespace aida::kb
