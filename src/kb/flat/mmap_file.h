#ifndef AIDA_KB_FLAT_MMAP_FILE_H_
#define AIDA_KB_FLAT_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/lifetime.h"
#include "util/status.h"

namespace aida::kb::flat {

/// Read-only view of a whole file, preferably established with mmap so
/// loading is O(pages touched) and the page cache is shared between
/// processes serving the same snapshot. On platforms without mmap the
/// class degrades to reading the file into an aligned heap buffer — the
/// flat loader works either way, only the zero-copy property is lost.
///
/// The mapping lives until the object is destroyed; a KnowledgeBase
/// built over it keeps a shared_ptr, so RCU snapshot retirement (the
/// last in-flight request dropping its pin) is what actually unmaps.
class AIDA_OWNER_TYPE MappedFile {
 public:
  static util::StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const AIDA_LIFETIME_BOUND { return data_; }
  size_t size() const { return size_; }
  /// False when the platform fallback (full read) was used.
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  /// Owns the fallback buffer when !mapped_.
  std::unique_ptr<char[]> heap_buffer_;
};

}  // namespace aida::kb::flat

#endif  // AIDA_KB_FLAT_MMAP_FILE_H_
