#ifndef AIDA_KB_FLAT_FLAT_HASH_H_
#define AIDA_KB_FLAT_FLAT_HASH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/function_effects.h"
#include "util/lifetime.h"

namespace aida::kb::flat {

/// FNV-1a over the key bytes. Fixed (not seeded, not platform-dependent):
/// the slot arrays are persisted inside flat snapshots, so the probe
/// sequence must be identical for the process that wrote the table and
/// every process that mmaps it later.
inline uint64_t HashBytes(std::string_view key) AIDA_NONBLOCKING {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline constexpr uint64_t kHashNotFound = ~uint64_t{0};

/// Capacity policy for the open-addressing tables: the smallest power of
/// two holding `count` keys at <= 50% load. Power-of-two capacity keeps
/// the probe step a mask; the slack keeps linear-shift chains short (the
/// "fullness" idea of the SNIPPETS hash_kernel design).
inline uint64_t HashCapacityFor(uint64_t count) {
  AIDA_CHECK(count < (uint64_t{1} << 32), "flat hash table too large: %llu",
             static_cast<unsigned long long>(count));
  uint64_t capacity = 2;
  while (capacity < count * 2) capacity <<= 1;
  return capacity;
}

/// Read-only open-addressing hash table over externally stored keys.
///
/// The table itself is a bare slot array (one u32 per slot, value 0 =
/// empty, v = key index + 1) that lives either in a heap vector (built by
/// a store's Finalize) or directly inside an mmap'd snapshot section; the
/// keys are never duplicated into the table — a probe compares against
/// the key storage via the caller-supplied accessor. Collisions resolve
/// by linear shifting (slot_handler + main_table scheme of SNIPPETS.md
/// Snippet 3's hash_kernel); termination is guaranteed because builders
/// cap the load factor at 1/2 and the loader verifies a free slot exists.
struct AIDA_VIEW_TYPE StringHashView {
  const uint32_t* slots = nullptr;
  /// Power of two; 0 for an empty table.
  uint64_t capacity = 0;

  /// Returns the index of `key` among the stored keys, or kHashNotFound.
  /// `key_at(i)` must return the string_view of key `i`.
  /// AIDA_NONBLOCKING: the probe is loads + compares over the slot array;
  /// the contract extends to `key_at`, which every store satisfies by
  /// slicing a preexisting pool (verified per instantiation).
  template <typename KeyAt>
  uint64_t Find(std::string_view key, KeyAt&& key_at) const AIDA_NONBLOCKING {
    if (capacity == 0) return kHashNotFound;
    const uint64_t mask = capacity - 1;
    for (uint64_t slot = HashBytes(key) & mask;; slot = (slot + 1) & mask) {
      const uint32_t v = slots[slot];
      if (v == 0) return kHashNotFound;
      const uint64_t index = v - 1;
      if (key_at(index) == key) return index;
    }
  }
};

/// Builds the slot array for `count` distinct keys. Deterministic: keys
/// are inserted in index order, so identical key sets serialize to
/// byte-identical tables.
template <typename KeyAt>
std::vector<uint32_t> BuildHashSlots(uint64_t count, KeyAt&& key_at) {
  const uint64_t capacity = HashCapacityFor(count);
  std::vector<uint32_t> slots(capacity, 0);
  const uint64_t mask = capacity - 1;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t slot = HashBytes(key_at(i)) & mask;
    while (slots[slot] != 0) slot = (slot + 1) & mask;
    slots[slot] = static_cast<uint32_t>(i + 1);
  }
  return slots;
}

}  // namespace aida::kb::flat

#endif  // AIDA_KB_FLAT_FLAT_HASH_H_
