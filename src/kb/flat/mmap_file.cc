#include "kb/flat/mmap_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define AIDA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace aida::kb::flat {

namespace {

util::Status Errno(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " '" + path +
                               "': " + std::strerror(errno));
}

}  // namespace

util::StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if AIDA_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status status = Errno("cannot stat", path);
    ::close(fd);
    return status;
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ == 0) {
    // mmap of length 0 is an error; an empty file is simply an empty view.
    ::close(fd);
    file->data_ = nullptr;
    file->mapped_ = true;
    return std::shared_ptr<const MappedFile>(file);
  }
  void* mapping =
      ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping stays valid after close; the kernel pins the inode.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    file->size_ = 0;
    return Errno("cannot mmap", path);
  }
  file->data_ = static_cast<const char*>(mapping);
  file->mapped_ = true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Errno("cannot open", path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return util::Status::IoError("cannot size '" + path + "'");
  }
  file->size_ = static_cast<size_t>(size);
  // operator new[] aligns to the default new alignment (>= 8), which is
  // all the section layout requires.
  file->heap_buffer_ = std::make_unique<char[]>(file->size_ + 1);
  if (file->size_ > 0 &&
      std::fread(file->heap_buffer_.get(), 1, file->size_, f) !=
          file->size_) {
    std::fclose(f);
    return util::Status::IoError("short read of '" + path + "'");
  }
  std::fclose(f);
  file->data_ = file->heap_buffer_.get();
  file->mapped_ = false;
#endif
  return std::shared_ptr<const MappedFile>(file);
}

MappedFile::~MappedFile() {
#if AIDA_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

}  // namespace aida::kb::flat
