#ifndef AIDA_KB_FLAT_FLAT_SNAPSHOT_H_
#define AIDA_KB_FLAT_FLAT_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace aida::kb::flat {

/// True when `data` starts with the flat-snapshot magic; used by
/// LoadKnowledgeBase to dispatch between the v1 record stream and the
/// flat format.
bool LooksLikeFlatSnapshot(std::string_view data);

enum class MagicProbe {
  kFlat,        // file starts with the flat-snapshot magic
  kOther,       // readable, but a different format
  kUnreadable,  // missing or unreadable (callers surface the real error)
};

/// Reads just the 4-byte prefix of `path` to pick a load path without
/// pulling the whole file into memory.
MagicProbe ProbeFileMagic(const std::string& path);

/// Serializes a finalized knowledge base into the flat snapshot format:
/// a section table followed by the stores' flattened arrays, dumped
/// verbatim. Derived weights (priors, MI, NPMI, IDF inputs) are stored,
/// not recomputed on load, so a loaded snapshot answers every query with
/// exactly the bytes the writer's knowledge base would have produced.
std::string SerializeFlatSnapshot(const KnowledgeBase& kb);

/// Convenience: SerializeFlatSnapshot to a file.
util::Status SaveFlatSnapshot(const KnowledgeBase& kb,
                              const std::string& path);

/// Zero-copy load: the bulk stores' views point straight into `data`,
/// which therefore must stay alive (and immutable) for the lifetime of
/// the returned knowledge base — `backing` is pinned on it to guarantee
/// that. `data.data()` must be 8-byte aligned (mmap and operator new
/// both qualify). Every array bound, offset table, id and hash slot is
/// validated before use; corrupt or truncated input yields an error
/// Status, never undefined behaviour or a process abort.
util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshotFromBuffer(
    std::string_view data, std::shared_ptr<const void> backing);

/// Copies `data` into an owned, aligned buffer and loads from that. For
/// callers holding arbitrary byte strings (tests, fuzz targets).
util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshotFromString(
    std::string_view data);

/// mmaps `path` and serves all queries directly out of the page cache.
util::StatusOr<std::unique_ptr<KnowledgeBase>> LoadFlatSnapshot(
    const std::string& path);

}  // namespace aida::kb::flat

#endif  // AIDA_KB_FLAT_FLAT_SNAPSHOT_H_
